"""Hierarchical timing spans and the :class:`Tracer`.

The allocator used to time its phases with hand-rolled
``time.perf_counter()`` pairs scattered through ``allocate`` and
``allocate_local``.  Those pairs are now spans: every phase opens a
:class:`Span` on the tracer's stack, and the resulting tree *is* the
timing record — ``RoundTimes``, ``cfa_time`` and ``total_time`` are
views over it (see :mod:`repro.regalloc.allocator`).

Two tracer flavors share one interface:

* :class:`Tracer` — records the span tree always, and decision events
  only when constructed with ``capture_events=True``.  Span bookkeeping
  costs the same two ``perf_counter`` calls the old timing pairs did,
  so the tree is free relative to the seed implementation.
* :data:`NULL_TRACER` — the module-level no-op used as the default of
  every pass-level entry point (simplify, select, coalesce, spill
  costs).  Its spans do nothing and ``events_enabled`` is ``False``,
  so the disabled path in hot loops is one attribute check.

Event payloads are the typed dataclasses of :mod:`repro.obs.events`;
the tracer treats them opaquely and attaches them to the innermost
open span.
"""

from __future__ import annotations

import time
from typing import Any, Iterator


class Span:
    """One timed region: a name, attributes, events, child spans."""

    __slots__ = ("name", "attrs", "start", "end", "children", "events")

    def __init__(self, name: str, attrs: dict[str, Any] | None = None,
                 start: float = 0.0, end: float = 0.0) -> None:
        self.name = name
        self.attrs: dict[str, Any] = attrs or {}
        self.start = start
        self.end = end
        self.children: list[Span] = []
        self.events: list[Any] = []

    @property
    def duration(self) -> float:
        return self.end - self.start

    def child(self, name: str) -> "Span | None":
        """The first direct child named *name* (``None`` if absent)."""
        for span in self.children:
            if span.name == name:
                return span
        return None

    def children_named(self, name: str) -> list["Span"]:
        return [span for span in self.children if span.name == name]

    def total(self, name: str) -> float:
        """Summed duration of the direct children named *name*."""
        return sum(span.duration for span in self.children
                   if span.name == name)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def n_events(self) -> int:
        return sum(len(span.events) for span in self.walk())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Span {self.name} {self.duration * 1e3:.3f}ms "
                f"children={len(self.children)} events={len(self.events)}>")


def span_to_payload(span: Span) -> dict[str, Any]:
    """A JSON/pickle-safe dict of *span* and its subtree (no events).

    The worker side of the engine ships its execution span tree back
    through the supervisor ``Pipe`` in this form, and the flight
    recorder's ``debug`` dumps use it too: plain dicts survive any
    transport and tolerate schema drift between reader and writer.
    """
    return {
        "name": span.name,
        "start": span.start,
        "end": span.end,
        "attrs": {k: v if isinstance(v, (bool, int, float, str))
                  or v is None else str(v)
                  for k, v in span.attrs.items()},
        "children": [span_to_payload(child) for child in span.children],
    }


def span_from_payload(payload: dict[str, Any]) -> Span:
    """Rebuild a :class:`Span` tree from :func:`span_to_payload` form."""
    span = Span(payload.get("name", "?"), payload.get("attrs") or None,
                start=payload.get("start", 0.0),
                end=payload.get("end", 0.0))
    for child in payload.get("children", ()):
        span.children.append(span_from_payload(child))
    return span


def shift_span(span: Span, delta: float) -> None:
    """Translate *span* and its subtree by *delta* seconds, in place —
    the clock-rebasing step when stitching a worker-process span tree
    into the supervising process's timeline."""
    span.start += delta
    span.end += delta
    for child in span.children:
        shift_span(child, delta)


def clamp_span(span: Span, start: float, end: float) -> None:
    """Clamp *span* and its subtree into ``[start, end]``, in place.

    After rebasing across a process boundary the shifted tree can
    protrude past its parent by the (unknowable) transport delay;
    clamping restores the well-nestedness invariant the trace
    consumers assert.
    """
    span.start = min(max(span.start, start), end)
    span.end = min(max(span.end, span.start), end)
    for child in span.children:
        clamp_span(child, span.start, span.end)


class _OpenSpan:
    """Context manager handed out by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *_exc) -> None:
        self._tracer._finish(self.span)


class Tracer:
    """Records a span tree, and (optionally) decision events.

    Args:
        capture_events: record the typed decision events emitted by the
            allocation passes.  Off by default: spans alone reproduce
            the old phase timings and keep the per-copy / per-node hot
            paths at a single ``events_enabled`` attribute check.
    """

    __slots__ = ("events_enabled", "roots", "_stack", "_clock")

    def __init__(self, capture_events: bool = False,
                 clock=time.perf_counter) -> None:
        self.events_enabled = capture_events
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._clock = clock

    @property
    def root(self) -> Span:
        """The first root span (raises if nothing was traced)."""
        return self.roots[0]

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def span(self, name: str, **attrs: Any) -> _OpenSpan:
        """Open a child span of the innermost open span."""
        span = Span(name, attrs or None, start=self._clock())
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return _OpenSpan(self, span)

    def _finish(self, span: Span) -> None:
        span.end = self._clock()
        popped = self._stack.pop()
        assert popped is span, "span exited out of order"

    def event(self, event: Any) -> None:
        """Attach *event* to the innermost open span (if events are on)."""
        if self.events_enabled and self._stack:
            self._stack[-1].events.append(event)


class _NullSpan:
    """Shared inert span: context-manages to itself, records nothing."""

    __slots__ = ()
    name = "null"
    attrs: dict[str, Any] = {}
    start = end = duration = 0.0
    children: list[Span] = []
    events: list[Any] = []

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> None:
        pass


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Pass-level entry points default to the shared :data:`NULL_TRACER`
    instance, so untraced calls pay one ``events_enabled`` attribute
    check per guarded block and a constant-returning ``span()`` per
    phase — nothing is allocated, nothing is timed.
    """

    __slots__ = ()
    events_enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, event: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()

#: the module-level no-op tracer (the default everywhere)
NULL_TRACER = NullTracer()
