"""Trace rendering and trace diffing (the ``repro trace`` backend).

Three renderers over a :class:`~repro.obs.export.TraceDocument`:

* :func:`render_tree` — the span hierarchy with durations and event
  counts, for eyeballing where a round's time went;
* :func:`render_summary` — phase totals, decision counts and the
  per-round spill log, all derived from the document (deterministic
  for a given trace file — the golden-file tests rely on this);
* :func:`render_diff` — a round-by-round comparison of two traces that
  pinpoints divergent spill and coalesce decisions: the tool for
  answering "why did the Old allocator spill here and the New one
  rematerialize?".
"""

from __future__ import annotations

from .export import TraceDocument, TraceEvent
from .span import Span


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}ms"


def describe(doc: TraceDocument) -> str:
    """One-line identity of a trace."""
    meta = doc.meta
    regs = ""
    if "int_regs" in meta:
        regs = f", {meta['int_regs']}+{meta.get('float_regs', '?')} regs"
    # traces written before the strategy axis existed carry no
    # ``allocator`` key; they were all produced by the iterated loop
    allocator = meta.get("allocator", "iterated")
    return (f"{meta.get('function', '?')} "
            f"(mode={meta.get('mode', '?')}, "
            f"allocator={allocator}, "
            f"machine={meta.get('machine', '?')}{regs})")


# -- tree ---------------------------------------------------------------------

def render_tree(doc: TraceDocument) -> str:
    """The span tree, indented, with durations and event counts."""
    lines: list[str] = [f"trace: {describe(doc)}"]

    def walk(span: Span, depth: int) -> None:
        attrs = " ".join(f"{k}={v}" for k, v in span.attrs.items())
        label = span.name + (f" [{attrs}]" if attrs else "")
        suffix = f"  ({len(span.events)} events)" if span.events else ""
        lines.append(f"{'  ' * depth}{label:<{max(40 - 2 * depth, 8)}} "
                     f"{_ms(span.duration):>10}{suffix}")
        for child in span.children:
            walk(child, depth + 1)

    if doc.root is not None:
        walk(doc.root, 0)
    return "\n".join(lines)


# -- summary ------------------------------------------------------------------

PHASES = ("renumber", "build", "costs", "color", "spill")


def _spill_line(event: TraceEvent) -> str:
    tag = event.get("remat_tag")
    how = f"remat {tag}" if tag else "memory"
    return (f"{event.get('range')} {how} cost={event.get('cost'):g} "
            f"degree={event.get('degree')} "
            f"({event.get('chosen_because')})")


def render_summary(doc: TraceDocument) -> str:
    root = doc.root
    assert root is not None
    lines = [f"trace summary: {describe(doc)}"]
    cfa = root.child("cfa")
    clone = root.child("clone")
    lines.append(
        f"rounds: {doc.n_rounds}, total {root.duration:.6f}s"
        f" (clone {clone.duration:.6f}s, cfa {cfa.duration:.6f}s)"
        if cfa is not None and clone is not None
        else f"rounds: {doc.n_rounds}, total {root.duration:.6f}s")

    lines.append("phase totals (s):")
    for phase in PHASES:
        total = sum(r.total(phase) for r in doc.rounds)
        lines.append(f"  {phase:<8} {total:.6f}")

    lines.append("decisions:")
    spills = doc.events_of("spill_decision")
    n_remat = sum(1 for e in spills if e.get("remat_tag"))
    coalesces = doc.events_of("coalesce_decision")
    accepted = [e for e in coalesces if e.get("accepted")]
    acc_copies = sum(1 for e in accepted if e.get("copy_kind") == "copy")
    acc_splits = sum(1 for e in accepted if e.get("copy_kind") == "split")
    colors = doc.events_of("color_assigned")
    biased = sum(1 for e in colors if e.get("biased_hit"))
    lookahead = sum(1 for e in colors if e.get("lookahead_used"))
    lines += [
        f"  spill_candidate   {len(doc.events_of('spill_candidate'))}",
        f"  spill_decision    {len(spills)} "
        f"({n_remat} rematerialized, {len(spills) - n_remat} memory)",
        f"  coalesce_decision {len(coalesces)} ({len(accepted)} accepted: "
        f"{acc_copies} copy, {acc_splits} split)",
        f"  split_inserted    {len(doc.events_of('split_inserted'))}",
        f"  color_assigned    {len(colors)} "
        f"(biased hits {biased}, lookahead {lookahead})",
    ]

    if spills:
        lines.append("spills:")
        for event in spills:
            lines.append(f"  round {event.round}: {_spill_line(event)}")

    counters = doc.metrics.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]}")
    return "\n".join(lines)


# -- diff ---------------------------------------------------------------------

def _spills_by_round(doc: TraceDocument) -> dict[int, dict[str, TraceEvent]]:
    by_round: dict[int, dict[str, TraceEvent]] = {}
    for event in doc.events_of("spill_decision"):
        by_round.setdefault(event.round or 0, {})[event.get("range")] = event
    return by_round


def render_diff(a: TraceDocument, b: TraceDocument,
                a_name: str = "A", b_name: str = "B") -> str:
    """Round-by-round divergence report between two traces.

    Registers are compared by name within the same round index; that is
    meaningful because live-range numbering is deterministic for one
    input function (PR 1), so a same-named range in the same round of
    two runs denotes the same renumber output — and any naming drift
    after the first divergent spill is itself part of the divergence
    being reported.
    """
    lines = [f"trace diff: {a_name} = {describe(a)}",
             f"            {b_name} = {describe(b)}"]
    if a.meta.get("function") != b.meta.get("function"):
        lines.append("WARNING: traces come from different functions; "
                     "round-by-round comparison is structural only")
    lines.append(f"rounds: {a_name}={a.n_rounds} {b_name}={b.n_rounds}")

    spills_a, spills_b = _spills_by_round(a), _spills_by_round(b)
    divergent = 0
    for i in range(max(a.n_rounds, b.n_rounds)):
        ra, rb = spills_a.get(i, {}), spills_b.get(i, {})
        only_a = sorted(set(ra) - set(rb))
        only_b = sorted(set(rb) - set(ra))
        both = sorted(set(ra) & set(rb))
        changed = [r for r in both
                   if (ra[r].get("remat_tag") is None)
                   != (rb[r].get("remat_tag") is None)]
        ca = a.events_of("coalesce_decision", i)
        cb = b.events_of("coalesce_decision", i)
        acc_a = sum(1 for e in ca if e.get("accepted"))
        acc_b = sum(1 for e in cb if e.get("accepted"))
        if not (only_a or only_b or changed or ca or cb):
            continue
        lines.append(f"round {i}:")
        for reg in only_a:
            divergent += 1
            lines.append(f"  spilled only in {a_name}: {_spill_line(ra[reg])}")
        for reg in only_b:
            divergent += 1
            lines.append(f"  spilled only in {b_name}: {_spill_line(rb[reg])}")
        for reg in changed:
            divergent += 1
            lines.append(f"  {reg}: {a_name} {_spill_line(ra[reg])} | "
                         f"{b_name} {_spill_line(rb[reg])}")
        if both and not changed:
            lines.append(f"  spilled in both: {', '.join(both)}")
        if ca or cb:
            lines.append(f"  coalesce accepted: {a_name} {acc_a}/{len(ca)}, "
                         f"{b_name} {acc_b}/{len(cb)}")

    def totals(doc: TraceDocument, name: str) -> str:
        spills = doc.events_of("spill_decision")
        n_remat = sum(1 for e in spills if e.get("remat_tag"))
        return (f"{name} spilled {len(spills)} ({n_remat} remat) "
                f"in {doc.n_rounds} rounds")

    lines.append(f"totals: {totals(a, a_name)}; {totals(b, b_name)}")
    lines.append(f"divergent spill decisions: {divergent}")
    return "\n".join(lines)
