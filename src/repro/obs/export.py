"""JSONL trace export and import.

One trace is one JSON-Lines document:

* a ``meta`` line — schema version plus allocation identity (function,
  mode, machine, register counts),
* one ``span`` line per span, pre-order, with ``id``/``parent`` links,
  start offsets relative to the root and durations in seconds,
* one ``event`` line per decision event, flattened
  (``kind`` + the event dataclass's fields) and annotated with the
  owning span's id and the enclosing round index,
* a final ``metrics`` line — the :class:`MetricsRegistry` snapshot.

The format is append-only-friendly and versioned; readers tolerate
unknown event kinds (they load as dicts, see
:func:`repro.obs.events.event_from_fields`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterator

from .events import event_fields, event_from_fields
from .metrics import MetricsRegistry
from .span import Span

#: bump when a line's shape changes incompatibly
TRACE_VERSION = 1

_RESERVED = ("type", "kind", "span", "round")


def _json_safe(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


@dataclass
class TraceEvent:
    """One decision event as read back from a trace."""

    kind: str
    span_id: int
    round: int | None
    #: the typed event dataclass (or a dict for unknown kinds)
    event: Any

    def get(self, name: str, default: Any = None) -> Any:
        if isinstance(self.event, dict):
            return self.event.get(name, default)
        return getattr(self.event, name, default)


def trace_lines(root: Span, meta: dict[str, Any],
                metrics: MetricsRegistry | None = None) -> Iterator[str]:
    """The JSONL lines of one trace (no trailing newline per line)."""
    yield json.dumps({"type": "meta", "version": TRACE_VERSION,
                      **{k: _json_safe(v) for k, v in meta.items()}},
                     sort_keys=False)

    ids: dict[int, int] = {}
    origin = root.start

    def walk(span: Span, parent: int | None,
             round_index: int | None) -> Iterator[str]:
        span_id = len(ids)
        ids[id(span)] = span_id
        if span.name == "round":
            round_index = span.attrs.get("index")
        yield json.dumps({
            "type": "span", "id": span_id, "parent": parent,
            "name": span.name,
            "start": round(span.start - origin, 9),
            "dur": round(span.duration, 9),
            "attrs": {k: _json_safe(v) for k, v in span.attrs.items()},
        })
        for event in span.events:
            payload = {k: _json_safe(v)
                       for k, v in event_fields(event).items()}
            assert not any(k in payload for k in _RESERVED), payload
            yield json.dumps({"type": "event", "kind": event.kind,
                              "span": span_id, "round": round_index,
                              **payload})
        for child in span.children:
            yield from walk(child, span_id, round_index)

    yield from walk(root, None, None)
    if metrics is not None:
        yield json.dumps({"type": "metrics", **metrics.snapshot()})


def trace_to_text(root: Span, meta: dict[str, Any],
                  metrics: MetricsRegistry | None = None) -> str:
    return "\n".join(trace_lines(root, meta, metrics)) + "\n"


def write_trace(path: str, root: Span, meta: dict[str, Any],
                metrics: MetricsRegistry | None = None) -> None:
    with open(path, "w") as handle:
        for line in trace_lines(root, meta, metrics):
            handle.write(line + "\n")


@dataclass
class TraceDocument:
    """A parsed trace: meta, the span tree, events, metrics."""

    meta: dict[str, Any] = field(default_factory=dict)
    root: Span | None = None
    events: list[TraceEvent] = field(default_factory=list)
    metrics: dict[str, Any] = field(default_factory=dict)

    # -- convenience views ----------------------------------------------------

    def events_of(self, kind: str,
                  round_index: int | None = None) -> list[TraceEvent]:
        return [e for e in self.events
                if e.kind == kind
                and (round_index is None or e.round == round_index)]

    @property
    def rounds(self) -> list[Span]:
        if self.root is None:
            return []
        return [s for s in self.root.walk() if s.name == "round"]

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    def counter(self, name: str, default: int = 0) -> int:
        return self.metrics.get("counters", {}).get(name, default)


def parse_trace(text: str) -> TraceDocument:
    """Parse the JSONL *text* of one trace back into a document."""
    doc = TraceDocument()
    spans: dict[int, Span] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace line {lineno}: not JSON: {exc}")
        rtype = record.get("type")
        if rtype == "meta":
            doc.meta = {k: v for k, v in record.items() if k != "type"}
        elif rtype == "span":
            span = Span(record["name"], record.get("attrs") or None,
                        start=record["start"],
                        end=record["start"] + record["dur"])
            spans[record["id"]] = span
            parent = record.get("parent")
            if parent is None:
                doc.root = span
            else:
                spans[parent].children.append(span)
        elif rtype == "event":
            data = {k: v for k, v in record.items() if k not in _RESERVED}
            event = event_from_fields(record["kind"], data)
            traced = TraceEvent(kind=record["kind"],
                                span_id=record["span"],
                                round=record.get("round"), event=event)
            doc.events.append(traced)
            owner = spans.get(record["span"])
            if owner is not None:
                owner.events.append(event)
        elif rtype == "metrics":
            doc.metrics = {k: v for k, v in record.items() if k != "type"}
        else:
            raise ValueError(f"trace line {lineno}: unknown type {rtype!r}")
    if doc.root is None:
        raise ValueError("trace has no root span")
    return doc


def load_trace(path: str) -> TraceDocument:
    with open(path) as handle:
        return parse_trace(handle.read())
