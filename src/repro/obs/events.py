"""Typed decision events with provenance (the *why* of the allocator).

Each event records one heuristic decision at the moment it is taken —
which live range became the spill candidate and at what cost/degree
ratio, whether a split survived conservative coalescing and at what
Briggs degree, which color select chose and because of which bias —
exactly the Section 4.2–4.3 choices the paper's evaluation turns on.

Events are plain frozen dataclasses.  Registers and rematerialization
tags are stored as their stable string forms (``r5``, ``inst[ldi 4]``)
so events serialize to JSON without custom encoders and compare across
traces by value.  :func:`event_fields` flattens an event for export;
:data:`EVENT_KINDS` maps the wire ``kind`` back to the class.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any


@dataclass(frozen=True)
class SpillCandidateChosen:
    """Simplify ran out of low-degree nodes and picked this candidate."""

    kind = "spill_candidate"
    range: str
    cost: float
    degree: int
    #: Chaitin's metric at choice time (``cost / max(degree, 1)``)
    ratio: float
    #: ``min-ratio`` | ``infinite-cost-fallback``
    chosen_because: str
    #: pushed optimistically (Briggs) or spilled outright (Chaitin)
    optimistic: bool


@dataclass(frozen=True)
class SpillDecision:
    """A live range definitively spilled this round.

    Emitted once per entry of the round's spill list, so the count of
    these events reconciles exactly with
    ``AllocationStats.n_spilled_ranges``.
    """

    kind = "spill_decision"
    range: str
    cost: float
    degree: int
    #: the tag when the range rematerializes instead of going to memory
    remat_tag: str | None
    #: ``select-found-no-color`` | ``pessimistic-simplify``
    chosen_because: str


@dataclass(frozen=True)
class CoalesceDecision:
    """One copy/split pair considered by a coalescing pass."""

    kind = "coalesce_decision"
    dest: str
    src: str
    #: ``copy`` (aggressive stage) or ``split`` (conservative stage)
    copy_kind: str
    accepted: bool
    #: significant-degree neighbor count of the would-be merged node,
    #: counted up to k (split stage only; ``None`` for plain copies)
    briggs_degree: int | None
    #: ``merged`` | ``already-unioned`` | ``interferes`` |
    #: ``conservative-failed`` | ``not-in-graph``
    reason: str


@dataclass(frozen=True)
class SplitInserted:
    """Renumber placed a split copy at the end of a predecessor block."""

    kind = "split_inserted"
    block: str
    dest: str
    src: str


@dataclass(frozen=True)
class ColorAssigned:
    """Select gave a live range a color (and why that color)."""

    kind = "color_assigned"
    range: str
    color: int
    #: colors already taken by interfering neighbors
    n_forbidden: int
    #: the color matched an already-colored split/copy partner
    biased_hit: bool
    #: the color was chosen by the limited lookahead for an uncolored
    #: partner (Section 4.3)
    lookahead_used: bool
    #: the range had been pushed as a spill candidate ("optimism paid")
    was_candidate: bool


@dataclass(frozen=True)
class MaxlivePressure:
    """The SSA strategy measured one block's register pressure.

    Emitted once per block per round; a block is over-pressure (and
    will force spills) when a pressure exceeds its class's k.
    """

    kind = "maxlive_pressure"
    block: str
    int_pressure: int
    float_pressure: int
    k_int: int
    k_float: int


@dataclass(frozen=True)
class SSASpillDecision:
    """The SSA strategy spilled a live range everywhere.

    Emitted once per range the strategy hands to spill-code insertion,
    so the count of these events reconciles exactly with
    ``AllocationStats.n_spilled_ranges`` under ``allocator="ssa"``
    (the analogue of :class:`SpillDecision` for the iterated loop).
    """

    kind = "ssa_spill_decision"
    range: str
    cost: float
    #: the block whose over-pressure point forced the choice (empty for
    #: coloring-time respills, which are not tied to one point)
    block: str
    #: effective pressure at the choosing point (0 for respills)
    pressure: int
    k: int
    #: the tag when the range rematerializes instead of going to memory
    remat_tag: str | None
    #: ``over-pressure`` | ``uncolorable``
    chosen_because: str


@dataclass(frozen=True)
class DomTreeColorAssigned:
    """The SSA strategy's greedy dominance-tree walk colored a range."""

    kind = "domtree_color_assigned"
    range: str
    color: int
    #: the block holding the definition that fixed the color
    block: str
    #: colors already taken by the live-after set at that definition
    n_forbidden: int
    #: the destination took its copy source's color (split-copy bias)
    biased_hit: bool


@dataclass(frozen=True)
class RematCost:
    """Spill-cost estimation tagged a range as rematerializable."""

    kind = "remat_cost"
    range: str
    cost: float
    remat_tag: str


#: every event class, keyed by its wire ``kind``
EVENT_KINDS: dict[str, type] = {
    cls.kind: cls
    for cls in (SpillCandidateChosen, SpillDecision, CoalesceDecision,
                SplitInserted, ColorAssigned, RematCost,
                MaxlivePressure, SSASpillDecision, DomTreeColorAssigned)
}


def event_fields(event: Any) -> dict[str, Any]:
    """Flatten *event* into JSON-ready fields (without the kind)."""
    return asdict(event)


def event_from_fields(kind: str, data: dict[str, Any]) -> Any:
    """Rebuild a typed event from exported fields.

    Unknown kinds and extra fields survive as a plain dict so newer
    traces still load under older readers.
    """
    cls = EVENT_KINDS.get(kind)
    if cls is None:
        return dict(data, kind=kind)
    names = {f.name for f in fields(cls)}
    return cls(**{k: v for k, v in data.items() if k in names})
