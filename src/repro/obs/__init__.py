"""Zero-dependency observability: spans, decision events, metrics,
JSONL traces and the ``repro trace`` renderers.

The subsystem has four layers, each usable alone:

* :mod:`~repro.obs.span` — the :class:`Tracer` (hierarchical timing
  spans) and the module-level :data:`NULL_TRACER` no-op,
* :mod:`~repro.obs.events` — typed decision events with provenance
  (spill, coalesce, split, color),
* :mod:`~repro.obs.metrics` — named counters/histograms and the shared
  summary renderers,
* :mod:`~repro.obs.export` / :mod:`~repro.obs.inspect` — JSONL
  round-tripping plus the tree/summary/diff views.
"""

from .events import (EVENT_KINDS, ColorAssigned, CoalesceDecision,
                     DomTreeColorAssigned, MaxlivePressure, RematCost,
                     SpillCandidateChosen, SpillDecision, SplitInserted,
                     SSASpillDecision, event_fields, event_from_fields)
from .export import (TRACE_VERSION, TraceDocument, TraceEvent, load_trace,
                     parse_trace, trace_lines, trace_to_text, write_trace)
from .inspect import render_diff, render_summary, render_tree
from .metrics import (ALLOCATE_LINE_KEYS, BUCKET_BASE, BUCKET_GROWTH,
                      Counter, Histogram, MetricsRegistry, N_BUCKETS,
                      bucket_index, bucket_upper, metrics_from_allocation,
                      percentile, render_prometheus)
from .span import (NULL_TRACER, NullTracer, Span, Tracer, clamp_span,
                   shift_span, span_from_payload, span_to_payload)

__all__ = [
    "ALLOCATE_LINE_KEYS",
    "BUCKET_BASE",
    "BUCKET_GROWTH",
    "N_BUCKETS",
    "bucket_index",
    "bucket_upper",
    "clamp_span",
    "percentile",
    "render_prometheus",
    "shift_span",
    "span_from_payload",
    "span_to_payload",
    "ColorAssigned",
    "CoalesceDecision",
    "Counter",
    "DomTreeColorAssigned",
    "EVENT_KINDS",
    "Histogram",
    "MaxlivePressure",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "RematCost",
    "SSASpillDecision",
    "Span",
    "SpillCandidateChosen",
    "SpillDecision",
    "SplitInserted",
    "TRACE_VERSION",
    "TraceDocument",
    "TraceEvent",
    "Tracer",
    "event_fields",
    "event_from_fields",
    "load_trace",
    "metrics_from_allocation",
    "parse_trace",
    "render_diff",
    "render_summary",
    "render_tree",
    "trace_lines",
    "trace_to_text",
    "write_trace",
]
