"""Named counters and histograms: the :class:`MetricsRegistry`.

The registry absorbs the flat stat bags that grew around the allocator
(:class:`~repro.regalloc.allocator.AllocationStats`, the engine's
:class:`~repro.engine.engine.EngineStats` and per-batch fan-out stats)
into one namespace of typed metrics, and renders them with the one
formatter shared by the CLI ``allocate`` stats line, trace summaries
and the docs tables — no more hand-built f-strings per call site.

Zero dependencies.  A histogram keeps count/total/min/max *and* a
fixed ladder of log-scaled buckets, so latency quantiles (p50/p90/p99)
are available server-side — the ``metrics`` protocol op, ``repro top``
and the Prometheus exposition (:func:`render_prometheus`) all read the
same :meth:`Histogram.snapshot`.  :func:`percentile` is the one
nearest-rank implementation shared by the bucketed estimate, the load
generator's exact client-side numbers, and the dashboards.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Iterable

#: the geometric bucket ladder every histogram shares: bucket ``i``
#: holds values in ``(BUCKET_BASE * BUCKET_GROWTH**(i-1),
#: BUCKET_BASE * BUCKET_GROWTH**i]``; bucket 0 is the underflow bucket
#: for values <= BUCKET_BASE.  With base 1µs and ~19% growth the 128
#: buckets span one microsecond to over an hour — every latency this
#: system measures — at sub-bucket (< 19%) quantile error.
BUCKET_BASE = 1e-6
BUCKET_GROWTH = 2.0 ** 0.25
N_BUCKETS = 128

_LOG_GROWTH = math.log(BUCKET_GROWTH)


def bucket_index(value: float) -> int:
    """The ladder bucket holding *value* (clamped to the ladder ends)."""
    if value <= BUCKET_BASE:
        return 0
    index = math.ceil(math.log(value / BUCKET_BASE) / _LOG_GROWTH - 1e-12)
    return min(max(index, 0), N_BUCKETS - 1)


def bucket_upper(index: int) -> float:
    """The inclusive upper bound of ladder bucket *index*."""
    return BUCKET_BASE * BUCKET_GROWTH ** index


def percentile(values: list[float], q: float) -> float:
    """The *q*-th percentile (0..100) by nearest-rank; 0.0 when empty.

    The one percentile definition in the codebase: the load generator's
    client-side latencies, the bucketed server-side histograms and
    ``repro top`` all use it, so their numbers are comparable.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      round(q / 100.0 * (len(ordered) - 1))))
    return ordered[rank]


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = value

    def inc(self, n: int = 1) -> None:
        self.value += n


class Histogram:
    """Count/total/min/max summary plus log-scaled quantile buckets.

    The bucket array is allocated lazily on the first observation, so
    registries full of never-observed histograms stay cheap; a single
    observation costs one :func:`bucket_index` ``log`` call on top of
    the summary updates.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._buckets: list[int] | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self._buckets is None:
            self._buckets = [0] * N_BUCKETS
        self._buckets[bucket_index(value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank *q*-th percentile (0..100) estimated from the
        buckets; exact to within one bucket (< 19% relative error),
        clamped to the observed ``[min, max]``.  0.0 when empty."""
        if not self.count or self._buckets is None:
            return 0.0
        rank = max(0, min(self.count - 1,
                          round(q / 100.0 * (self.count - 1))))
        seen = 0
        for index, n in enumerate(self._buckets):
            seen += n
            if seen > rank:
                return min(max(bucket_upper(index), self.min), self.max)
        return self.max  # pragma: no cover - rank < count by clamping

    def merge_counts(self, counts: list[int]) -> None:
        """Fold a bucket-count array (another histogram's ``buckets``
        snapshot field) into this histogram's buckets — the stitcher
        for snapshots shipped across processes."""
        if self._buckets is None:
            self._buckets = [0] * N_BUCKETS
        for index, n in enumerate(counts[:N_BUCKETS]):
            self._buckets[index] += n

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready summary.  Backward compatible: the historical
        count/total/min/max keys are always present — but an *empty*
        histogram reports ``min``/``max`` as ``None`` rather than a
        fake observation of 0.0."""
        if not self.count:
            return {"count": 0, "total": 0.0, "min": None, "max": None}
        return {"count": self.count, "total": self.total,
                "min": self.min, "max": self.max,
                "p50": self.quantile(50), "p90": self.quantile(90),
                "p99": self.quantile(99),
                "buckets": list(self._buckets or ())}


class MetricsRegistry:
    """A namespace of counters and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- access ---------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    def counters(self) -> dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def histograms(self) -> dict[str, dict[str, Any]]:
        return {name: h.snapshot()
                for name, h in sorted(self._histograms.items())}

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready dump of every metric."""
        return {"counters": self.counters(),
                "histograms": self.histograms()}

    # -- absorption -----------------------------------------------------------

    def absorb_dataclass(self, obj: Any, prefix: str) -> None:
        """Fold a stats dataclass's int fields into ``prefix.*`` counters
        (float fields become single-observation histograms)."""
        for field in dataclasses.fields(obj):
            value = getattr(obj, field.name)
            name = f"{prefix}.{field.name}"
            if isinstance(value, bool):
                self.counter(name).inc(int(value))
            elif isinstance(value, int):
                self.counter(name).inc(value)
            elif isinstance(value, float):
                self.histogram(name).observe(value)

    # -- rendering ------------------------------------------------------------

    def render_line(self, keys: Iterable[tuple[str, str]] | None = None
                    ) -> str:
        """One ``key=value`` line — the CLI stats-line format.

        *keys* maps metric names to display labels and fixes the order;
        by default every counter renders under its own name.
        """
        if keys is None:
            keys = [(name, name) for name in self.counters()]
        parts = []
        for name, label in keys:
            counter = self._counters.get(name)
            parts.append(f"{label}={counter.value if counter else 0}")
        return " ".join(parts)

    def render_summary(self, title: str | None = None) -> str:
        """A multi-line human-readable summary of every metric."""
        lines: list[str] = []
        if title:
            lines += [title, "-" * len(title)]
        names = list(self._counters) + list(self._histograms)
        width = max((len(n) for n in names), default=0)
        for name, value in self.counters().items():
            lines.append(f"{name:<{width}}  {value}")
        for name, h in sorted(self._histograms.items()):
            snap = h.snapshot()
            if not snap["count"]:
                lines.append(f"{name:<{width}}  count=0")
                continue
            lines.append(
                f"{name:<{width}}  count={snap['count']} "
                f"total={snap['total']:.6f} "
                f"min={snap['min']:.6f} max={snap['max']:.6f} "
                f"p50={snap['p50']:.6f} p99={snap['p99']:.6f}")
        return "\n".join(lines)


# -- Prometheus text exposition ----------------------------------------------

def _prom_name(name: str) -> str:
    """A metric name sanitized to the Prometheus charset."""
    safe = "".join(ch if ch.isalnum() or ch == "_" else "_"
                   for ch in name)
    if safe and safe[0].isdigit():
        safe = "_" + safe
    return f"repro_{safe}"


def _prom_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    return repr(float(value)) if isinstance(value, float) else str(value)


def render_prometheus(snapshot: dict[str, Any]) -> str:
    """Prometheus text exposition (v0.0.4) of a metrics snapshot.

    *snapshot* is the shape :meth:`MetricsRegistry.snapshot` (and the
    server's ``metrics`` op) produce: ``counters`` and ``histograms``
    maps, plus any extra top-level numeric keys (``queue_depth``,
    ``inflight``) which are exposed as gauges.  Counters gain the
    conventional ``_total`` suffix; histograms render as summaries
    (``quantile`` labels from the bucketed estimate, plus ``_sum`` and
    ``_count``).
    """
    lines: list[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        prom = _prom_name(name) + "_total"
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {value}")
    for name, snap in sorted(snapshot.get("histograms", {}).items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} summary")
        for q, label in ((snap.get("p50"), "0.5"), (snap.get("p90"), "0.9"),
                         (snap.get("p99"), "0.99")):
            if q is not None:
                lines.append(f'{prom}{{quantile="{label}"}} '
                             f"{_prom_value(q)}")
        lines.append(f"{prom}_sum {_prom_value(snap.get('total', 0.0))}")
        lines.append(f"{prom}_count {snap.get('count', 0)}")
    for name, value in sorted(snapshot.items()):
        if name in ("counters", "histograms") \
                or not isinstance(value, (int, float)) \
                or isinstance(value, bool):
            continue
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_value(value)}"
                     if isinstance(value, float) else f"{prom} {value}")
    return "\n".join(lines) + "\n"


def metrics_from_allocation(result: Any) -> MetricsRegistry:
    """The registry view of one :class:`AllocationResult`.

    Absorbs every ``AllocationStats`` counter under ``alloc.*`` and the
    span-tree phase times as ``phase.*`` histograms (one observation
    per round), so counters and timings come from the same two sources
    of truth the trace export uses.
    """
    registry = MetricsRegistry()
    registry.absorb_dataclass(result.stats, "alloc")
    registry.counter("alloc.rounds").inc(result.rounds)
    for times in result.round_times:
        for phase in ("renumber", "build", "costs", "color", "spill"):
            registry.histogram(f"phase.{phase}").observe(
                getattr(times, phase))
    registry.histogram("phase.cfa").observe(result.cfa_time)
    registry.histogram("phase.clone").observe(result.clone_time)
    registry.histogram("phase.total").observe(result.total_time)
    return registry


#: the ``allocate`` stats line: metric name -> CLI label, in print order
ALLOCATE_LINE_KEYS: tuple[tuple[str, str], ...] = (
    ("alloc.rounds", "rounds"),
    ("alloc.n_spilled_ranges", "spilled"),
    ("alloc.n_remat_spills", "rematerialized"),
    ("alloc.n_splits_inserted", "splits"),
    ("alloc.n_copies_coalesced", "coalesced"),
)
