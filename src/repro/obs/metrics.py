"""Named counters and histograms: the :class:`MetricsRegistry`.

The registry absorbs the flat stat bags that grew around the allocator
(:class:`~repro.regalloc.allocator.AllocationStats`, the engine's
:class:`~repro.engine.engine.EngineStats` and per-batch fan-out stats)
into one namespace of typed metrics, and renders them with the one
formatter shared by the CLI ``allocate`` stats line, trace summaries
and the docs tables — no more hand-built f-strings per call site.

Zero dependencies; a histogram keeps count/total/min/max rather than
buckets, which is enough for phase-time and fan-out distributions.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Iterable


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = value

    def inc(self, n: int = 1) -> None:
        self.value += n


class Histogram:
    """Count/total/min/max summary of observed values."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0}
        return {"count": self.count, "total": self.total,
                "min": self.min, "max": self.max}


class MetricsRegistry:
    """A namespace of counters and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- access ---------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    def counters(self) -> dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def histograms(self) -> dict[str, dict[str, float]]:
        return {name: h.snapshot()
                for name, h in sorted(self._histograms.items())}

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready dump of every metric."""
        return {"counters": self.counters(),
                "histograms": self.histograms()}

    # -- absorption -----------------------------------------------------------

    def absorb_dataclass(self, obj: Any, prefix: str) -> None:
        """Fold a stats dataclass's int fields into ``prefix.*`` counters
        (float fields become single-observation histograms)."""
        for field in dataclasses.fields(obj):
            value = getattr(obj, field.name)
            name = f"{prefix}.{field.name}"
            if isinstance(value, bool):
                self.counter(name).inc(int(value))
            elif isinstance(value, int):
                self.counter(name).inc(value)
            elif isinstance(value, float):
                self.histogram(name).observe(value)

    # -- rendering ------------------------------------------------------------

    def render_line(self, keys: Iterable[tuple[str, str]] | None = None
                    ) -> str:
        """One ``key=value`` line — the CLI stats-line format.

        *keys* maps metric names to display labels and fixes the order;
        by default every counter renders under its own name.
        """
        if keys is None:
            keys = [(name, name) for name in self.counters()]
        parts = []
        for name, label in keys:
            counter = self._counters.get(name)
            parts.append(f"{label}={counter.value if counter else 0}")
        return " ".join(parts)

    def render_summary(self, title: str | None = None) -> str:
        """A multi-line human-readable summary of every metric."""
        lines: list[str] = []
        if title:
            lines += [title, "-" * len(title)]
        width = max((len(n) for n in self._counters), default=0)
        for name, value in self.counters().items():
            lines.append(f"{name:<{width}}  {value}")
        for name, h in sorted(self._histograms.items()):
            snap = h.snapshot()
            lines.append(
                f"{name}  count={snap['count']} total={snap['total']:.6f} "
                f"min={snap['min']:.6f} max={snap['max']:.6f}")
        return "\n".join(lines)


def metrics_from_allocation(result: Any) -> MetricsRegistry:
    """The registry view of one :class:`AllocationResult`.

    Absorbs every ``AllocationStats`` counter under ``alloc.*`` and the
    span-tree phase times as ``phase.*`` histograms (one observation
    per round), so counters and timings come from the same two sources
    of truth the trace export uses.
    """
    registry = MetricsRegistry()
    registry.absorb_dataclass(result.stats, "alloc")
    registry.counter("alloc.rounds").inc(result.rounds)
    for times in result.round_times:
        for phase in ("renumber", "build", "costs", "color", "spill"):
            registry.histogram(f"phase.{phase}").observe(
                getattr(times, phase))
    registry.histogram("phase.cfa").observe(result.cfa_time)
    registry.histogram("phase.clone").observe(result.clone_time)
    registry.histogram("phase.total").observe(result.total_time)
    return registry


#: the ``allocate`` stats line: metric name -> CLI label, in print order
ALLOCATE_LINE_KEYS: tuple[tuple[str, str], ...] = (
    ("alloc.rounds", "rounds"),
    ("alloc.n_spilled_ranges", "spilled"),
    ("alloc.n_remat_spills", "rematerialized"),
    ("alloc.n_splits_inserted", "splits"),
    ("alloc.n_copies_coalesced", "coalesced"),
)
