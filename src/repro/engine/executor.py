"""The worker side of the engine: execute one request, return a summary.

:func:`execute_request` is a module-level function so it pickles by
reference under the ``spawn`` start method — worker processes import
this module and receive only the (picklable) request.
"""

from __future__ import annotations

from ..interp import run_function
from ..ir import parse_function
from ..obs import NULL_TRACER
from ..regalloc import allocate
from ..regalloc.splitting import SCHEMES
from .request import (AllocationSummary, ExperimentRequest, TimingReport,
                      TimingSample, request_key)


def execute_request(request: ExperimentRequest,
                    tracer=NULL_TRACER) -> AllocationSummary:
    """Run one allocation experiment from scratch.

    Deterministic in everything except the :class:`TimingSample`
    wall-clock numbers (which the cache never stores).  *tracer*
    receives the execution's phase spans (``parse`` / ``optimize`` /
    ``allocate`` / ``interpret``) — the worker loop passes one so a
    request's served trace shows where worker-side time went; the
    default :data:`~repro.obs.NULL_TRACER` keeps the untraced path
    free.
    """
    with tracer.span("parse"):
        fn = parse_function(request.ir_text)
    if request.optimize_first:
        from ..opt import optimize

        with tracer.span("optimize"):
            optimize(fn)
    mode = request.mode
    pre_split = None
    if request.scheme is not None:
        scheme = SCHEMES[request.scheme]
        mode = scheme.mode
        pre_split = scheme.pre_split

    samples: list[TimingSample] = []
    result = None
    with tracer.span("allocate", repeats=max(1, request.repeats)):
        for _ in range(max(1, request.repeats)):
            result = allocate(fn, machine=request.machine, mode=mode,
                              biased=request.biased,
                              lookahead=request.lookahead,
                              coalesce_splits=request.coalesce_splits,
                              optimistic=request.optimistic,
                              pre_split=pre_split,
                              allocator=request.allocator)
            samples.append(TimingSample(
                cfa=result.cfa_time, total=result.total_time,
                rounds=[{"renum": t.renumber, "build": t.build,
                         "costs": t.costs, "color": t.color,
                         "spill": t.spill} for t in result.round_times],
                clone=result.clone_time))
    assert result is not None

    counts = steps = output = None
    if request.run:
        with tracer.span("interpret"):
            run = run_function(result.function, args=list(request.args))
        counts = dict(run.counts)
        steps = run.steps
        output = tuple(run.output)

    return AllocationSummary(
        key=request_key(request),
        function_name=result.function.name,
        machine_name=request.machine.name,
        int_regs=request.machine.int_regs,
        float_regs=request.machine.float_regs,
        mode=mode,
        stats=result.stats,
        allocator=request.allocator,
        rounds=result.rounds,
        code_size=fn.size(),
        allocated_size=result.function.size(),
        counts=counts,
        steps=steps,
        output=output,
        timing=TimingReport(samples=samples))
