"""The shared allocation-experiment engine (request → summary).

The serve-many-compilations layer: experiment harnesses describe each
allocation as a content-hashed :class:`ExperimentRequest`, and the
:class:`ExperimentEngine` answers from an in-process memo, a persistent
on-disk cache, or a parallel worker pool — see ``engine.py`` for the
resolution order and ``request.py`` for the keying rules.
"""

from .cache import ResultCache, default_cache_dir
from .engine import (BatchStats, EngineStats, ExperimentEngine,
                     default_engine)
from .executor import execute_request
from .request import (AllocationSummary, CACHE_VERSION, ExperimentRequest,
                      TimingReport, TimingSample, request_key)

__all__ = [
    "AllocationSummary",
    "BatchStats",
    "CACHE_VERSION",
    "EngineStats",
    "ExperimentEngine",
    "ExperimentRequest",
    "ResultCache",
    "TimingReport",
    "TimingSample",
    "default_cache_dir",
    "default_engine",
    "execute_request",
    "request_key",
]
