"""The shared allocation-experiment engine (request → summary).

The serve-many-compilations layer: experiment harnesses describe each
allocation as a content-hashed :class:`ExperimentRequest`, and the
:class:`ExperimentEngine` answers from an in-process memo, a persistent
on-disk cache (checksummed envelopes; corrupt entries quarantine as
misses), or a supervised worker pool with timeouts, bounded retries and
poison-request quarantine — see ``engine.py`` for the resolution order,
``request.py`` for the keying rules, ``supervisor.py`` for the failure
model, and ``faults.py`` for the deterministic chaos harness.
"""

from .cache import (CacheStats, ResultCache, SHARD_WIDTH,
                    default_cache_dir, QUARANTINE_DIR)
from .engine import (BatchStats, EngineStats, ExperimentEngine,
                     RequestObservation, default_engine)
from .executor import execute_request
from .faults import (CORRUPTION_KINDS, FaultPlan, InjectedFault,
                     SERVE_KILL_EXIT_CODE, ServeFaultPlan,
                     corrupt_cache_entry)
from .request import (AllocationSummary, CACHE_VERSION, ExperimentRequest,
                      TimingReport, TimingSample, request_key)
from .supervisor import (AttemptObservation, ExperimentError,
                         ExperimentFailure, PoolStats, SupervisedStats,
                         SupervisorConfig, WorkerPool, expect_summary,
                         run_supervised)

__all__ = [
    "AllocationSummary",
    "AttemptObservation",
    "BatchStats",
    "CACHE_VERSION",
    "CORRUPTION_KINDS",
    "CacheStats",
    "EngineStats",
    "ExperimentEngine",
    "ExperimentError",
    "ExperimentFailure",
    "ExperimentRequest",
    "FaultPlan",
    "InjectedFault",
    "PoolStats",
    "QUARANTINE_DIR",
    "RequestObservation",
    "ResultCache",
    "SERVE_KILL_EXIT_CODE",
    "SHARD_WIDTH",
    "ServeFaultPlan",
    "SupervisedStats",
    "SupervisorConfig",
    "WorkerPool",
    "TimingReport",
    "TimingSample",
    "corrupt_cache_entry",
    "default_cache_dir",
    "default_engine",
    "execute_request",
    "expect_summary",
    "request_key",
    "run_supervised",
]
