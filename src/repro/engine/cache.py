"""The persistent request→summary store under ``benchmarks/results/cache/``.

One file per request key, written atomically (temp file in the same
directory + ``os.replace``) so concurrent workers and concurrent engine
processes can race on the same key without ever exposing a partial file
— last writer wins, and determinism makes all writers equal.

Storage is **sharded** by the first :data:`SHARD_WIDTH` hex characters
of the key (256 subdirectories), so many server processes sharing one
store spread their directory operations instead of contending on one
giant flat directory.  Reads fall back to the legacy flat layout
(``<key>.pkl`` directly under the store) so a store written by an
older binary keeps answering; ``repro cache gc`` migrates flat entries
into their shards.

Entries are **checksummed envelopes**, not bare pickles::

    MAGIC (6 bytes) | sha256(payload) (32 bytes) | payload (pickle)

so corruption — truncation, flipped bits, a stale storage format — is
*detected*, not discovered by an unpickling crash three harnesses away.
An entry that fails any layer of validation (magic, digest, unpickle,
type, key match) is moved to ``quarantine/`` beside the store, counted
in :attr:`CacheStats.corrupt`, and reported as a miss; the next write
repopulates the key.  Quarantined files are kept (not deleted) so a
corruption burst can be inspected before ``repro cache gc`` sweeps it.

Writes degrade instead of aborting: an ``OSError`` from ``put`` (disk
full, read-only cache directory) logs one warning, bumps
:attr:`CacheStats.write_errors`, and lets the run continue uncached.

Invalidation is by construction: the key hashes the full request
content plus :data:`~repro.engine.request.CACHE_VERSION`.  Changing an
experiment changes its key; changing the *implementation* requires a
version bump (or deleting the directory — it is disposable and
git-ignored).
"""

from __future__ import annotations

import hashlib
import logging
import os
import pathlib
import pickle
import tempfile
from dataclasses import dataclass

from .request import AllocationSummary

logger = logging.getLogger(__name__)

#: envelope header; the trailing byte is the storage-format version
MAGIC = b"RPRC\x00\x01"
#: raw sha256 digest length
DIGEST_SIZE = hashlib.sha256().digest_size

#: name of the corruption-quarantine subdirectory
QUARANTINE_DIR = "quarantine"

#: hex characters of key prefix per shard subdirectory (2 → 256 shards)
SHARD_WIDTH = 2

_HEX = set("0123456789abcdef")


@dataclass
class CacheStats:
    """Integrity accounting for one :class:`ResultCache` lifetime."""

    #: entries that failed envelope validation (each is also a miss)
    corrupt: int = 0
    #: corrupt entries successfully moved to ``quarantine/``
    quarantined: int = 0
    #: ``put`` calls swallowed because the filesystem refused the write
    write_errors: int = 0
    #: quarantine moves lost to another process that moved the same
    #: entry first (the entry is already gone; nothing re-counted)
    quarantine_races: int = 0


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR`` or ``<repo>/benchmarks/results/cache``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    # src/repro/engine/cache.py -> repo root is three levels above repro/
    root = pathlib.Path(__file__).resolve().parents[3]
    return root / "benchmarks" / "results" / "cache"


def _envelope(payload: bytes) -> bytes:
    return MAGIC + hashlib.sha256(payload).digest() + payload


def _open_envelope(data: bytes) -> bytes | None:
    """The payload, or ``None`` if any envelope layer is damaged."""
    header = len(MAGIC) + DIGEST_SIZE
    if len(data) < header or not data.startswith(MAGIC):
        return None
    digest = data[len(MAGIC):header]
    payload = data[header:]
    if hashlib.sha256(payload).digest() != digest:
        return None
    return payload


class ResultCache:
    """Disk-backed map from request key to :class:`AllocationSummary`."""

    def __init__(self, directory: pathlib.Path | str | None = None):
        self.directory = pathlib.Path(directory) if directory is not None \
            else default_cache_dir()
        self.stats = CacheStats()
        self._warned_write_error = False

    def _path(self, key: str) -> pathlib.Path:
        """The canonical (sharded) location for *key* — where writes go."""
        return self.directory / key[:SHARD_WIDTH] / f"{key}.pkl"

    def _legacy_path(self, key: str) -> pathlib.Path:
        """The pre-shard flat location, still honoured by reads."""
        return self.directory / f"{key}.pkl"

    def locate(self, key: str) -> pathlib.Path | None:
        """Where the entry for *key* currently lives (shard first, then
        the legacy flat layout), or ``None`` if absent."""
        for path in (self._path(key), self._legacy_path(key)):
            if path.is_file():
                return path
        return None

    @property
    def quarantine_dir(self) -> pathlib.Path:
        return self.directory / QUARANTINE_DIR

    # -- reads ----------------------------------------------------------------

    def get(self, key: str) -> AllocationSummary | None:
        """The cached summary for *key*, or ``None`` on a miss.

        A present-but-invalid entry is quarantined and reported as a
        miss — callers re-execute and overwrite, so corruption heals.
        """
        for path in (self._path(key), self._legacy_path(key)):
            try:
                data = path.read_bytes()
            except OSError:
                continue
            summary = self._validate(data, key)
            if summary is None:
                self._quarantine(path)
                return None
            return summary
        return None

    def _validate(self, data: bytes,
                  key: str) -> AllocationSummary | None:
        payload = _open_envelope(data)
        if payload is None:
            return None
        try:
            summary = pickle.loads(payload)
        except Exception:   # damaged payload with a forged digest
            return None
        if not isinstance(summary, AllocationSummary) or summary.key != key:
            return None
        return summary

    def _quarantine(self, path: pathlib.Path) -> None:
        """Move a corrupt entry aside (exactly once — later reads of the
        same key are plain misses).

        Two processes can observe the same corrupt bytes and race to
        quarantine them; the loser's ``os.replace`` raises
        ``FileNotFoundError`` because the winner already moved the file.
        That case is detected and counted as a race, not as a second
        corruption — the loser must *not* fall back to ``unlink``, which
        could delete a healthy entry a third process rewrote in the
        window, nor warn about an entry that is already safely aside.
        """
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_dir / path.name)
        except FileNotFoundError:
            if not path.exists():
                # lost the race: another process quarantined this entry
                # between our read and the move — it did the counting
                self.stats.quarantine_races += 1
                return
            self.stats.corrupt += 1
            logger.warning("quarantined corrupt cache entry %s "
                           "(move failed)", path.name)
        except OSError:
            self.stats.corrupt += 1
            try:
                path.unlink()
            except OSError:
                pass
            logger.warning("quarantined corrupt cache entry %s "
                           "(move failed)", path.name)
        else:
            self.stats.corrupt += 1
            self.stats.quarantined += 1
            logger.warning("quarantined corrupt cache entry %s", path.name)

    # -- writes ---------------------------------------------------------------

    def put(self, key: str, summary: AllocationSummary) -> bool:
        """Atomically persist *summary* (with timing stripped) at *key*.

        Returns ``False`` (after logging once and counting the error)
        when the filesystem refuses the write — a full disk or a
        read-only cache directory degrades the run to uncached, it does
        not abort it.
        """
        payload = pickle.dumps(summary.without_timing(),
                               protocol=pickle.HIGHEST_PROTOCOL)
        tmp = None
        try:
            target = self._path(key)
            target.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
            with os.fdopen(fd, "wb") as handle:
                handle.write(_envelope(payload))
            os.replace(tmp, target)
            return True
        except OSError as exc:
            self.stats.write_errors += 1
            if not self._warned_write_error:
                self._warned_write_error = True
                logger.warning(
                    "result cache is not writable (%s); continuing "
                    "uncached under %s", exc, self.directory)
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            return False
        except BaseException:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            raise

    # -- maintenance (the ``repro cache`` CLI) --------------------------------

    def _shard_dirs(self) -> list[pathlib.Path]:
        if not self.directory.is_dir():
            return []
        return sorted(p for p in self.directory.iterdir()
                      if p.is_dir() and len(p.name) == SHARD_WIDTH
                      and set(p.name) <= _HEX)

    def entries(self) -> list[pathlib.Path]:
        """Every entry, sharded and legacy-flat, sorted by key."""
        if not self.directory.is_dir():
            return []
        found = [p for p in self.directory.iterdir()
                 if p.suffix == ".pkl"]
        for shard in self._shard_dirs():
            found.extend(p for p in shard.iterdir() if p.suffix == ".pkl")
        return sorted(found, key=lambda p: p.name)

    def legacy_entries(self) -> list[pathlib.Path]:
        """Entries still at the pre-shard flat layout (``gc`` migrates)."""
        if not self.directory.is_dir():
            return []
        return sorted(p for p in self.directory.iterdir()
                      if p.suffix == ".pkl")

    def quarantined_entries(self) -> list[pathlib.Path]:
        if not self.quarantine_dir.is_dir():
            return []
        return sorted(p for p in self.quarantine_dir.iterdir()
                      if p.is_file())

    def stats_report(self) -> dict:
        """JSON-ready occupancy snapshot for ``repro cache stats``."""
        entries = self.entries()
        quarantined = self.quarantined_entries()
        return {
            "directory": str(self.directory),
            "entries": len(entries),
            "bytes": sum(p.stat().st_size for p in entries),
            "shards": len(self._shard_dirs()),
            "legacy_entries": len(self.legacy_entries()),
            "quarantined_entries": len(quarantined),
            "quarantined_bytes": sum(p.stat().st_size
                                     for p in quarantined),
        }

    def verify(self) -> tuple[int, int]:
        """Validate every entry; quarantine the damaged ones.

        Returns ``(ok, corrupt)``.  The filename stem is the expected
        key, so a valid envelope holding the wrong summary also fails.
        """
        ok = corrupt = 0
        for path in self.entries():
            try:
                data = path.read_bytes()
            except OSError:
                continue
            if self._validate(data, path.stem) is None:
                self._quarantine(path)
                corrupt += 1
            else:
                ok += 1
        return ok, corrupt

    def gc(self) -> dict[str, int]:
        """Sweep quarantined entries and stray ``.tmp`` files, and
        migrate legacy flat entries into their shards."""
        removed_quarantined = 0
        for path in self.quarantined_entries():
            try:
                path.unlink()
                removed_quarantined += 1
            except OSError:
                pass
        migrated = 0
        for path in self.legacy_entries():
            target = self._path(path.stem)
            try:
                target.parent.mkdir(parents=True, exist_ok=True)
                os.replace(path, target)
                migrated += 1
            except OSError:
                pass
        removed_tmp = 0
        if self.directory.is_dir():
            for dirpath in [self.directory] + self._shard_dirs():
                for path in dirpath.iterdir():
                    if path.suffix == ".tmp":
                        try:
                            path.unlink()
                            removed_tmp += 1
                        except OSError:
                            pass
        return {"quarantined_removed": removed_quarantined,
                "tmp_removed": removed_tmp,
                "migrated": migrated}

    # -- container protocol ---------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return self.locate(key) is not None

    def __len__(self) -> int:
        return len(self.entries())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.directory.is_dir():
            for dirpath in [self.directory] + self._shard_dirs():
                for path in dirpath.iterdir():
                    if path.suffix in (".pkl", ".tmp"):
                        try:
                            path.unlink()
                            removed += 1
                        except OSError:
                            pass
        return removed
