"""The persistent request→summary store under ``benchmarks/results/cache/``.

One pickle file per request key, written atomically (temp file in the
same directory + ``os.replace``) so concurrent workers and concurrent
engine processes can race on the same key without ever exposing a
partial file — last writer wins, and determinism makes all writers
equal.

Invalidation is by construction: the key hashes the full request
content plus :data:`~repro.engine.request.CACHE_VERSION`.  Changing an
experiment changes its key; changing the *implementation* requires a
version bump (or deleting the directory — it is disposable and
git-ignored).  Unreadable or truncated entries are treated as misses.
"""

from __future__ import annotations

import os
import pathlib
import pickle
import tempfile

from .request import AllocationSummary


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR`` or ``<repo>/benchmarks/results/cache``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    # src/repro/engine/cache.py -> repo root is three levels above repro/
    root = pathlib.Path(__file__).resolve().parents[3]
    return root / "benchmarks" / "results" / "cache"


class ResultCache:
    """Disk-backed map from request key to :class:`AllocationSummary`."""

    def __init__(self, directory: pathlib.Path | str | None = None):
        self.directory = pathlib.Path(directory) if directory is not None \
            else default_cache_dir()

    def _path(self, key: str) -> pathlib.Path:
        return self.directory / f"{key}.pkl"

    def get(self, key: str) -> AllocationSummary | None:
        """The cached summary for *key*, or ``None`` on a miss."""
        try:
            with open(self._path(key), "rb") as handle:
                summary = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return None
        if not isinstance(summary, AllocationSummary) or summary.key != key:
            return None
        return summary

    def put(self, key: str, summary: AllocationSummary) -> None:
        """Atomically persist *summary* (with timing stripped) at *key*."""
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(summary.without_timing(),
                               protocol=pickle.HIGHEST_PROTOCOL)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for p in self.directory.iterdir()
                   if p.suffix == ".pkl")

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.iterdir():
                if path.suffix in (".pkl", ".tmp"):
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
        return removed
