"""The allocation-experiment engine: dedup → cache → parallel fan-out.

Every experiment harness (Table 1, Table 2, the ablations, the register
sweep, the benchmark suite, the CLI) submits
:class:`~repro.engine.request.ExperimentRequest` batches here instead of
calling ``allocate`` in its own loop.  ``run_many`` then

1. **keys** each request by content hash and deduplicates the batch —
   overlapping harnesses (the huge-machine baselines, the shared
   standard-machine runs) collapse to one execution;
2. serves **hits** from the in-process memo and, for cacheable
   requests, the persistent on-disk :class:`~repro.engine.cache.
   ResultCache`;
3. executes the **misses** — serially in-process, or fanned out over a
   ``spawn`` :mod:`multiprocessing` pool when ``jobs > 1`` — and writes
   cacheable results back atomically.

Results are returned in request order, and (PR 1's determinism) are
bit-identical whichever path produced them; only the live
``timing`` field differs, and it is never cached.
"""

from __future__ import annotations

import multiprocessing
import os
import pathlib
from dataclasses import dataclass, field

from .cache import ResultCache
from .executor import execute_request
from .request import AllocationSummary, ExperimentRequest, request_key


@dataclass
class EngineStats:
    """Where the answers of one engine's lifetime came from."""

    requests: int = 0
    memo_hits: int = 0
    cache_hits: int = 0
    executed: int = 0
    deduplicated: int = 0


@dataclass
class BatchStats:
    """One ``run_many`` call: where its answers came from and how wide
    the miss execution fanned out (0 workers = nothing executed)."""

    requests: int = 0
    deduplicated: int = 0
    memo_hits: int = 0
    cache_hits: int = 0
    executed: int = 0
    #: pool processes used for the misses (1 = in-process serial)
    workers: int = 0


@dataclass
class ExperimentEngine:
    """A request executor with memoization, disk cache and a pool.

    Args:
        jobs: worker processes for cache misses (default:
            ``os.cpu_count()``); ``1`` executes in-process.
        cache_dir: where cacheable summaries persist (default:
            ``benchmarks/results/cache/``, overridable with
            ``$REPRO_CACHE_DIR``).
        use_cache: disable to bypass the persistent cache entirely
            (the in-process memo still deduplicates within a run).
    """

    jobs: int | None = None
    cache_dir: pathlib.Path | str | None = None
    use_cache: bool = True
    stats: EngineStats = field(default_factory=EngineStats)

    def __post_init__(self) -> None:
        if self.jobs is None:
            self.jobs = os.cpu_count() or 1
        self.cache = ResultCache(self.cache_dir) if self.use_cache else None
        self._memo: dict[str, AllocationSummary] = {}
        #: per-``run_many`` provenance, in call order (the bench
        #: harnesses used to infer hit rates from wall-clock deltas;
        #: now the engine records them)
        self.batches: list[BatchStats] = []

    def run(self, request: ExperimentRequest) -> AllocationSummary:
        """Execute (or recall) one request."""
        return self.run_many([request])[0]

    def run_many(self, requests: list[ExperimentRequest]
                 ) -> list[AllocationSummary]:
        """Execute (or recall) a batch; results align with *requests*.

        Each call appends a :class:`BatchStats` entry to
        :attr:`batches` recording the batch's hit/miss provenance and
        pool fan-out.
        """
        keyed = [(request_key(r), r) for r in requests]
        batch = BatchStats(requests=len(keyed))
        self.batches.append(batch)
        self.stats.requests += len(keyed)

        resolved: dict[str, AllocationSummary] = {}
        misses: dict[str, ExperimentRequest] = {}
        for key, request in keyed:
            if key in resolved or key in misses:
                self.stats.deduplicated += 1
                batch.deduplicated += 1
                continue
            # non-cacheable (timing) requests are deduplicated within
            # this batch but never replayed from memo or disk — their
            # wall-clock data must be measured live every call
            if request.cacheable:
                summary = self._memo.get(key)
                if summary is not None:
                    self.stats.memo_hits += 1
                    batch.memo_hits += 1
                    resolved[key] = summary
                    continue
                if self.cache is not None:
                    summary = self.cache.get(key)
                    if summary is not None:
                        self.stats.cache_hits += 1
                        batch.cache_hits += 1
                        self._memo[key] = summary
                        resolved[key] = summary
                        continue
            misses[key] = request

        if misses:
            results, batch.workers = self._execute(list(misses.values()))
            for key, summary in zip(misses, results):
                self.stats.executed += 1
                batch.executed += 1
                if misses[key].cacheable:
                    if self.cache is not None:
                        self.cache.put(key, summary)
                    self._memo[key] = summary
                resolved[key] = summary

        return [resolved[key] for key, _ in keyed]

    def _execute(self, requests: list[ExperimentRequest]
                 ) -> tuple[list[AllocationSummary], int]:
        """Run cache misses (fanning out to worker processes if asked);
        returns the summaries plus the fan-out width used."""
        assert self.jobs is not None
        workers = min(self.jobs, len(requests))
        if workers <= 1:
            return [execute_request(r) for r in requests], 1
        # spawn, not fork: no inherited interpreter state, so results
        # cannot depend on whatever the parent process computed before
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(processes=workers) as pool:
            return pool.map(execute_request, requests, chunksize=1), workers

    def metrics(self) -> "MetricsRegistry":
        """The engine's lifetime stats as a metrics registry.

        Counters under ``engine.*`` absorb :class:`EngineStats`;
        ``engine.batch_size`` and ``engine.fanout`` histograms cover
        the per-:meth:`run_many` batch shapes.
        """
        from ..obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.absorb_dataclass(self.stats, "engine")
        registry.counter("engine.batches").inc(len(self.batches))
        for batch in self.batches:
            registry.histogram("engine.batch_size").observe(batch.requests)
            if batch.workers:
                registry.histogram("engine.fanout").observe(batch.workers)
        return registry


_DEFAULT_ENGINE: ExperimentEngine | None = None


def default_engine() -> ExperimentEngine:
    """The process-wide fallback engine of the experiment harnesses.

    Serial and memo-only: library calls that do not pass an engine get
    request deduplication within the process but no persistent state —
    test runs stay hermetic.  The CLI and the benchmark evidence
    construct explicit engines with the pool and the disk cache.
    """
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = ExperimentEngine(jobs=1, use_cache=False)
    return _DEFAULT_ENGINE
