"""The allocation-experiment engine: dedup → cache → supervised fan-out.

Every experiment harness (Table 1, Table 2, the ablations, the register
sweep, the benchmark suite, the CLI) submits
:class:`~repro.engine.request.ExperimentRequest` batches here instead of
calling ``allocate`` in its own loop.  ``run_many`` then

1. **keys** each request by content hash and deduplicates the batch —
   overlapping harnesses (the huge-machine baselines, the shared
   standard-machine runs) collapse to one execution;
2. serves **hits** from the in-process memo and, for cacheable
   requests, the persistent on-disk :class:`~repro.engine.cache.
   ResultCache` (whose checksummed envelope quarantines corrupt
   entries as misses);
3. executes the **misses** under the :mod:`~repro.engine.supervisor` —
   serially in-process, or fanned out over supervised ``spawn``
   workers when ``jobs > 1`` — with per-attempt timeouts, bounded
   retries, and quarantine of poison requests.  Cacheable results are
   flushed to disk *as they arrive*, so an interrupt mid-batch loses
   nothing already computed.

Results come back in request order.  Surviving requests are
:class:`~repro.engine.request.AllocationSummary` values — and (PR 1's
determinism) bit-identical whichever path produced them; only the live
``timing`` field differs, and it is never cached.  Requests the
supervisor gave up on come back as typed
:class:`~repro.engine.supervisor.ExperimentFailure` values so harnesses
render partial tables instead of aborting (single-request call sites
use :meth:`ExperimentEngine.run`, which raises
:class:`~repro.engine.supervisor.ExperimentError` instead).
"""

from __future__ import annotations

import os
import pathlib
import time
from dataclasses import dataclass, field

from ..obs.span import Span
from .cache import ResultCache
from .faults import FaultPlan
from .request import AllocationSummary, ExperimentRequest, request_key
from .supervisor import (ExperimentFailure, SupervisorConfig, WorkerPool,
                         expect_summary, run_supervised)


@dataclass
class RequestObservation:
    """Provenance and timing of one request within a ``run_many`` call.

    Filled when the caller passes ``observations`` to :meth:`
    ExperimentEngine.run_many` — the allocation server uses these to
    stitch per-request traces and to stamp access-log lines.

    Attributes:
        source: where the answer came from — ``memo`` / ``cache`` /
            ``executed`` / ``failed`` (``dedup`` is invisible here: a
            duplicate key resolves to the same observation object).
        attempts: execution attempts made (0 for hits).
        spans: one ``attempt`` span per attempt (retries are siblings),
            in the engine process's ``time.monotonic`` clock, plus a
            ``cache_put`` span when the result was flushed to disk.
    """

    source: str = "executed"
    attempts: int = 0
    spans: list[Span] = field(default_factory=list)
    #: seconds spent writing the summary to the persistent cache
    cache_put_s: float = 0.0

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)


@dataclass
class EngineStats:
    """Where the answers of one engine's lifetime came from — plus the
    fault ledger of everything that went wrong along the way."""

    requests: int = 0
    memo_hits: int = 0
    cache_hits: int = 0
    executed: int = 0
    deduplicated: int = 0
    #: requests quarantined as :class:`ExperimentFailure`
    failed: int = 0
    #: re-executions scheduled after a failed attempt
    retries: int = 0
    #: attempts killed for exceeding the per-attempt timeout
    timeouts: int = 0
    #: worker processes observed dead while holding a request
    worker_crashes: int = 0
    #: requests that exhausted the retry budget
    quarantined: int = 0
    #: requests answered ``DeadlineExpired`` instead of executing
    expired: int = 0
    #: worker spawns that failed
    spawn_failures: int = 0
    #: batches that degraded to serial in-process execution
    fallback_serial: int = 0
    #: worker processes spawned across every batch — bounded by the
    #: pool size (plus crash replacements) when a warm pool is attached
    worker_spawns: int = 0
    #: dispatches served by an already-live pool worker
    workers_reused: int = 0


@dataclass
class BatchStats:
    """One ``run_many`` call: where its answers came from and how wide
    the miss execution fanned out (0 workers = nothing executed)."""

    requests: int = 0
    deduplicated: int = 0
    memo_hits: int = 0
    cache_hits: int = 0
    executed: int = 0
    failed: int = 0
    #: pool processes used for the misses (1 = in-process serial)
    workers: int = 0


@dataclass
class ExperimentEngine:
    """A request executor with memoization, disk cache and supervision.

    Args:
        jobs: worker processes for cache misses (default:
            ``os.cpu_count()``); ``1`` executes in-process.
        cache_dir: where cacheable summaries persist (default:
            ``benchmarks/results/cache/``, overridable with
            ``$REPRO_CACHE_DIR``).
        use_cache: disable to bypass the persistent cache entirely
            (the in-process memo still deduplicates within a run).
        supervisor: failure policy — per-attempt timeout, retry
            budget, backoff, serial-fallback threshold.
        fault_plan: deterministic fault injection for the chaos suite
            (never set in production paths).
        pool: a persistent :class:`~repro.engine.supervisor.WorkerPool`
            shared across every ``run_many`` call.  Without one, each
            batch spins up (and tears down) its own ephemeral pool; a
            long-running caller — the allocation server — attaches a
            warm pool so steady-state batches reuse live workers.  The
            caller owns the pool and must ``close()`` it.
    """

    jobs: int | None = None
    cache_dir: pathlib.Path | str | None = None
    use_cache: bool = True
    supervisor: SupervisorConfig = field(default_factory=SupervisorConfig)
    fault_plan: FaultPlan | None = None
    pool: WorkerPool | None = None
    stats: EngineStats = field(default_factory=EngineStats)

    def __post_init__(self) -> None:
        if self.jobs is None:
            self.jobs = os.cpu_count() or 1
        self.cache = ResultCache(self.cache_dir) if self.use_cache else None
        self._memo: dict[str, AllocationSummary] = {}
        #: quarantined failures, in delivery order, engine lifetime
        self.failures: list[ExperimentFailure] = []
        #: per-``run_many`` provenance, in call order (the bench
        #: harnesses used to infer hit rates from wall-clock deltas;
        #: now the engine records them)
        self.batches: list[BatchStats] = []

    def run(self, request: ExperimentRequest) -> AllocationSummary:
        """Execute (or recall) one request; raises
        :class:`~repro.engine.supervisor.ExperimentError` if the
        supervisor quarantined it."""
        return expect_summary(self.run_many([request])[0])

    def run_many(self, requests: list[ExperimentRequest],
                 observations: dict[str, RequestObservation] | None = None,
                 deadlines: dict[str, float] | None = None,
                 ) -> list[AllocationSummary | ExperimentFailure]:
        """Execute (or recall) a batch; results align with *requests*.

        Each call appends a :class:`BatchStats` entry to
        :attr:`batches` recording the batch's hit/miss provenance and
        pool fan-out.  Cacheable results are flushed to the persistent
        cache as they complete, so a ``KeyboardInterrupt`` mid-batch
        terminates the workers promptly without losing finished work.

        *observations*, when given, is filled with one
        :class:`RequestObservation` per unique request key — the
        provenance (memo/cache/executed/failed), attempt count and
        attempt span trees the allocation server stitches into
        per-request traces.  ``None`` (the default) records nothing.

        *deadlines* maps request keys to absolute ``time.monotonic``
        deadlines; misses whose deadline has passed are answered
        ``DeadlineExpired`` without executing (hits are always served —
        a memo lookup is cheaper than checking the clock).
        """
        keyed = [(request_key(r), r) for r in requests]
        batch = BatchStats(requests=len(keyed))
        self.batches.append(batch)
        self.stats.requests += len(keyed)

        resolved: dict[str, AllocationSummary | ExperimentFailure] = {}
        misses: dict[str, ExperimentRequest] = {}
        for key, request in keyed:
            if key in resolved or key in misses:
                self.stats.deduplicated += 1
                batch.deduplicated += 1
                continue
            # non-cacheable (timing) requests are deduplicated within
            # this batch but never replayed from memo or disk — their
            # wall-clock data must be measured live every call
            if request.cacheable:
                summary = self._memo.get(key)
                if summary is not None:
                    self.stats.memo_hits += 1
                    batch.memo_hits += 1
                    if observations is not None:
                        observations[key] = RequestObservation(
                            source="memo")
                    resolved[key] = summary
                    continue
                if self.cache is not None:
                    summary = self.cache.get(key)
                    if summary is not None:
                        self.stats.cache_hits += 1
                        batch.cache_hits += 1
                        if observations is not None:
                            observations[key] = RequestObservation(
                                source="cache")
                        self._memo[key] = summary
                        resolved[key] = summary
                        continue
            misses[key] = request

        if misses:
            outcomes, batch.workers = self._execute(
                misses, batch, observations, deadlines)
            resolved.update(outcomes)

        return [resolved[key] for key, _ in keyed]

    def _execute(self, misses: dict[str, ExperimentRequest],
                 batch: BatchStats,
                 observations: dict[str, RequestObservation]
                 | None = None,
                 deadlines: dict[str, float] | None = None,
                 ) -> tuple[dict[str, AllocationSummary
                                 | ExperimentFailure], int]:
        """Run cache misses under supervision; returns outcomes plus the
        fan-out width used."""
        assert self.jobs is not None
        if self.pool is not None:
            workers = min(self.pool.size, len(misses))
        else:
            workers = min(self.jobs, len(misses))

        cache_puts: dict[str, tuple[float, float]] = {}

        def on_result(key: str,
                      outcome: AllocationSummary | ExperimentFailure
                      ) -> None:
            # flush incrementally: completed work survives interrupts
            if isinstance(outcome, AllocationSummary):
                self.stats.executed += 1
                batch.executed += 1
                if misses[key].cacheable:
                    if self.cache is not None:
                        put_start = time.monotonic()
                        self.cache.put(key, outcome)
                        cache_puts[key] = (put_start, time.monotonic())
                    self._memo[key] = outcome
            else:
                self.stats.failed += 1
                batch.failed += 1
                self.failures.append(outcome)

        outcomes, sstats = run_supervised(
            list(misses.items()), workers, config=self.supervisor,
            plan=self.fault_plan, on_result=on_result, pool=self.pool,
            deadlines=deadlines)
        if observations is not None:
            for key, outcome in outcomes.items():
                record = RequestObservation(
                    source="executed"
                    if isinstance(outcome, AllocationSummary)
                    else "failed")
                attempt = sstats.observations.get(key)
                if attempt is not None:
                    record.attempts = attempt.attempts
                    record.spans = list(attempt.spans)
                put = cache_puts.get(key)
                if put is not None:
                    record.cache_put_s = put[1] - put[0]
                    record.spans.append(
                        Span("cache_put", start=put[0], end=put[1]))
                observations[key] = record
        self.stats.retries += sstats.retries
        self.stats.timeouts += sstats.timeouts
        self.stats.worker_crashes += sstats.worker_crashes
        self.stats.quarantined += sstats.quarantined
        self.stats.expired += sstats.expired
        self.stats.spawn_failures += sstats.spawn_failures
        self.stats.fallback_serial += sstats.fallback_serial
        self.stats.worker_spawns += sstats.worker_spawns
        self.stats.workers_reused += sstats.workers_reused
        return outcomes, max(1, workers)

    def metrics(self) -> "MetricsRegistry":
        """The engine's lifetime stats as a metrics registry.

        Counters under ``engine.*`` absorb :class:`EngineStats` — the
        hit/miss provenance plus the fault ledger (``engine.retries``,
        ``engine.timeouts``, ``engine.worker_crashes``,
        ``engine.quarantined``, ``engine.fallback_serial``) and the
        cache-integrity counters (``engine.cache_corrupt``,
        ``engine.cache_quarantined``, ``engine.cache_write_errors``);
        ``engine.batch_size`` and ``engine.fanout`` histograms cover
        the per-:meth:`run_many` batch shapes.
        """
        from ..obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.absorb_dataclass(self.stats, "engine")
        if self.cache is not None:
            registry.counter("engine.cache_corrupt").inc(
                self.cache.stats.corrupt)
            registry.counter("engine.cache_quarantined").inc(
                self.cache.stats.quarantined)
            registry.counter("engine.cache_write_errors").inc(
                self.cache.stats.write_errors)
            registry.counter("engine.cache_quarantine_races").inc(
                self.cache.stats.quarantine_races)
        registry.counter("engine.batches").inc(len(self.batches))
        for batch in self.batches:
            registry.histogram("engine.batch_size").observe(batch.requests)
            if batch.workers:
                registry.histogram("engine.fanout").observe(batch.workers)
        return registry


_DEFAULT_ENGINE: ExperimentEngine | None = None


def default_engine() -> ExperimentEngine:
    """The process-wide fallback engine of the experiment harnesses.

    Serial and memo-only: library calls that do not pass an engine get
    request deduplication within the process but no persistent state —
    test runs stay hermetic.  The CLI and the benchmark evidence
    construct explicit engines with the pool and the disk cache.
    """
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = ExperimentEngine(jobs=1, use_cache=False)
    return _DEFAULT_ENGINE
