"""Requests and results of the allocation-experiment engine.

An :class:`ExperimentRequest` is a *value*: the complete, serialized
description of one allocation experiment — the function (as canonical
ILOC text), the register file, the renumber mode, the heuristic flags,
whether the optimizer pipeline runs first, and the interpreter arguments.
Two requests with the same content hash (:func:`request_key`) describe
the same experiment, and — because the allocator is deterministic (see
``docs/performance.md``) — produce the same :class:`AllocationSummary`.

The key deliberately covers only what determines the cached payload:

* the machine's *register counts* but not its name or cycle costs —
  summaries store raw dynamic counts and are priced by the caller, so
  one huge-machine baseline run serves every cost model and every
  harness (Table 1, the ablations, the register sweep);
* not ``repeats`` and not ``cacheable`` — wall-clock timing is never
  part of the cached payload (timing-sensitive requests declare
  ``cacheable=False`` and are always measured live).

``CACHE_VERSION`` salts every key.  Bump it whenever a change to the
allocator, optimizer, or interpreter can alter experiment *results*;
stale entries then simply miss.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..ir import CountClass
from ..machine import MachineDescription
from ..regalloc.allocator import AllocationStats
from ..remat import RenumberMode

#: bump to invalidate every persisted cache entry
#: 2: allocator/optimizer rebuilt on the pass pipeline + AnalysisManager
#: 3: checksummed envelope storage (pre-envelope entries never match)
#: 4: incremental analysis maintenance (exact coalesce-delete liveness
#:    patches change colorings; AllocationStats grew incremental fields)
#: 5: sharded store layout for multi-process sharing (flat v4 entries
#:    are legacy-read only and never match v5 keys)
#: 6: the ``allocator`` strategy axis joined the request (and the cached
#:    summary shape grew an ``allocator`` field) — v5 entries, keyed
#:    without a strategy, never match
CACHE_VERSION = 6


@dataclass(frozen=True)
class ExperimentRequest:
    """One allocation experiment, keyable and picklable.

    Attributes:
        ir_text: canonical textual ILOC of the input function
            (``function_to_text``; round-trips exactly).
        machine: target register file (and default cost model for the
            convenience accessors on the summary).
        mode: renumber splitting policy.
        optimize_first: run the LVN/LICM/DCE pipeline before allocation.
        biased / lookahead / coalesce_splits / optimistic: the allocator
            heuristic flags (Sections 4.2–4.3).
        scheme: name of a Section 6 splitting scheme from
            ``repro.regalloc.splitting.SCHEMES``; when set, the scheme's
            mode and pre-split hook are used (schemes without a
            pre-split hook should be submitted as plain ``mode``
            requests so their cache entries are shared).
        allocator: the allocation strategy
            (``repro.regalloc.ALLOCATOR_NAMES`` — ``iterated`` runs the
            paper's Chaitin/Briggs loop, ``ssa`` the spill-everywhere
            strategy; the SSA strategy ignores ``mode``).
        args: interpreter arguments; used only when ``run``.
        run: interpret the allocated function and record dynamic counts.
        repeats: how many times to repeat the allocation for timing
            (timings are averaged by the consumer, never cached).
        cacheable: whether the summary may be served from / written to
            the persistent cache.  Timing-sensitive experiments (Table
            2) set ``False`` so wall-clock numbers are always live.
    """

    ir_text: str
    machine: MachineDescription
    mode: RenumberMode = RenumberMode.REMAT
    optimize_first: bool = False
    biased: bool = True
    lookahead: bool = True
    coalesce_splits: bool = True
    optimistic: bool = True
    scheme: str | None = None
    allocator: str = "iterated"
    args: tuple = ()
    run: bool = True
    repeats: int = 1
    cacheable: bool = True


def request_key(request: ExperimentRequest) -> str:
    """The canonical content hash (sha256 hex) of *request*."""
    h = hashlib.sha256()
    parts = (
        f"v{CACHE_VERSION}",
        f"int_regs={request.machine.int_regs}",
        f"float_regs={request.machine.float_regs}",
        f"mode={request.mode.value}",
        f"optimize_first={int(request.optimize_first)}",
        f"biased={int(request.biased)}",
        f"lookahead={int(request.lookahead)}",
        f"coalesce_splits={int(request.coalesce_splits)}",
        f"optimistic={int(request.optimistic)}",
        f"scheme={request.scheme or '-'}",
        f"allocator={request.allocator}",
        f"args={request.args!r}",
        f"run={int(request.run)}",
    )
    h.update("\n".join(parts).encode())
    h.update(b"\nir:\n")
    h.update(request.ir_text.encode())
    return h.hexdigest()


@dataclass
class TimingSample:
    """Wall-clock profile of one allocation run (Table 2 shape)."""

    cfa: float
    total: float
    #: per-round ``{renum, build, costs, color, spill}`` seconds
    rounds: list[dict[str, float]] = field(default_factory=list)
    #: ``clone=True`` deep-copy seconds, reported apart from the phases
    #: so timing comparisons against in-place runs stay clean
    clone: float = 0.0


@dataclass
class TimingReport:
    """All timing samples of one request (``repeats`` entries)."""

    samples: list[TimingSample] = field(default_factory=list)


@dataclass
class AllocationSummary:
    """Everything an experiment harness needs from one allocation.

    Deliberately *not* the allocated function: summaries are small,
    picklable, and cost-model independent.  Wall-clock data lives only
    in :attr:`timing`, which is stripped before a summary enters the
    persistent cache — cached entries answer "what code did the
    allocator produce", never "how long did it take today".
    """

    key: str
    function_name: str
    machine_name: str
    int_regs: int
    float_regs: int
    mode: RenumberMode
    stats: AllocationStats
    rounds: int
    #: instructions in the input function (after parsing)
    code_size: int
    #: instructions in the allocated function
    allocated_size: int
    #: the strategy that produced the coloring (``iterated`` | ``ssa``)
    allocator: str = "iterated"
    #: dynamic counts by instrumentation class (``None`` if not run)
    counts: dict[CountClass, int] | None = None
    steps: int | None = None
    output: tuple | None = None
    #: live wall-clock samples; ``None`` on a cache hit
    timing: TimingReport | None = None

    def cycles(self, machine: MachineDescription) -> int:
        """Total dynamic cycles under *machine*'s cost model."""
        assert self.counts is not None, "request did not interpret"
        return machine.cycles(self.counts)

    def class_cycles(self, machine: MachineDescription
                     ) -> dict[CountClass, int]:
        """Per-class dynamic cycles under *machine*'s cost model."""
        assert self.counts is not None, "request did not interpret"
        return {cls: count * machine.class_cost(cls)
                for cls, count in self.counts.items()}

    def without_timing(self) -> "AllocationSummary":
        """The cache-safe copy: identical, minus wall-clock data."""
        if self.timing is None:
            return self
        from dataclasses import replace

        return replace(self, timing=None)
