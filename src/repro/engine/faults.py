"""Deterministic fault injection for the experiment engine.

The chaos suite needs to *prove* the supervisor's recovery paths — not
hope they work — so every fault here is planned, seeded, and named.  A
:class:`FaultPlan` is an immutable, picklable value constructed up
front; the supervisor ships it to every worker it spawns, and both
sides consult it at fixed injection points:

worker side (``supervisor.worker_main``), per ``(request key, attempt)``:

* ``crash``  — the worker process dies abruptly (``os._exit``), the
  moral equivalent of a segfault or the OOM killer;
* ``hang``   — the worker sleeps ``hang_seconds`` before proceeding, a
  pathological-CFG stand-in that only a timeout can catch;
* ``raise``  — a transient :class:`InjectedFault` exception travels the
  normal error channel.

supervisor side:

* ``spawn_failures``  — the first N worker spawns fail, driving the
  pool-unhealthy → serial-fallback path;
* ``interrupt_after`` — a ``KeyboardInterrupt`` fires after N results
  have been delivered, driving the prompt-termination path.

cache side (:func:`corrupt_cache_entry`): four named corruption kinds —
``truncate``, ``flip``, ``wrong_key``, ``bad_checksum`` — each defeating
a different layer of the :class:`~repro.engine.cache.ResultCache`
envelope.

Everything is deterministic given the plan; :meth:`FaultPlan.seeded`
derives a plan from a seed and a key list so the chaos suite can state
its expected counters *before* the run and reconcile after.
"""

from __future__ import annotations

import hashlib
import pickle
import random
from dataclasses import dataclass, field, replace

#: worker-side fault kinds
CRASH = "crash"
HANG = "hang"
RAISE = "raise"

#: the exit code an injected crash dies with (recognizably not a signal)
CRASH_EXIT_CODE = 71

#: cache corruption kinds understood by :func:`corrupt_cache_entry`
CORRUPTION_KINDS = ("truncate", "flip", "wrong_key", "bad_checksum")


class InjectedFault(RuntimeError):
    """A planned transient failure (the ``raise`` fault kind)."""


@dataclass(frozen=True)
class FaultPlan:
    """A complete, picklable description of every fault to inject.

    Attributes:
        worker_faults: ``(request key, attempt)`` → fault kind for
            one-shot faults (attempts are 1-based, matching
            :class:`~repro.engine.supervisor.ExperimentFailure.attempts`).
        poison: request keys that crash on *every* attempt — these must
            exhaust the retry budget and come back quarantined.
        hang_seconds: how long a ``hang`` fault sleeps.  Keep it well
            above the supervisor timeout under test; a hang that
            outlives its worker is simply never observed.
        spawn_failures: how many initial worker spawns the supervisor
            must treat as failed (``OSError``-equivalent).
        interrupt_after: raise ``KeyboardInterrupt`` in the supervisor
            once this many results have been delivered (``None`` — never).
    """

    worker_faults: dict[tuple[str, int], str] = field(default_factory=dict)
    poison: frozenset[str] = frozenset()
    hang_seconds: float = 30.0
    spawn_failures: int = 0
    interrupt_after: int | None = None

    def worker_action(self, key: str, attempt: int) -> str | None:
        """The fault a worker must inject for (*key*, *attempt*), if any."""
        if key in self.poison:
            return CRASH
        return self.worker_faults.get((key, attempt))

    def fault_keys(self) -> set[str]:
        """Every request key the plan touches on the worker side."""
        return {key for key, _ in self.worker_faults} | set(self.poison)

    @staticmethod
    def seeded(keys: list[str], seed: int = 0, crashes: int = 0,
               hangs: int = 0, raises: int = 0, poison: int = 0,
               hang_seconds: float = 30.0) -> "FaultPlan":
        """Derive a plan from *seed*: disjoint victim sets, first-attempt
        faults for the transient kinds, permanent crashes for poison."""
        unique = sorted(set(keys))
        need = crashes + hangs + raises + poison
        if need > len(unique):
            raise ValueError(f"plan wants {need} victims from "
                             f"{len(unique)} distinct keys")
        rng = random.Random(seed)
        victims = rng.sample(unique, need)
        worker_faults: dict[tuple[str, int], str] = {}
        cursor = 0
        for kind, count in ((CRASH, crashes), (HANG, hangs),
                            (RAISE, raises)):
            for key in victims[cursor:cursor + count]:
                worker_faults[(key, 1)] = kind
            cursor += count
        return FaultPlan(worker_faults=worker_faults,
                         poison=frozenset(victims[cursor:]),
                         hang_seconds=hang_seconds)

    def describe(self) -> dict[str, int]:
        """The plan's expected-counter shape (for reconciliation)."""
        kinds = {CRASH: 0, HANG: 0, RAISE: 0}
        for (_, _), kind in self.worker_faults.items():
            kinds[kind] += 1
        return {"crashes": kinds[CRASH], "hangs": kinds[HANG],
                "raises": kinds[RAISE], "poison": len(self.poison),
                "spawn_failures": self.spawn_failures}

    def with_interrupt_after(self, n: int) -> "FaultPlan":
        return replace(self, interrupt_after=n)


#: the exit code an injected backend kill dies with (distinct from the
#: worker-crash code so forensics can tell the layers apart)
SERVE_KILL_EXIT_CODE = 73


@dataclass(frozen=True)
class ServeFaultPlan:
    """Planned faults for the *serve* layer (backends and connections).

    Where :class:`FaultPlan` breaks individual worker processes inside
    one engine, this plan breaks whole backend servers and their client
    connections, so the router's recovery paths — failover, restart,
    reconnect — are provable.  Injection points:

    * ``kill_keys`` — a backend that begins *executing* one of these
      request keys dies abruptly (``os._exit``) with the request
      admitted and unanswered: the router must fail pending work over
      to a peer and the cluster supervisor must restart the corpse.
    * ``drop_keys`` — the backend computes the response, then closes
      the connection without writing it (a vanished reply).
    * ``garble_keys`` — the backend writes junk bytes instead of the
      response and closes (a corrupted reply).
    * ``hang_accept`` — ``backend id → seconds``: the named backend's
      accept loop stalls that long before serving its next connection,
      the stand-in for an event loop wedged by a pathological client;
      only health checks and circuit breakers catch it.

    Every fault fires **exactly once** across all processes: backends
    claim a marker file under ``state_dir`` (``O_EXCL``) before
    injecting, so a restarted backend does not re-kill itself on the
    retried request.  The plan is JSON round-trippable
    (:meth:`to_json` / :meth:`from_json`) because backends are separate
    processes that load it from a file (``repro serve --serve-faults``).
    """

    state_dir: str
    kill_keys: frozenset[str] = frozenset()
    drop_keys: frozenset[str] = frozenset()
    garble_keys: frozenset[str] = frozenset()
    #: backend id → seconds its accept loop stalls (once per backend)
    hang_accept: dict[str, float] = field(default_factory=dict)

    def _claim(self, marker: str) -> bool:
        """Atomically claim a one-shot fault across every process."""
        import os
        import pathlib

        path = pathlib.Path(self.state_dir) / marker
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            return False  # unwritable state dir: fail open, no fault
        os.close(fd)
        return True

    @staticmethod
    def _marker(kind: str, key: str) -> str:
        return f"{kind}-{hashlib.sha256(key.encode()).hexdigest()[:16]}"

    def claim_kill(self, key: str) -> bool:
        return key in self.kill_keys and self._claim(self._marker("kill", key))

    def claim_drop(self, key: str) -> bool:
        return key in self.drop_keys and self._claim(self._marker("drop", key))

    def claim_garble(self, key: str) -> bool:
        return key in self.garble_keys \
            and self._claim(self._marker("garble", key))

    def claim_accept_hang(self, backend_id: str | None) -> float:
        """Seconds this backend's accept loop must stall (0 — none)."""
        if backend_id is None or backend_id not in self.hang_accept:
            return 0.0
        if self._claim(self._marker("hang", backend_id)):
            return self.hang_accept[backend_id]
        return 0.0

    def claimed(self, kind: str) -> int:
        """How many faults of *kind* have fired so far (marker count)."""
        import pathlib

        root = pathlib.Path(self.state_dir)
        if not root.is_dir():
            return 0
        return sum(1 for p in root.iterdir()
                   if p.name.startswith(f"{kind}-"))

    @staticmethod
    def seeded(keys: list[str], state_dir: str, seed: int = 0,
               kills: int = 0, drops: int = 0, garbles: int = 0,
               hang_backends: dict[str, float] | None = None,
               ) -> "ServeFaultPlan":
        """Derive a plan from *seed*: disjoint victim keys per kind."""
        unique = sorted(set(keys))
        need = kills + drops + garbles
        if need > len(unique):
            raise ValueError(f"plan wants {need} victims from "
                             f"{len(unique)} distinct keys")
        rng = random.Random(seed)
        victims = rng.sample(unique, need)
        return ServeFaultPlan(
            state_dir=state_dir,
            kill_keys=frozenset(victims[:kills]),
            drop_keys=frozenset(victims[kills:kills + drops]),
            garble_keys=frozenset(victims[kills + drops:]),
            hang_accept=dict(hang_backends or {}))

    def describe(self) -> dict[str, int]:
        return {"kills": len(self.kill_keys), "drops": len(self.drop_keys),
                "garbles": len(self.garble_keys),
                "hangs": len(self.hang_accept)}

    def to_json(self) -> dict:
        return {"state_dir": self.state_dir,
                "kill_keys": sorted(self.kill_keys),
                "drop_keys": sorted(self.drop_keys),
                "garble_keys": sorted(self.garble_keys),
                "hang_accept": dict(self.hang_accept)}

    @staticmethod
    def from_json(obj: dict) -> "ServeFaultPlan":
        return ServeFaultPlan(
            state_dir=obj["state_dir"],
            kill_keys=frozenset(obj.get("kill_keys", ())),
            drop_keys=frozenset(obj.get("drop_keys", ())),
            garble_keys=frozenset(obj.get("garble_keys", ())),
            hang_accept={str(k): float(v) for k, v
                         in obj.get("hang_accept", {}).items()})


def corrupt_cache_entry(cache, key: str, kind: str) -> None:
    """Damage the cache entry for *key* in a named way.

    ``truncate`` cuts the file mid-payload, ``flip`` inverts one payload
    byte (defeating the checksum), ``wrong_key`` rebuilds a *valid*
    envelope whose summary carries a different key (defeating the key
    check alone), and ``bad_checksum`` zeroes the stored digest.  The
    entry must exist; every kind must read back as a miss and land in
    ``quarantine/`` exactly once.
    """
    from .cache import DIGEST_SIZE, MAGIC

    path = cache.locate(key)
    assert path is not None, f"no cache entry to corrupt for {key}"
    data = path.read_bytes()
    header = len(MAGIC) + DIGEST_SIZE
    if kind == "truncate":
        path.write_bytes(data[:header + max(1, (len(data) - header) // 2)])
    elif kind == "flip":
        body = bytearray(data)
        body[-1] ^= 0xFF
        path.write_bytes(bytes(body))
    elif kind == "wrong_key":
        summary = pickle.loads(data[header:])
        wrong = replace_key(summary, "0" * 64)
        payload = pickle.dumps(wrong, protocol=pickle.HIGHEST_PROTOCOL)
        path.write_bytes(MAGIC + hashlib.sha256(payload).digest() + payload)
    elif kind == "bad_checksum":
        path.write_bytes(MAGIC + b"\x00" * DIGEST_SIZE + data[header:])
    else:
        raise ValueError(f"unknown corruption kind {kind!r} "
                         f"(one of {CORRUPTION_KINDS})")


def replace_key(summary, key: str):
    """A copy of *summary* claiming to answer a different request."""
    import dataclasses

    return dataclasses.replace(summary, key=key)
