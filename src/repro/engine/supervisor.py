"""Supervised execution: timeouts, crash detection, retry, quarantine.

``ExperimentEngine`` used to fan cache misses out with a bare
``pool.map`` — one worker segfault, OOM kill, or pathological-CFG hang
lost the entire batch.  This module replaces the pool with a
*supervisor* over long-lived ``spawn`` worker processes:

* each request is dispatched **individually** over a pipe, so the
  supervisor always knows which request a worker is holding;
* a configurable **per-attempt timeout** catches hangs — the worker is
  killed and the request retried elsewhere;
* **worker death** (the process sentinel fires while a request is in
  flight) is detected per request, not per batch;
* failed attempts are **retried with exponential backoff** up to a
  bounded budget, after which the request is declared poison and
  **quarantined** as a typed :class:`ExperimentFailure` — surviving
  requests still come back as normal summaries, so harnesses render
  partial tables instead of aborting;
* when the pool itself is unhealthy (``max_spawn_failures`` consecutive
  worker spawns fail) the supervisor **degrades to serial in-process
  execution** and finishes the batch without workers.

Worker processes live in a :class:`WorkerPool`.  A supervisor that is
not handed one creates an ephemeral pool and tears it down with the
batch (the historical behaviour); long-running callers — the
allocation server's warm pool — construct a pool once and pass it to
every batch, so steady-state traffic reuses live workers instead of
paying interpreter spawn and import cost per ``run_many``.

Results are delivered to the caller *as they arrive* via ``on_result``
(the engine uses this to flush the persistent cache incrementally), so
a ``KeyboardInterrupt`` mid-batch terminates the workers promptly and
loses nothing that already completed.

Determinism note: the allocator is deterministic, so a retried request
returns a byte-identical summary no matter which worker (or the serial
fallback) produced it — the chaos suite in ``tests/engine/test_chaos.py``
asserts exactly that.

Fault-injection points (``engine/faults.py``) are threaded through both
the worker loop and the supervisor so the recovery paths are provable;
with no plan installed they cost one ``is None`` check per request.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait

from ..obs.span import (Span, Tracer, clamp_span, shift_span,
                        span_from_payload, span_to_payload)
from .faults import CRASH, CRASH_EXIT_CODE, HANG, RAISE, FaultPlan, \
    InjectedFault
from .request import AllocationSummary, ExperimentRequest


@dataclass(frozen=True)
class SupervisorConfig:
    """Failure-handling policy for one engine.

    Attributes:
        timeout: per-attempt wall-clock limit in seconds (``None`` — no
            limit).  Enforced only for pooled execution; the serial
            path cannot kill itself.  The clock starts once the worker
            has signalled readiness, so interpreter spawn and import
            cost never count against the request.
        max_attempts: total attempts per request before it is
            quarantined (1 = no retries).
        backoff: base retry delay; attempt *n* is delayed
            ``backoff * 2**(n-1)`` seconds.
        max_spawn_failures: consecutive worker-spawn failures tolerated
            before the supervisor degrades to serial in-process
            execution.
    """

    timeout: float | None = None
    max_attempts: int = 3
    backoff: float = 0.05
    max_spawn_failures: int = 3


@dataclass
class ExperimentFailure:
    """A request the supervisor gave up on (typed, renderable).

    Harnesses receive these *in place of* an ``AllocationSummary`` and
    must render partial results around them.

    Attributes:
        key: the request's content hash.
        request: the poison request itself.
        error_class: exception class name of the final attempt
            (``WorkerCrash`` / ``Timeout`` for non-exception fates).
        message: human-readable detail of the final attempt.
        attempts: how many attempts were made (== the configured
            budget when quarantined).
        worker_fate: how the last worker ended — ``crashed`` (process
            died), ``killed`` (timeout), ``exception`` (clean error
            reply), or ``in-process`` (serial execution).
        attempt_errors: one line per failed attempt, oldest first.
    """

    key: str
    request: ExperimentRequest
    error_class: str
    message: str
    attempts: int
    worker_fate: str
    attempt_errors: list[str] = field(default_factory=list)

    @property
    def function_name(self) -> str:
        """The routine name, recovered from the request's ILOC header."""
        first = self.request.ir_text.split("\n", 1)[0].split()
        return first[1] if len(first) >= 2 else "?"

    def describe(self) -> str:
        return (f"{self.function_name}: {self.error_class} after "
                f"{self.attempts} attempt(s) [{self.worker_fate}] — "
                f"{self.message}")


class ExperimentError(RuntimeError):
    """Raised by single-request call sites that cannot render partials."""

    def __init__(self, failure: ExperimentFailure):
        super().__init__(failure.describe())
        self.failure = failure


def expect_summary(outcome: "AllocationSummary | ExperimentFailure"
                   ) -> AllocationSummary:
    """Unwrap an engine outcome, raising on a failure."""
    if isinstance(outcome, ExperimentFailure):
        raise ExperimentError(outcome)
    return outcome


@dataclass
class AttemptObservation:
    """What the supervisor saw happen to one request's attempts.

    ``spans`` holds one ``attempt`` :class:`~repro.obs.span.Span` per
    attempt (retries are siblings), each carrying ``spawn`` /
    ``handshake`` children when the dispatch paid them and the
    worker-side ``exec`` subtree rebased into the supervisor's
    ``time.monotonic`` clock — the raw material the allocation server
    stitches into a complete per-request trace.
    """

    attempts: int = 0
    spans: list[Span] = field(default_factory=list)

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)


@dataclass
class SupervisedStats:
    """Fault accounting for one supervised batch."""

    retries: int = 0
    timeouts: int = 0
    worker_crashes: int = 0
    quarantined: int = 0
    #: requests dropped unexecuted (or killed mid-attempt) because
    #: their end-to-end deadline passed — answered ``DeadlineExpired``
    expired: int = 0
    spawn_failures: int = 0
    #: batches that degraded to serial in-process execution
    fallback_serial: int = 0
    #: worker processes spawned during this batch (0 in steady state
    #: when a warm :class:`WorkerPool` served every dispatch)
    worker_spawns: int = 0
    #: dispatches served by an already-live pool worker
    workers_reused: int = 0
    #: per-request attempt traces, keyed by request key (ignored by
    #: :meth:`MetricsRegistry.absorb_dataclass` — not a counter)
    observations: dict[str, AttemptObservation] = field(
        default_factory=dict)


def worker_main(conn, plan: FaultPlan | None = None) -> None:
    """The worker process loop: recv request, execute, send result.

    Module-level so it pickles by reference under ``spawn``.  The
    worker pays its import cost up front and announces ``("ready",)``
    before serving — the supervisor starts attempt deadlines at that
    signal, so a slow interpreter spawn is never mistaken for a hung
    request.  Replies are ``("ok", key, summary, exec_spans, clock)``
    or ``("err", key, class, message, exec_spans, clock)`` — the
    payload carries the worker-side execution span tree
    (:func:`~repro.obs.span.span_to_payload` form, worker
    ``time.monotonic`` clock) plus the worker's clock reading at send
    time, so the supervisor can rebase the tree into its own timeline;
    anything else the supervisor learns from the process sentinel.
    """
    from .executor import execute_request

    try:
        conn.send(("ready",))
    except OSError:
        return
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg is None:
            return
        key, request, attempt = msg
        action = plan.worker_action(key, attempt) if plan is not None \
            else None
        if action == CRASH:
            os._exit(CRASH_EXIT_CODE)
        if action == HANG:
            time.sleep(plan.hang_seconds)
        tracer = Tracer(clock=time.monotonic)
        try:
            with tracer.span("exec"):
                if action == RAISE:
                    raise InjectedFault(
                        f"injected transient fault (attempt {attempt})")
                summary = execute_request(request, tracer=tracer)
        except Exception as exc:  # crashes bypass this; see sentinel
            spans = span_to_payload(tracer.roots[0]) if tracer.roots \
                else None
            reply = ("err", key, type(exc).__name__, str(exc), spans,
                     time.monotonic())
        else:
            spans = span_to_payload(tracer.roots[0]) if tracer.roots \
                else None
            reply = ("ok", key, summary, spans, time.monotonic())
        try:
            conn.send(reply)
        except OSError:
            return


@dataclass
class _Attempt:
    key: str
    request: ExperimentRequest
    number: int          # 1-based
    ready_at: float = 0.0
    #: the open ``attempt`` span, created at dispatch
    span: Span | None = None


class _Worker:
    """One supervised child process plus its command pipe."""

    __slots__ = ("process", "conn", "ready")

    def __init__(self, ctx, plan: FaultPlan | None):
        #: set once the worker's ``("ready",)`` announcement is read;
        #: attempt deadlines only run against ready workers
        self.ready = False
        parent, child = ctx.Pipe()
        try:
            self.process = ctx.Process(target=worker_main,
                                       args=(child, plan), daemon=True)
            self.process.start()
        except BaseException:
            parent.close()
            child.close()
            raise
        child.close()
        self.conn = parent

    @property
    def sentinel(self):
        return self.process.sentinel

    def kill(self) -> None:
        """Terminate promptly; escalate to SIGKILL if needed."""
        try:
            self.process.terminate()
        except (OSError, ValueError):
            pass
        self.process.join(timeout=5)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=5)
        self.close()

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass


@dataclass
class PoolStats:
    """Lifetime accounting for one :class:`WorkerPool`."""

    #: worker processes successfully spawned
    spawned: int = 0
    #: dispatches served by a worker that already existed
    reused: int = 0
    #: spawn attempts the OS refused
    spawn_failures: int = 0
    #: leased workers that were killed instead of returned (crash,
    #: timeout, shutdown reclaim)
    discarded: int = 0


class WorkerPool:
    """A reusable pool of supervised ``spawn`` worker processes.

    The pool owns process creation and idle reuse; a per-batch
    :class:`_Supervisor` borrows workers through :meth:`acquire` /
    :meth:`release` and the pool keeps healthy workers alive between
    batches.  This is the allocation server's warm-pool core: the first
    batch pays up to ``size`` interpreter spawns, every later batch
    leases already-live workers (``stats.reused``) and spawns only to
    replace workers lost to crashes or timeout kills.

    Not thread-safe: one supervisor drives the pool at a time (the
    engine serializes ``run_many`` calls, and the server funnels every
    batch through one dispatcher).
    """

    def __init__(self, size: int, plan: FaultPlan | None = None):
        self.size = max(1, size)
        self.plan = plan
        self.ctx = multiprocessing.get_context("spawn")
        self.idle: list[_Worker] = []
        self.leased = 0
        self.stats = PoolStats()
        self.consecutive_spawn_failures = 0
        self.closed = False
        self._spawn_attempts = 0

    def has_worker_for_lease(self) -> bool:
        """Whether :meth:`acquire` could hand out a worker right now."""
        return bool(self.idle) or self.leased + len(self.idle) < self.size

    def acquire(self) -> _Worker | None:
        """Lease an idle worker, spawning one if the pool is under its
        size; ``None`` means the spawn failed (counted — check
        :attr:`consecutive_spawn_failures` for pool health)."""
        while self.idle:
            worker = self.idle.pop()
            if worker.process.is_alive():
                self.leased += 1
                self.stats.reused += 1
                return worker
            worker.kill()   # died while idle: reap and replace below
        self._spawn_attempts += 1
        try:
            if self.plan is not None \
                    and self._spawn_attempts <= self.plan.spawn_failures:
                raise OSError("injected spawn failure")
            worker = _Worker(self.ctx, self.plan)
        except OSError:
            self.stats.spawn_failures += 1
            self.consecutive_spawn_failures += 1
            return None
        self.consecutive_spawn_failures = 0
        self.stats.spawned += 1
        self.leased += 1
        return worker

    def release(self, worker: _Worker) -> None:
        """Return a healthy leased worker for reuse."""
        self.leased -= 1
        if self.closed:
            worker.kill()
        else:
            self.idle.append(worker)

    def discard(self, worker: _Worker) -> None:
        """Account for a leased worker the caller killed (or found
        dead); the pool will spawn a replacement on demand."""
        self.leased -= 1
        self.stats.discarded += 1

    def close(self) -> None:
        """Kill every idle worker; later releases kill instead of
        re-idling.  Safe to call more than once."""
        self.closed = True
        for worker in self.idle:
            worker.kill()
        self.idle.clear()


class _Supervisor:
    """The event loop: dispatch, watch, retry, quarantine, degrade."""

    def __init__(self, config: SupervisorConfig, workers: int,
                 plan: FaultPlan | None, on_result,
                 pool: WorkerPool | None = None,
                 deadlines: dict[str, float] | None = None):
        self.config = config
        self.workers_target = max(1, workers)
        self.plan = plan
        self.on_result = on_result
        self.deadlines = deadlines or {}
        self.owns_pool = pool is None
        # a borrowed pool executes even single-request batches on its
        # (warm) workers; only a pool-less serial supervisor runs
        # in-process by request
        self.serial = pool is None and self.workers_target <= 1
        self.pool = pool if pool is not None else (
            None if self.serial else WorkerPool(self.workers_target, plan))
        self.stats = SupervisedStats()
        self.results: dict[str, AllocationSummary | ExperimentFailure] = {}
        self.history: dict[str, list[str]] = {}
        self.runnable: deque[_Attempt] = deque()
        self.delayed: list[_Attempt] = []
        self.busy: dict[_Worker, tuple[_Attempt, float | None]] = {}
        self.outstanding = 0
        self.delivered = 0
        self.fallback = False

    # -- driving ---------------------------------------------------------------

    def run(self, items: list[tuple[str, ExperimentRequest]]
            ) -> dict[str, AllocationSummary | ExperimentFailure]:
        for key, request in items:
            self.runnable.append(_Attempt(key, request, 1))
            self.history[key] = []
        self.outstanding = len(items)
        if self.serial:
            # requested serial mode, not a degradation
            self._drain_serial()
            return self.results
        assert self.pool is not None
        spawned_before = self.pool.stats.spawned
        reused_before = self.pool.stats.reused
        try:
            while self.outstanding:
                now = time.monotonic()
                self._promote(now)
                self._fill(now)
                if self.fallback:
                    self._reclaim_busy()
                    self._drain_serial()
                    break
                self._wait()
        finally:
            self._shutdown()
            self.stats.worker_spawns = \
                self.pool.stats.spawned - spawned_before
            self.stats.workers_reused = \
                self.pool.stats.reused - reused_before
        return self.results

    def _promote(self, now: float) -> None:
        """Move backoff-delayed retries whose time has come."""
        due = [a for a in self.delayed if a.ready_at <= now]
        if due:
            self.delayed = [a for a in self.delayed if a.ready_at > now]
            for attempt in sorted(due, key=lambda a: a.ready_at):
                self.runnable.append(attempt)

    def _deadline_of(self, key: str) -> float | None:
        return self.deadlines.get(key)

    def _expire(self, attempt: _Attempt) -> None:
        """Answer a request whose end-to-end deadline passed before (or
        during) this attempt — a definitive ``DeadlineExpired``, never
        retried: the requester has already stopped waiting."""
        self.stats.expired += 1
        self.history[attempt.key].append(
            f"attempt {attempt.number}: DeadlineExpired: end-to-end "
            f"deadline passed [expired]")
        self._deliver(attempt.key, ExperimentFailure(
            key=attempt.key, request=attempt.request,
            error_class="DeadlineExpired",
            message="end-to-end deadline passed before completion",
            attempts=attempt.number - 1, worker_fate="expired",
            attempt_errors=list(self.history[attempt.key])))

    def _fill(self, now: float) -> None:
        """Hand runnable attempts to pool workers (idle or spawned)."""
        while self.runnable and not self.fallback:
            deadline = self._deadline_of(self.runnable[0].key)
            if deadline is not None and now >= deadline:
                self._expire(self.runnable.popleft())
                continue
            if len(self.busy) >= self.workers_target \
                    or not self.pool.has_worker_for_lease():
                break
            acquire_started = time.monotonic()
            worker = self.pool.acquire()
            if worker is None:
                self.stats.spawn_failures += 1
                if self.pool.consecutive_spawn_failures \
                        >= self.config.max_spawn_failures:
                    self.fallback = True
                    self.stats.fallback_serial += 1
                break
            self._dispatch(worker, self.runnable.popleft(),
                           time.monotonic(), acquire_started)

    def _dispatch(self, worker: _Worker, attempt: _Attempt,
                  now: float, acquire_started: float | None = None
                  ) -> None:
        # a freshly spawned worker is still importing; its deadline is
        # armed when the ready announcement arrives (_on_message) — but
        # an end-to-end request deadline binds from dispatch regardless
        deadline = (now + self.config.timeout
                    if self.config.timeout is not None and worker.ready
                    else None)
        key_deadline = self._deadline_of(attempt.key)
        if key_deadline is not None:
            deadline = key_deadline if deadline is None \
                else min(deadline, key_deadline)
        span = Span("attempt", {"number": attempt.number},
                    start=acquire_started if acquire_started is not None
                    else now)
        if not worker.ready:
            if acquire_started is not None:
                # acquire() paid an interpreter spawn for this dispatch
                span.children.append(
                    Span("spawn", start=acquire_started, end=now))
            # closed when the worker's ready announcement arrives
            span.children.append(Span("handshake", start=now, end=now))
        attempt.span = span
        self.busy[worker] = (attempt, deadline)
        try:
            worker.conn.send((attempt.key, attempt.request, attempt.number))
        except OSError:
            self._on_crash(worker)

    def _close_attempt(self, attempt: _Attempt, now: float, outcome: str,
                       exec_payload: dict | None = None,
                       worker_clock: float | None = None) -> None:
        """Finish the attempt's span: stamp the outcome, graft the
        rebased worker-side ``exec`` subtree, record the observation."""
        span = attempt.span
        if span is None:  # pragma: no cover - dispatch always sets one
            return
        span.end = now
        span.attrs["outcome"] = outcome
        if exec_payload is not None:
            exec_span = span_from_payload(exec_payload)
            if worker_clock is not None:
                # align the worker's send-time with our receive-time;
                # the residual transport delay is clamped away below
                shift_span(exec_span, now - worker_clock)
            clamp_span(exec_span, span.start, span.end)
            span.children.append(exec_span)
        observation = self.stats.observations.setdefault(
            attempt.key, AttemptObservation())
        observation.attempts += 1
        observation.spans.append(span)

    def _wait(self) -> None:
        """Block until a result, a corpse, a deadline, or a retry is due."""
        now = time.monotonic()
        wakeups = [d for _, d in self.busy.values() if d is not None]
        wakeups += [a.ready_at for a in self.delayed]
        timeout = max(0.0, min(wakeups) - now) if wakeups else None
        if not self.busy:
            if timeout:
                time.sleep(timeout)
            return
        objs: list = []
        for worker in self.busy:
            objs.append(worker.conn)
            objs.append(worker.sentinel)
        ready = set(connection_wait(objs, timeout))
        for worker in list(self.busy):
            if worker not in self.busy:
                continue
            if worker.conn in ready:
                self._on_message(worker)
            elif worker.sentinel in ready:
                self._on_crash(worker)
        now = time.monotonic()
        for worker, (_, deadline) in list(self.busy.items()):
            if deadline is not None and now >= deadline:
                self._on_timeout(worker)

    # -- outcomes --------------------------------------------------------------

    def _on_message(self, worker: _Worker) -> None:
        attempt, _ = self.busy.pop(worker)
        try:
            msg = worker.conn.recv()
        except (EOFError, OSError):
            self._crashed(worker, attempt)
            return
        now = time.monotonic()
        if msg[0] == "ready":
            # spawn + import finished: the attempt deadline starts now
            worker.ready = True
            if attempt.span is not None:
                handshake = attempt.span.child("handshake")
                if handshake is not None:
                    handshake.end = now
            deadline = (now + self.config.timeout
                        if self.config.timeout is not None else None)
            key_deadline = self._deadline_of(attempt.key)
            if key_deadline is not None:
                deadline = key_deadline if deadline is None \
                    else min(deadline, key_deadline)
            self.busy[worker] = (attempt, deadline)
            return
        self.pool.release(worker)
        if msg[0] == "ok":
            self._close_attempt(attempt, now, "ok",
                                exec_payload=msg[3], worker_clock=msg[4])
            self._deliver(msg[1], msg[2])
        else:
            _, _key, error_class, message, exec_payload, clock = msg
            self._close_attempt(attempt, now, "exception",
                                exec_payload=exec_payload,
                                worker_clock=clock)
            self._failed_attempt(attempt, error_class, message,
                                 fate="exception")

    def _on_crash(self, worker: _Worker) -> None:
        attempt, _ = self.busy.pop(worker)
        # the worker may have replied *and then* died — don't lose the
        # result, and don't re-execute a completed request
        while worker.conn.poll(0):
            try:
                msg = worker.conn.recv()
            except (EOFError, OSError):
                break
            if msg is not None and msg[0] == "ready":
                continue  # a reply may still be queued behind it
            if msg is not None and msg[0] == "ok":
                self.stats.worker_crashes += 1
                worker.close()
                self.pool.discard(worker)
                self._close_attempt(attempt, time.monotonic(), "ok",
                                    exec_payload=msg[3],
                                    worker_clock=msg[4])
                self._deliver(msg[1], msg[2])
                return
            break
        self._crashed(worker, attempt)

    def _crashed(self, worker: _Worker, attempt: _Attempt) -> None:
        # reap first: exitcode is None until the dead child is joined
        worker.process.join(timeout=5)
        code = worker.process.exitcode
        worker.kill()
        self.pool.discard(worker)
        self.stats.worker_crashes += 1
        self._close_attempt(attempt, time.monotonic(), "crashed")
        self._failed_attempt(attempt, "WorkerCrash",
                             f"worker process died (exit code {code})",
                             fate="crashed")

    def _on_timeout(self, worker: _Worker) -> None:
        attempt, _ = self.busy.pop(worker)
        worker.kill()
        self.pool.discard(worker)
        now = time.monotonic()
        key_deadline = self._deadline_of(attempt.key)
        if key_deadline is not None and now >= key_deadline:
            # the *request's* deadline fired, not the attempt budget:
            # kill the worker but answer expired, never retry
            self._close_attempt(attempt, now, "expired")
            self._expire(attempt)
            return
        self.stats.timeouts += 1
        self._close_attempt(attempt, now, "killed")
        self._failed_attempt(
            attempt, "Timeout",
            f"no result within {self.config.timeout:.4g}s", fate="killed")

    def _failed_attempt(self, attempt: _Attempt, error_class: str,
                        message: str, fate: str) -> None:
        self.history[attempt.key].append(
            f"attempt {attempt.number}: {error_class}: {message} [{fate}]")
        if attempt.number >= self.config.max_attempts:
            self.stats.quarantined += 1
            self._deliver(attempt.key, ExperimentFailure(
                key=attempt.key, request=attempt.request,
                error_class=error_class, message=message,
                attempts=attempt.number, worker_fate=fate,
                attempt_errors=list(self.history[attempt.key])))
            return
        self.stats.retries += 1
        delay = self.config.backoff * (2 ** (attempt.number - 1))
        self.delayed.append(_Attempt(attempt.key, attempt.request,
                                     attempt.number + 1,
                                     time.monotonic() + delay))

    def _deliver(self, key: str,
                 outcome: AllocationSummary | ExperimentFailure) -> None:
        self.results[key] = outcome
        self.outstanding -= 1
        self.delivered += 1
        if self.on_result is not None:
            self.on_result(key, outcome)
        if self.plan is not None \
                and self.plan.interrupt_after is not None \
                and self.delivered >= self.plan.interrupt_after:
            raise KeyboardInterrupt

    # -- degraded / serial path ------------------------------------------------

    def _reclaim_busy(self) -> None:
        """Take in-flight requests back (uncharged) before going serial."""
        for worker, (attempt, _) in list(self.busy.items()):
            worker.kill()
            self.pool.discard(worker)
            self.runnable.appendleft(attempt)
        self.busy.clear()

    def _drain_serial(self) -> None:
        """Finish every unresolved request in-process.

        Timeouts cannot be enforced here (``hang`` faults are ignored);
        ``crash``/``raise`` faults surface as transient exceptions so
        retry and quarantine semantics still hold.
        """
        from .executor import execute_request

        pending = list(self.runnable) \
            + sorted(self.delayed, key=lambda a: a.ready_at)
        self.runnable.clear()
        self.delayed.clear()
        for attempt in pending:
            deadline = self._deadline_of(attempt.key)
            if deadline is not None and time.monotonic() >= deadline:
                self._expire(attempt)
                continue
            number = attempt.number
            while True:
                action = self.plan.worker_action(attempt.key, number) \
                    if self.plan is not None else None
                tracer = Tracer(clock=time.monotonic)
                try:
                    with tracer.span("attempt", number=number):
                        if action in (CRASH, RAISE):
                            raise InjectedFault(
                                f"injected {action} (attempt {number})")
                        with tracer.span("exec"):
                            summary = execute_request(attempt.request,
                                                      tracer=tracer)
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    self._record_serial_attempt(attempt.key, tracer,
                                                "exception")
                    error_class, message = type(exc).__name__, str(exc)
                    self.history[attempt.key].append(
                        f"attempt {number}: {error_class}: {message} "
                        f"[in-process]")
                    if number >= self.config.max_attempts:
                        self.stats.quarantined += 1
                        self._deliver(attempt.key, ExperimentFailure(
                            key=attempt.key, request=attempt.request,
                            error_class=error_class, message=message,
                            attempts=number, worker_fate="in-process",
                            attempt_errors=list(
                                self.history[attempt.key])))
                        break
                    self.stats.retries += 1
                    if self.config.backoff:
                        time.sleep(self.config.backoff
                                   * (2 ** (number - 1)))
                    number += 1
                else:
                    self._record_serial_attempt(attempt.key, tracer, "ok")
                    self._deliver(attempt.key, summary)
                    break

    def _record_serial_attempt(self, key: str, tracer: Tracer,
                               outcome: str) -> None:
        """Record an in-process attempt span (same shape as pooled
        attempts, minus spawn/handshake children)."""
        if not tracer.roots:  # pragma: no cover - span always opens
            return
        span = tracer.roots[0]
        span.attrs["outcome"] = outcome
        observation = self.stats.observations.setdefault(
            key, AttemptObservation())
        observation.attempts += 1
        observation.spans.append(span)

    def _shutdown(self) -> None:
        """Kill in-flight workers promptly (also the KeyboardInterrupt
        path); an owned pool dies with the batch, a borrowed one keeps
        its idle workers warm for the next batch."""
        for worker in list(self.busy):
            worker.kill()
            self.pool.discard(worker)
        self.busy.clear()
        if self.owns_pool and self.pool is not None:
            self.pool.close()


def run_supervised(items: list[tuple[str, ExperimentRequest]],
                   workers: int,
                   config: SupervisorConfig | None = None,
                   plan: FaultPlan | None = None,
                   on_result=None,
                   pool: WorkerPool | None = None,
                   deadlines: dict[str, float] | None = None,
                   ) -> tuple[dict[str, AllocationSummary
                                   | ExperimentFailure], SupervisedStats]:
    """Execute *items* (``(key, request)`` pairs, unique keys) under
    supervision; returns per-key outcomes plus the fault accounting.

    ``workers <= 1`` runs serially in-process (no worker processes, no
    timeout enforcement) with the same retry/quarantine semantics —
    unless *pool* is given, in which case even one-request batches run
    on the pool's (warm) workers and the pool survives the batch.
    ``on_result(key, outcome)`` fires as each outcome lands — before
    the batch finishes, and before any ``KeyboardInterrupt`` unwinds.

    *deadlines* maps request keys to absolute ``time.monotonic``
    deadlines (this process's clock).  A request whose deadline passes
    before dispatch is answered ``DeadlineExpired`` without executing;
    one whose deadline fires mid-attempt has its worker killed and is
    answered ``DeadlineExpired`` with no retry — the requester has
    already stopped waiting, so more attempts only burn the pool.
    """
    supervisor = _Supervisor(config or SupervisorConfig(), workers,
                             plan, on_result, pool=pool,
                             deadlines=deadlines)
    outcomes = supervisor.run(items)
    return outcomes, supervisor.stats
