"""Pruned static single assignment form."""

from .construction import SSAError, SSAInfo, construct_ssa
from .ssa_graph import SSAGraph

__all__ = ["SSAError", "SSAGraph", "SSAInfo", "construct_ssa"]

# destroy_ssa imports from repro.remat, which imports repro.ssa; import it
# last so the module graph resolves cleanly.
from .destruction import destroy_ssa  # noqa: E402

__all__.append("destroy_ssa")
