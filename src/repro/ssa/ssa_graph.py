"""A value-graph view of a function in SSA form.

"A natural way to view the SSA graph for a procedure is as a collection of
values, each composed of a single definition and one or more uses"
(Section 3.1).  This module provides that view: per-value defining
instruction and use list, which the sparse tag propagation walks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import Function, Instruction, Opcode, Reg
from .construction import SSAInfo


@dataclass
class SSAGraph:
    """Defs and uses of every SSA value."""

    #: value -> defining instruction (PHI pseudo-op for φ values)
    def_inst: dict[Reg, Instruction]
    #: value -> instructions that read it (φs included)
    users: dict[Reg, list[Instruction]]

    @staticmethod
    def build(fn: Function, info: SSAInfo) -> "SSAGraph":
        def_inst = {value: site[1] for value, site in info.def_site.items()}
        users: dict[Reg, list[Instruction]] = {v: [] for v in def_inst}
        for _blk, inst in fn.instructions():
            for s in inst.srcs:
                if s in users:
                    users[s].append(inst)
        return SSAGraph(def_inst=def_inst, users=users)

    def values(self) -> set[Reg]:
        return set(self.def_inst)

    def is_phi(self, value: Reg) -> bool:
        return self.def_inst[value].opcode is Opcode.PHI
