"""Standalone SSA destruction.

A convenience wrapper over the planning machinery in
:mod:`repro.remat.split`: either union every φ web (Chaitin-style, no
copies — semantically valid because webs of one original register are never
simultaneously live) or insert a copy for every φ operand (maximal
splitting).  The register allocator uses the richer, tag-driven path in
renumber; this module serves tests, examples and the Section 6 extension.
"""

from __future__ import annotations

from ..ir import Function
from .construction import SSAInfo


def destroy_ssa(fn: Function, info: SSAInfo,
                insert_copies: bool = False):
    """Remove φs from *fn* in place.

    With ``insert_copies=False`` φ webs are unioned (no copies); with
    ``insert_copies=True`` a copy is placed on every φ edge instead.
    Returns the :class:`~repro.remat.split.RenumberResult`.
    """
    from ..remat.split import RenumberMode, apply_plan, plan_unions

    mode = RenumberMode.SPLIT_ALL if insert_copies else RenumberMode.CHAITIN
    plan = plan_unions(fn, info, tags=None, mode=mode)
    return apply_plan(fn, info, plan)
