"""Pruned SSA construction.

Follows the approach the paper adopts for renumber (Section 4.1):

1. liveness at each basic block,
2. φ-node insertion on (iterated) dominance frontiers [Cytron et al.],
   *pruned* — a φ for register r is inserted at a join only if r is live-in
   there, so no dead φ-nodes appear,
3. renaming of all operands to fresh *values* via a dominator-tree walk.

φ-nodes are represented as leading :data:`~repro.ir.Opcode.PHI`
pseudo-instructions; the i-th φ operand corresponds to the i-th entry of
``SSAInfo.phi_preds[block]``.  The transformation happens in place; callers
that need to keep the original should :meth:`~repro.ir.Function.clone`
first.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis import (DominanceInfo, LivenessInfo, compute_dominance,
                        compute_liveness, iterated_dominance_frontier)
from ..ir import Function, Instruction, Opcode, Reg


class SSAError(ValueError):
    """Raised when construction hits a use of a never-defined register."""


@dataclass
class SSAInfo:
    """Metadata produced by :func:`construct_ssa`.

    Attributes:
        dom: the dominance facts used during construction.
        phi_preds: for each block containing φs, the predecessor order that
            φ operands follow.
        def_site: for each SSA value, ``(block_label, defining_instruction)``
            (for φ values the instruction is the PHI pseudo-op).
        orig_reg: for each SSA value, the pre-SSA register it renames.
    """

    dom: DominanceInfo
    phi_preds: dict[str, list[str]] = field(default_factory=dict)
    def_site: dict[Reg, tuple[str, Instruction]] = field(default_factory=dict)
    orig_reg: dict[Reg, Reg] = field(default_factory=dict)

    def values(self) -> set[Reg]:
        return set(self.def_site)

    def values_of(self, original: Reg) -> list[Reg]:
        """All SSA values renaming one original register."""
        return [v for v, o in self.orig_reg.items() if o == original]


def construct_ssa(fn: Function, dom: DominanceInfo | None = None,
                  liveness: LivenessInfo | None = None) -> SSAInfo:
    """Convert *fn* to pruned SSA in place and return the metadata.

    Critical edges should be split beforehand if φ-operand copies will be
    placed on edges later (the allocator driver does this).
    """
    if dom is None:
        dom = compute_dominance(fn)
    if liveness is None:
        liveness = compute_liveness(fn)
    preds_map = fn.predecessors_map()
    reachable = set(dom.rpo)

    # -- collect def blocks per register -----------------------------------------
    def_blocks: dict[Reg, set[str]] = {}
    for blk in fn.blocks:
        if blk.label not in reachable:
            continue
        for inst in blk.instructions:
            for d in inst.dests:
                def_blocks.setdefault(d, set()).add(blk.label)

    # -- insert pruned φ-nodes ------------------------------------------------------
    info = SSAInfo(dom=dom)
    phi_for: dict[tuple[str, Reg], Instruction] = {}
    for reg, blocks in def_blocks.items():
        for label in iterated_dominance_frontier(dom, blocks):
            ps = [p for p in preds_map[label] if p in reachable]
            if len(ps) < 2:
                continue
            if reg not in liveness.live_in(label):
                continue  # pruning: dead φ
            if (label, reg) in phi_for:
                continue
            phi = Instruction(Opcode.PHI, dests=(reg,),
                              srcs=tuple(reg for _ in ps))
            phi_for[(label, reg)] = phi
            blk = fn.block(label)
            blk.instructions.insert(0, phi)
            info.phi_preds.setdefault(label, ps)

    # -- rename via dominator-tree walk ------------------------------------------------
    stacks: dict[Reg, list[Reg]] = {}
    phi_origin: dict[int, Reg] = {}  # id(phi) -> original register

    for (label, reg), phi in phi_for.items():
        phi_origin[id(phi)] = reg

    def fresh_value(original: Reg, label: str, inst: Instruction) -> Reg:
        value = fn.new_reg(original.rclass)
        info.def_site[value] = (label, inst)
        info.orig_reg[value] = original
        return value

    def top(reg: Reg, label: str) -> Reg:
        stack = stacks.get(reg)
        if not stack:
            raise SSAError(
                f"{fn.name}: register {reg} used in {label} but not "
                f"defined on every path")
        return stack[-1]

    # iterative preorder walk with explicit post-processing for stack pops
    def process_block(label: str) -> list[tuple[Reg, Reg]]:
        """Rename one block; returns the (original, value) pushes made."""
        pushes: list[tuple[Reg, Reg]] = []
        blk = fn.block(label)
        for inst in blk.instructions:
            if inst.opcode is Opcode.PHI:
                original = phi_origin[id(inst)]
                value = fresh_value(original, label, inst)
                inst.dests = (value,)
                stacks.setdefault(original, []).append(value)
                pushes.append((original, value))
                continue
            inst.srcs = tuple(top(s, label) for s in inst.srcs)
            new_dests = []
            for d in inst.dests:
                value = fresh_value(d, label, inst)
                stacks.setdefault(d, []).append(value)
                pushes.append((d, value))
                new_dests.append(value)
            inst.dests = tuple(new_dests)
        # fill φ operands of successors
        for succ in blk.successors():
            if succ not in info.phi_preds:
                continue
            pred_index = info.phi_preds[succ].index(label)
            for phi in fn.block(succ).phis():
                original = phi_origin[id(phi)]
                srcs = list(phi.srcs)
                srcs[pred_index] = top(original, label)
                phi.srcs = tuple(srcs)
        return pushes

    # explicit stack to avoid recursion limits
    entry = dom.rpo[0]
    work: list[tuple[str, bool]] = [(entry, False)]
    pending_pops: dict[str, list[tuple[Reg, Reg]]] = {}
    while work:
        label, done = work.pop()
        if done:
            for original, _value in reversed(pending_pops.pop(label)):
                stacks[original].pop()
            continue
        pending_pops[label] = process_block(label)
        work.append((label, True))
        for child in reversed(dom.children[label]):
            work.append((child, False))

    return info
