"""Target machine descriptions.

The paper's experiments target an abstract machine specified "in a small
table ... varied to allow convenient experimentation with a wide variety of
register sets" (Section 5).  A :class:`MachineDescription` plays that role:
it fixes the number of allocatable integer and float registers and the cycle
cost model (loads/stores two cycles, everything else one).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import CountClass, Opcode, RegClass


@dataclass(frozen=True)
class MachineDescription:
    """An abstract target for allocation and cost accounting.

    Attributes:
        name: display name.
        int_regs: number of allocatable integer registers (k for INT).
        float_regs: number of allocatable float registers (k for FLOAT).
        load_cost: cycles per load (paper: 2).
        store_cost: cycles per store (paper: 2).
        other_cost: cycles per non-memory instruction (paper: 1).
    """

    name: str
    int_regs: int
    float_regs: int
    load_cost: int = 2
    store_cost: int = 2
    other_cost: int = 1

    def k(self, rclass: RegClass) -> int:
        """The number of colors available for *rclass*."""
        if rclass is RegClass.INT:
            return self.int_regs
        return self.float_regs

    def max_k(self) -> int:
        """The wider of the two register files."""
        return max(self.int_regs, self.float_regs)

    def cycle_cost(self, opcode: Opcode) -> int:
        """Cost of one dynamic execution of *opcode*."""
        cls = opcode.info.count_class
        if cls is CountClass.LOAD:
            return self.load_cost
        if cls is CountClass.STORE:
            return self.store_cost
        return self.other_cost

    def cycles(self, counts: dict[CountClass, int]) -> int:
        """Total cycles for a dynamic count vector keyed by count class."""
        per_class = {
            CountClass.LOAD: self.load_cost,
            CountClass.STORE: self.store_cost,
        }
        return sum(n * per_class.get(cls, self.other_cost)
                   for cls, n in counts.items())

    def class_cost(self, cls: CountClass) -> int:
        if cls is CountClass.LOAD:
            return self.load_cost
        if cls is CountClass.STORE:
            return self.store_cost
        return self.other_cost
