"""Target machine descriptions and presets."""

from .presets import (huge_machine, machine_with, standard_machine,
                      tiny_machine)
from .target import MachineDescription

__all__ = [
    "MachineDescription",
    "huge_machine",
    "machine_with",
    "standard_machine",
    "tiny_machine",
]
