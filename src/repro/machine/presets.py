"""Preset machine descriptions used by the experiments.

* :func:`standard_machine` — the paper's target: sixteen integer and sixteen
  floating-point registers (Section 5.1).
* :func:`huge_machine` — the hypothetical 128-register machine used as the
  zero-spill baseline when isolating spill cycles (Section 5.2).
* :func:`tiny_machine` — a pressure-cooker configuration handy in tests and
  the Figure 1 demonstration.
"""

from __future__ import annotations

from .target import MachineDescription


def standard_machine() -> MachineDescription:
    """The paper's standard target (Section 5.1)."""
    return MachineDescription(name="standard", int_regs=16, float_regs=16)


def huge_machine() -> MachineDescription:
    """The 128-register baseline machine (Section 5.2)."""
    return MachineDescription(name="huge", int_regs=128, float_regs=128)


def tiny_machine(int_regs: int = 4, float_regs: int = 4) -> MachineDescription:
    """A small register file that forces spilling (tests, Figure 1 demo)."""
    return MachineDescription(name=f"tiny{int_regs}x{float_regs}",
                              int_regs=int_regs, float_regs=float_regs)


def machine_with(int_regs: int, float_regs: int | None = None,
                 name: str | None = None) -> MachineDescription:
    """An arbitrary register-set variation, as Section 5 encourages."""
    if float_regs is None:
        float_regs = int_regs
    if name is None:
        name = f"k{int_regs}x{float_regs}"
    return MachineDescription(name=name, int_regs=int_regs,
                              float_regs=float_regs)
