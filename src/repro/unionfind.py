"""A disjoint-set (union-find) structure.

The paper's renumber "forms live ranges by unioning together all the values
reaching each φ-node using a fast disjoint-set union" and keeps the
structure alive "while building the interference graph and coalescing
(where coalesces are further union operations)" — Section 4.1.  This module
is that structure: union by size with path compression.
"""

from __future__ import annotations

from typing import Hashable, Iterable, TypeVar

T = TypeVar("T", bound=Hashable)


class DisjointSets:
    """Union-find over arbitrary hashable items.

    Items are added lazily on first :meth:`find`/:meth:`union`.
    """

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._parent: dict[T, T] = {}
        self._size: dict[T, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: T) -> None:
        """Register *item* as a singleton if unknown."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def __contains__(self, item: T) -> bool:
        return item in self._parent

    def __iter__(self):
        """All known items, in insertion order."""
        return iter(self._parent)

    def find(self, item: T) -> T:
        """The canonical representative of *item*'s class."""
        self.add(item)
        root = item
        parent = self._parent
        while parent[root] != root:
            root = parent[root]
        # path compression
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a: T, b: T) -> T:
        """Merge the classes of *a* and *b*; returns the surviving root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra

    def same(self, a: T, b: T) -> bool:
        return self.find(a) == self.find(b)

    def classes(self) -> dict[T, list[T]]:
        """Map each root to the sorted-by-insertion list of its members."""
        result: dict[T, list[T]] = {}
        for item in self._parent:
            result.setdefault(self.find(item), []).append(item)
        return result

    def __len__(self) -> int:
        return len(self._parent)
