"""An ILOC interpreter with dynamic instruction counting.

This substitutes for the paper's ILOC→C translation: "we can add
instrumentation to count the number of times any specific ILOC instruction
is executed ... we are interested in the number of loads, stores, copies,
load-immediates, and add-immediates" (Section 5).  The interpreter executes
ILOC directly and maintains exactly those counters, keyed by
:class:`~repro.ir.opcodes.CountClass` and by opcode.

Memory model
------------

A flat, word-addressed memory (one Python value per 8-byte cell):

* the *static data area* starts at :data:`SD_BASE` (``lsd`` offsets are
  relative to it),
* the *frame* sits at :data:`FP_BASE`; ``lfp`` offsets address locals
  upward, spill slots live below the frame pointer and are reached only by
  the ``spld``/``spst`` family,
* a read-only *constant pool* backs ``cldw``/``cldf``; its contents are
  supplied per run.

Reading a register that was never written raises — this strictness turns
allocator bugs (clobbered live values) into loud failures in the
equivalence tests instead of silently wrong answers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import CountClass, Function, Instruction, Opcode, Reg, RegClass

#: base address of the static data area
SD_BASE = 0x10000
#: address of the frame pointer
FP_BASE = 0x1000
#: cell size in bytes (all values are one cell)
WORD = 8


class InterpreterError(RuntimeError):
    """Raised on dynamic errors: bad address, div-by-zero, step overrun…"""


class UninitializedRegister(InterpreterError):
    """Raised when an instruction reads a register never written."""


@dataclass
class RunResult:
    """Everything observable about one execution."""

    #: values emitted by ``out``/``fout``, in order
    output: list
    #: dynamic counts by instrumentation class
    counts: dict[CountClass, int]
    #: dynamic counts by opcode
    opcode_counts: dict[Opcode, int]
    #: total instructions executed
    steps: int
    #: final memory image (address -> value)
    memory: dict[int, object]

    def count(self, cls: CountClass) -> int:
        return self.counts.get(cls, 0)


def _truncdiv(a: int, b: int) -> int:
    """C-style integer division (truncation toward zero)."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


class Interpreter:
    """Executes one function.

    Parameters:
        fn: the function to run (virtual or physical registers — any
            well-formed ILOC works).
        args: integer/float arguments read by ``param``/``fparam``.
        const_pool: mapping offset -> value backing ``cldw``/``cldf``.
        max_steps: dynamic instruction budget before
            :class:`InterpreterError`.
    """

    def __init__(self, fn: Function, args: list | None = None,
                 const_pool: dict[int, object] | None = None,
                 max_steps: int = 50_000_000) -> None:
        self.fn = fn
        self.args = list(args or [])
        self.const_pool = dict(const_pool or {})
        self.max_steps = max_steps
        self.registers: dict[Reg, object] = {}
        self.memory: dict[int, object] = {}
        self.output: list = []
        self.counts: dict[CountClass, int] = {}
        self.opcode_counts: dict[Opcode, int] = {}
        self.steps = 0

    # -- register file ----------------------------------------------------------

    def _read(self, reg: Reg):
        try:
            return self.registers[reg]
        except KeyError:
            raise UninitializedRegister(
                f"read of uninitialized register {reg}") from None

    def _write(self, reg: Reg, value) -> None:
        if reg.rclass is RegClass.INT:
            if not isinstance(value, int):
                raise InterpreterError(
                    f"non-integer value {value!r} written to {reg}")
        else:
            value = float(value)
        self.registers[reg] = value

    # -- memory ------------------------------------------------------------------

    def _load(self, addr: int, rclass: RegClass):
        if not isinstance(addr, int):
            raise InterpreterError(f"non-integer address {addr!r}")
        value = self.memory.get(addr)
        if value is None:
            value = 0 if rclass is RegClass.INT else 0.0
        return value

    def _store(self, addr: int, value) -> None:
        if not isinstance(addr, int):
            raise InterpreterError(f"non-integer address {addr!r}")
        self.memory[addr] = value

    def _spill_addr(self, slot: int) -> int:
        return FP_BASE - WORD * (slot + 1)

    # -- execution -----------------------------------------------------------------

    def run(self) -> RunResult:
        """Execute from the entry block until ``ret``."""
        label = self.fn.entry.label
        while True:
            blk = self.fn.block(label)
            next_label: str | None = None
            for inst in blk.instructions:
                self.steps += 1
                if self.steps > self.max_steps:
                    raise InterpreterError(
                        f"exceeded {self.max_steps} steps in {self.fn.name}")
                cls = inst.info.count_class
                self.counts[cls] = self.counts.get(cls, 0) + 1
                self.opcode_counts[inst.opcode] = (
                    self.opcode_counts.get(inst.opcode, 0) + 1)
                next_label = self._execute(inst)
                if next_label is not None:
                    break
                if inst.opcode is Opcode.RET:
                    return RunResult(output=self.output, counts=self.counts,
                                     opcode_counts=self.opcode_counts,
                                     steps=self.steps, memory=self.memory)
            if next_label is None:
                raise InterpreterError(
                    f"block {label} fell through without terminator")
            label = next_label

    def _execute(self, inst: Instruction) -> str | None:
        """Execute one instruction; return a branch target or ``None``."""
        op = inst.opcode
        read = self._read
        if op is Opcode.LDI:
            self._write(inst.dest, inst.imms[0])
        elif op is Opcode.LDF:
            self._write(inst.dest, float(inst.imms[0]))
        elif op is Opcode.LFP:
            self._write(inst.dest, FP_BASE + inst.imms[0])
        elif op is Opcode.LSD:
            self._write(inst.dest, SD_BASE + inst.imms[0])
        elif op is Opcode.CLDW:
            value = self.const_pool.get(inst.imms[0], 0)
            if not isinstance(value, int):
                raise InterpreterError(
                    f"cldw of non-int constant at {inst.imms[0]}")
            self._write(inst.dest, value)
        elif op is Opcode.CLDF:
            value = self.const_pool.get(inst.imms[0], 0.0)
            self._write(inst.dest, float(value))
        elif op in (Opcode.PARAM, Opcode.FPARAM):
            idx = inst.imms[0]
            if idx >= len(self.args):
                raise InterpreterError(f"missing argument {idx}")
            value = self.args[idx]
            if op is Opcode.PARAM:
                if not isinstance(value, int):
                    raise InterpreterError(f"argument {idx} is not int")
                self._write(inst.dest, value)
            else:
                self._write(inst.dest, float(value))
        elif op is Opcode.ADD:
            self._write(inst.dest, read(inst.srcs[0]) + read(inst.srcs[1]))
        elif op is Opcode.SUB:
            self._write(inst.dest, read(inst.srcs[0]) - read(inst.srcs[1]))
        elif op is Opcode.MUL:
            self._write(inst.dest, read(inst.srcs[0]) * read(inst.srcs[1]))
        elif op is Opcode.DIV:
            b = read(inst.srcs[1])
            if b == 0:
                raise InterpreterError("integer division by zero")
            self._write(inst.dest, _truncdiv(read(inst.srcs[0]), b))
        elif op is Opcode.NEG:
            self._write(inst.dest, -read(inst.src))
        elif op is Opcode.ADDI:
            self._write(inst.dest, read(inst.src) + inst.imms[0])
        elif op is Opcode.SUBI:
            self._write(inst.dest, read(inst.src) - inst.imms[0])
        elif op is Opcode.MULI:
            self._write(inst.dest, read(inst.src) * inst.imms[0])
        elif op is Opcode.CMP_LT:
            self._write(inst.dest,
                        int(read(inst.srcs[0]) < read(inst.srcs[1])))
        elif op is Opcode.CMP_LE:
            self._write(inst.dest,
                        int(read(inst.srcs[0]) <= read(inst.srcs[1])))
        elif op is Opcode.CMP_GT:
            self._write(inst.dest,
                        int(read(inst.srcs[0]) > read(inst.srcs[1])))
        elif op is Opcode.CMP_GE:
            self._write(inst.dest,
                        int(read(inst.srcs[0]) >= read(inst.srcs[1])))
        elif op is Opcode.CMP_EQ:
            self._write(inst.dest,
                        int(read(inst.srcs[0]) == read(inst.srcs[1])))
        elif op is Opcode.CMP_NE:
            self._write(inst.dest,
                        int(read(inst.srcs[0]) != read(inst.srcs[1])))
        elif op is Opcode.FADD:
            self._write(inst.dest, read(inst.srcs[0]) + read(inst.srcs[1]))
        elif op is Opcode.FSUB:
            self._write(inst.dest, read(inst.srcs[0]) - read(inst.srcs[1]))
        elif op is Opcode.FMUL:
            self._write(inst.dest, read(inst.srcs[0]) * read(inst.srcs[1]))
        elif op is Opcode.FDIV:
            b = read(inst.srcs[1])
            if b == 0.0:
                raise InterpreterError("float division by zero")
            self._write(inst.dest, read(inst.srcs[0]) / b)
        elif op is Opcode.FABS:
            self._write(inst.dest, abs(read(inst.src)))
        elif op is Opcode.FNEG:
            self._write(inst.dest, -read(inst.src))
        elif op in (Opcode.FCMP_LT, Opcode.FCMP_LE, Opcode.FCMP_GT,
                    Opcode.FCMP_GE, Opcode.FCMP_EQ, Opcode.FCMP_NE):
            a, b = read(inst.srcs[0]), read(inst.srcs[1])
            result = {
                Opcode.FCMP_LT: a < b, Opcode.FCMP_LE: a <= b,
                Opcode.FCMP_GT: a > b, Opcode.FCMP_GE: a >= b,
                Opcode.FCMP_EQ: a == b, Opcode.FCMP_NE: a != b,
            }[op]
            self._write(inst.dest, int(result))
        elif op is Opcode.I2F:
            self._write(inst.dest, float(read(inst.src)))
        elif op is Opcode.F2I:
            self._write(inst.dest, int(read(inst.src)))
        elif op is Opcode.LDW:
            self._write(inst.dest, self._load(read(inst.src), RegClass.INT))
        elif op is Opcode.LDWO:
            addr = read(inst.src) + inst.imms[0]
            self._write(inst.dest, self._load(addr, RegClass.INT))
        elif op is Opcode.STW:
            self._store(read(inst.srcs[1]), read(inst.srcs[0]))
        elif op is Opcode.STWO:
            self._store(read(inst.srcs[1]) + inst.imms[0],
                        read(inst.srcs[0]))
        elif op is Opcode.FLD:
            self._write(inst.dest, self._load(read(inst.src), RegClass.FLOAT))
        elif op is Opcode.FLDO:
            addr = read(inst.src) + inst.imms[0]
            self._write(inst.dest, self._load(addr, RegClass.FLOAT))
        elif op is Opcode.FST:
            self._store(read(inst.srcs[1]), read(inst.srcs[0]))
        elif op is Opcode.FSTO:
            self._store(read(inst.srcs[1]) + inst.imms[0],
                        read(inst.srcs[0]))
        elif op is Opcode.SPLD:
            self._write(inst.dest,
                        self._load(self._spill_addr(inst.imms[0]),
                                   RegClass.INT))
        elif op is Opcode.SPST:
            self._store(self._spill_addr(inst.imms[0]), read(inst.src))
        elif op is Opcode.FSPLD:
            self._write(inst.dest,
                        self._load(self._spill_addr(inst.imms[0]),
                                   RegClass.FLOAT))
        elif op is Opcode.FSPST:
            self._store(self._spill_addr(inst.imms[0]), read(inst.src))
        elif op in (Opcode.COPY, Opcode.FCOPY, Opcode.SPLIT, Opcode.FSPLIT):
            self._write(inst.dest, read(inst.src))
        elif op is Opcode.JMP:
            return inst.labels[0]
        elif op is Opcode.CBR:
            return inst.labels[0] if read(inst.src) != 0 else inst.labels[1]
        elif op is Opcode.RET:
            return None
        elif op is Opcode.OUT:
            self.output.append(read(inst.src))
        elif op is Opcode.FOUT:
            self.output.append(read(inst.src))
        elif op is Opcode.NOP:
            pass
        elif op is Opcode.PHI:
            raise InterpreterError("phi reached the interpreter")
        else:  # pragma: no cover - the opcode table is closed
            raise InterpreterError(f"unimplemented opcode {op}")
        return None


def run_function(fn: Function, args: list | None = None,
                 const_pool: dict[int, object] | None = None,
                 max_steps: int = 50_000_000) -> RunResult:
    """Convenience wrapper: interpret *fn* and return the result."""
    return Interpreter(fn, args=args, const_pool=const_pool,
                       max_steps=max_steps).run()
