"""ILOC interpreter with dynamic instruction counters."""

from .interpreter import (FP_BASE, Interpreter, InterpreterError, RunResult,
                          SD_BASE, UninitializedRegister, WORD, run_function)

__all__ = [
    "FP_BASE",
    "Interpreter",
    "InterpreterError",
    "RunResult",
    "SD_BASE",
    "UninitializedRegister",
    "WORD",
    "run_function",
]
