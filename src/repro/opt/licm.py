"""Loop-invariant code motion.

Hoists pure, speculation-safe computations whose operands are not
redefined inside the loop to a preheader block.  Combined with local
value numbering this turns the front end's per-iteration address
arithmetic (``lsd`` + ``muli`` + ``add``) into loop-invariant values —
precisely the long-lived, partially never-killed live ranges whose
spilling the paper studies.

Safety conditions for hoisting an instruction ``d <- op srcs`` out of
loop L:

* ``op`` is pure and cannot trap (divisions are excluded — executing a
  division speculatively could fault when the original never ran),
* no source register has a definition inside L,
* ``d`` has exactly one definition inside L,
* ``d`` is not live-in at L's header (so every use of this value, inside
  or after the loop, is reached only through this definition — giving it
  the preheader value is then indistinguishable).

Loops are processed innermost-first so invariants percolate outward.

Analyses flow through an :class:`~repro.passes.AnalysisManager`: loop
nesting and liveness are recomputed only after an iteration that
actually hoisted something or created a preheader, instead of once per
fixed-point iteration regardless.  Callers inside a pass pipeline pass
their manager in; standalone calls get a private one.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import Function, Instruction, Opcode, Reg
from ..passes.manager import AnalysisManager, PreservedAnalyses
from .lvn import _NUMBERABLE

#: hoisting moves instructions between existing blocks: CFG analyses
#: survive, liveness does not
_CFG_ONLY = PreservedAnalyses.cfg()


@dataclass
class LICMStats:
    """How many instructions were hoisted."""

    hoisted: int = 0
    preheaders_created: int = 0


#: pure and safe to execute speculatively
_HOISTABLE = frozenset(op for op in _NUMBERABLE
                       if op not in (Opcode.DIV, Opcode.FDIV))


def hoist_loop_invariants(fn: Function,
                          am: AnalysisManager | None = None) -> LICMStats:
    """Apply loop-invariant code motion to *fn* in place.

    *am* shares analyses with an enclosing pipeline; on exit the
    manager's cache is consistent with the rewritten function (the
    transform invalidates exactly when it mutates).
    """
    if am is None:
        am = AnalysisManager(fn)
    stats = LICMStats()
    processed: set[str] = set()
    # innermost first: deeper loops feed their invariants to outer ones.
    # Loop nesting is re-derived after each loop whose processing
    # changed the CFG, so freshly created inner preheaders are counted
    # as part of the enclosing loop's body.
    while True:
        loops = am.loops()
        remaining = [loop for loop in loops.loops.values()
                     if loop.header not in processed]
        if not remaining:
            return stats
        loop = max(remaining, key=lambda l: l.depth)
        _hoist_one_loop(fn, loop, stats, am)
        processed.add(loop.header)


def _preheader(fn: Function, header: str, body: set[str],
               stats: LICMStats) -> str | None:
    """The label of the block whose end flows uniquely into *header* from
    outside the loop; created if necessary.  ``None`` if the header is
    the function entry (nowhere to put one)."""
    if header == fn.entry.label:
        return None
    preds = fn.predecessors_map()
    entry_preds = [p for p in preds[header] if p not in body]
    if not entry_preds:
        return None
    if len(entry_preds) == 1:
        pred = entry_preds[0]
        if fn.block(pred).successors() == (header,):
            return pred
    pre = fn.add_block()
    pre_blk = fn.block(pre.label)
    pre_blk.append(Instruction(Opcode.JMP, labels=(header,)))
    for pred in entry_preds:
        term = fn.block(pred).terminator
        labels = tuple(pre.label if lbl == header else lbl
                       for lbl in term.labels)
        fn.block(pred).instructions[-1] = term.with_labels(labels)
    stats.preheaders_created += 1
    return pre.label


def _hoist_one_loop(fn: Function, loop, stats: LICMStats,
                    am: AnalysisManager) -> None:
    before_preheaders = stats.preheaders_created
    pre_label = _preheader(fn, loop.header, loop.body, stats)
    if stats.preheaders_created > before_preheaders:
        # a new block and retargeted terminators: nothing cached survives
        am.invalidate_all()
    if pre_label is None:
        return
    changed = True
    while changed:
        changed = False
        liveness = am.liveness()
        live_at_header = liveness.live_in(loop.header)
        defs_in_loop: dict[Reg, int] = {}
        for label in loop.body:
            for inst in fn.block(label).instructions:
                for d in inst.dests:
                    defs_in_loop[d] = defs_in_loop.get(d, 0) + 1

        for label in sorted(loop.body):
            blk = fn.block(label)
            kept = []
            for inst in blk.instructions:
                if (inst.opcode in _HOISTABLE
                        and inst.dests
                        and defs_in_loop.get(inst.dest, 0) == 1
                        and inst.dest not in live_at_header
                        and all(s not in defs_in_loop for s in inst.srcs)):
                    fn.block(pre_label).insert_before_terminator(inst)
                    defs_in_loop.pop(inst.dest, None)
                    stats.hoisted += 1
                    changed = True
                else:
                    kept.append(inst)
            blk.instructions = kept
        if changed:
            am.invalidate(_CFG_ONLY)
