"""Scalar optimizations run before allocation.

The paper's allocator consumes heavily optimized ILOC; this package
provides the passes that give MiniFort output the same character:
dead-code elimination, local value numbering and loop-invariant code
motion.  :func:`optimize` runs the standard pipeline to a fixed point,
expressed as a :class:`~repro.passes.PassPipeline` over one shared
:class:`~repro.passes.AnalysisManager` — LICM's loop/liveness facts
survive between rounds whenever LVN and DCE report no changes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import Function
from ..passes import (AnalysisManager, DCEPass, LICMPass, LVNPass,
                      PassPipeline)
from .dce import DCEStats, eliminate_dead_code
from .licm import LICMStats, hoist_loop_invariants
from .lvn import LVNStats, run_lvn


@dataclass
class OptStats:
    """Aggregate statistics for one :func:`optimize` run."""

    lvn_replaced: int = 0
    licm_hoisted: int = 0
    dce_removed: int = 0
    rounds: int = 0


def optimize(fn: Function, max_rounds: int = 4,
             am: AnalysisManager | None = None,
             verify_after_each: bool = False) -> OptStats:
    """Run LVN → LICM → DCE on *fn* in place until nothing changes."""
    stats = OptStats()
    if am is None:
        am = AnalysisManager(fn)
    for _ in range(max_rounds):
        stats.rounds += 1
        lvn, licm, dce = LVNPass(), LICMPass(), DCEPass()
        PassPipeline([lvn, licm, dce],
                     verify_after_each=verify_after_each).run(fn, am)
        stats.lvn_replaced += lvn.stats.replaced
        stats.licm_hoisted += licm.stats.hoisted
        stats.dce_removed += dce.stats.removed
        if (lvn.stats.replaced == 0 and licm.stats.hoisted == 0
                and dce.stats.removed == 0):
            break
    return stats


__all__ = [
    "DCEStats",
    "LICMStats",
    "LVNStats",
    "OptStats",
    "eliminate_dead_code",
    "hoist_loop_invariants",
    "optimize",
    "run_lvn",
]
