"""Scalar optimizations run before allocation.

The paper's allocator consumes heavily optimized ILOC; this package
provides the passes that give MiniFort output the same character:
dead-code elimination, local value numbering and loop-invariant code
motion.  :func:`optimize` runs the standard pipeline to a fixed point.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import Function
from .dce import DCEStats, eliminate_dead_code
from .licm import LICMStats, hoist_loop_invariants
from .lvn import LVNStats, run_lvn


@dataclass
class OptStats:
    """Aggregate statistics for one :func:`optimize` run."""

    lvn_replaced: int = 0
    licm_hoisted: int = 0
    dce_removed: int = 0
    rounds: int = 0


def optimize(fn: Function, max_rounds: int = 4) -> OptStats:
    """Run LVN → LICM → DCE on *fn* in place until nothing changes."""
    stats = OptStats()
    for _ in range(max_rounds):
        stats.rounds += 1
        lvn = run_lvn(fn)
        licm = hoist_loop_invariants(fn)
        dce = eliminate_dead_code(fn)
        stats.lvn_replaced += lvn.replaced
        stats.licm_hoisted += licm.hoisted
        stats.dce_removed += dce.removed
        if lvn.replaced == 0 and licm.hoisted == 0 and dce.removed == 0:
            break
    return stats


__all__ = [
    "DCEStats",
    "LICMStats",
    "LVNStats",
    "OptStats",
    "eliminate_dead_code",
    "hoist_loop_invariants",
    "optimize",
    "run_lvn",
]
