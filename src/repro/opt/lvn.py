"""Local value numbering (per-block common-subexpression elimination).

Numbers the values computed inside each basic block and replaces repeated
computations with copies of the first occurrence.  Literals, address
constants (``lsd``/``lfp``) and commutative operations are canonicalized,
so the MiniFort code generator's habit of re-materializing array bases and
constants at every occurrence collapses into single definitions per block
— giving the allocator the longer, more interesting live ranges that the
paper's optimized FORTRAN exhibits.

Copies are value-transparent: ``copy d s`` gives *d* the value number of
*s*, so chains introduced by the front end do not block matching.  Memory
loads are *not* numbered (a store may intervene); pure register
computations only.  Redefinition of a register invalidates any table
entry whose cached home it was.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import BasicBlock, Function, Instruction, Opcode, Reg, RegClass


@dataclass
class LVNStats:
    """How many computations local value numbering removed."""

    replaced: int = 0


#: opcodes that are pure functions of (register values, immediates)
_NUMBERABLE = frozenset({
    Opcode.LDI, Opcode.LDF, Opcode.LFP, Opcode.LSD,
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.NEG,
    Opcode.ADDI, Opcode.SUBI, Opcode.MULI,
    Opcode.CMP_LT, Opcode.CMP_LE, Opcode.CMP_GT, Opcode.CMP_GE,
    Opcode.CMP_EQ, Opcode.CMP_NE,
    Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV,
    Opcode.FABS, Opcode.FNEG,
    Opcode.FCMP_LT, Opcode.FCMP_LE, Opcode.FCMP_GT, Opcode.FCMP_GE,
    Opcode.FCMP_EQ, Opcode.FCMP_NE,
    Opcode.I2F, Opcode.F2I,
})


def _copy_opcode(reg: Reg) -> Opcode:
    return Opcode.COPY if reg.rclass is RegClass.INT else Opcode.FCOPY


def run_lvn(fn: Function) -> LVNStats:
    """Apply local value numbering to every block of *fn* in place."""
    stats = LVNStats()
    for blk in fn.blocks:
        stats.replaced += _lvn_block(blk)
    return stats


def _lvn_block(blk: BasicBlock) -> int:
    value_of: dict[Reg, int] = {}            # register -> value number
    expr_table: dict[tuple, tuple[int, Reg]] = {}   # key -> (number, home)
    replaced = 0
    next_number = 0

    def fresh() -> int:
        nonlocal next_number
        next_number += 1
        return next_number

    def number_for(reg: Reg) -> int:
        if reg not in value_of:
            value_of[reg] = fresh()
        return value_of[reg]

    def invalidate_home(reg: Reg) -> None:
        stale = [key for key, (_n, home) in expr_table.items()
                 if home == reg]
        for key in stale:
            del expr_table[key]

    new_instructions: list[Instruction] = []
    for inst in blk.instructions:
        if inst.is_copy:
            number = number_for(inst.src)
            invalidate_home(inst.dest)
            value_of[inst.dest] = number
            new_instructions.append(inst)
            continue
        if inst.opcode not in _NUMBERABLE:
            for d in inst.dests:
                invalidate_home(d)
                value_of[d] = fresh()
            new_instructions.append(inst)
            continue
        operands = tuple(number_for(s) for s in inst.srcs)
        if inst.info.commutative:
            operands = tuple(sorted(operands))
        key = (inst.opcode, operands, inst.imms)
        hit = expr_table.get(key)
        dest = inst.dest
        if hit is not None:
            number, home = hit
            new_instructions.append(
                Instruction(_copy_opcode(dest), dests=(dest,),
                            srcs=(home,)))
            invalidate_home(dest)
            value_of[dest] = number
            replaced += 1
            continue
        invalidate_home(dest)
        value_of[dest] = fresh()
        expr_table[key] = (value_of[dest], dest)
        new_instructions.append(inst)
    blk.instructions = new_instructions
    return replaced
