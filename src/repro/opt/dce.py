"""Dead-code elimination.

The paper's allocator consumes the output of an optimizing compiler
("routines expressed in ILOC, a low-level intermediate language designed
to allow extensive optimization").  This pass removes instructions whose
results are never used and that have no side effects — including the dead
copies and address computations the naive MiniFort code generator leaves
behind.

The analysis is a backward mark-and-sweep over def-use information,
iterated to a fixed point (removing one dead instruction can kill the
instructions feeding it).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import Function, Instruction, Opcode


@dataclass
class DCEStats:
    """How many instructions the pass removed."""

    removed: int = 0
    passes: int = 0


def _is_removable(inst: Instruction) -> bool:
    info = inst.info
    if info.has_side_effects or info.is_terminator:
        return False
    if inst.opcode is Opcode.PHI:
        return False  # DCE runs on executable (non-SSA) code
    if not inst.dests:
        return False
    return True


def eliminate_dead_code(fn: Function) -> DCEStats:
    """Remove dead pure instructions from *fn* in place.

    An instruction is dead when every destination is unused by any
    remaining instruction.  DIV is treated as pure: MiniFort division by
    zero is a dynamic error, but dead divisions produced by the front end
    are always the compiler's own temporaries, and the paper's optimizer
    removes them just the same.
    """
    stats = DCEStats()
    while True:
        stats.passes += 1
        used = set()
        for _blk, inst in fn.instructions():
            used.update(inst.srcs)
        removed_this_pass = 0
        for blk in fn.blocks:
            kept = []
            for inst in blk.instructions:
                if (_is_removable(inst)
                        and not any(d in used for d in inst.dests)):
                    removed_this_pass += 1
                    continue
                kept.append(inst)
            blk.instructions = kept
        stats.removed += removed_this_pass
        if removed_this_pass == 0:
            return stats
