"""Parser for the textual ILOC form produced by :mod:`repro.ir.printer`.

The grammar is line-oriented:

* ``proc NAME NPARAMS`` starts a function,
* ``LABEL:`` starts a basic block,
* anything else is ``MNEMONIC OPERAND*`` where the operand split into
  destinations, sources, immediates and labels is given by the opcode's
  signature,
* ``#`` starts a comment; blank lines are ignored.

Registers are written ``r4``/``f2`` (virtual) or ``R4``/``F2`` (physical).
"""

from __future__ import annotations

from .function import Function
from .instruction import Immediate, Instruction, Reg
from .opcodes import ImmKind, MNEMONIC_TO_OPCODE, Opcode, RegClass


class ParseError(ValueError):
    """Raised on malformed ILOC text, with a line number."""

    def __init__(self, lineno: int, message: str) -> None:
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


def _parse_reg(token: str, lineno: int) -> Reg:
    if len(token) < 2:
        raise ParseError(lineno, f"bad register {token!r}")
    head, tail = token[0], token[1:]
    try:
        index = int(tail)
    except ValueError:
        raise ParseError(lineno, f"bad register {token!r}") from None
    if head == "r":
        return Reg(RegClass.INT, index)
    if head == "f":
        return Reg(RegClass.FLOAT, index)
    if head == "R":
        return Reg(RegClass.INT, index, physical=True)
    if head == "F":
        return Reg(RegClass.FLOAT, index, physical=True)
    raise ParseError(lineno, f"bad register {token!r}")


def _parse_imm(token: str, kind: ImmKind, lineno: int) -> Immediate:
    try:
        if kind is ImmKind.INT:
            return int(token)
        return float(token)
    except ValueError:
        raise ParseError(lineno, f"bad immediate {token!r}") from None


def _parse_instruction(tokens: list[str], lineno: int) -> Instruction:
    mnemonic = tokens[0]
    opcode = MNEMONIC_TO_OPCODE.get(mnemonic)
    if opcode is None:
        raise ParseError(lineno, f"unknown opcode {mnemonic!r}")
    operands = tokens[1:]
    if opcode is Opcode.PHI:
        if not operands:
            raise ParseError(lineno, "phi needs operands")
        regs = [_parse_reg(t, lineno) for t in operands]
        return Instruction(opcode, dests=regs[:1], srcs=regs[1:])
    info = opcode.info
    expected = (len(info.dests) + len(info.srcs) + len(info.imms)
                + info.n_labels)
    if len(operands) != expected:
        raise ParseError(
            lineno,
            f"{mnemonic}: expected {expected} operands, got {len(operands)}")
    pos = 0
    dests = [_parse_reg(operands[pos + i], lineno)
             for i in range(len(info.dests))]
    pos += len(info.dests)
    srcs = [_parse_reg(operands[pos + i], lineno)
            for i in range(len(info.srcs))]
    pos += len(info.srcs)
    imms = [_parse_imm(operands[pos + i], kind, lineno)
            for i, kind in enumerate(info.imms)]
    pos += len(info.imms)
    labels = operands[pos:]
    inst = Instruction(opcode, dests, srcs, imms, labels)
    try:
        inst.validate()
    except ValueError as exc:
        raise ParseError(lineno, str(exc)) from None
    return inst


def parse_function(text: str) -> Function:
    """Parse one function from *text*."""
    fn: Function | None = None
    current = None
    max_vreg = -1
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("proc "):
            if fn is not None:
                raise ParseError(lineno, "multiple 'proc' headers")
            parts = line.split()
            if len(parts) != 3:
                raise ParseError(lineno, "expected 'proc NAME NPARAMS'")
            try:
                n_params = int(parts[2])
            except ValueError:
                raise ParseError(lineno, "bad NPARAMS") from None
            fn = Function(parts[1], n_params)
            continue
        if fn is None:
            raise ParseError(lineno, "missing 'proc' header")
        if line.endswith(":"):
            label = line[:-1].strip()
            if not label:
                raise ParseError(lineno, "empty block label")
            current = fn.add_block(label)
            continue
        if current is None:
            raise ParseError(lineno, "instruction outside any block")
        inst = _parse_instruction(line.split(), lineno)
        for reg in inst.regs():
            if not reg.physical:
                max_vreg = max(max_vreg, reg.index)
        current.append(inst)
    if fn is None:
        raise ParseError(0, "no 'proc' header found")
    fn.reserve_regs(max_vreg + 1)
    return fn
