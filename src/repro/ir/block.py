"""Basic blocks."""

from __future__ import annotations

from typing import Iterable, Iterator

from .instruction import Instruction
from .opcodes import Opcode


class BasicBlock:
    """A labeled, straight-line sequence of instructions.

    A *well-formed* block ends with exactly one terminator (``jmp``, ``cbr``
    or ``ret``) and contains no other terminators.  Blocks under construction
    may be temporarily unterminated.
    """

    __slots__ = ("label", "instructions")

    def __init__(self, label: str,
                 instructions: Iterable[Instruction] = ()) -> None:
        self.label = label
        self.instructions: list[Instruction] = list(instructions)

    # -- structure ---------------------------------------------------------------

    @property
    def terminator(self) -> Instruction:
        """The block's terminator instruction.

        Raises ``ValueError`` on an unterminated block.
        """
        if not self.instructions or not self.instructions[-1].is_terminator:
            raise ValueError(f"block {self.label} is not terminated")
        return self.instructions[-1]

    @property
    def is_terminated(self) -> bool:
        return bool(self.instructions) and self.instructions[-1].is_terminator

    def successors(self) -> tuple[str, ...]:
        """Labels of successor blocks, in branch order."""
        return self.terminator.labels

    def body(self) -> list[Instruction]:
        """All instructions except the terminator."""
        if self.is_terminated:
            return self.instructions[:-1]
        return list(self.instructions)

    def phis(self) -> list[Instruction]:
        """Leading φ pseudo-instructions (only present during renumber)."""
        result = []
        for inst in self.instructions:
            if inst.opcode is Opcode.PHI:
                result.append(inst)
            else:
                break
        return result

    def append(self, inst: Instruction) -> None:
        self.instructions.append(inst)

    def insert_before_terminator(self, inst: Instruction) -> None:
        """Insert *inst* immediately before the terminator."""
        if not self.is_terminated:
            raise ValueError(f"block {self.label} is not terminated")
        self.instructions.insert(len(self.instructions) - 1, inst)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __str__(self) -> str:
        lines = [f"{self.label}:"]
        lines += [f"    {inst}" for inst in self.instructions]
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<BasicBlock {self.label} ({len(self.instructions)} insts)>"
