"""Textual form of ILOC functions.

The format round-trips through :mod:`repro.ir.parser`::

    proc example 1
    entry:
        param r0 0
        ldi r1 0
        jmp head
    head:
        cmp_lt r2 r1 r0
        cbr r2 body exit
    ...
"""

from __future__ import annotations

from .function import Function


def function_to_text(fn: Function) -> str:
    """Serialize *fn* to its textual form."""
    lines = [f"proc {fn.name} {fn.n_params}"]
    for blk in fn.blocks:
        lines.append(f"{blk.label}:")
        for inst in blk.instructions:
            lines.append(f"    {inst}")
    return "\n".join(lines) + "\n"


def print_function(fn: Function) -> None:
    """Print *fn* to stdout."""
    print(function_to_text(fn), end="")
