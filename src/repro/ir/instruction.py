"""Registers and instructions of the ILOC-like IR."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Union

from .opcodes import ImmKind, Opcode, OpcodeInfo, RegClass

Immediate = Union[int, float]


@dataclass(frozen=True)
class Reg:
    """A register operand.

    Before allocation all registers are *virtual* (an unbounded namespace);
    after allocation they are *physical* (indices into the machine's register
    file).  Integer and float registers live in disjoint namespaces.
    """

    rclass: RegClass
    index: int
    physical: bool = False

    def sort_key(self) -> tuple:
        return (self.rclass.value, self.physical, self.index)

    def __lt__(self, other: "Reg") -> bool:
        return self.sort_key() < other.sort_key()

    def __str__(self) -> str:
        prefix = self.rclass.value.upper() if self.physical else self.rclass.value
        return f"{prefix}{self.index}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Reg({self})"

    @staticmethod
    def vint(index: int) -> "Reg":
        """A virtual integer register."""
        return Reg(RegClass.INT, index)

    @staticmethod
    def vfloat(index: int) -> "Reg":
        """A virtual float register."""
        return Reg(RegClass.FLOAT, index)

    @staticmethod
    def pint(index: int) -> "Reg":
        """A physical integer register."""
        return Reg(RegClass.INT, index, physical=True)

    @staticmethod
    def pfloat(index: int) -> "Reg":
        """A physical float register."""
        return Reg(RegClass.FLOAT, index, physical=True)


class Instruction:
    """One ILOC instruction: an opcode plus operands.

    Operands are split by kind: destination registers, source registers,
    immediates and branch labels.  The split mirrors the opcode signature in
    :class:`~repro.ir.opcodes.OpcodeInfo`; :meth:`validate` checks the match.

    Instructions are mutable (the allocator rewrites registers in place), but
    operand tuples are replaced wholesale which keeps accidental aliasing
    away.
    """

    __slots__ = ("opcode", "dests", "srcs", "imms", "labels")

    def __init__(
        self,
        opcode: Opcode,
        dests: Iterable[Reg] = (),
        srcs: Iterable[Reg] = (),
        imms: Iterable[Immediate] = (),
        labels: Iterable[str] = (),
    ) -> None:
        self.opcode = opcode
        self.dests: tuple[Reg, ...] = tuple(dests)
        self.srcs: tuple[Reg, ...] = tuple(srcs)
        self.imms: tuple[Immediate, ...] = tuple(imms)
        self.labels: tuple[str, ...] = tuple(labels)

    # -- structural helpers ---------------------------------------------------

    @property
    def info(self) -> OpcodeInfo:
        return self.opcode.info

    @property
    def is_terminator(self) -> bool:
        return self.info.is_terminator

    @property
    def is_copy(self) -> bool:
        """True for plain copies *and* splits."""
        return self.info.is_copy

    @property
    def is_split(self) -> bool:
        return self.info.is_split

    @property
    def is_never_killed(self) -> bool:
        return self.info.never_killed

    @property
    def dest(self) -> Reg:
        """The single destination (raises if there is not exactly one)."""
        (d,) = self.dests
        return d

    @property
    def src(self) -> Reg:
        """The single source (raises if there is not exactly one)."""
        (s,) = self.srcs
        return s

    def regs(self) -> tuple[Reg, ...]:
        """All register operands, destinations first."""
        return self.dests + self.srcs

    def remat_key(self) -> tuple:
        """Identity of a never-killed computation: ``(opcode, imms)``.

        Two never-killed instructions compute the same value exactly when
        their keys are equal (the operand-by-operand comparison of the
        paper's modified meet, Section 3.2; register sources never occur on
        never-killed opcodes in this encoding).
        """
        if not self.is_never_killed:
            raise ValueError(f"{self} is not never-killed")
        return (self.opcode, self.imms)

    # -- rewriting -------------------------------------------------------------

    def rewrite_regs(self, mapping: dict[Reg, Reg]) -> None:
        """Replace register operands in place according to *mapping*.

        Registers absent from *mapping* are left untouched.
        """
        self.dests = tuple(mapping.get(r, r) for r in self.dests)
        self.srcs = tuple(mapping.get(r, r) for r in self.srcs)

    def copy(self) -> "Instruction":
        """A shallow clone of this instruction."""
        return Instruction(self.opcode, self.dests, self.srcs, self.imms,
                           self.labels)

    def with_labels(self, labels: Iterable[str]) -> "Instruction":
        """A clone with different branch labels."""
        return Instruction(self.opcode, self.dests, self.srcs, self.imms,
                           labels)

    # -- validation -------------------------------------------------------------

    def validate(self) -> None:
        """Raise ``ValueError`` if operands do not match the opcode signature."""
        info = self.info
        if self.opcode is Opcode.PHI:
            # PHI is a pseudo-op with a free-form signature: one dest, any
            # number of sources (one per predecessor), no imms/labels here.
            if len(self.dests) != 1 or self.imms or self.labels:
                raise ValueError(f"malformed phi: {self}")
            for s in self.srcs:
                if s.rclass is not self.dest.rclass:
                    raise ValueError(f"phi operand class mismatch: {self}")
            return
        if len(self.dests) != len(info.dests):
            raise ValueError(
                f"{info.mnemonic}: expected {len(info.dests)} dests, "
                f"got {len(self.dests)}")
        if len(self.srcs) != len(info.srcs):
            raise ValueError(
                f"{info.mnemonic}: expected {len(info.srcs)} srcs, "
                f"got {len(self.srcs)}")
        if len(self.imms) != len(info.imms):
            raise ValueError(
                f"{info.mnemonic}: expected {len(info.imms)} imms, "
                f"got {len(self.imms)}")
        if len(self.labels) != info.n_labels:
            raise ValueError(
                f"{info.mnemonic}: expected {info.n_labels} labels, "
                f"got {len(self.labels)}")
        for reg, cls in zip(self.dests, info.dests):
            if reg.rclass is not cls:
                raise ValueError(
                    f"{info.mnemonic}: dest {reg} should be {cls.name}")
        for reg, cls in zip(self.srcs, info.srcs):
            if reg.rclass is not cls:
                raise ValueError(
                    f"{info.mnemonic}: src {reg} should be {cls.name}")
        for imm, kind in zip(self.imms, info.imms):
            if kind is ImmKind.INT and not isinstance(imm, int):
                raise ValueError(
                    f"{info.mnemonic}: immediate {imm!r} should be int")
            if kind is ImmKind.FLOAT and not isinstance(imm, (int, float)):
                raise ValueError(
                    f"{info.mnemonic}: immediate {imm!r} should be float")

    # -- display ----------------------------------------------------------------

    def __str__(self) -> str:
        parts: list[str] = [self.info.mnemonic]
        operands: list[str] = [str(r) for r in self.dests]
        operands += [str(r) for r in self.srcs]
        operands += [repr(i) if isinstance(i, float) else str(i)
                     for i in self.imms]
        operands += list(self.labels)
        if operands:
            parts.append(" ".join(operands))
        return " ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Instruction {self}>"
