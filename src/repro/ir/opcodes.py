"""Opcode definitions for the ILOC-like intermediate language.

The instruction set follows the flavor of ILOC as used by Briggs, Cooper and
Torczon: a low-level, register-to-register code with explicit loads and
stores, immediate forms, and simple two-way conditional branches.  Each
opcode carries the metadata the rest of the system needs:

* its operand *signature* (register classes of destinations and sources,
  kinds of immediates, number of branch labels),
* whether it is *never-killed* in Chaitin's sense — recomputable anywhere in
  the procedure from operands that are always available (Section 3 of the
  paper),
* the *instrumentation class* used by the dynamic counters that reproduce the
  paper's Table 1 columns (``load``, ``store``, ``copy``, ``ldi``, ``addi``,
  ``other``),
* its cycle cost under the paper's simple model (loads and stores cost two
  cycles, everything else one — Section 5.1).

Never-killed opcodes in this encoding take no register sources; the frame
pointer and static-data pointer are implicit in ``LFP``/``LSD``/``CLDW``/
``CLDF``/``SPLD``/``SPST``, which keeps the "operands always available"
requirement true by construction and makes tag equality a comparison of
``(opcode, immediates)``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RegClass(enum.Enum):
    """Register class: integer or floating point.

    The paper's target machine has sixteen integer and sixteen floating-point
    registers; the classes never interfere with each other.
    """

    INT = "r"
    FLOAT = "f"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RegClass.{self.name}"


class CountClass(enum.Enum):
    """Instrumentation classes matching the columns of the paper's Table 1."""

    LOAD = "load"
    STORE = "store"
    COPY = "copy"
    LDI = "ldi"
    ADDI = "addi"
    OTHER = "other"


class ImmKind(enum.Enum):
    """Kinds of immediate operands an opcode may carry."""

    INT = "int"
    FLOAT = "float"


@dataclass(frozen=True)
class OpcodeInfo:
    """Static description of one opcode."""

    mnemonic: str
    dests: tuple[RegClass, ...] = ()
    srcs: tuple[RegClass, ...] = ()
    imms: tuple[ImmKind, ...] = ()
    n_labels: int = 0
    never_killed: bool = False
    count_class: CountClass = CountClass.OTHER
    is_terminator: bool = False
    has_side_effects: bool = False
    is_copy: bool = False
    is_split: bool = False
    commutative: bool = False

    @property
    def cost(self) -> int:
        """Cycle cost under the paper's model: loads/stores 2, others 1."""
        if self.count_class in (CountClass.LOAD, CountClass.STORE):
            return 2
        return 1


class Opcode(enum.Enum):
    """All opcodes of the ILOC-like IR.

    Values are :class:`OpcodeInfo` records; use :attr:`Opcode.info` to
    access them.
    """

    # --- never-killed definitions (Section 3 of the paper) -----------------
    #: load integer immediate: ``ldi rD, imm``
    LDI = OpcodeInfo("ldi", dests=(RegClass.INT,), imms=(ImmKind.INT,),
                     never_killed=True, count_class=CountClass.LDI)
    #: load float immediate: ``ldf fD, imm``
    LDF = OpcodeInfo("ldf", dests=(RegClass.FLOAT,), imms=(ImmKind.FLOAT,),
                     never_killed=True, count_class=CountClass.LDI)
    #: frame-pointer offset: ``lfp rD, imm``  (rD = FP + imm)
    LFP = OpcodeInfo("lfp", dests=(RegClass.INT,), imms=(ImmKind.INT,),
                     never_killed=True, count_class=CountClass.ADDI)
    #: static-data offset: ``lsd rD, imm``  (rD = SD + imm)
    LSD = OpcodeInfo("lsd", dests=(RegClass.INT,), imms=(ImmKind.INT,),
                     never_killed=True, count_class=CountClass.ADDI)
    #: load int from a known-constant static location: ``cldw rD, imm``
    CLDW = OpcodeInfo("cldw", dests=(RegClass.INT,), imms=(ImmKind.INT,),
                      never_killed=True, count_class=CountClass.LOAD)
    #: load float from a known-constant static location: ``cldf fD, imm``
    CLDF = OpcodeInfo("cldf", dests=(RegClass.FLOAT,), imms=(ImmKind.INT,),
                      never_killed=True, count_class=CountClass.LOAD)
    #: read incoming integer parameter from its frame home: ``param rD, idx``
    PARAM = OpcodeInfo("param", dests=(RegClass.INT,), imms=(ImmKind.INT,),
                       never_killed=True, count_class=CountClass.LOAD)
    #: read incoming float parameter from its frame home: ``fparam fD, idx``
    FPARAM = OpcodeInfo("fparam", dests=(RegClass.FLOAT,), imms=(ImmKind.INT,),
                        never_killed=True, count_class=CountClass.LOAD)

    # --- integer arithmetic -------------------------------------------------
    ADD = OpcodeInfo("add", dests=(RegClass.INT,),
                     srcs=(RegClass.INT, RegClass.INT), commutative=True)
    SUB = OpcodeInfo("sub", dests=(RegClass.INT,),
                     srcs=(RegClass.INT, RegClass.INT))
    MUL = OpcodeInfo("mul", dests=(RegClass.INT,),
                     srcs=(RegClass.INT, RegClass.INT), commutative=True)
    DIV = OpcodeInfo("div", dests=(RegClass.INT,),
                     srcs=(RegClass.INT, RegClass.INT))
    NEG = OpcodeInfo("neg", dests=(RegClass.INT,), srcs=(RegClass.INT,))
    ADDI = OpcodeInfo("addi", dests=(RegClass.INT,), srcs=(RegClass.INT,),
                      imms=(ImmKind.INT,), count_class=CountClass.ADDI)
    SUBI = OpcodeInfo("subi", dests=(RegClass.INT,), srcs=(RegClass.INT,),
                      imms=(ImmKind.INT,), count_class=CountClass.ADDI)
    MULI = OpcodeInfo("muli", dests=(RegClass.INT,), srcs=(RegClass.INT,),
                      imms=(ImmKind.INT,), count_class=CountClass.ADDI)

    # --- integer comparisons (result is 0/1 in an int register) ------------
    CMP_LT = OpcodeInfo("cmp_lt", dests=(RegClass.INT,),
                        srcs=(RegClass.INT, RegClass.INT))
    CMP_LE = OpcodeInfo("cmp_le", dests=(RegClass.INT,),
                        srcs=(RegClass.INT, RegClass.INT))
    CMP_GT = OpcodeInfo("cmp_gt", dests=(RegClass.INT,),
                        srcs=(RegClass.INT, RegClass.INT))
    CMP_GE = OpcodeInfo("cmp_ge", dests=(RegClass.INT,),
                        srcs=(RegClass.INT, RegClass.INT))
    CMP_EQ = OpcodeInfo("cmp_eq", dests=(RegClass.INT,),
                        srcs=(RegClass.INT, RegClass.INT), commutative=True)
    CMP_NE = OpcodeInfo("cmp_ne", dests=(RegClass.INT,),
                        srcs=(RegClass.INT, RegClass.INT), commutative=True)

    # --- float arithmetic ---------------------------------------------------
    FADD = OpcodeInfo("fadd", dests=(RegClass.FLOAT,),
                      srcs=(RegClass.FLOAT, RegClass.FLOAT), commutative=True)
    FSUB = OpcodeInfo("fsub", dests=(RegClass.FLOAT,),
                      srcs=(RegClass.FLOAT, RegClass.FLOAT))
    FMUL = OpcodeInfo("fmul", dests=(RegClass.FLOAT,),
                      srcs=(RegClass.FLOAT, RegClass.FLOAT), commutative=True)
    FDIV = OpcodeInfo("fdiv", dests=(RegClass.FLOAT,),
                      srcs=(RegClass.FLOAT, RegClass.FLOAT))
    FABS = OpcodeInfo("fabs", dests=(RegClass.FLOAT,), srcs=(RegClass.FLOAT,))
    FNEG = OpcodeInfo("fneg", dests=(RegClass.FLOAT,), srcs=(RegClass.FLOAT,))

    # --- float comparisons (int 0/1 result) ---------------------------------
    FCMP_LT = OpcodeInfo("fcmp_lt", dests=(RegClass.INT,),
                         srcs=(RegClass.FLOAT, RegClass.FLOAT))
    FCMP_LE = OpcodeInfo("fcmp_le", dests=(RegClass.INT,),
                         srcs=(RegClass.FLOAT, RegClass.FLOAT))
    FCMP_GT = OpcodeInfo("fcmp_gt", dests=(RegClass.INT,),
                         srcs=(RegClass.FLOAT, RegClass.FLOAT))
    FCMP_GE = OpcodeInfo("fcmp_ge", dests=(RegClass.INT,),
                         srcs=(RegClass.FLOAT, RegClass.FLOAT))
    FCMP_EQ = OpcodeInfo("fcmp_eq", dests=(RegClass.INT,),
                         srcs=(RegClass.FLOAT, RegClass.FLOAT))
    FCMP_NE = OpcodeInfo("fcmp_ne", dests=(RegClass.INT,),
                         srcs=(RegClass.FLOAT, RegClass.FLOAT))

    # --- conversions ---------------------------------------------------------
    I2F = OpcodeInfo("i2f", dests=(RegClass.FLOAT,), srcs=(RegClass.INT,))
    F2I = OpcodeInfo("f2i", dests=(RegClass.INT,), srcs=(RegClass.FLOAT,))

    # --- memory --------------------------------------------------------------
    #: load int: ``ldw rD, rA``  (rD = mem[rA])
    LDW = OpcodeInfo("ldw", dests=(RegClass.INT,), srcs=(RegClass.INT,),
                     count_class=CountClass.LOAD)
    #: load int with offset: ``ldwo rD, rA, imm``  (rD = mem[rA + imm])
    LDWO = OpcodeInfo("ldwo", dests=(RegClass.INT,), srcs=(RegClass.INT,),
                      imms=(ImmKind.INT,), count_class=CountClass.LOAD)
    #: store int: ``stw rS, rA``  (mem[rA] = rS)
    STW = OpcodeInfo("stw", srcs=(RegClass.INT, RegClass.INT),
                     count_class=CountClass.STORE, has_side_effects=True)
    #: store int with offset: ``stwo rS, rA, imm``  (mem[rA + imm] = rS)
    STWO = OpcodeInfo("stwo", srcs=(RegClass.INT, RegClass.INT),
                      imms=(ImmKind.INT,),
                      count_class=CountClass.STORE, has_side_effects=True)
    #: load float: ``fld fD, rA``
    FLD = OpcodeInfo("fld", dests=(RegClass.FLOAT,), srcs=(RegClass.INT,),
                     count_class=CountClass.LOAD)
    #: load float with offset: ``fldo fD, rA, imm``
    FLDO = OpcodeInfo("fldo", dests=(RegClass.FLOAT,), srcs=(RegClass.INT,),
                      imms=(ImmKind.INT,), count_class=CountClass.LOAD)
    #: store float: ``fst fS, rA``
    FST = OpcodeInfo("fst", srcs=(RegClass.FLOAT, RegClass.INT),
                     count_class=CountClass.STORE, has_side_effects=True)
    #: store float with offset: ``fsto fS, rA, imm``
    FSTO = OpcodeInfo("fsto", srcs=(RegClass.FLOAT, RegClass.INT),
                      imms=(ImmKind.INT,),
                      count_class=CountClass.STORE, has_side_effects=True)

    # --- spill code (frame slots; FP implicit) -------------------------------
    #: reload an int spill slot: ``spld rD, slot``
    SPLD = OpcodeInfo("spld", dests=(RegClass.INT,), imms=(ImmKind.INT,),
                      count_class=CountClass.LOAD)
    #: store to an int spill slot: ``spst rS, slot``
    SPST = OpcodeInfo("spst", srcs=(RegClass.INT,), imms=(ImmKind.INT,),
                      count_class=CountClass.STORE, has_side_effects=True)
    #: reload a float spill slot: ``fspld fD, slot``
    FSPLD = OpcodeInfo("fspld", dests=(RegClass.FLOAT,), imms=(ImmKind.INT,),
                       count_class=CountClass.LOAD)
    #: store to a float spill slot: ``fspst fS, slot``
    FSPST = OpcodeInfo("fspst", srcs=(RegClass.FLOAT,), imms=(ImmKind.INT,),
                       count_class=CountClass.STORE, has_side_effects=True)

    # --- copies --------------------------------------------------------------
    COPY = OpcodeInfo("copy", dests=(RegClass.INT,), srcs=(RegClass.INT,),
                      count_class=CountClass.COPY, is_copy=True)
    FCOPY = OpcodeInfo("fcopy", dests=(RegClass.FLOAT,), srcs=(RegClass.FLOAT,),
                       count_class=CountClass.COPY, is_copy=True)
    #: a *split* is a distinguished copy introduced by renumber (Section 4.1)
    SPLIT = OpcodeInfo("split", dests=(RegClass.INT,), srcs=(RegClass.INT,),
                       count_class=CountClass.COPY, is_copy=True,
                       is_split=True)
    FSPLIT = OpcodeInfo("fsplit", dests=(RegClass.FLOAT,),
                        srcs=(RegClass.FLOAT,),
                        count_class=CountClass.COPY, is_copy=True,
                        is_split=True)

    # --- control flow --------------------------------------------------------
    JMP = OpcodeInfo("jmp", n_labels=1, is_terminator=True,
                     has_side_effects=True)
    #: conditional branch: ``cbr rA, Ltrue, Lfalse``  (taken if rA != 0)
    CBR = OpcodeInfo("cbr", srcs=(RegClass.INT,), n_labels=2,
                     is_terminator=True, has_side_effects=True)
    RET = OpcodeInfo("ret", is_terminator=True, has_side_effects=True)

    # --- observable output (used by the interpreter-based experiments) ------
    OUT = OpcodeInfo("out", srcs=(RegClass.INT,), has_side_effects=True)
    FOUT = OpcodeInfo("fout", srcs=(RegClass.FLOAT,), has_side_effects=True)

    NOP = OpcodeInfo("nop")

    # --- SSA pseudo-instruction (only present inside renumber) --------------
    PHI = OpcodeInfo("phi", has_side_effects=False)

    @property
    def info(self) -> OpcodeInfo:
        """The :class:`OpcodeInfo` record for this opcode."""
        return self.value

    @property
    def mnemonic(self) -> str:
        return self.value.mnemonic

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Opcode.{self.name}"


#: map mnemonic -> Opcode, used by the textual parser
MNEMONIC_TO_OPCODE: dict[str, Opcode] = {op.mnemonic: op for op in Opcode}

#: opcodes that are never-killed in Chaitin's sense
NEVER_KILLED: frozenset[Opcode] = frozenset(
    op for op in Opcode if op.info.never_killed
)


def count_class_of(op: Opcode) -> CountClass:
    """Instrumentation class of *op* (the Table 1 column it lands in)."""
    return op.info.count_class


def cycle_cost_of(op: Opcode) -> int:
    """Cycle cost of *op* under the paper's model (Section 5.1)."""
    return op.info.cost
