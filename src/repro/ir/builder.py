"""A convenience builder for constructing ILOC functions in Python code."""

from __future__ import annotations

from .block import BasicBlock
from .function import Function
from .instruction import Immediate, Instruction, Reg
from .opcodes import Opcode, RegClass


class IRBuilder:
    """Builds a :class:`~repro.ir.function.Function` incrementally.

    Typical use::

        b = IRBuilder("loop", n_params=1)
        n = b.param(0)
        i = b.ldi(0)
        b.jmp("head")
        b.label("head")
        ...

    Instructions are appended to the *current block*, set by :meth:`label`.
    Register-producing helpers mint a fresh virtual destination register and
    return it; each helper validates the instruction it emits.
    """

    def __init__(self, name: str, n_params: int = 0,
                 entry_label: str = "entry") -> None:
        self.function = Function(name, n_params)
        self._current: BasicBlock = self.function.add_block(entry_label)

    # -- block control -----------------------------------------------------------

    def label(self, name: str) -> BasicBlock:
        """Start (or resume) the block called *name* and make it current."""
        if self.function.has_block(name):
            blk = self.function.block(name)
        else:
            blk = self.function.add_block(name)
        self._current = blk
        return blk

    @property
    def current(self) -> BasicBlock:
        return self._current

    def emit(self, opcode: Opcode, dests=(), srcs=(), imms=(),
             labels=()) -> Instruction:
        """Append a raw instruction to the current block."""
        inst = Instruction(opcode, dests, srcs, imms, labels)
        inst.validate()
        if self._current.is_terminated:
            raise ValueError(
                f"block {self._current.label} already terminated")
        self._current.append(inst)
        return inst

    def _unary(self, opcode: Opcode, src: Reg) -> Reg:
        dest = self.function.new_reg(opcode.info.dests[0])
        self.emit(opcode, dests=(dest,), srcs=(src,))
        return dest

    def _binary(self, opcode: Opcode, a: Reg, b: Reg) -> Reg:
        dest = self.function.new_reg(opcode.info.dests[0])
        self.emit(opcode, dests=(dest,), srcs=(a, b))
        return dest

    def _imm_unary(self, opcode: Opcode, src: Reg, imm: Immediate) -> Reg:
        dest = self.function.new_reg(opcode.info.dests[0])
        self.emit(opcode, dests=(dest,), srcs=(src,), imms=(imm,))
        return dest

    def _imm_only(self, opcode: Opcode, imm: Immediate) -> Reg:
        dest = self.function.new_reg(opcode.info.dests[0])
        self.emit(opcode, dests=(dest,), imms=(imm,))
        return dest

    # -- never-killed definitions ---------------------------------------------------

    def ldi(self, value: int) -> Reg:
        return self._imm_only(Opcode.LDI, value)

    def ldf(self, value: float) -> Reg:
        return self._imm_only(Opcode.LDF, float(value))

    def lfp(self, offset: int) -> Reg:
        return self._imm_only(Opcode.LFP, offset)

    def lsd(self, offset: int) -> Reg:
        return self._imm_only(Opcode.LSD, offset)

    def cldw(self, offset: int) -> Reg:
        return self._imm_only(Opcode.CLDW, offset)

    def cldf(self, offset: int) -> Reg:
        return self._imm_only(Opcode.CLDF, offset)

    def param(self, index: int) -> Reg:
        return self._imm_only(Opcode.PARAM, index)

    def fparam(self, index: int) -> Reg:
        return self._imm_only(Opcode.FPARAM, index)

    # -- integer arithmetic -------------------------------------------------------------

    def add(self, a: Reg, b: Reg) -> Reg:
        return self._binary(Opcode.ADD, a, b)

    def sub(self, a: Reg, b: Reg) -> Reg:
        return self._binary(Opcode.SUB, a, b)

    def mul(self, a: Reg, b: Reg) -> Reg:
        return self._binary(Opcode.MUL, a, b)

    def div(self, a: Reg, b: Reg) -> Reg:
        return self._binary(Opcode.DIV, a, b)

    def neg(self, a: Reg) -> Reg:
        return self._unary(Opcode.NEG, a)

    def addi(self, a: Reg, imm: int) -> Reg:
        return self._imm_unary(Opcode.ADDI, a, imm)

    def subi(self, a: Reg, imm: int) -> Reg:
        return self._imm_unary(Opcode.SUBI, a, imm)

    def muli(self, a: Reg, imm: int) -> Reg:
        return self._imm_unary(Opcode.MULI, a, imm)

    # -- comparisons -----------------------------------------------------------------------

    def cmp_lt(self, a: Reg, b: Reg) -> Reg:
        return self._binary(Opcode.CMP_LT, a, b)

    def cmp_le(self, a: Reg, b: Reg) -> Reg:
        return self._binary(Opcode.CMP_LE, a, b)

    def cmp_gt(self, a: Reg, b: Reg) -> Reg:
        return self._binary(Opcode.CMP_GT, a, b)

    def cmp_ge(self, a: Reg, b: Reg) -> Reg:
        return self._binary(Opcode.CMP_GE, a, b)

    def cmp_eq(self, a: Reg, b: Reg) -> Reg:
        return self._binary(Opcode.CMP_EQ, a, b)

    def cmp_ne(self, a: Reg, b: Reg) -> Reg:
        return self._binary(Opcode.CMP_NE, a, b)

    def fcmp_lt(self, a: Reg, b: Reg) -> Reg:
        return self._binary(Opcode.FCMP_LT, a, b)

    def fcmp_le(self, a: Reg, b: Reg) -> Reg:
        return self._binary(Opcode.FCMP_LE, a, b)

    def fcmp_gt(self, a: Reg, b: Reg) -> Reg:
        return self._binary(Opcode.FCMP_GT, a, b)

    def fcmp_ge(self, a: Reg, b: Reg) -> Reg:
        return self._binary(Opcode.FCMP_GE, a, b)

    def fcmp_eq(self, a: Reg, b: Reg) -> Reg:
        return self._binary(Opcode.FCMP_EQ, a, b)

    def fcmp_ne(self, a: Reg, b: Reg) -> Reg:
        return self._binary(Opcode.FCMP_NE, a, b)

    # -- float arithmetic ----------------------------------------------------------------------

    def fadd(self, a: Reg, b: Reg) -> Reg:
        return self._binary(Opcode.FADD, a, b)

    def fsub(self, a: Reg, b: Reg) -> Reg:
        return self._binary(Opcode.FSUB, a, b)

    def fmul(self, a: Reg, b: Reg) -> Reg:
        return self._binary(Opcode.FMUL, a, b)

    def fdiv(self, a: Reg, b: Reg) -> Reg:
        return self._binary(Opcode.FDIV, a, b)

    def fabs(self, a: Reg) -> Reg:
        return self._unary(Opcode.FABS, a)

    def fneg(self, a: Reg) -> Reg:
        return self._unary(Opcode.FNEG, a)

    def i2f(self, a: Reg) -> Reg:
        return self._unary(Opcode.I2F, a)

    def f2i(self, a: Reg) -> Reg:
        return self._unary(Opcode.F2I, a)

    # -- memory ------------------------------------------------------------------------------------

    def ldw(self, addr: Reg) -> Reg:
        return self._unary(Opcode.LDW, addr)

    def ldwo(self, addr: Reg, offset: int) -> Reg:
        return self._imm_unary(Opcode.LDWO, addr, offset)

    def stw(self, value: Reg, addr: Reg) -> None:
        self.emit(Opcode.STW, srcs=(value, addr))

    def stwo(self, value: Reg, addr: Reg, offset: int) -> None:
        self.emit(Opcode.STWO, srcs=(value, addr), imms=(offset,))

    def fld(self, addr: Reg) -> Reg:
        return self._unary(Opcode.FLD, addr)

    def fldo(self, addr: Reg, offset: int) -> Reg:
        return self._imm_unary(Opcode.FLDO, addr, offset)

    def fst(self, value: Reg, addr: Reg) -> None:
        self.emit(Opcode.FST, srcs=(value, addr))

    def fsto(self, value: Reg, addr: Reg, offset: int) -> None:
        self.emit(Opcode.FSTO, srcs=(value, addr), imms=(offset,))

    # -- copies ---------------------------------------------------------------------------------------

    def copy(self, src: Reg) -> Reg:
        opcode = Opcode.COPY if src.rclass is RegClass.INT else Opcode.FCOPY
        return self._unary(opcode, src)

    def copy_to(self, dest: Reg, src: Reg) -> Instruction:
        """Copy into an *existing* register (used for variable assignment)."""
        opcode = Opcode.COPY if src.rclass is RegClass.INT else Opcode.FCOPY
        return self.emit(opcode, dests=(dest,), srcs=(src,))

    # -- control flow -------------------------------------------------------------------------------------

    def jmp(self, target: str) -> None:
        self.emit(Opcode.JMP, labels=(target,))

    def cbr(self, cond: Reg, if_true: str, if_false: str) -> None:
        self.emit(Opcode.CBR, srcs=(cond,), labels=(if_true, if_false))

    def ret(self) -> None:
        self.emit(Opcode.RET)

    def out(self, value: Reg) -> None:
        if value.rclass is RegClass.INT:
            self.emit(Opcode.OUT, srcs=(value,))
        else:
            self.emit(Opcode.FOUT, srcs=(value,))

    # -- finishing -----------------------------------------------------------------------------------------------

    def finish(self) -> Function:
        """Validate termination of every block and return the function."""
        for blk in self.function.blocks:
            if not blk.is_terminated:
                raise ValueError(f"block {blk.label} is not terminated")
        return self.function
