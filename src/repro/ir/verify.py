"""Structural verification of ILOC functions."""

from __future__ import annotations

from .function import Function
from .instruction import Reg
from .opcodes import Opcode


class VerificationError(ValueError):
    """Raised when a function violates a structural invariant."""


def verify_function(fn: Function, allow_phis: bool = False,
                    require_physical: bool = False,
                    max_int_reg: int | None = None,
                    max_float_reg: int | None = None) -> None:
    """Check structural invariants of *fn*; raise on violation.

    * every block is terminated, with the terminator last and unique,
    * branch targets exist,
    * operand signatures match opcodes,
    * φ pseudo-instructions appear only if *allow_phis* and only at the top
      of a block,
    * with *require_physical*, every register is physical and within the
      file sizes given by *max_int_reg* / *max_float_reg*.
    """
    if not fn.blocks:
        raise VerificationError(f"{fn.name}: no blocks")
    labels = {b.label for b in fn.blocks}
    for blk in fn.blocks:
        if not blk.is_terminated:
            raise VerificationError(f"{fn.name}/{blk.label}: unterminated")
        seen_non_phi = False
        for i, inst in enumerate(blk.instructions):
            try:
                inst.validate()
            except ValueError as exc:
                raise VerificationError(
                    f"{fn.name}/{blk.label}: {exc}") from None
            if inst.is_terminator and i != len(blk.instructions) - 1:
                raise VerificationError(
                    f"{fn.name}/{blk.label}: terminator {inst} not last")
            if inst.opcode is Opcode.PHI:
                if not allow_phis:
                    raise VerificationError(
                        f"{fn.name}/{blk.label}: unexpected phi {inst}")
                if seen_non_phi:
                    raise VerificationError(
                        f"{fn.name}/{blk.label}: phi {inst} after non-phi")
            else:
                seen_non_phi = True
            for label in inst.labels:
                if label not in labels:
                    raise VerificationError(
                        f"{fn.name}/{blk.label}: unknown target {label!r}")
            if require_physical:
                _check_physical(fn, blk.label, inst.regs(),
                                max_int_reg, max_float_reg)


def _check_physical(fn: Function, blabel: str, regs: tuple[Reg, ...],
                    max_int_reg: int | None,
                    max_float_reg: int | None) -> None:
    from .opcodes import RegClass

    for reg in regs:
        if not reg.physical:
            raise VerificationError(
                f"{fn.name}/{blabel}: virtual register {reg} after allocation")
        limit = max_int_reg if reg.rclass is RegClass.INT else max_float_reg
        if limit is not None and reg.index >= limit:
            raise VerificationError(
                f"{fn.name}/{blabel}: register {reg} out of file (k={limit})")
