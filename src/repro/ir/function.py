"""Functions (procedures) and their control-flow graphs."""

from __future__ import annotations

from typing import Iterator

from .block import BasicBlock
from .instruction import Instruction, Reg
from .opcodes import Opcode, RegClass


class Function:
    """A single procedure: an ordered collection of basic blocks.

    The first block in :attr:`blocks` order is the entry block.  Virtual
    register numbering is managed here so passes can mint fresh registers
    with :meth:`new_reg`.
    """

    def __init__(self, name: str, n_params: int = 0) -> None:
        self.name = name
        self.n_params = n_params
        self.blocks: list[BasicBlock] = []
        self._by_label: dict[str, BasicBlock] = {}
        self._next_vreg = 0
        self._next_label = 0
        #: number of spill slots handed out so far (grown by spill code)
        self.n_spill_slots = 0

    # -- block management ---------------------------------------------------------

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def block(self, label: str) -> BasicBlock:
        return self._by_label[label]

    def has_block(self, label: str) -> bool:
        return label in self._by_label

    def add_block(self, label: str | None = None) -> BasicBlock:
        """Create, register and return a new block.

        With no *label* a fresh one is generated.
        """
        if label is None:
            label = self.new_label()
        if label in self._by_label:
            raise ValueError(f"duplicate block label {label!r}")
        blk = BasicBlock(label)
        self.blocks.append(blk)
        self._by_label[label] = blk
        return blk

    def remove_block(self, label: str) -> None:
        blk = self._by_label.pop(label)
        self.blocks.remove(blk)

    def new_label(self) -> str:
        """A fresh, unused block label."""
        while True:
            label = f"B{self._next_label}"
            self._next_label += 1
            if label not in self._by_label:
                return label

    # -- register management --------------------------------------------------------

    def new_reg(self, rclass: RegClass) -> Reg:
        """A fresh virtual register of class *rclass*."""
        reg = Reg(rclass, self._next_vreg)
        self._next_vreg += 1
        return reg

    def new_spill_slot(self) -> int:
        """A fresh spill slot index in the frame."""
        slot = self.n_spill_slots
        self.n_spill_slots += 1
        return slot

    def reserve_regs(self, upto: int) -> None:
        """Ensure :meth:`new_reg` never returns an index below *upto*.

        Used when a function was built by hand or parsed from text.
        """
        self._next_vreg = max(self._next_vreg, upto)

    # -- CFG ---------------------------------------------------------------------------

    def successors(self, label: str) -> tuple[str, ...]:
        return self.block(label).successors()

    def predecessors_map(self) -> dict[str, list[str]]:
        """Map block label -> ordered list of predecessor labels."""
        preds: dict[str, list[str]] = {b.label: [] for b in self.blocks}
        for blk in self.blocks:
            for succ in blk.successors():
                preds[succ].append(blk.label)
        return preds

    def reverse_postorder(self) -> list[str]:
        """Labels in reverse postorder from the entry (unreachable blocks
        are excluded)."""
        visited: set[str] = set()
        postorder: list[str] = []

        # Iterative DFS to dodge recursion limits on long chains.
        stack: list[tuple[str, Iterator[str]]] = []
        entry = self.entry.label
        visited.add(entry)
        stack.append((entry, iter(self.block(entry).successors())))
        while stack:
            label, succ_iter = stack[-1]
            advanced = False
            for succ in succ_iter:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(self.block(succ).successors())))
                    advanced = True
                    break
            if not advanced:
                postorder.append(label)
                stack.pop()
        return list(reversed(postorder))

    def remove_unreachable_blocks(self) -> list[str]:
        """Drop blocks not reachable from the entry; returns removed labels."""
        reachable = set(self.reverse_postorder())
        removed = [b.label for b in self.blocks if b.label not in reachable]
        for label in removed:
            self.remove_block(label)
        return removed

    # -- iteration helpers ---------------------------------------------------------------

    def instructions(self) -> Iterator[tuple[BasicBlock, Instruction]]:
        """Iterate ``(block, instruction)`` pairs in layout order."""
        for blk in self.blocks:
            for inst in blk.instructions:
                yield blk, inst

    def all_regs(self) -> set[Reg]:
        """Every register mentioned anywhere in the function."""
        regs: set[Reg] = set()
        for _, inst in self.instructions():
            regs.update(inst.regs())
        return regs

    def size(self) -> int:
        """Total instruction count."""
        return sum(len(b) for b in self.blocks)

    def clone(self) -> "Function":
        """A deep copy (instructions are cloned, counters preserved)."""
        out = Function(self.name, self.n_params)
        for blk in self.blocks:
            new_blk = out.add_block(blk.label)
            new_blk.instructions = [inst.copy() for inst in blk.instructions]
        out._next_vreg = self._next_vreg
        out._next_label = self._next_label
        out.n_spill_slots = self.n_spill_slots
        return out

    # -- edge splitting --------------------------------------------------------------------

    def split_critical_edges(self) -> int:
        """Insert empty blocks on critical edges; returns how many were split.

        An edge is *critical* when its source has several successors and its
        target has several predecessors.  Splitting them first lets renumber
        place φ-copies on an edge without executing them on sibling paths
        (Section 4.1's copies land in "the corresponding predecessor block",
        which is only precise on non-critical edges).
        """
        preds = self.predecessors_map()
        n_split = 0
        for blk in list(self.blocks):
            succs = blk.successors()
            if len(succs) < 2:
                continue
            new_labels = []
            changed = False
            for succ in succs:
                if len(preds[succ]) < 2:
                    new_labels.append(succ)
                    continue
                mid = self.add_block()
                mid.append(Instruction(Opcode.JMP, labels=(succ,)))
                new_labels.append(mid.label)
                n_split += 1
                changed = True
            if changed:
                term = blk.terminator
                blk.instructions[-1] = term.with_labels(new_labels)
        return n_split

    # -- display ------------------------------------------------------------------------------

    def __str__(self) -> str:
        header = f"proc {self.name} {self.n_params}"
        return "\n".join([header] + [str(b) for b in self.blocks])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Function {self.name} ({len(self.blocks)} blocks, "
                f"{self.size()} insts)>")
