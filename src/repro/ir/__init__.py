"""The ILOC-like intermediate representation.

Public surface: :class:`Opcode`, :class:`Reg`, :class:`Instruction`,
:class:`BasicBlock`, :class:`Function`, :class:`IRBuilder`, the textual
parser/printer and the verifier.
"""

from .block import BasicBlock
from .builder import IRBuilder
from .function import Function
from .instruction import Immediate, Instruction, Reg
from .opcodes import (CountClass, ImmKind, MNEMONIC_TO_OPCODE, NEVER_KILLED,
                      Opcode, OpcodeInfo, RegClass, count_class_of,
                      cycle_cost_of)
from .parser import ParseError, parse_function
from .printer import function_to_text, print_function
from .verify import VerificationError, verify_function

__all__ = [
    "BasicBlock",
    "CountClass",
    "Function",
    "IRBuilder",
    "Immediate",
    "ImmKind",
    "Instruction",
    "MNEMONIC_TO_OPCODE",
    "NEVER_KILLED",
    "Opcode",
    "OpcodeInfo",
    "ParseError",
    "Reg",
    "RegClass",
    "VerificationError",
    "count_class_of",
    "cycle_cost_of",
    "function_to_text",
    "parse_function",
    "print_function",
    "verify_function",
]
