"""ILOC → instrumented C translation (Figure 4 of the paper).

"After allocation, each ILOC routine is translated into a complete
C routine ... By inserting appropriate instrumentation during the
translation to C, we are able to collect accurate, dynamic measurements"
(Section 5).  Our experiments use the interpreter for counting instead,
but this emitter reproduces the translation itself: one C statement per
ILOC instruction with a counter bump per instrumentation class (the
``l++;``/``a++;``/``c++;``/``i++;``/``s++;`` of Figure 4).

The emitted routine is self-contained C89: registers become locals
declared ``register``, memory is a flat array indexed from the frame /
static-data bases, labels become C labels.
"""

from __future__ import annotations

from ..interp import FP_BASE, SD_BASE, WORD
from ..ir import CountClass, Function, Instruction, Opcode, Reg, RegClass

#: counter variable per instrumentation class, as in Figure 4
COUNTER_NAMES = {
    CountClass.LOAD: "l",
    CountClass.STORE: "s",
    CountClass.COPY: "c",
    CountClass.LDI: "i",
    CountClass.ADDI: "a",
    CountClass.OTHER: "o",
}

_CMP_OPS = {
    Opcode.CMP_LT: "<", Opcode.CMP_LE: "<=", Opcode.CMP_GT: ">",
    Opcode.CMP_GE: ">=", Opcode.CMP_EQ: "==", Opcode.CMP_NE: "!=",
    Opcode.FCMP_LT: "<", Opcode.FCMP_LE: "<=", Opcode.FCMP_GT: ">",
    Opcode.FCMP_GE: ">=", Opcode.FCMP_EQ: "==", Opcode.FCMP_NE: "!=",
}

_ARITH_OPS = {
    Opcode.ADD: "+", Opcode.SUB: "-", Opcode.MUL: "*", Opcode.DIV: "/",
    Opcode.FADD: "+", Opcode.FSUB: "-", Opcode.FMUL: "*", Opcode.FDIV: "/",
    Opcode.ADDI: "+", Opcode.SUBI: "-", Opcode.MULI: "*",
}


class CEmitterError(ValueError):
    """Raised for IR the C emitter cannot translate."""


def _c_reg(reg: Reg) -> str:
    prefix = "r" if reg.rclass is RegClass.INT else "f"
    suffix = "p" if reg.physical else "v"
    return f"{prefix}{reg.index}{suffix}"


def _imem(addr: str) -> str:
    return f"*((long *) mem({addr}))"


def _fmem(addr: str) -> str:
    return f"*((double *) mem({addr}))"


def _spill(slot: int) -> str:
    return f"{FP_BASE} - {WORD * (slot + 1)}"


def _statement(inst: Instruction) -> str:
    """One C statement for one ILOC instruction (without instrumentation)."""
    op = inst.opcode
    if op is Opcode.LDI:
        return f"{_c_reg(inst.dest)} = (long) ({inst.imms[0]});"
    if op is Opcode.LDF:
        return f"{_c_reg(inst.dest)} = {float(inst.imms[0])!r};"
    if op is Opcode.LFP:
        return f"{_c_reg(inst.dest)} = {FP_BASE} + {inst.imms[0]};"
    if op is Opcode.LSD:
        return f"{_c_reg(inst.dest)} = {SD_BASE} + {inst.imms[0]};"
    if op is Opcode.CLDW:
        return f"{_c_reg(inst.dest)} = cpool_i[{inst.imms[0]}];"
    if op is Opcode.CLDF:
        return f"{_c_reg(inst.dest)} = cpool_f[{inst.imms[0]}];"
    if op is Opcode.PARAM:
        return f"{_c_reg(inst.dest)} = (long) args[{inst.imms[0]}];"
    if op is Opcode.FPARAM:
        return f"{_c_reg(inst.dest)} = (double) args[{inst.imms[0]}];"
    if op in _ARITH_OPS and inst.imms:
        return (f"{_c_reg(inst.dest)} = {_c_reg(inst.src)} "
                f"{_ARITH_OPS[op]} ({inst.imms[0]});")
    if op in _ARITH_OPS:
        return (f"{_c_reg(inst.dest)} = {_c_reg(inst.srcs[0])} "
                f"{_ARITH_OPS[op]} {_c_reg(inst.srcs[1])};")
    if op is Opcode.NEG or op is Opcode.FNEG:
        return f"{_c_reg(inst.dest)} = -{_c_reg(inst.src)};"
    if op is Opcode.FABS:
        return f"{_c_reg(inst.dest)} = fabs({_c_reg(inst.src)});"
    if op in _CMP_OPS:
        return (f"{_c_reg(inst.dest)} = {_c_reg(inst.srcs[0])} "
                f"{_CMP_OPS[op]} {_c_reg(inst.srcs[1])};")
    if op is Opcode.I2F:
        return f"{_c_reg(inst.dest)} = (double) {_c_reg(inst.src)};"
    if op is Opcode.F2I:
        return f"{_c_reg(inst.dest)} = (long) {_c_reg(inst.src)};"
    if op is Opcode.LDW:
        return f"{_c_reg(inst.dest)} = {_imem(_c_reg(inst.src))};"
    if op is Opcode.LDWO:
        return (f"{_c_reg(inst.dest)} = "
                f"{_imem(f'{_c_reg(inst.src)} + {inst.imms[0]}')};")
    if op is Opcode.STW:
        return f"{_imem(_c_reg(inst.srcs[1]))} = {_c_reg(inst.srcs[0])};"
    if op is Opcode.STWO:
        addr = f"{_c_reg(inst.srcs[1])} + {inst.imms[0]}"
        return f"{_imem(addr)} = {_c_reg(inst.srcs[0])};"
    if op is Opcode.FLD:
        return f"{_c_reg(inst.dest)} = {_fmem(_c_reg(inst.src))};"
    if op is Opcode.FLDO:
        return (f"{_c_reg(inst.dest)} = "
                f"{_fmem(f'{_c_reg(inst.src)} + {inst.imms[0]}')};")
    if op is Opcode.FST:
        return f"{_fmem(_c_reg(inst.srcs[1]))} = {_c_reg(inst.srcs[0])};"
    if op is Opcode.FSTO:
        addr = f"{_c_reg(inst.srcs[1])} + {inst.imms[0]}"
        return f"{_fmem(addr)} = {_c_reg(inst.srcs[0])};"
    if op is Opcode.SPLD:
        return f"{_c_reg(inst.dest)} = {_imem(_spill(inst.imms[0]))};"
    if op is Opcode.SPST:
        return f"{_imem(_spill(inst.imms[0]))} = {_c_reg(inst.srcs[0])};"
    if op is Opcode.FSPLD:
        return f"{_c_reg(inst.dest)} = {_fmem(_spill(inst.imms[0]))};"
    if op is Opcode.FSPST:
        return f"{_fmem(_spill(inst.imms[0]))} = {_c_reg(inst.srcs[0])};"
    if op in (Opcode.COPY, Opcode.FCOPY, Opcode.SPLIT, Opcode.FSPLIT):
        return f"{_c_reg(inst.dest)} = {_c_reg(inst.src)};"
    if op is Opcode.JMP:
        return f"goto {inst.labels[0]};"
    if op is Opcode.CBR:
        return (f"if ({_c_reg(inst.src)}) goto {inst.labels[0]}; "
                f"else goto {inst.labels[1]};")
    if op is Opcode.RET:
        return "return;"
    if op is Opcode.OUT:
        return f'printf("%ld\\n", {_c_reg(inst.src)});'
    if op is Opcode.FOUT:
        return f'printf("%g\\n", {_c_reg(inst.src)});'
    if op is Opcode.NOP:
        return ";"
    raise CEmitterError(f"cannot translate {inst} to C")


def emit_instruction(inst: Instruction, instrument: bool = True) -> str:
    """The C line for *inst*, with the Figure 4 counter bump appended."""
    stmt = _statement(inst)
    if not instrument:
        return stmt
    counter = COUNTER_NAMES[inst.info.count_class]
    return f"{stmt} {counter}++;"


def emit_function(fn: Function, instrument: bool = True) -> str:
    """A complete instrumented C routine for *fn*."""
    int_regs = sorted({r for _b, i in fn.instructions() for r in i.regs()
                       if r.rclass is RegClass.INT})
    float_regs = sorted({r for _b, i in fn.instructions() for r in i.regs()
                         if r.rclass is RegClass.FLOAT})
    lines = [
        "#include <stdio.h>",
        "#include <math.h>",
        "",
        "static char memory[1 << 20];",
        "#define mem(addr) (memory + (addr))",
        "static long cpool_i[4096];",
        "static double cpool_f[4096];",
        "long l, s, c, i, a, o;  /* dynamic instruction counters */",
        "",
        f"void {fn.name}(double *args)",
        "{",
    ]
    if int_regs:
        decls = ", ".join(_c_reg(r) for r in int_regs)
        lines.append(f"    register long {decls};")
    if float_regs:
        decls = ", ".join(_c_reg(r) for r in float_regs)
        lines.append(f"    register double {decls};")
    lines.append(f"    goto {fn.entry.label};")
    for blk in fn.blocks:
        lines.append(f"{blk.label}:")
        for inst in blk.instructions:
            if inst.opcode is Opcode.PHI:
                raise CEmitterError("cannot emit C for a phi node")
            lines.append(f"    {emit_instruction(inst, instrument)}")
    lines.append("}")
    return "\n".join(lines) + "\n"
