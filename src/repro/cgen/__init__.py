"""ILOC → instrumented C translation (the paper's Figure 4)."""

from .c_emitter import (CEmitterError, COUNTER_NAMES, emit_function,
                        emit_instruction)

__all__ = ["CEmitterError", "COUNTER_NAMES", "emit_function",
           "emit_instruction"]
