"""The spill-cost measurement methodology of Section 5.2.

"We tested each routine on a hypothetical 'huge' machine with 128
registers ... The difference between the huge results and the results for
one of the allocators targeted to our standard machine should equal the
number of cycles added by the allocator to cope with insufficient
registers."

Costs are decomposed by instrumentation class (load / store / copy / ldi /
addi) so Table 1's percentage-contribution columns can be reproduced.

Measurements are *requests* to the shared allocation-experiment engine
(:mod:`repro.engine`): each (kernel, machine, mode, flags) configuration
is content-hashed, deduplicated, optionally served from the persistent
cache, and executable in parallel.  Summaries store raw dynamic counts;
cycle pricing happens here, at the caller's cost model — which is why a
single huge-machine baseline run serves Table 1, the ablations and every
point of the register sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..benchsuite import Kernel
from ..engine import (AllocationSummary, ExperimentEngine,
                      ExperimentRequest, default_engine, expect_summary)
from ..ir import CountClass, function_to_text
from ..machine import MachineDescription, huge_machine
from ..remat import RenumberMode

#: the classes reported in Table 1, in column order
TABLE1_CLASSES = (CountClass.LOAD, CountClass.STORE, CountClass.COPY,
                  CountClass.LDI, CountClass.ADDI)


def kernel_request(kernel: Kernel, machine: MachineDescription,
                   mode: RenumberMode,
                   optimize_first: bool = False,
                   **overrides) -> ExperimentRequest:
    """The engine request measuring *kernel* on *machine* under *mode*.

    ``overrides`` forward to :class:`ExperimentRequest` (heuristic
    flags, ``scheme``, ``run``, ``repeats``, ``cacheable``).
    """
    return ExperimentRequest(
        ir_text=function_to_text(kernel.compile()),
        machine=machine, mode=mode, optimize_first=optimize_first,
        args=tuple(kernel.args), **overrides)


def baseline_request(kernel: Kernel,
                     optimize_first: bool = False) -> ExperimentRequest:
    """The huge-machine (128-register) zero-spill request of Section 5.2."""
    return kernel_request(kernel, huge_machine(), RenumberMode.CHAITIN,
                          optimize_first=optimize_first)


@dataclass
class SpillMeasurement:
    """Dynamic cycle accounting for one (kernel, machine, mode) triple."""

    kernel: str
    machine: str
    mode: RenumberMode
    #: cycles spent per class during the run (count * class cost)
    class_cycles: dict[CountClass, int]
    total_cycles: int
    steps: int
    summary: AllocationSummary

    def spill_cycles_vs(self, baseline: "SpillMeasurement") -> int:
        """Spill overhead relative to the huge-machine baseline."""
        return self.total_cycles - baseline.total_cycles

    def class_spill_cycles_vs(self, baseline: "SpillMeasurement",
                              cls: CountClass) -> int:
        return (self.class_cycles.get(cls, 0)
                - baseline.class_cycles.get(cls, 0))

    @staticmethod
    def from_summary(summary: AllocationSummary, kernel: str,
                     cost_machine: MachineDescription
                     ) -> "SpillMeasurement":
        """Price *summary*'s raw counts with *cost_machine*'s model."""
        class_cycles = summary.class_cycles(cost_machine)
        assert summary.steps is not None
        return SpillMeasurement(
            kernel=kernel, machine=summary.machine_name,
            mode=summary.mode, class_cycles=class_cycles,
            total_cycles=sum(class_cycles.values()),
            steps=summary.steps, summary=summary)


def measure(kernel: Kernel, machine: MachineDescription,
            mode: RenumberMode,
            cost_machine: MachineDescription | None = None,
            optimize_first: bool = False,
            engine: ExperimentEngine | None = None) -> SpillMeasurement:
    """Allocate *kernel* for *machine* under *mode*, run it, count cycles.

    *cost_machine* supplies the cycle-cost model (defaults to *machine*);
    the paper prices the huge-machine baseline run with the same cost
    table as the standard runs.  With *optimize_first* the LVN/LICM/DCE
    pipeline runs before allocation — approximating the optimized ILOC
    the paper's allocator consumed.  The work is submitted through
    *engine* (default: the process-wide memoizing engine), so repeated
    measurements of one configuration execute once.
    """
    cost_machine = cost_machine or machine
    engine = engine or default_engine()
    summary = engine.run(kernel_request(kernel, machine, mode,
                                        optimize_first=optimize_first))
    return SpillMeasurement.from_summary(summary, kernel.name, cost_machine)


def measure_baseline(kernel: Kernel,
                     cost_machine: MachineDescription,
                     optimize_first: bool = False,
                     engine: ExperimentEngine | None = None
                     ) -> SpillMeasurement:
    """The huge-machine (128-register) zero-spill baseline of Section 5.2."""
    return measure(kernel, huge_machine(), RenumberMode.CHAITIN,
                   cost_machine=cost_machine,
                   optimize_first=optimize_first, engine=engine)


@dataclass
class KernelComparison:
    """Old-vs-new spill costs for one kernel (one Table 1 row)."""

    kernel: Kernel
    old_spill: int
    new_spill: int
    #: percentage contribution per class, paper-style: positive numbers
    #: are improvements
    contributions: dict[CountClass, float] = field(default_factory=dict)

    @property
    def total_percent(self) -> float:
        """Total percentage improvement (Table 1's last column)."""
        if self.old_spill == 0:
            return 0.0
        return 100.0 * (self.old_spill - self.new_spill) / self.old_spill

    @property
    def differs(self) -> bool:
        return self.old_spill != self.new_spill


def comparison_requests(kernel: Kernel, machine: MachineDescription,
                        old_mode: RenumberMode = RenumberMode.CHAITIN,
                        new_mode: RenumberMode = RenumberMode.REMAT,
                        optimize_first: bool = False,
                        allocator: str = "iterated"
                        ) -> list[ExperimentRequest]:
    """The three requests behind one Table 1 row: baseline, old, new.

    *allocator* selects the strategy for the two measured runs; the
    huge-machine baseline always uses the default so its content hash
    (and cache entry) stays shared across every harness.
    """
    return [
        baseline_request(kernel, optimize_first=optimize_first),
        kernel_request(kernel, machine, old_mode,
                       optimize_first=optimize_first, allocator=allocator),
        kernel_request(kernel, machine, new_mode,
                       optimize_first=optimize_first, allocator=allocator),
    ]


def comparison_from_summaries(kernel: Kernel,
                              machine: MachineDescription,
                              baseline: AllocationSummary,
                              old: AllocationSummary,
                              new: AllocationSummary) -> KernelComparison:
    """Assemble one Table 1 row from the three measured summaries."""
    base = SpillMeasurement.from_summary(baseline, kernel.name, machine)
    old_m = SpillMeasurement.from_summary(old, kernel.name, machine)
    new_m = SpillMeasurement.from_summary(new, kernel.name, machine)
    old_spill = old_m.spill_cycles_vs(base)
    new_spill = new_m.spill_cycles_vs(base)
    contributions: dict[CountClass, float] = {}
    if old_spill != 0:
        for cls in TABLE1_CLASSES:
            delta = (old_m.class_spill_cycles_vs(base, cls)
                     - new_m.class_spill_cycles_vs(base, cls))
            contributions[cls] = 100.0 * delta / old_spill
    return KernelComparison(kernel=kernel, old_spill=old_spill,
                            new_spill=new_spill,
                            contributions=contributions)


def compare_kernel(kernel: Kernel, machine: MachineDescription,
                   old_mode: RenumberMode = RenumberMode.CHAITIN,
                   new_mode: RenumberMode = RenumberMode.REMAT,
                   optimize_first: bool = False,
                   engine: ExperimentEngine | None = None
                   ) -> KernelComparison:
    """Produce one Table 1 row for *kernel* on *machine*.

    A single-row call site has no partial table to render, so a
    quarantined request surfaces as
    :class:`~repro.engine.supervisor.ExperimentError`.
    """
    engine = engine or default_engine()
    baseline, old, new = (expect_summary(s) for s in engine.run_many(
        comparison_requests(kernel, machine, old_mode, new_mode,
                            optimize_first=optimize_first)))
    return comparison_from_summaries(kernel, machine, baseline, old, new)
