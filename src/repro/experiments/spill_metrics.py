"""The spill-cost measurement methodology of Section 5.2.

"We tested each routine on a hypothetical 'huge' machine with 128
registers ... The difference between the huge results and the results for
one of the allocators targeted to our standard machine should equal the
number of cycles added by the allocator to cope with insufficient
registers."

Costs are decomposed by instrumentation class (load / store / copy / ldi /
addi) so Table 1's percentage-contribution columns can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..benchsuite import Kernel
from ..interp import run_function
from ..ir import CountClass
from ..machine import MachineDescription, huge_machine
from ..regalloc import AllocationResult, allocate
from ..remat import RenumberMode

#: the classes reported in Table 1, in column order
TABLE1_CLASSES = (CountClass.LOAD, CountClass.STORE, CountClass.COPY,
                  CountClass.LDI, CountClass.ADDI)


@dataclass
class SpillMeasurement:
    """Dynamic cycle accounting for one (kernel, machine, mode) triple."""

    kernel: str
    machine: str
    mode: RenumberMode
    #: cycles spent per class during the run (count * class cost)
    class_cycles: dict[CountClass, int]
    total_cycles: int
    steps: int
    allocation: AllocationResult

    def spill_cycles_vs(self, baseline: "SpillMeasurement") -> int:
        """Spill overhead relative to the huge-machine baseline."""
        return self.total_cycles - baseline.total_cycles

    def class_spill_cycles_vs(self, baseline: "SpillMeasurement",
                              cls: CountClass) -> int:
        return (self.class_cycles.get(cls, 0)
                - baseline.class_cycles.get(cls, 0))


def measure(kernel: Kernel, machine: MachineDescription,
            mode: RenumberMode,
            cost_machine: MachineDescription | None = None,
            optimize_first: bool = False) -> SpillMeasurement:
    """Allocate *kernel* for *machine* under *mode*, run it, count cycles.

    *cost_machine* supplies the cycle-cost model (defaults to *machine*);
    the paper prices the huge-machine baseline run with the same cost
    table as the standard runs.  With *optimize_first* the LVN/LICM/DCE
    pipeline runs before allocation — approximating the optimized ILOC
    the paper's allocator consumed.
    """
    cost_machine = cost_machine or machine
    fn = kernel.compile()
    if optimize_first:
        from ..opt import optimize

        optimize(fn)
    result = allocate(fn, machine=machine, mode=mode)
    run = run_function(result.function, args=list(kernel.args))
    class_cycles = {
        cls: count * cost_machine.class_cost(cls)
        for cls, count in run.counts.items()
    }
    return SpillMeasurement(
        kernel=kernel.name, machine=machine.name, mode=mode,
        class_cycles=class_cycles,
        total_cycles=sum(class_cycles.values()),
        steps=run.steps, allocation=result)


def measure_baseline(kernel: Kernel,
                     cost_machine: MachineDescription,
                     optimize_first: bool = False) -> SpillMeasurement:
    """The huge-machine (128-register) zero-spill baseline of Section 5.2."""
    return measure(kernel, huge_machine(), RenumberMode.CHAITIN,
                   cost_machine=cost_machine,
                   optimize_first=optimize_first)


@dataclass
class KernelComparison:
    """Old-vs-new spill costs for one kernel (one Table 1 row)."""

    kernel: Kernel
    old_spill: int
    new_spill: int
    #: percentage contribution per class, paper-style: positive numbers
    #: are improvements
    contributions: dict[CountClass, float] = field(default_factory=dict)

    @property
    def total_percent(self) -> float:
        """Total percentage improvement (Table 1's last column)."""
        if self.old_spill == 0:
            return 0.0
        return 100.0 * (self.old_spill - self.new_spill) / self.old_spill

    @property
    def differs(self) -> bool:
        return self.old_spill != self.new_spill


def compare_kernel(kernel: Kernel, machine: MachineDescription,
                   old_mode: RenumberMode = RenumberMode.CHAITIN,
                   new_mode: RenumberMode = RenumberMode.REMAT,
                   optimize_first: bool = False) -> KernelComparison:
    """Produce one Table 1 row for *kernel* on *machine*."""
    baseline = measure_baseline(kernel, cost_machine=machine,
                                optimize_first=optimize_first)
    old = measure(kernel, machine, old_mode, optimize_first=optimize_first)
    new = measure(kernel, machine, new_mode, optimize_first=optimize_first)
    old_spill = old.spill_cycles_vs(baseline)
    new_spill = new.spill_cycles_vs(baseline)
    contributions: dict[CountClass, float] = {}
    if old_spill != 0:
        for cls in TABLE1_CLASSES:
            delta = (old.class_spill_cycles_vs(baseline, cls)
                     - new.class_spill_cycles_vs(baseline, cls))
            contributions[cls] = 100.0 * delta / old_spill
    return KernelComparison(kernel=kernel, old_spill=old_spill,
                            new_spill=new_spill,
                            contributions=contributions)
