"""Table 1 — *Effects of Rematerialization*.

For every suite kernel, compare the Optimistic allocator (Chaitin's
limited rematerialization) against the Rematerialization allocator (the
paper's tag-driven method) on the standard machine, using the
huge-machine-baseline methodology of Section 5.2.  Like the paper, the
rendered table "shows only routines where a difference was observed", and
percentages follow its rounding conventions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..benchsuite import ALL_KERNELS, Kernel
from ..engine import (ExperimentEngine, ExperimentFailure, default_engine)
from ..machine import MachineDescription, standard_machine
from .reporting import paper_percent, render_failures, render_table
from .spill_metrics import (KernelComparison, TABLE1_CLASSES,
                            comparison_from_summaries, comparison_requests)


@dataclass
class Table1:
    """All rows plus the suite-level summary of Section 5.3.

    When the engine quarantines a request, the affected kernels land in
    :attr:`skipped` (with the underlying :attr:`failures`) and the table
    renders partially instead of the harness aborting.
    """

    machine: MachineDescription
    rows: list[KernelComparison] = field(default_factory=list)
    #: kernels whose measurement triple could not be assembled
    skipped: list[str] = field(default_factory=list)
    failures: list[ExperimentFailure] = field(default_factory=list)

    @property
    def differing(self) -> list[KernelComparison]:
        return [r for r in self.rows if r.differs]

    @property
    def n_improved(self) -> int:
        return sum(1 for r in self.rows if r.new_spill < r.old_spill)

    @property
    def n_degraded(self) -> int:
        return sum(1 for r in self.rows if r.new_spill > r.old_spill)

    def render(self) -> str:
        headers = ["program", "routine", "Optimistic", "Remat",
                   "load", "store", "copy", "ldi", "addi", "total"]
        body = []
        for row in self.differing:
            cells = [row.kernel.program, row.kernel.name,
                     f"{row.old_spill:,}", f"{row.new_spill:,}"]
            for cls in TABLE1_CLASSES:
                cells.append(paper_percent(row.contributions.get(cls, 0.0)))
            cells.append(paper_percent(row.total_percent))
            body.append(cells)
        table = render_table(
            headers, body,
            title=(f"Table 1: Effects of Rematerialization "
                   f"(cycles of spill code, {self.machine.name} machine, "
                   f"k_int={self.machine.int_regs}, "
                   f"k_float={self.machine.float_regs})"))
        summary = (f"\n\nFrom the suite of {len(self.rows)} routines: "
                   f"improvements in {self.n_improved} cases, "
                   f"degradations in {self.n_degraded} cases "
                   f"(paper, 70 routines: 28 improvements, "
                   f"2 degradations).")
        appendix = render_failures(self.failures, self.skipped)
        if appendix:
            summary += "\n\n" + appendix
        return table + summary


def generate_table1(machine: MachineDescription | None = None,
                    kernels: list[Kernel] | None = None,
                    optimize_first: bool = False,
                    engine: ExperimentEngine | None = None,
                    allocator: str = "iterated") -> Table1:
    """Measure every kernel and assemble Table 1.

    With *optimize_first* the LVN/LICM/DCE pipeline runs before
    allocation, approximating the optimized ILOC of the paper's setup.
    The whole suite — baseline, Optimistic and Remat per kernel — is
    submitted to *engine* as one batch, so cache misses fan out across
    its worker pool.  *allocator* selects the allocation strategy for
    the measured runs (the SSA strategy ignores the mode axis, so its
    Old and New columns coincide).
    """
    machine = machine or standard_machine()
    kernels = kernels if kernels is not None else ALL_KERNELS
    engine = engine or default_engine()
    requests = [request for kernel in kernels
                for request in comparison_requests(
                    kernel, machine, optimize_first=optimize_first,
                    allocator=allocator)]
    summaries = engine.run_many(requests)
    table = Table1(machine=machine)
    for i, kernel in enumerate(kernels):
        triple = summaries[3 * i:3 * i + 3]
        failed = [s for s in triple if isinstance(s, ExperimentFailure)]
        if failed:
            # a kernel needs all three measurements; render partially
            table.skipped.append(kernel.name)
            table.failures.extend(failed)
            continue
        baseline, old, new = triple
        table.rows.append(comparison_from_summaries(kernel, machine,
                                                    baseline, old, new))
    return table
