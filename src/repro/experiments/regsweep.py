"""Register-set variation sweep.

The paper's machinery exists partly to make this cheap: "The target
register set is specified in a small table and may be varied to allow
convenient experimentation with a wide variety of register sets"
(Section 5).  This harness sweeps the register-file size and reports,
per size, total spill cycles for the Old and New allocators over the
suite — showing where rematerialization's advantage turns on (when
pressure first forces multi-valued constants to spill) and how it grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..benchsuite import ALL_KERNELS, Kernel
from ..engine import ExperimentEngine, ExperimentFailure, default_engine
from ..machine import machine_with
from ..remat import RenumberMode
from .reporting import render_failures, render_table
from .spill_metrics import baseline_request, kernel_request


@dataclass
class SweepPoint:
    """Suite-total spill cycles at one register-file size."""

    k: int
    old_spill: int
    new_spill: int
    n_differing: int

    @property
    def improvement_percent(self) -> float:
        if self.old_spill == 0:
            return 0.0
        return 100.0 * (self.old_spill - self.new_spill) / self.old_spill


@dataclass
class RegisterSweep:
    points: list[SweepPoint] = field(default_factory=list)
    #: kernels dropped from *every* point (totals must sum the same
    #: suite at each k to stay comparable)
    skipped: list[str] = field(default_factory=list)
    failures: list[ExperimentFailure] = field(default_factory=list)

    def render(self) -> str:
        headers = ["k (int=float)", "Optimistic", "Remat", "improvement",
                   "routines differing"]
        rows = []
        for p in self.points:
            rows.append([str(p.k), f"{p.old_spill:,}", f"{p.new_spill:,}",
                         f"{p.improvement_percent:.0f}%",
                         str(p.n_differing)])
        table = render_table(
            headers, rows,
            title=("Register-set sweep: suite-total spill cycles vs "
                   "register-file size (Section 5's varied-register-set "
                   "capability)"))
        appendix = render_failures(self.failures, self.skipped)
        if appendix:
            table += "\n\n" + appendix
        return table


def run_register_sweep(ks: tuple[int, ...] = (6, 8, 10, 12, 16, 24),
                       kernels: list[Kernel] | None = None,
                       engine: ExperimentEngine | None = None,
                       allocator: str = "iterated") -> RegisterSweep:
    """Measure the suite at several register-file sizes.

    The whole (k × kernel × mode) grid plus one huge-machine
    baseline per kernel is submitted as a single engine batch; the
    baselines' content hashes are shared across every *k* (and with
    Table 1 and the ablations), so they execute once.  *allocator*
    selects the strategy for the measured grid.
    """
    kernels = kernels if kernels is not None else ALL_KERNELS
    engine = engine or default_engine()

    baseline_reqs = [baseline_request(kernel) for kernel in kernels]
    machines = {k: machine_with(k, k) for k in ks}
    grid_reqs = [kernel_request(kernel, machines[k], mode,
                                allocator=allocator)
                 for k in ks for kernel in kernels
                 for mode in (RenumberMode.CHAITIN, RenumberMode.REMAT)]
    summaries = engine.run_many(baseline_reqs + grid_reqs)
    baselines = dict(zip((kernel.name for kernel in kernels),
                         summaries[:len(kernels)]))
    grid = summaries[len(kernels):]

    sweep = RegisterSweep()
    # a kernel with any failed measurement anywhere in the grid leaves
    # the whole sweep: each point must total the same suite
    bad = {kernel.name for kernel in kernels
           if isinstance(baselines[kernel.name], ExperimentFailure)}
    pos = 0
    for _k in ks:
        for kernel in kernels:
            if any(isinstance(s, ExperimentFailure)
                   for s in grid[pos:pos + 2]):
                bad.add(kernel.name)
            pos += 2
    sweep.failures = [s for s in summaries
                      if isinstance(s, ExperimentFailure)]
    sweep.skipped = [kernel.name for kernel in kernels
                     if kernel.name in bad]

    pos = 0
    for k in ks:
        machine = machines[k]
        old_total = new_total = differing = 0
        for kernel in kernels:
            if kernel.name in bad:
                pos += 2
                continue
            baseline = baselines[kernel.name].cycles(machine)
            old_spill = grid[pos].cycles(machine) - baseline
            new_spill = grid[pos + 1].cycles(machine) - baseline
            pos += 2
            old_total += old_spill
            new_total += new_spill
            if old_spill != new_spill:
                differing += 1
        sweep.points.append(SweepPoint(k=k, old_spill=old_total,
                                       new_spill=new_total,
                                       n_differing=differing))
    return sweep
