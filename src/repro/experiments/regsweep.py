"""Register-set variation sweep.

The paper's machinery exists partly to make this cheap: "The target
register set is specified in a small table and may be varied to allow
convenient experimentation with a wide variety of register sets"
(Section 5).  This harness sweeps the register-file size and reports,
per size, total spill cycles for the Old and New allocators over the
suite — showing where rematerialization's advantage turns on (when
pressure first forces multi-valued constants to spill) and how it grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..benchsuite import ALL_KERNELS, Kernel
from ..machine import machine_with
from ..remat import RenumberMode
from .reporting import render_table
from .spill_metrics import measure, measure_baseline


@dataclass
class SweepPoint:
    """Suite-total spill cycles at one register-file size."""

    k: int
    old_spill: int
    new_spill: int
    n_differing: int

    @property
    def improvement_percent(self) -> float:
        if self.old_spill == 0:
            return 0.0
        return 100.0 * (self.old_spill - self.new_spill) / self.old_spill


@dataclass
class RegisterSweep:
    points: list[SweepPoint] = field(default_factory=list)

    def render(self) -> str:
        headers = ["k (int=float)", "Optimistic", "Remat", "improvement",
                   "routines differing"]
        rows = []
        for p in self.points:
            rows.append([str(p.k), f"{p.old_spill:,}", f"{p.new_spill:,}",
                         f"{p.improvement_percent:.0f}%",
                         str(p.n_differing)])
        return render_table(
            headers, rows,
            title=("Register-set sweep: suite-total spill cycles vs "
                   "register-file size (Section 5's varied-register-set "
                   "capability)"))


def run_register_sweep(ks: tuple[int, ...] = (6, 8, 10, 12, 16, 24),
                       kernels: list[Kernel] | None = None,
                       ) -> RegisterSweep:
    """Measure the suite at several register-file sizes."""
    kernels = kernels if kernels is not None else ALL_KERNELS
    sweep = RegisterSweep()
    baselines = {}
    for k in ks:
        machine = machine_with(k, k)
        old_total = new_total = differing = 0
        for kernel in kernels:
            if kernel.name not in baselines:
                baselines[kernel.name] = measure_baseline(
                    kernel, cost_machine=machine)
            baseline = baselines[kernel.name]
            old = measure(kernel, machine, RenumberMode.CHAITIN)
            new = measure(kernel, machine, RenumberMode.REMAT)
            old_spill = old.total_cycles - baseline.total_cycles
            new_spill = new.total_cycles - baseline.total_cycles
            old_total += old_spill
            new_total += new_spill
            if old_spill != new_spill:
                differing += 1
        sweep.points.append(SweepPoint(k=k, old_spill=old_total,
                                       new_spill=new_total,
                                       n_differing=differing))
    return sweep
