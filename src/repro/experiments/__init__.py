"""Experiment harnesses regenerating the paper's tables and figures."""

from .ablation import (AblationResult, HEURISTIC_CONFIGS,
                       HeuristicAblation, run_ablation,
                       run_heuristic_ablation, scheme_request)
from .regsweep import RegisterSweep, SweepPoint, run_register_sweep
from .ssa_compare import (AllocatorComparison, AllocatorComparisonPoint,
                          run_allocator_comparison)
from .reporting import (paper_percent, render_failures,
                        render_table)
from .spill_metrics import (KernelComparison, SpillMeasurement,
                            TABLE1_CLASSES, baseline_request,
                            compare_kernel, comparison_from_summaries,
                            comparison_requests, kernel_request, measure,
                            measure_baseline)
from .table1 import Table1, generate_table1
from .table2 import Table2, TimingColumn, generate_table2

__all__ = [
    "AblationResult",
    "AllocatorComparison",
    "AllocatorComparisonPoint",
    "HEURISTIC_CONFIGS",
    "HeuristicAblation",
    "KernelComparison",
    "RegisterSweep",
    "SweepPoint",
    "run_ablation",
    "run_allocator_comparison",
    "run_heuristic_ablation",
    "run_register_sweep",
    "scheme_request",
    "SpillMeasurement",
    "TABLE1_CLASSES",
    "Table1",
    "Table2",
    "TimingColumn",
    "baseline_request",
    "compare_kernel",
    "comparison_from_summaries",
    "comparison_requests",
    "kernel_request",
    "generate_table1",
    "generate_table2",
    "measure",
    "measure_baseline",
    "paper_percent",
    "render_failures",
    "render_table",
]
