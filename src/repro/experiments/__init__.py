"""Experiment harnesses regenerating the paper's tables and figures."""

from .ablation import (AblationResult, HeuristicAblation, run_ablation,
                       run_heuristic_ablation)
from .regsweep import RegisterSweep, SweepPoint, run_register_sweep
from .reporting import paper_percent, render_table
from .spill_metrics import (KernelComparison, SpillMeasurement,
                            TABLE1_CLASSES, compare_kernel, measure,
                            measure_baseline)
from .table1 import Table1, generate_table1
from .table2 import Table2, TimingColumn, generate_table2

__all__ = [
    "AblationResult",
    "HeuristicAblation",
    "KernelComparison",
    "RegisterSweep",
    "SweepPoint",
    "run_ablation",
    "run_heuristic_ablation",
    "run_register_sweep",
    "SpillMeasurement",
    "TABLE1_CLASSES",
    "Table1",
    "Table2",
    "TimingColumn",
    "compare_kernel",
    "generate_table1",
    "generate_table2",
    "measure",
    "measure_baseline",
    "paper_percent",
    "render_table",
]
