"""Section 6 ablation: the alternative splitting schemes, and the
Section 4.2/4.3 heuristics (conservative coalescing, biased coloring,
lookahead) toggled off.

The paper reports that every loop-splitting scheme "had several major
successes [and] several equally dramatic failures"; the harness measures
each scheme's spill cycles against the tag-driven default and reports the
spread.

Both harnesses batch their whole measurement grid through the
allocation-experiment engine; the scheme entries without a pre-split
hook (chaitin, remat, at-phis) are submitted as plain mode requests so
their cache entries are shared with Table 1 and the register sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..benchsuite import ALL_KERNELS, Kernel
from ..engine import (ExperimentEngine, ExperimentFailure,
                      ExperimentRequest, default_engine)
from ..interp import run_function
from ..machine import MachineDescription, machine_with
from ..regalloc.splitting import SCHEMES, SplittingScheme
from ..remat import RenumberMode
from .reporting import render_failures, render_table
from .spill_metrics import baseline_request, kernel_request


def scheme_request(kernel: Kernel, machine: MachineDescription,
                   scheme: SplittingScheme,
                   allocator: str = "iterated") -> ExperimentRequest:
    """The engine request measuring one (kernel, scheme) cell."""
    if scheme.pre_split is None:
        # plain renumber mode: identical content hash to the Table 1 /
        # sweep requests for the same configuration
        return kernel_request(kernel, machine, scheme.mode,
                              allocator=allocator)
    return kernel_request(kernel, machine, scheme.mode, scheme=scheme.name,
                          allocator=allocator)


@dataclass
class AblationResult:
    machine: MachineDescription
    #: kernel -> scheme -> spill cycles
    spill: dict[str, dict[str, int]] = field(default_factory=dict)
    #: kernels dropped because a cell of their row failed
    skipped: list[str] = field(default_factory=list)
    failures: list[ExperimentFailure] = field(default_factory=list)

    def render(self) -> str:
        scheme_names = list(SCHEMES)
        headers = ["routine"] + scheme_names
        rows = []
        for kernel, per_scheme in self.spill.items():
            rows.append([kernel] + [f"{per_scheme[s]:,}"
                                    for s in scheme_names])
        # per-scheme wins/losses vs the remat default
        summary_w = ["wins vs remat"]
        summary_l = ["losses vs remat"]
        for s in scheme_names:
            wins = sum(1 for per in self.spill.values()
                       if per[s] < per["remat"])
            losses = sum(1 for per in self.spill.values()
                         if per[s] > per["remat"])
            summary_w.append(str(wins))
            summary_l.append(str(losses))
        rows.append(summary_w)
        rows.append(summary_l)
        table = render_table(
            headers, rows,
            title=(f"Section 6 ablation: spill cycles per splitting scheme "
                   f"({self.machine.name} machine)"))
        appendix = render_failures(self.failures, self.skipped)
        if appendix:
            table += "\n\n" + appendix
        return table


def run_ablation(kernels: list[Kernel] | None = None,
                 machine: MachineDescription | None = None,
                 schemes: dict[str, SplittingScheme] | None = None,
                 engine: ExperimentEngine | None = None,
                 allocator: str = "iterated") -> AblationResult:
    """Measure spill cycles for each kernel under each splitting scheme."""
    machine = machine or machine_with(8, 8)
    kernels = kernels if kernels is not None else ALL_KERNELS
    schemes = schemes or SCHEMES
    engine = engine or default_engine()

    requests = []
    for kernel in kernels:
        requests.append(baseline_request(kernel))
        for scheme in schemes.values():
            requests.append(scheme_request(kernel, machine, scheme,
                                           allocator=allocator))
    summaries = engine.run_many(requests)

    result = AblationResult(machine=machine)
    stride = 1 + len(schemes)
    for i, kernel in enumerate(kernels):
        row = summaries[stride * i:stride * (i + 1)]
        failed = [s for s in row if isinstance(s, ExperimentFailure)]
        if failed:
            # spreads are only comparable over complete rows
            result.skipped.append(kernel.name)
            result.failures.extend(failed)
            continue
        baseline = row[0]
        expected = run_function(kernel.compile(),
                                args=list(kernel.args)).output
        per_scheme: dict[str, int] = {}
        for j, name in enumerate(schemes):
            summary = row[1 + j]
            if list(summary.output or ()) != expected:
                raise AssertionError(
                    f"{kernel.name}/{name}: output diverged")
            per_scheme[name] = (summary.cycles(machine)
                                - baseline.cycles(machine))
        result.spill[kernel.name] = per_scheme
    return result


@dataclass
class HeuristicAblation:
    machine: MachineDescription
    #: kernel -> config -> spill cycles
    spill: dict[str, dict[str, int]] = field(default_factory=dict)
    #: kernels dropped because a cell of their row failed
    skipped: list[str] = field(default_factory=list)
    failures: list[ExperimentFailure] = field(default_factory=list)

    CONFIGS = ("full", "no-biasing", "no-lookahead", "no-conservative",
               "pessimistic")

    def render(self) -> str:
        headers = ["routine"] + list(self.CONFIGS)
        rows = [[kernel] + [f"{per[c]:,}" for c in self.CONFIGS]
                for kernel, per in self.spill.items()]
        totals = ["TOTAL"]
        for c in self.CONFIGS:
            totals.append(f"{sum(per[c] for per in self.spill.values()):,}")
        rows.append(totals)
        table = render_table(
            headers, rows,
            title=("Heuristic ablation (Sections 4.2-4.3): spill cycles "
                   f"with each mechanism disabled ({self.machine.name})"))
        appendix = render_failures(self.failures, self.skipped)
        if appendix:
            table += "\n\n" + appendix
        return table


#: flag overrides per heuristic-ablation configuration
HEURISTIC_CONFIGS: dict[str, dict[str, bool]] = {
    "full": {},
    "no-biasing": {"biased": False},
    "no-lookahead": {"lookahead": False},
    "no-conservative": {"coalesce_splits": False},
    # Chaitin's original pessimistic simplification instead of
    # Briggs' optimistic push-and-try
    "pessimistic": {"optimistic": False},
}


def run_heuristic_ablation(kernels: list[Kernel] | None = None,
                           machine: MachineDescription | None = None,
                           engine: ExperimentEngine | None = None,
                           allocator: str = "iterated"
                           ) -> HeuristicAblation:
    """Toggle biased coloring, lookahead and conservative coalescing."""
    machine = machine or machine_with(8, 8)
    kernels = kernels if kernels is not None else ALL_KERNELS
    engine = engine or default_engine()

    requests = []
    for kernel in kernels:
        requests.append(baseline_request(kernel))
        for kwargs in HEURISTIC_CONFIGS.values():
            requests.append(kernel_request(kernel, machine,
                                           RenumberMode.REMAT,
                                           allocator=allocator, **kwargs))
    summaries = engine.run_many(requests)

    result = HeuristicAblation(machine=machine)
    stride = 1 + len(HEURISTIC_CONFIGS)
    for i, kernel in enumerate(kernels):
        row = summaries[stride * i:stride * (i + 1)]
        failed = [s for s in row if isinstance(s, ExperimentFailure)]
        if failed:
            result.skipped.append(kernel.name)
            result.failures.extend(failed)
            continue
        baseline = row[0]
        per: dict[str, int] = {}
        for j, name in enumerate(HEURISTIC_CONFIGS):
            per[name] = row[1 + j].cycles(machine) \
                - baseline.cycles(machine)
        result.spill[kernel.name] = per
    return result
