"""Head-to-head: SSA spill-everywhere vs the iterated allocator.

Bouchez–Darte–Rastello separate spilling from coloring on SSA form
(PAPERS.md); the paper's iterated Chaitin/Briggs loop interleaves them.
This harness races the two disciplines across the register sweep — the
same suite, the same register-file sizes, the same shared huge-machine
baselines as Table 1 — and reports suite-total spill cycles per size,
so the cost of the cleaner decomposition (whole-range spills chosen by
pressure alone, no coalescing, no biased select) is measured rather
than argued.

The iterated column runs the paper's *New* configuration
(``RenumberMode.REMAT``); the SSA strategy has no mode axis — maximal
splitting is the strategy.  Every measurement is an engine request, so
results dedupe and cache against every other harness; the iterated
column's requests are content-identical to the register sweep's Remat
column and usually hit the cache outright.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..benchsuite import ALL_KERNELS, Kernel
from ..engine import ExperimentEngine, ExperimentFailure, default_engine
from ..machine import machine_with
from ..remat import RenumberMode
from .reporting import render_failures, render_table
from .spill_metrics import baseline_request, kernel_request


@dataclass
class AllocatorComparisonPoint:
    """Suite totals for both strategies at one register-file size."""

    k: int
    iterated_spill: int
    ssa_spill: int
    #: kernels where the SSA strategy produced strictly fewer spill
    #: cycles / strictly more (ties excluded)
    ssa_wins: int
    ssa_losses: int

    @property
    def overhead_percent(self) -> float:
        """SSA's extra spill cost relative to iterated (negative when
        the SSA strategy wins the suite total)."""
        if self.iterated_spill == 0:
            return 0.0
        return (100.0 * (self.ssa_spill - self.iterated_spill)
                / self.iterated_spill)


@dataclass
class AllocatorComparison:
    points: list[AllocatorComparisonPoint] = field(default_factory=list)
    #: kernels dropped from every point (totals must sum the same suite)
    skipped: list[str] = field(default_factory=list)
    failures: list[ExperimentFailure] = field(default_factory=list)

    def render(self) -> str:
        headers = ["k (int=float)", "iterated (remat)", "ssa",
                   "ssa overhead", "ssa wins", "ssa losses"]
        rows = []
        for p in self.points:
            rows.append([str(p.k), f"{p.iterated_spill:,}",
                         f"{p.ssa_spill:,}",
                         f"{p.overhead_percent:+.0f}%",
                         str(p.ssa_wins), str(p.ssa_losses)])
        table = render_table(
            headers, rows,
            title=("Allocator head-to-head: suite-total spill cycles, "
                   "iterated Chaitin/Briggs vs SSA spill-everywhere "
                   "(Bouchez-Darte-Rastello), across the register "
                   "sweep"))
        appendix = render_failures(self.failures, self.skipped)
        if appendix:
            table += "\n\n" + appendix
        return table


def run_allocator_comparison(ks: tuple[int, ...] = (6, 8, 10, 12, 16, 24),
                             kernels: list[Kernel] | None = None,
                             engine: ExperimentEngine | None = None,
                             ) -> AllocatorComparison:
    """Measure the suite under both strategies at several register-file
    sizes, as one engine batch sharing the huge-machine baselines."""
    kernels = kernels if kernels is not None else ALL_KERNELS
    engine = engine or default_engine()

    baseline_reqs = [baseline_request(kernel) for kernel in kernels]
    machines = {k: machine_with(k, k) for k in ks}
    grid_reqs = [kernel_request(kernel, machines[k], RenumberMode.REMAT,
                                allocator=allocator)
                 for k in ks for kernel in kernels
                 for allocator in ("iterated", "ssa")]
    summaries = engine.run_many(baseline_reqs + grid_reqs)
    baselines = dict(zip((kernel.name for kernel in kernels),
                         summaries[:len(kernels)]))
    grid = summaries[len(kernels):]

    comparison = AllocatorComparison()
    # a kernel with any failed measurement anywhere in the grid leaves
    # the whole comparison: each point must total the same suite
    bad = {kernel.name for kernel in kernels
           if isinstance(baselines[kernel.name], ExperimentFailure)}
    pos = 0
    for _k in ks:
        for kernel in kernels:
            if any(isinstance(s, ExperimentFailure)
                   for s in grid[pos:pos + 2]):
                bad.add(kernel.name)
            pos += 2
    comparison.failures = [s for s in summaries
                           if isinstance(s, ExperimentFailure)]
    comparison.skipped = [kernel.name for kernel in kernels
                          if kernel.name in bad]

    pos = 0
    for k in ks:
        machine = machines[k]
        iterated_total = ssa_total = wins = losses = 0
        for kernel in kernels:
            if kernel.name in bad:
                pos += 2
                continue
            baseline = baselines[kernel.name].cycles(machine)
            iterated_spill = grid[pos].cycles(machine) - baseline
            ssa_spill = grid[pos + 1].cycles(machine) - baseline
            pos += 2
            iterated_total += iterated_spill
            ssa_total += ssa_spill
            if ssa_spill < iterated_spill:
                wins += 1
            elif ssa_spill > iterated_spill:
                losses += 1
        comparison.points.append(AllocatorComparisonPoint(
            k=k, iterated_spill=iterated_total, ssa_spill=ssa_total,
            ssa_wins=wins, ssa_losses=losses))
    return comparison
