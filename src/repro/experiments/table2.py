"""Table 2 — *Allocation Times in Seconds*.

Per-phase wall-clock timings of the Old (Chaitin-scheme) and New
(rematerializing) allocators on three routines of increasing size, like
the paper's repvid / tomcatv / twldrv columns.  Runs are repeated and
averaged (the paper averaged ten runs on an RS/6000-540's 100 Hz clock;
``perf_counter`` needs no such care, but averaging still smooths scheduler
noise).

Absolute values are Python-vs-1992-C apples and oranges; the reproduced
*shape* is what Section 5.4 discusses: the build–coalesce loop dominates,
renumber costs more for the New allocator, later rounds are cheap, and
control-flow analysis is nearly free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..benchsuite import Kernel, KERNELS_BY_NAME
from ..machine import MachineDescription, machine_with
from ..regalloc import AllocationResult, allocate
from ..remat import RenumberMode
from .reporting import render_table

#: the default specimens, mirroring the paper's small/medium/large choice
DEFAULT_ROUTINES = ("repvid", "tomcatv", "twldrv")

#: phase rows per allocation round, in the paper's order
PHASES = ("renum", "build", "costs", "color", "spill")


@dataclass
class TimingColumn:
    """Averaged per-phase times for one (routine, allocator) pair."""

    routine: str
    mode: RenumberMode
    cfa: float
    #: per-round {phase: seconds}
    rounds: list[dict[str, float]] = field(default_factory=list)
    total: float = 0.0
    code_size: int = 0

    @staticmethod
    def collect(kernel: Kernel, mode: RenumberMode,
                machine: MachineDescription, repeats: int) -> "TimingColumn":
        runs: list[AllocationResult] = []
        for _ in range(repeats):
            runs.append(allocate(kernel.compile(), machine=machine,
                                 mode=mode))
        n_rounds = max(r.rounds for r in runs)
        rounds: list[dict[str, float]] = []
        for i in range(n_rounds):
            avg = {phase: 0.0 for phase in PHASES}
            for run in runs:
                if i < run.rounds:
                    times = run.round_times[i]
                    avg["renum"] += times.renumber
                    avg["build"] += times.build
                    avg["costs"] += times.costs
                    avg["color"] += times.color
                    avg["spill"] += times.spill
            rounds.append({k: v / repeats for k, v in avg.items()})
        return TimingColumn(
            routine=kernel.name, mode=mode,
            cfa=sum(r.cfa_time for r in runs) / repeats,
            rounds=rounds,
            total=sum(r.total_time for r in runs) / repeats,
            code_size=runs[0].function.size())


@dataclass
class Table2:
    machine: MachineDescription
    columns: list[tuple[TimingColumn, TimingColumn]] = field(
        default_factory=list)

    def render(self) -> str:
        headers = ["Phase"]
        for old, _new in self.columns:
            headers += [f"{old.routine} Old", f"{old.routine} New"]
        rows: list[list[str]] = []

        def fmt(seconds: float) -> str:
            return f"{seconds:.4f}"

        cfa_row = ["cfa"]
        for old, new in self.columns:
            cfa_row += [fmt(old.cfa), fmt(new.cfa)]
        rows.append(cfa_row)

        max_rounds = max(max(len(old.rounds), len(new.rounds))
                         for old, new in self.columns)
        for i in range(max_rounds):
            for phase in PHASES:
                row = [phase]
                keep = False
                for old, new in self.columns:
                    for col in (old, new):
                        if i < len(col.rounds):
                            value = col.rounds[i][phase]
                            row.append(fmt(value))
                            if value > 0:
                                keep = True
                        else:
                            row.append("")
                # the paper omits all-blank spill rows for rounds that
                # did not spill
                if keep or phase != "spill":
                    rows.append(row)

        total_row = ["total"]
        for old, new in self.columns:
            total_row += [fmt(old.total), fmt(new.total)]
        rows.append(total_row)

        sizes = ", ".join(
            f"{old.routine}: {old.code_size} ILOC instructions"
            for old, _new in self.columns)
        return render_table(
            headers, rows,
            title=("Table 2: Allocation Times in Seconds "
                   f"({self.machine.name} machine; averaged; {sizes})"))


def generate_table2(routines: tuple[str, ...] = DEFAULT_ROUTINES,
                    machine: MachineDescription | None = None,
                    repeats: int = 5) -> Table2:
    """Time the Old and New allocators on the chosen routines.

    The default machine is an 8+8 register file: our kernels are smaller
    than the paper's FORTRAN routines, and at that size the medium
    specimen (tomcatv) needs additional rounds of spilling — matching the
    paper's note that "tomcatv required an additional round of spilling".
    """
    machine = machine or machine_with(8, 8)
    table = Table2(machine=machine)
    for name in routines:
        kernel = KERNELS_BY_NAME[name]
        old = TimingColumn.collect(kernel, RenumberMode.CHAITIN, machine,
                                   repeats)
        new = TimingColumn.collect(kernel, RenumberMode.REMAT, machine,
                                   repeats)
        table.columns.append((old, new))
    return table
