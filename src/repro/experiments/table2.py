"""Table 2 — *Allocation Times in Seconds*.

Per-phase wall-clock timings of the Old (Chaitin-scheme) and New
(rematerializing) allocators on three routines of increasing size, like
the paper's repvid / tomcatv / twldrv columns.  Runs are repeated and
averaged (the paper averaged ten runs on an RS/6000-540's 100 Hz clock;
``perf_counter`` needs no such care, but averaging still smooths scheduler
noise).

Absolute values are Python-vs-1992-C apples and oranges; the reproduced
*shape* is what Section 5.4 discusses: the build–coalesce loop dominates,
renumber costs more for the New allocator, later rounds are cheap, and
control-flow analysis is nearly free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..benchsuite import Kernel, KERNELS_BY_NAME
from ..engine import (AllocationSummary, ExperimentEngine,
                      ExperimentFailure, ExperimentRequest, default_engine)
from ..machine import MachineDescription, machine_with
from ..remat import RenumberMode
from .reporting import render_failures, render_table
from .spill_metrics import kernel_request

#: the default specimens, mirroring the paper's small/medium/large choice
DEFAULT_ROUTINES = ("repvid", "tomcatv", "twldrv")

#: phase rows per allocation round, in the paper's order
PHASES = ("renum", "build", "costs", "color", "spill")


@dataclass
class TimingColumn:
    """Averaged per-phase times for one (routine, allocator) pair."""

    routine: str
    mode: RenumberMode
    cfa: float
    #: per-round {phase: seconds}
    rounds: list[dict[str, float]] = field(default_factory=list)
    total: float = 0.0
    #: ``clone=True`` deep-copy seconds — reported as its own row so the
    #: phase comparison stays clean of copy overhead
    clone: float = 0.0
    code_size: int = 0

    @staticmethod
    def timing_request(kernel: Kernel, mode: RenumberMode,
                       machine: MachineDescription,
                       repeats: int) -> ExperimentRequest:
        """The live-measured engine request behind one column.

        ``cacheable=False`` by construction: wall-clock numbers must
        never be replayed from the persistent cache.
        """
        return kernel_request(kernel, machine, mode, run=False,
                              repeats=repeats, cacheable=False)

    @staticmethod
    def from_summary(routine: str, mode: RenumberMode,
                     summary: AllocationSummary) -> "TimingColumn":
        """Average the summary's live timing samples, Table 2 style."""
        assert summary.timing is not None, \
            "timing requests bypass the cache, so timing is always live"
        runs = summary.timing.samples
        repeats = len(runs)
        n_rounds = max(len(r.rounds) for r in runs)
        rounds: list[dict[str, float]] = []
        for i in range(n_rounds):
            avg = {phase: 0.0 for phase in PHASES}
            for run in runs:
                if i < len(run.rounds):
                    for phase in PHASES:
                        avg[phase] += run.rounds[i][phase]
            rounds.append({k: v / repeats for k, v in avg.items()})
        return TimingColumn(
            routine=routine, mode=mode,
            cfa=sum(r.cfa for r in runs) / repeats,
            rounds=rounds,
            total=sum(r.total for r in runs) / repeats,
            clone=sum(r.clone for r in runs) / repeats,
            code_size=summary.allocated_size)

    @staticmethod
    def collect(kernel: Kernel, mode: RenumberMode,
                machine: MachineDescription, repeats: int,
                engine: ExperimentEngine | None = None) -> "TimingColumn":
        engine = engine or default_engine()
        summary = engine.run(TimingColumn.timing_request(
            kernel, mode, machine, repeats))
        return TimingColumn.from_summary(kernel.name, mode, summary)


@dataclass
class Table2:
    machine: MachineDescription
    columns: list[tuple[TimingColumn, TimingColumn]] = field(
        default_factory=list)
    #: routines whose Old/New timing pair could not be measured
    skipped: list[str] = field(default_factory=list)
    failures: list[ExperimentFailure] = field(default_factory=list)

    def render(self) -> str:
        if not self.columns:
            return ("Table 2: Allocation Times in Seconds — no routine "
                    "measured\n\n"
                    + render_failures(self.failures, self.skipped))
        headers = ["Phase"]
        for old, _new in self.columns:
            headers += [f"{old.routine} Old", f"{old.routine} New"]
        rows: list[list[str]] = []

        def fmt(seconds: float) -> str:
            return f"{seconds:.4f}"

        cfa_row = ["cfa"]
        for old, new in self.columns:
            cfa_row += [fmt(old.cfa), fmt(new.cfa)]
        rows.append(cfa_row)

        clone_row = ["clone"]
        for old, new in self.columns:
            clone_row += [fmt(old.clone), fmt(new.clone)]
        rows.append(clone_row)

        max_rounds = max(max(len(old.rounds), len(new.rounds))
                         for old, new in self.columns)
        for i in range(max_rounds):
            for phase in PHASES:
                row = [phase]
                keep = False
                for old, new in self.columns:
                    for col in (old, new):
                        if i < len(col.rounds):
                            value = col.rounds[i][phase]
                            row.append(fmt(value))
                            if value > 0:
                                keep = True
                        else:
                            row.append("")
                # the paper omits all-blank spill rows for rounds that
                # did not spill
                if keep or phase != "spill":
                    rows.append(row)

        total_row = ["total"]
        for old, new in self.columns:
            total_row += [fmt(old.total), fmt(new.total)]
        rows.append(total_row)

        sizes = ", ".join(
            f"{old.routine}: {old.code_size} ILOC instructions"
            for old, _new in self.columns)
        table = render_table(
            headers, rows,
            title=("Table 2: Allocation Times in Seconds "
                   f"({self.machine.name} machine; averaged; {sizes})"))
        appendix = render_failures(self.failures, self.skipped)
        if appendix:
            table += "\n\n" + appendix
        return table


def generate_table2(routines: tuple[str, ...] = DEFAULT_ROUTINES,
                    machine: MachineDescription | None = None,
                    repeats: int = 5,
                    engine: ExperimentEngine | None = None) -> Table2:
    """Time the Old and New allocators on the chosen routines.

    The default machine is an 8+8 register file: our kernels are smaller
    than the paper's FORTRAN routines, and at that size the medium
    specimen (tomcatv) needs additional rounds of spilling — matching the
    paper's note that "tomcatv required an additional round of spilling".

    Every column is a ``cacheable=False`` engine request: wall-clock
    numbers are measured live on every regeneration, never replayed.
    """
    machine = machine or machine_with(8, 8)
    engine = engine or default_engine()
    kernels = [KERNELS_BY_NAME[name] for name in routines]
    modes = (RenumberMode.CHAITIN, RenumberMode.REMAT)
    requests = [TimingColumn.timing_request(kernel, mode, machine, repeats)
                for kernel in kernels for mode in modes]
    summaries = engine.run_many(requests)
    table = Table2(machine=machine)
    for i, kernel in enumerate(kernels):
        pair = summaries[2 * i:2 * i + 2]
        failed = [s for s in pair if isinstance(s, ExperimentFailure)]
        if failed:
            # both columns or neither: a half-timed routine misleads
            table.skipped.append(kernel.name)
            table.failures.extend(failed)
            continue
        old = TimingColumn.from_summary(kernel.name, modes[0], pair[0])
        new = TimingColumn.from_summary(kernel.name, modes[1], pair[1])
        table.columns.append((old, new))
    return table
