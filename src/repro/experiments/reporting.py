"""Plain-text table rendering shared by the experiment harnesses."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import ExperimentFailure


def render_table(headers: list[str], rows: list[list[str]],
                 title: str | None = None) -> str:
    """Render a monospace table with right-aligned numeric-ish columns."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def is_numeric(col: int) -> bool:
        return all(_numeric(row[col]) for row in rows if row[col].strip())

    aligns = [is_numeric(i) for i in range(len(headers))]

    def fmt(cells: list[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.rjust(widths[i]) if aligns[i]
                         else cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("")
    lines.append(fmt(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def _numeric(text: str) -> bool:
    stripped = text.strip().rstrip("%s").lstrip("-+")
    if not stripped:
        return True
    return stripped.replace(".", "", 1).replace(",", "").isdigit()


def render_failures(failures: "list[ExperimentFailure]",
                    skipped: list[str] | None = None,
                    what: str = "routines") -> str:
    """The partial-result appendix every harness prints below its table.

    Empty string when nothing failed; otherwise a header naming the
    *skipped* rows (the table entries that could not be assembled) and
    one table row per quarantined request — routine, final error class,
    attempt count, and how the last worker ended.
    """
    if not failures:
        return ""
    lines = [f"PARTIAL RESULTS: {len(failures)} request(s) failed"]
    if skipped:
        lines[0] += f"; {what} skipped: {', '.join(skipped)}"
    rows = [[f.function_name, f.error_class, str(f.attempts),
             f.worker_fate, f.message[:60]] for f in failures]
    lines.append(render_table(
        ["routine", "error", "attempts", "worker fate", "detail"], rows))
    return "\n".join(lines)


def paper_percent(value: float) -> str:
    """Format a percentage the way Table 1 does.

    "All percentages have been rounded to the nearest integer.
    Insignificant improvements are reported as 0 and insignificant losses
    are reported as -0.  In cases where the result is zero, we simply show
    a blank."
    """
    if value == 0.0:
        return ""
    rounded = round(value)
    if rounded == 0:
        return "0" if value > 0 else "-0"
    return str(rounded)
