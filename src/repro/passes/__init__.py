"""Pass pipeline and cached analysis manager.

The compilation architecture every layer shares: the allocator's round
loop, the scalar optimizer and the experiment engine all source their
analyses (liveness, dominance, post-dominance, loops, def-use) from one
:class:`AnalysisManager` and express transforms as
:class:`~repro.passes.adapters.FunctionPass` objects driven by a
:class:`PassPipeline`.  See ``docs/architecture.md`` for the layering
and the invalidation contract.
"""

from .manager import (ALL_ANALYSES, ANALYSES_BY_NAME, Analysis,
                      AnalysisManager, CFG_ANALYSES, DEFUSE, DOMINANCE,
                      LIVENESS, LOOPS, POSTDOMINANCE, PreservedAnalyses,
                      SPARSE_LIVENESS)
from .pipeline import PassPipeline, PipelineReport
from .adapters import (DCEPass, FunctionPass, LICMPass, LVNPass,
                       PASS_REGISTRY, PreSplitPass, RematSplitPass,
                       RenumberPass, SSAConstructPass, SSADestructPass,
                       SpillCodePass, make_pass)

__all__ = [
    "ALL_ANALYSES",
    "ANALYSES_BY_NAME",
    "Analysis",
    "AnalysisManager",
    "CFG_ANALYSES",
    "DCEPass",
    "DEFUSE",
    "DOMINANCE",
    "FunctionPass",
    "LICMPass",
    "LIVENESS",
    "LOOPS",
    "LVNPass",
    "PASS_REGISTRY",
    "PassPipeline",
    "PipelineReport",
    "POSTDOMINANCE",
    "PreSplitPass",
    "PreservedAnalyses",
    "RematSplitPass",
    "RenumberPass",
    "SPARSE_LIVENESS",
    "SSAConstructPass",
    "SSADestructPass",
    "SpillCodePass",
    "make_pass",
]
