"""The :class:`AnalysisManager`: lazy, cached, invalidation-aware analyses.

Every transform in the repo needs some subset of the same five facts —
liveness, dominance, post-dominance, loop nesting, def-use chains — and
before this layer existed each one recomputed them ad hoc (the splitting
schemes, SSA construction and LICM each ran their own liveness fixed
point).  Following the argument of Tavares et al. (*Parameterized
Construction of Program Representations for Sparse Dataflow Analyses*),
analysis construction is a shared service: a pass asks the manager, the
manager computes at most once, and a pass that mutates the function
reports what it *preserved* so only the stale entries are dropped.

The protocol:

* an :class:`Analysis` names a fact and knows how to compute it (possibly
  in terms of other analyses — ``loops`` pulls ``dominance`` through the
  manager, so the two always share one CFG walk);
* :meth:`AnalysisManager.get` serves the cache or computes and records
  which happened (``analysis.computed.*`` / ``analysis.reused.*``
  counters on a :class:`~repro.obs.MetricsRegistry`);
* after running, a pass hands the manager a :class:`PreservedAnalyses`
  and :meth:`AnalysisManager.invalidate` evicts everything not in it.

Cached objects may be *maintained* instead of invalidated when a cheaper
update exists: the allocator's coalescer renames the cached
:class:`~repro.analysis.LivenessInfo` bitsets in place
(:meth:`~repro.analysis.LivenessInfo.rename`) rather than re-running the
fixed point, exactly as in PR 1 — the manager simply keeps serving the
maintained object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..analysis import (CodeDelta, DefUse, DominanceInfo, LivenessInfo,
                        LivenessUpdateStats, LoopInfo, PostDominanceInfo,
                        compute_def_use, compute_dominance,
                        compute_liveness, compute_liveness_sparse,
                        compute_loops, compute_postdominance)
from ..ir import Function
from ..obs import MetricsRegistry


@dataclass(frozen=True)
class Analysis:
    """A named, manager-computable analysis."""

    name: str
    compute: Callable[[Function, "AnalysisManager"], Any]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Analysis({self.name})"


LIVENESS = Analysis("liveness", lambda fn, am: compute_liveness(fn))
#: alternate provider for the same fact: the sparse per-variable solver
#: (identical result, different cost model — see
#: :mod:`repro.analysis.sparse_liveness`); install it with
#: ``AnalysisManager(fn, providers={"liveness": SPARSE_LIVENESS})``
SPARSE_LIVENESS = Analysis("liveness",
                           lambda fn, am: compute_liveness_sparse(fn))
DOMINANCE = Analysis("dominance", lambda fn, am: compute_dominance(fn))
POSTDOMINANCE = Analysis("postdominance",
                         lambda fn, am: compute_postdominance(fn))
LOOPS = Analysis("loops", lambda fn, am: compute_loops(fn, am.dominance()))
DEFUSE = Analysis("defuse", lambda fn, am: compute_def_use(fn))

ALL_ANALYSES: tuple[Analysis, ...] = (LIVENESS, DOMINANCE, POSTDOMINANCE,
                                      LOOPS, DEFUSE)
ANALYSES_BY_NAME: dict[str, Analysis] = {a.name: a for a in ALL_ANALYSES}

#: analyses that depend only on the CFG's block/edge shape, not on the
#: instructions inside blocks — preserved by any transform that neither
#: adds/removes blocks nor rewrites terminators
CFG_ANALYSES = frozenset({"dominance", "postdominance", "loops"})


class PreservedAnalyses:
    """What a pass left valid: ``all()``, ``none()``, or a named subset.

    Immutable; combine with ``&`` (a sequence of passes preserves the
    intersection of what each one preserves).
    """

    __slots__ = ("_all", "_names")

    def __init__(self, names: frozenset[str], preserve_all: bool = False):
        self._all = preserve_all
        self._names = names

    @classmethod
    def all(cls) -> "PreservedAnalyses":
        """The pass changed nothing the cache can see."""
        return _ALL

    @classmethod
    def none(cls) -> "PreservedAnalyses":
        """Conservative default: every cached analysis is stale."""
        return _NONE

    @classmethod
    def of(cls, *names: str) -> "PreservedAnalyses":
        unknown = set(names) - set(ANALYSES_BY_NAME)
        if unknown:
            raise ValueError(f"unknown analyses: {sorted(unknown)}")
        return cls(frozenset(names))

    @classmethod
    def cfg(cls) -> "PreservedAnalyses":
        """Shape-only preservation: dominance, post-dominance, loops."""
        return _CFG

    def preserves(self, name: str) -> bool:
        return self._all or name in self._names

    def __and__(self, other: "PreservedAnalyses") -> "PreservedAnalyses":
        if self._all:
            return other
        if other._all:
            return self
        return PreservedAnalyses(self._names & other._names)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PreservedAnalyses):
            return NotImplemented
        return (self._all, self._names) == (other._all, other._names)

    def __hash__(self) -> int:
        return hash((self._all, self._names))

    def describe(self) -> str:
        """Human-readable form for ``repro passes``."""
        if self._all:
            return "all"
        if not self._names:
            return "none"
        return ", ".join(sorted(self._names))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PreservedAnalyses({self.describe()})"


_ALL = PreservedAnalyses(frozenset(ANALYSES_BY_NAME), preserve_all=True)
_NONE = PreservedAnalyses(frozenset())
_CFG = PreservedAnalyses(CFG_ANALYSES)


class AnalysisManager:
    """Per-function analysis cache with hit/miss accounting.

    One manager serves one :class:`~repro.ir.Function` for the duration
    of a pipeline (or one ``allocate`` call).  Analyses are computed on
    first request and served from cache until a pass's
    :class:`PreservedAnalyses` evicts them.
    """

    def __init__(self, fn: Function,
                 metrics: MetricsRegistry | None = None,
                 providers: dict[str, Analysis] | None = None) -> None:
        self.fn = fn
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._cache: dict[str, Any] = {}
        #: name -> alternate Analysis serving that name (e.g. the sparse
        #: liveness solver); the cache key stays the *name*, so every
        #: consumer and counter is oblivious to which provider ran
        self._providers = dict(providers) if providers else {}
        for name, provider in self._providers.items():
            if provider.name != name:
                raise ValueError(
                    f"provider for {name!r} computes {provider.name!r}")

    # -- retrieval ------------------------------------------------------------

    def get(self, analysis: Analysis) -> Any:
        value = self._cache.get(analysis.name)
        if value is not None:
            self.metrics.counter(f"analysis.reused.{analysis.name}").inc()
            return value
        analysis = self._providers.get(analysis.name, analysis)
        value = analysis.compute(self.fn, self)
        self._cache[analysis.name] = value
        self.metrics.counter(f"analysis.computed.{analysis.name}").inc()
        return value

    def cached(self, analysis: Analysis) -> bool:
        return analysis.name in self._cache

    # typed conveniences, one per registered analysis
    def liveness(self) -> LivenessInfo:
        return self.get(LIVENESS)

    def dominance(self) -> DominanceInfo:
        return self.get(DOMINANCE)

    def postdominance(self) -> PostDominanceInfo:
        return self.get(POSTDOMINANCE)

    def loops(self) -> LoopInfo:
        return self.get(LOOPS)

    def defuse(self) -> DefUse:
        return self.get(DEFUSE)

    # -- invalidation ---------------------------------------------------------

    def invalidate(self, preserved: PreservedAnalyses) -> None:
        """Evict every cached analysis *preserved* does not cover."""
        for name in list(self._cache):
            if not preserved.preserves(name):
                del self._cache[name]

    def invalidate_all(self) -> None:
        self._cache.clear()

    # -- incremental maintenance ----------------------------------------------

    def update(self, delta: CodeDelta,
               preserved: PreservedAnalyses | None = None
               ) -> LivenessUpdateStats | None:
        """Maintain the cache across an instruction-level edit.

        The third cache outcome, alongside compute and reuse: analyses
        with an incremental updater — currently liveness, via
        :meth:`~repro.analysis.LivenessInfo.apply_delta` — are patched
        in place and keep serving requests; everything else follows the
        invalidation protocol against *preserved* (default: the CFG
        shape analyses, since a :class:`~repro.analysis.CodeDelta` by
        contract never changes block/edge structure).

        Emits ``analysis.updated.liveness`` plus the
        ``analysis.incremental.*`` reconciliation counters (blocks
        re-analyzed vs. total).  Returns the update stats when a cached
        liveness was patched, else ``None``.
        """
        if preserved is None:
            preserved = PreservedAnalyses.cfg()
        stats: LivenessUpdateStats | None = None
        live = self._cache.get("liveness")
        if live is not None:
            stats = live.apply_delta(delta)
            metrics = self.metrics
            metrics.counter("analysis.updated.liveness").inc()
            metrics.counter("analysis.incremental.blocks_reanalyzed").inc(
                stats.blocks_reanalyzed)
            metrics.counter("analysis.incremental.blocks_total").inc(
                stats.blocks_total)
        for name in list(self._cache):
            if name == "liveness" and stats is not None:
                continue
            if not preserved.preserves(name):
                del self._cache[name]
        return stats

    # -- accounting -----------------------------------------------------------

    def n_computed(self, name: str | None = None) -> int:
        """Fixed points actually run (for *name*, or in total)."""
        return self._count("analysis.computed", name)

    def n_reused(self, name: str | None = None) -> int:
        """Requests served from cache (for *name*, or in total)."""
        return self._count("analysis.reused", name)

    def n_updated(self, name: str | None = None) -> int:
        """Cached entries patched in place by :meth:`update`."""
        return self._count("analysis.updated", name)

    def _count(self, prefix: str, name: str | None) -> int:
        if name is not None:
            return self.metrics.counter(f"{prefix}.{name}").value
        return sum(value for key, value in self.metrics.counters().items()
                   if key.startswith(prefix + "."))
