"""`FunctionPass` adapters over every existing transform.

A pass is anything with a ``name``, a *declared* ``preserves``
(:class:`~repro.passes.manager.PreservedAnalyses` — what the pass leaves
valid when it changes the function) and a ``run(fn, am)`` method that
returns the preservation that *actually* held (``all()`` when the pass
turned out to be a no-op, the declaration otherwise).  Adapters keep
their wrapped transform's stats/result object on the instance so callers
that need more than the function mutation (SSA metadata, renumber
outcomes, hoist counts) can still reach it.

Transform modules are imported inside ``run`` bodies: the allocator and
the optimizer import this package for the manager, so importing them
back at module scope would be circular.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable

from ..ir import Function
from .manager import AnalysisManager, PreservedAnalyses


@runtime_checkable
class FunctionPass(Protocol):
    """The pass protocol the pipeline drives."""

    name: str
    #: declared invalidation contract, listed by ``repro passes``
    preserves: PreservedAnalyses

    def run(self, fn: Function, am: AnalysisManager) -> PreservedAnalyses:
        """Transform *fn* in place; return what stayed valid."""
        ...  # pragma: no cover - protocol


#: instruction-level rewrites keep the CFG shape, so dominance,
#: post-dominance and loops survive; liveness and def-use do not
_CFG_ONLY = PreservedAnalyses.cfg()
#: pre-splitting inserts ``split r r`` only where *r* is already live,
#: which leaves every block-boundary live set unchanged (checked against
#: fresh recomputes by tests/passes/test_invalidation.py)
_CFG_AND_LIVENESS = PreservedAnalyses.of("dominance", "postdominance",
                                         "loops", "liveness")


class DCEPass:
    """Dead-code elimination (:func:`repro.opt.eliminate_dead_code`)."""

    name = "dce"
    preserves = _CFG_ONLY

    def __init__(self) -> None:
        self.stats = None

    def run(self, fn: Function, am: AnalysisManager) -> PreservedAnalyses:
        from ..opt.dce import eliminate_dead_code

        self.stats = eliminate_dead_code(fn)
        if self.stats.removed == 0:
            return PreservedAnalyses.all()
        return self.preserves


class LVNPass:
    """Local value numbering (:func:`repro.opt.run_lvn`)."""

    name = "lvn"
    preserves = _CFG_ONLY

    def __init__(self) -> None:
        self.stats = None

    def run(self, fn: Function, am: AnalysisManager) -> PreservedAnalyses:
        from ..opt.lvn import run_lvn

        self.stats = run_lvn(fn)
        if self.stats.replaced == 0:
            return PreservedAnalyses.all()
        return self.preserves


class LICMPass:
    """Loop-invariant code motion (:func:`repro.opt.hoist_loop_invariants`).

    The transform threads the manager through its own fixed point
    (reusing loops/liveness between iterations and invalidating exactly
    when it hoists or creates a preheader), so by the time ``run``
    returns, the cache is already consistent — hence ``all()``.
    """

    name = "licm"
    preserves = PreservedAnalyses.none()

    def __init__(self) -> None:
        self.stats = None

    def run(self, fn: Function, am: AnalysisManager) -> PreservedAnalyses:
        from ..opt.licm import hoist_loop_invariants

        self.stats = hoist_loop_invariants(fn, am=am)
        return PreservedAnalyses.all()


class SSAConstructPass:
    """Pruned SSA construction (:func:`repro.ssa.construct_ssa`).

    Leaves φ pseudo-instructions in the function; pair with
    :class:`SSADestructPass` or :class:`RematSplitPass` before handing
    the function to φ-free consumers.  The :class:`~repro.ssa.SSAInfo`
    is kept on ``self.info``.
    """

    name = "ssa-construct"
    preserves = _CFG_ONLY

    def __init__(self) -> None:
        self.info = None

    def run(self, fn: Function, am: AnalysisManager) -> PreservedAnalyses:
        from ..ssa import construct_ssa

        self.info = construct_ssa(fn, dom=am.dominance(),
                                  liveness=am.liveness())
        return self.preserves


class SSADestructPass:
    """φ removal (:func:`repro.ssa.destroy_ssa`) for a prior
    :class:`SSAConstructPass`."""

    name = "ssa-destruct"
    preserves = _CFG_ONLY

    def __init__(self, construct: SSAConstructPass,
                 insert_copies: bool = False) -> None:
        self.construct = construct
        self.insert_copies = insert_copies
        self.result = None

    def run(self, fn: Function, am: AnalysisManager) -> PreservedAnalyses:
        from ..ssa import destroy_ssa

        self.result = destroy_ssa(fn, self.construct.info,
                                  insert_copies=self.insert_copies)
        return self.preserves


class RematSplitPass:
    """Tag propagation + live-range splitting (:mod:`repro.remat`) over a
    prior :class:`SSAConstructPass` — renumber's steps 4–6."""

    name = "remat-split"
    preserves = _CFG_ONLY

    def __init__(self, mode, construct: SSAConstructPass,
                 tracer=None) -> None:
        self.mode = mode
        self.construct = construct
        self.tracer = tracer
        self.result = None

    def run(self, fn: Function, am: AnalysisManager) -> PreservedAnalyses:
        from ..obs import NULL_TRACER
        from ..remat import (RenumberMode, apply_plan, plan_unions,
                             propagate_tags)
        from ..ssa import SSAGraph

        info = self.construct.info
        tags = None
        if self.mode is RenumberMode.REMAT:
            tags = propagate_tags(SSAGraph.build(fn, info))
        plan = plan_unions(fn, info, tags, self.mode)
        self.result = apply_plan(fn, info, plan, tags,
                                 tracer=self.tracer or NULL_TRACER)
        return self.preserves


class RenumberPass:
    """The allocator's full renumber phase
    (:func:`repro.regalloc.run_renumber`): SSA construction, tag
    propagation and splitting composed, φ-free on exit."""

    name = "renumber"
    preserves = _CFG_ONLY

    def __init__(self, mode, no_spill_regs=None, tracer=None) -> None:
        self.mode = mode
        self.no_spill_regs = no_spill_regs
        self.tracer = tracer
        self.outcome = None
        self.name = f"renumber-{mode.value.replace('_', '-')}"

    def run(self, fn: Function, am: AnalysisManager) -> PreservedAnalyses:
        from ..obs import NULL_TRACER
        from ..regalloc.renumber import run_renumber

        self.outcome = run_renumber(fn, self.mode, dom=am.dominance(),
                                    no_spill_regs=self.no_spill_regs,
                                    tracer=self.tracer or NULL_TRACER,
                                    am=am)
        return self.preserves


class PreSplitPass:
    """A Section 6 loop-splitting scheme's pre-split hook
    (:mod:`repro.regalloc.splitting`), manager-fed."""

    preserves = _CFG_AND_LIVENESS

    def __init__(self, scheme_name: str) -> None:
        from ..regalloc.splitting import SCHEMES

        self.scheme = SCHEMES[scheme_name]
        self.name = f"pre-split-{scheme_name}"

    def run(self, fn: Function, am: AnalysisManager) -> PreservedAnalyses:
        hook = self.scheme.pre_split
        if hook is not None:
            hook(fn, am.dominance(), am.loops(), am=am)
        return self.preserves


class SpillCodePass:
    """Spill-code insertion (:func:`repro.regalloc.insert_spill_code`)
    for one round's uncolored live ranges."""

    name = "spill-code"
    preserves = _CFG_ONLY

    def __init__(self, spilled, costs) -> None:
        self.spilled = spilled
        self.costs = costs
        self.stats = None

    def run(self, fn: Function, am: AnalysisManager) -> PreservedAnalyses:
        from ..regalloc.spillcode import insert_spill_code

        self.stats = insert_spill_code(fn, self.spilled, self.costs)
        return self.preserves


def _renumber_factory(mode_value: str) -> Callable[[], FunctionPass]:
    def make() -> FunctionPass:
        from ..remat import RenumberMode

        return RenumberPass(RenumberMode(mode_value))

    return make


def _registry() -> dict[str, Callable[[], FunctionPass]]:
    reg: dict[str, Callable[[], Any]] = {
        "dce": DCEPass,
        "lvn": LVNPass,
        "licm": LICMPass,
    }
    for mode_value in ("chaitin", "remat", "split_all"):
        name = f"renumber-{mode_value.replace('_', '-')}"
        reg[name] = _renumber_factory(mode_value)
    for scheme in ("around-all-loops", "around-outer-loops",
                   "around-unused-loops", "forward-reverse-df"):
        reg[f"pre-split-{scheme}"] = (
            lambda s=scheme: PreSplitPass(s))
    return reg


#: CLI-constructible passes (``repro opt --passes`` / ``repro passes``);
#: adapters needing per-call arguments (SSA pairs, spill code) are
#: instantiated programmatically instead
PASS_REGISTRY: dict[str, Callable[[], FunctionPass]] = _registry()


def make_pass(name: str) -> FunctionPass:
    """Instantiate a registered pass by CLI name."""
    factory = PASS_REGISTRY.get(name)
    if factory is None:
        raise KeyError(
            f"unknown pass {name!r} (registered: "
            f"{', '.join(sorted(PASS_REGISTRY))})")
    return factory()
