"""The :class:`PassPipeline` driver.

Runs a sequence of :class:`~repro.passes.adapters.FunctionPass` objects
over one function and one :class:`~repro.passes.manager.AnalysisManager`,
handling the cross-cutting concerns in one place:

* an ``obs`` span per pass (``pass`` spans under a ``pipeline`` root, so
  traces show where pipeline time goes exactly like allocator rounds),
* invalidation — after each pass the manager drops whatever the pass's
  returned :class:`PreservedAnalyses` does not cover,
* optional IR verification between passes (``verify_after_each``; φs are
  permitted mid-pipeline since SSA passes produce them transiently),
* print-before/print-after hooks for debugging pass pipelines from the
  CLI (``repro opt --print-after PASS``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..ir import Function, function_to_text, verify_function
from ..obs import NULL_TRACER
from .adapters import FunctionPass
from .manager import AnalysisManager, PreservedAnalyses


@dataclass
class PipelineReport:
    """What one :meth:`PassPipeline.run` did."""

    pass_names: list[str] = field(default_factory=list)
    #: per-pass actual preservation, parallel to ``pass_names``
    preserved: list[PreservedAnalyses] = field(default_factory=list)
    verifications: int = 0

    def changed(self) -> bool:
        """Did any pass report a change (i.e. not preserve everything)?"""
        return any(p != PreservedAnalyses.all() for p in self.preserved)


class PassPipeline:
    """A fixed sequence of function passes sharing one analysis manager."""

    def __init__(self, passes: Sequence[FunctionPass],
                 tracer=NULL_TRACER,
                 verify_after_each: bool = False,
                 print_before: Iterable[str] = (),
                 print_after: Iterable[str] = (),
                 dump: Callable[[str], None] = print) -> None:
        self.passes = list(passes)
        self.tracer = tracer
        self.verify_after_each = verify_after_each
        self.print_before = frozenset(print_before)
        self.print_after = frozenset(print_after)
        self.dump = dump

    def _wants(self, selection: frozenset[str], name: str) -> bool:
        return name in selection or "all" in selection

    def _print(self, fn: Function, when: str, name: str) -> None:
        self.dump(f"# --- IR {when} {name} ---")
        self.dump(function_to_text(fn).rstrip("\n"))

    def run(self, fn: Function,
            am: AnalysisManager | None = None) -> PipelineReport:
        """Run every pass over *fn* in order; returns the report.

        An existing manager may be passed to share analyses with work
        done before (or after) the pipeline; by default a fresh one is
        created.
        """
        if am is None:
            am = AnalysisManager(fn)
        report = PipelineReport()
        with self.tracer.span("pipeline", passes=len(self.passes)):
            for p in self.passes:
                if self._wants(self.print_before, p.name):
                    self._print(fn, "before", p.name)
                with self.tracer.span("pass", which=p.name):
                    preserved = p.run(fn, am)
                if preserved is None:
                    preserved = p.preserves
                am.invalidate(preserved)
                report.pass_names.append(p.name)
                report.preserved.append(preserved)
                if self.verify_after_each:
                    verify_function(fn, allow_phis=True)
                    report.verifications += 1
                if self._wants(self.print_after, p.name):
                    self._print(fn, "after", p.name)
        return report
