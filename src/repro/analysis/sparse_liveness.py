"""Sparse liveness: per-variable backward reachability from uses.

The dense solver in :mod:`repro.analysis.liveness` iterates a worklist
over whole-block bit vectors — every pass touches every register's bit
whether or not anything about that register changed.  Following the
sparse-dataflow line of Tavares, Boissinot, Pereira and Rastello
(*Parameterized Construction of Program Representations for Sparse
Dataflow Analyses*), this module computes the same fixed point by
propagating each variable separately along the paths where the fact can
actually change: from every upward-exposed use, walk the CFG backward
marking the variable live until a defining block stops the walk.  Each
(block, variable) pair is visited at most once, so the total work is
proportional to the *sum of live-range sizes* — for huge low-pressure
functions (many blocks, short ranges) that is far below the dense
solver's blocks × width × iterations, while for small dense-pressure
functions the classic solver wins.  The result is bit-for-bit the same
:class:`LivenessInfo` (same :class:`RegIndex`, same bitsets), so every
downstream consumer — interference build, renaming, delta patching —
is oblivious to which solver produced it.
"""

from __future__ import annotations

from ..ir import Function
from .indexmap import RegIndex, iter_bits
from .liveness import LivenessInfo, _block_use_def_bits


def compute_liveness_sparse(fn: Function,
                            index: RegIndex | None = None) -> LivenessInfo:
    """Compute per-block liveness of all registers in *fn*, sparsely.

    Produces a :class:`LivenessInfo` identical to
    :func:`~repro.analysis.compute_liveness` (the least fixed point is
    unique and both use the canonical register index).
    """
    if index is None:
        index = RegIndex.for_function(fn)
    labels = fn.reverse_postorder()
    use: dict[str, int] = {}
    defs: dict[str, int] = {}
    live_in: dict[str, int] = {}
    live_out: dict[str, int] = {}
    for label in labels:
        u, d = _block_use_def_bits(fn.block(label).instructions, index)
        use[label] = u
        defs[label] = d
        live_in[label] = 0
        live_out[label] = 0

    preds = fn.predecessors_map()
    stack: list[str] = []
    for label in labels:
        for i in iter_bits(use[label]):
            bit = 1 << i
            if live_in[label] & bit:
                continue  # an earlier walk already passed through here
            live_in[label] |= bit
            stack.append(label)
            while stack:
                here = stack.pop()
                for p in preds[here]:
                    if p not in live_in or live_out[p] & bit:
                        continue
                    live_out[p] |= bit
                    if defs[p] & bit or live_in[p] & bit:
                        continue  # the walk stops at a def (or joins
                        # a walk already seeded from p's own use)
                    live_in[p] |= bit
                    stack.append(p)
    return LivenessInfo(fn, index, use, defs, live_in, live_out)
