"""Control-flow and data-flow analyses over the ILOC IR."""

from .defuse import DefUse, Site, compute_def_use
from .delta import (CodeDelta, LivenessUpdateStats, diff_liveness,
                    liveness_sets_equal)
from .dominance import (DominanceInfo, compute_dominance,
                        iterated_dominance_frontier)
from .indexmap import RegIndex, iter_bits
from .liveness import (BlockLiveness, LivenessInfo, block_use_def,
                       compute_liveness)
from .sparse_liveness import compute_liveness_sparse
from .loops import (Loop, LoopInfo, compute_loops, find_back_edges,
                    instruction_depths)
from .postdominance import (PostDominanceInfo, VIRTUAL_EXIT,
                            compute_postdominance)

__all__ = [
    "BlockLiveness",
    "CodeDelta",
    "DefUse",
    "DominanceInfo",
    "Loop",
    "LoopInfo",
    "LivenessInfo",
    "LivenessUpdateStats",
    "PostDominanceInfo",
    "RegIndex",
    "Site",
    "VIRTUAL_EXIT",
    "block_use_def",
    "compute_def_use",
    "compute_dominance",
    "compute_liveness",
    "compute_liveness_sparse",
    "compute_loops",
    "compute_postdominance",
    "diff_liveness",
    "find_back_edges",
    "instruction_depths",
    "iter_bits",
    "iterated_dominance_frontier",
    "liveness_sets_equal",
]
