"""Control-flow and data-flow analyses over the ILOC IR."""

from .defuse import DefUse, Site, compute_def_use
from .dominance import (DominanceInfo, compute_dominance,
                        iterated_dominance_frontier)
from .indexmap import RegIndex, iter_bits
from .liveness import (BlockLiveness, LivenessInfo, block_use_def,
                       compute_liveness)
from .loops import (Loop, LoopInfo, compute_loops, find_back_edges,
                    instruction_depths)
from .postdominance import (PostDominanceInfo, VIRTUAL_EXIT,
                            compute_postdominance)

__all__ = [
    "BlockLiveness",
    "DefUse",
    "DominanceInfo",
    "Loop",
    "LoopInfo",
    "LivenessInfo",
    "PostDominanceInfo",
    "RegIndex",
    "Site",
    "VIRTUAL_EXIT",
    "block_use_def",
    "compute_def_use",
    "compute_dominance",
    "compute_liveness",
    "compute_loops",
    "compute_postdominance",
    "find_back_edges",
    "instruction_depths",
    "iter_bits",
    "iterated_dominance_frontier",
]
