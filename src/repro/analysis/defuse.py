"""Definition and use sites of registers."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import Function, Reg


@dataclass(frozen=True)
class Site:
    """A definition or use site: block label + instruction index."""

    block: str
    index: int


@dataclass
class DefUse:
    """Def and use sites of every register in a function."""

    defs: dict[Reg, list[Site]] = field(default_factory=dict)
    uses: dict[Reg, list[Site]] = field(default_factory=dict)

    def defs_of(self, reg: Reg) -> list[Site]:
        return self.defs.get(reg, [])

    def uses_of(self, reg: Reg) -> list[Site]:
        return self.uses.get(reg, [])

    def regs(self) -> set[Reg]:
        return set(self.defs) | set(self.uses)


def compute_def_use(fn: Function) -> DefUse:
    """Collect def and use sites for every register of *fn*."""
    du = DefUse()
    for blk in fn.blocks:
        for i, inst in enumerate(blk.instructions):
            for d in inst.dests:
                du.defs.setdefault(d, []).append(Site(blk.label, i))
            for s in inst.srcs:
                du.uses.setdefault(s, []).append(Site(blk.label, i))
    return du
