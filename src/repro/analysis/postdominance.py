"""Postdominators (reverse dominators) and reverse dominance frontiers.

The paper's Table 2 "cfa" row includes "forward and reverse dominators and
dominance frontiers"; the reverse variants also feed the splitting scheme 5
of Section 6 (splitting on both forward and reverse dominance frontiers).

We compute them by running the forward algorithm on the reversed CFG with a
virtual exit node that collects every ``ret`` block.  Blocks that cannot
reach any exit (infinite loops) are excluded from the result maps.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import Function, Opcode

#: label of the virtual exit node (never collides: real labels can't have
#: spaces)
VIRTUAL_EXIT = "<exit>"


@dataclass
class PostDominanceInfo:
    """Postdominance facts for one function.

    ``ipdom`` maps a label to its immediate postdominator; blocks whose only
    postdominator is the virtual exit map to :data:`VIRTUAL_EXIT`.
    ``frontier`` is the reverse dominance frontier.
    """

    rpo: list[str]
    ipdom: dict[str, str]
    frontier: dict[str, set[str]]

    def postdominates(self, a: str, b: str) -> bool:
        """True iff *a* postdominates *b* (reflexively)."""
        node = b
        while True:
            if node == a:
                return True
            if node == VIRTUAL_EXIT:
                return False
            nxt = self.ipdom.get(node)
            if nxt is None or nxt == node:
                return False
            node = nxt


def compute_postdominance(fn: Function) -> PostDominanceInfo:
    """Compute postdominators by dominance over the reversed CFG."""
    from .dominance import _compute_idoms

    reachable = set(fn.reverse_postorder())
    exits = [b.label for b in fn.blocks
             if b.label in reachable and b.terminator.opcode is Opcode.RET]

    # reversed-graph successors/predecessors
    rsuccs: dict[str, list[str]] = {label: [] for label in reachable}
    rsuccs[VIRTUAL_EXIT] = list(exits)
    for blk in fn.blocks:
        if blk.label not in reachable:
            continue
        for succ in blk.successors():
            rsuccs.setdefault(succ, [])
            rsuccs[succ].append(blk.label)
    rpreds: dict[str, list[str]] = {label: [] for label in rsuccs}
    for label, succs in rsuccs.items():
        for s in succs:
            rpreds[s].append(label)

    # reverse postorder of the reversed graph, from the virtual exit
    visited: set[str] = {VIRTUAL_EXIT}
    postorder: list[str] = []
    stack: list[tuple[str, int]] = [(VIRTUAL_EXIT, 0)]
    while stack:
        label, i = stack[-1]
        succs = rsuccs.get(label, [])
        if i < len(succs):
            stack[-1] = (label, i + 1)
            nxt = succs[i]
            if nxt not in visited:
                visited.add(nxt)
                stack.append((nxt, 0))
        else:
            postorder.append(label)
            stack.pop()
    rrpo = list(reversed(postorder))

    ipdom = _compute_idoms(rrpo, rpreds)

    frontier: dict[str, set[str]] = {label: set() for label in rrpo}
    index = set(rrpo)
    for label in rrpo:
        ps = [p for p in rpreds[label] if p in index and p in ipdom]
        if len(ps) < 2:
            continue
        for p in ps:
            runner = p
            while runner != ipdom[label]:
                frontier[runner].add(label)
                runner = ipdom[runner]
    frontier.pop(VIRTUAL_EXIT, None)
    return PostDominanceInfo(rpo=rrpo, ipdom=ipdom, frontier=frontier)
