"""Dominators, dominator tree and dominance frontiers.

Uses the Cooper–Harvey–Kennedy iterative algorithm ("A Simple, Fast
Dominance Algorithm"), which is the engineering descendant of the
dominance machinery the paper relies on (it cites Cytron et al. [11] for
dominance frontiers and remarks on the very low cost of control-flow
analysis in Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import Function


@dataclass
class DominanceInfo:
    """Dominance facts for one function.

    Attributes:
        rpo: block labels in reverse postorder (unreachable blocks excluded).
        idom: immediate dominator of each label (the entry maps to itself).
        children: dominator-tree children of each label.
        frontier: dominance frontier of each label.
    """

    rpo: list[str]
    idom: dict[str, str]
    children: dict[str, list[str]]
    frontier: dict[str, set[str]]

    def dominates(self, a: str, b: str) -> bool:
        """True iff *a* dominates *b* (reflexively)."""
        node = b
        while True:
            if node == a:
                return True
            parent = self.idom[node]
            if parent == node:
                return False
            node = parent

    def strictly_dominates(self, a: str, b: str) -> bool:
        return a != b and self.dominates(a, b)

    def dominators_of(self, label: str) -> list[str]:
        """All dominators of *label*, from the label up to the entry."""
        result = [label]
        node = label
        while self.idom[node] != node:
            node = self.idom[node]
            result.append(node)
        return result

    def dom_tree_preorder(self) -> list[str]:
        """Labels in a preorder walk of the dominator tree."""
        root = self.rpo[0]
        order: list[str] = []
        stack = [root]
        while stack:
            node = stack.pop()
            order.append(node)
            # reversed so children come out in recorded order
            stack.extend(reversed(self.children[node]))
        return order


def _compute_idoms(rpo: list[str],
                   preds: dict[str, list[str]]) -> dict[str, str]:
    index = {label: i for i, label in enumerate(rpo)}
    entry = rpo[0]
    idom: dict[str, str | None] = {label: None for label in rpo}
    idom[entry] = entry

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for label in rpo[1:]:
            processed = [p for p in preds[label]
                         if p in index and idom[p] is not None]
            if not processed:
                continue
            new_idom = processed[0]
            for p in processed[1:]:
                new_idom = intersect(p, new_idom)
            if idom[label] != new_idom:
                idom[label] = new_idom
                changed = True
    return {k: v for k, v in idom.items() if v is not None}


def compute_dominance(fn: Function) -> DominanceInfo:
    """Compute dominance facts for *fn* (unreachable blocks are ignored)."""
    rpo = fn.reverse_postorder()
    reachable = set(rpo)
    preds_all = fn.predecessors_map()
    preds = {label: [p for p in preds_all[label] if p in reachable]
             for label in rpo}
    idom = _compute_idoms(rpo, preds)

    children: dict[str, list[str]] = {label: [] for label in rpo}
    for label in rpo:
        parent = idom[label]
        if parent != label:
            children[parent].append(label)

    # Dominance frontiers per Cooper-Harvey-Kennedy: for each join point,
    # walk up from each predecessor to the idom, adding the join to each
    # frontier along the way.
    frontier: dict[str, set[str]] = {label: set() for label in rpo}
    for label in rpo:
        ps = preds[label]
        if len(ps) < 2:
            continue
        for p in ps:
            runner = p
            while runner != idom[label]:
                frontier[runner].add(label)
                runner = idom[runner]
    return DominanceInfo(rpo=rpo, idom=idom, children=children,
                         frontier=frontier)


def iterated_dominance_frontier(dom: DominanceInfo,
                                blocks: set[str]) -> set[str]:
    """The iterated dominance frontier DF+ of a set of blocks.

    This is where φ-nodes for a value defined in *blocks* must be placed
    (Cytron et al.).
    """
    result: set[str] = set()
    worklist = list(blocks)
    on_list = set(blocks)
    while worklist:
        block = worklist.pop()
        for f in dom.frontier.get(block, ()):
            if f not in result:
                result.add(f)
                if f not in on_list:
                    on_list.add(f)
                    worklist.append(f)
    return result
