"""Code deltas: the contract between in-place edits and cached analyses.

The allocator's round loop edits the function in two places — coalescing
(pure renames, maintained by :meth:`LivenessInfo.rename`) and spill-code
insertion.  A spill round perturbs only the blocks that mention spilled
ranges, yet the seed recomputed the whole liveness fixed point from
scratch afterwards.  A :class:`CodeDelta` describes such an edit
precisely enough for :meth:`LivenessInfo.apply_delta` to patch the
cached bitsets instead: which blocks' instruction lists changed, which
registers vanished from the function, which were introduced.

Two producers emit deltas: spill-code insertion (spilled ranges vanish,
block-local temps appear) and the coalescer's per-pass correction
(``rename()`` moves bits exactly for pure renames, but a *deleted* copy
leaves its renamed use/def bits behind — the delta snaps those blocks
back to the truth).  Exactness rests on three properties of the edits
(checked by ``verify_incremental`` and the property suite):

* *removed* registers no longer occur anywhere — their liveness is the
  empty set, so clearing their bits from every row is the exact effect
  (clearing first matters: a decreasing change cannot be recovered by a
  worklist restarted from the old solution, which can stick at a
  greater fixed point around a loop);
* *touched* registers — survivors that occurred in a **deleted**
  instruction — are the only surviving registers whose liveness can
  change at all: deleting an instruction deletes a use of each source
  and a definition of each destination (a coalesced-away copy's
  representative; a remat def's sources, were the encoding to give
  never-killed opcodes register operands), so their ranges may shrink.
  The same stuck-cycle hazard applies, so their bits are cleared from
  every live-in/out row first and regrown from their remaining use
  sites.  Rewritten-in-place instructions keep every surviving operand,
  so they touch nothing;
* all other changes are confined to the dirty blocks, so recomputing
  those blocks' use/def summaries and re-running the worklist seeded
  with the dirty region plus the touched use sites reaches the new
  least fixed point.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import Reg


@dataclass(frozen=True)
class CodeDelta:
    """A summary of an in-place instruction-level edit.

    The CFG shape (blocks, edges, terminators) must be unchanged; edits
    that add or remove blocks need the full invalidation protocol.
    """

    #: labels of blocks whose instruction list changed
    dirty_blocks: frozenset[str]
    #: registers that no longer occur anywhere in the function
    removed_regs: frozenset[Reg]
    #: registers introduced by the edit (spill temps: block-local)
    added_regs: frozenset[Reg]
    #: surviving registers that occurred in a deleted instruction —
    #: the only ones whose liveness may have changed (shrunk)
    touched_regs: frozenset[Reg] = frozenset()

    @classmethod
    def of(cls, dirty_blocks=(), removed_regs=(), added_regs=(),
           touched_regs=()) -> "CodeDelta":
        return cls(frozenset(dirty_blocks), frozenset(removed_regs),
                   frozenset(added_regs), frozenset(touched_regs))

    @property
    def empty(self) -> bool:
        return not (self.dirty_blocks or self.removed_regs
                    or self.added_regs)


@dataclass
class LivenessUpdateStats:
    """What one :meth:`LivenessInfo.apply_delta` call did."""

    #: distinct blocks whose equations were re-evaluated at least once
    blocks_reanalyzed: int = 0
    #: blocks in the function (the denominator for the incremental win)
    blocks_total: int = 0
    #: raw worklist pops (a block revisited until convergence counts
    #: each time; the from-scratch comparison point is the full
    #: fixed point's pop count over every block)
    worklist_pops: int = 0


def liveness_sets_equal(a, b) -> bool:
    """Whether two :class:`LivenessInfo` agree on every per-block set.

    Compared at the ``set[Reg]`` level, not as raw bitsets: a patched
    liveness appends spill temps to its existing :class:`RegIndex`
    while a from-scratch recompute builds a freshly sorted one, so
    identical facts may occupy permuted bit positions.
    """
    return not diff_liveness(a, b)


def diff_liveness(a, b) -> list[str]:
    """Human-readable mismatches between two liveness results (empty
    when they agree); the ``verify_incremental`` cross-check."""
    problems: list[str] = []
    labels_a = set(a._in)
    labels_b = set(b._in)
    if labels_a != labels_b:
        problems.append(f"block sets differ: {labels_a ^ labels_b}")
        return problems
    for label in sorted(labels_a):
        va, vb = a.block(label), b.block(label)
        for field in ("use", "defs", "live_in", "live_out"):
            sa, sb = getattr(va, field), getattr(vb, field)
            if sa != sb:
                problems.append(
                    f"{label}.{field}: only-patched={sorted(map(str, sa - sb))} "
                    f"only-fresh={sorted(map(str, sb - sa))}")
    return problems
