"""Natural loops and loop-nesting depth.

Loop nesting depth drives the paper's spill-cost metric: each memory access
is weighted by ``10^d`` where *d* is the instruction's loop nesting depth
(Section 2, "Spill Costs").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import Function
from .dominance import DominanceInfo, compute_dominance


@dataclass
class Loop:
    """One natural loop: its header, body (including the header) and the
    back-edge sources (latches)."""

    header: str
    body: set[str]
    latches: set[str] = field(default_factory=set)
    #: nesting depth of this loop (outermost = 1)
    depth: int = 1
    #: header of the innermost enclosing loop, if any
    parent: str | None = None


@dataclass
class LoopInfo:
    """All natural loops of a function plus per-block nesting depths."""

    loops: dict[str, Loop]
    depth: dict[str, int]

    def loop_of(self, label: str) -> Loop | None:
        """The innermost loop containing *label*, or ``None``."""
        best: Loop | None = None
        for loop in self.loops.values():
            if label in loop.body:
                if best is None or loop.depth > best.depth:
                    best = loop
        return best

    def blocks_at_depth(self, d: int) -> set[str]:
        return {label for label, dep in self.depth.items() if dep == d}


def find_back_edges(fn: Function,
                    dom: DominanceInfo) -> list[tuple[str, str]]:
    """Edges ``(u, v)`` where the target *v* dominates the source *u*."""
    edges = []
    for label in dom.rpo:
        for succ in fn.block(label).successors():
            if succ in dom.idom and dom.dominates(succ, label):
                edges.append((label, succ))
    return edges


def compute_loops(fn: Function,
                  dom: DominanceInfo | None = None) -> LoopInfo:
    """Find natural loops and compute per-block nesting depths.

    Loops sharing a header are merged (the standard natural-loop
    convention).  Depth of a block is the number of distinct loop bodies it
    belongs to; blocks outside any loop have depth 0.
    """
    if dom is None:
        dom = compute_dominance(fn)
    preds = fn.predecessors_map()

    loops: dict[str, Loop] = {}
    for latch, header in find_back_edges(fn, dom):
        loop = loops.setdefault(header, Loop(header=header, body={header}))
        loop.latches.add(latch)
        # walk backward from the latch, staying inside the region dominated
        # by the header
        stack = [latch]
        while stack:
            node = stack.pop()
            if node in loop.body:
                continue
            loop.body.add(node)
            for p in preds[node]:
                if p in dom.idom:
                    stack.append(p)

    depth: dict[str, int] = {label: 0 for label in dom.rpo}
    for loop in loops.values():
        for label in loop.body:
            depth[label] += 1
    for loop in loops.values():
        loop.depth = depth[loop.header]
        # innermost enclosing loop: smallest other body containing our header
        best: Loop | None = None
        for other in loops.values():
            if other is loop:
                continue
            if loop.header in other.body and loop.body != other.body:
                if best is None or len(other.body) < len(best.body):
                    best = other
        loop.parent = best.header if best is not None else None
    return LoopInfo(loops=loops, depth=depth)


def instruction_depths(fn: Function,
                       loop_info: LoopInfo) -> dict[str, int]:
    """Map block label -> loop nesting depth (a convenience alias)."""
    return dict(loop_info.depth)
