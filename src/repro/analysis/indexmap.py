"""Dense register indexing for bitset-backed analyses.

Chaitin's allocator numbers live ranges densely so that liveness and the
interference matrix can live in bit vectors; the sparse-analysis line of
work (Tavares et al.) makes the same move for data-flow facts.  This
module provides the Python equivalent: a :class:`RegIndex` maps every
:class:`~repro.ir.Reg` of a function to a small int, and sets of
registers become Python ints used as bitsets (``|``, ``&``, ``~`` within
the universe, population count via ``int.bit_count()``).

The index is built once per renumber round — register names only change
at renumber and at spill-code insertion, both of which start a new round
— and shared by liveness, the interference graph, and the coalesce loop
so their bitsets are directly compatible.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..ir import Function, Reg, RegClass


class RegIndex:
    """A bijection between the registers of one function and ``0..n-1``.

    Registers of the same class occupy a contiguous index range when the
    index is built with :meth:`for_function` (registers are sorted by
    class first), so per-class universes are cheap masks.  Registers may
    also be appended later with :meth:`ensure` (used by hand-built graphs
    in tests); the per-class *masks* stay exact even when the ranges stop
    being contiguous.
    """

    __slots__ = ("_ids", "_regs", "_class_masks")

    def __init__(self, regs: Iterable[Reg] = ()) -> None:
        self._ids: dict[Reg, int] = {}
        self._regs: list[Reg] = []
        self._class_masks: dict[RegClass, int] = {}
        for reg in regs:
            self.ensure(reg)

    @classmethod
    def for_function(cls, fn: Function) -> "RegIndex":
        """The canonical index of *fn*: every mentioned register, sorted
        by ``sort_key`` (class first), for deterministic dense ids."""
        return cls(sorted(fn.all_regs(), key=Reg.sort_key))

    # -- mapping ---------------------------------------------------------------

    def ensure(self, reg: Reg) -> int:
        """The id of *reg*, appending it to the universe if unseen."""
        i = self._ids.get(reg)
        if i is None:
            i = len(self._regs)
            self._ids[reg] = i
            self._regs.append(reg)
            self._class_masks[reg.rclass] = (
                self._class_masks.get(reg.rclass, 0) | (1 << i))
        return i

    def id(self, reg: Reg) -> int:
        """The dense id of *reg* (raises ``KeyError`` if absent)."""
        return self._ids[reg]

    def get(self, reg: Reg) -> int | None:
        """The dense id of *reg*, or ``None`` if absent."""
        return self._ids.get(reg)

    def reg(self, i: int) -> Reg:
        """The register with dense id *i*."""
        return self._regs[i]

    def __contains__(self, reg: Reg) -> bool:
        return reg in self._ids

    def __len__(self) -> int:
        return len(self._regs)

    def class_mask(self, rclass: RegClass) -> int:
        """Bitset of every index whose register belongs to *rclass*."""
        return self._class_masks.get(rclass, 0)

    def universe_mask(self) -> int:
        """Bitset with every index set."""
        return (1 << len(self._regs)) - 1

    # -- set <-> bitset conversion ----------------------------------------------

    def from_set(self, regs: Iterable[Reg]) -> int:
        """The bitset of *regs* (each must already be in the index)."""
        ids = self._ids
        bits = 0
        for reg in regs:
            bits |= 1 << ids[reg]
        return bits

    def from_regs(self, regs: Iterable[Reg]) -> int:
        """Like :meth:`from_set` but appends unseen registers first."""
        bits = 0
        for reg in regs:
            bits |= 1 << self.ensure(reg)
        return bits

    def to_set(self, bits: int) -> set[Reg]:
        """The set of registers whose bits are set in *bits*."""
        regs = self._regs
        return {regs[i] for i in iter_bits(bits)}

    def iter_regs(self, bits: int) -> Iterator[Reg]:
        """Iterate the registers of *bits* in ascending id order."""
        regs = self._regs
        for i in iter_bits(bits):
            yield regs[i]


def iter_bits(bits: int) -> Iterator[int]:
    """Yield the positions of the set bits of *bits*, lowest first."""
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low
