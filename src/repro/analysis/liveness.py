"""Live-variable analysis over dense register bitsets.

Backward iterative data-flow over basic blocks.  The paper computes
liveness with a sparse data-flow evaluation graph [Choi–Cytron–Ferrante];
we use the classic worklist formulation, which computes the same fixed
point — but, like Chaitin's bit-matrix build, over *dense* bit vectors:
every register gets a small id from a :class:`~repro.analysis.RegIndex`
and each use/def/live-in/live-out set is one Python int, so a transfer
``use | (out & ~defs)`` is three machine-word-wide big-int operations
instead of thousands of hashed set inserts.

The set-based API (:meth:`LivenessInfo.live_in` / :meth:`live_out`
returning ``set[Reg]``) is kept as a thin, lazily-materialized view so
existing consumers (spill costs, splitting, SSA construction) are
unchanged; bitset consumers use ``live_in_bits`` / ``live_out_bits``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from ..ir import Function, Instruction, Reg
from .indexmap import RegIndex, iter_bits


@dataclass
class BlockLiveness:
    """use/def summaries and live-in/out sets for one block (a
    materialized view; the authoritative data are the bitsets held by
    :class:`LivenessInfo`)."""

    use: set[Reg]
    defs: set[Reg]
    live_in: set[Reg]
    live_out: set[Reg]


class LivenessInfo:
    """Liveness facts for one function, keyed by block label.

    Internally everything is a bitset over :attr:`index`; the classic
    set-of-``Reg`` views are built on demand and cached until the next
    :meth:`rename`.
    """

    __slots__ = ("fn", "index", "_use", "_defs", "_in", "_out", "_views")

    def __init__(self, fn: Function, index: RegIndex,
                 use: dict[str, int], defs: dict[str, int],
                 live_in: dict[str, int], live_out: dict[str, int]) -> None:
        self.fn = fn
        self.index = index
        self._use = use
        self._defs = defs
        self._in = live_in
        self._out = live_out
        self._views: dict[str, BlockLiveness] = {}

    # -- set views (the seed API) ----------------------------------------------

    @property
    def blocks(self) -> dict[str, BlockLiveness]:
        """Materialized per-block set views, one per known block."""
        return {label: self.block(label) for label in self._in}

    def block(self, label: str) -> BlockLiveness:
        view = self._views.get(label)
        if view is None:
            to_set = self.index.to_set
            view = BlockLiveness(use=to_set(self._use[label]),
                                 defs=to_set(self._defs[label]),
                                 live_in=to_set(self._in[label]),
                                 live_out=to_set(self._out[label]))
            self._views[label] = view
        return view

    def live_in(self, label: str) -> set[Reg]:
        return self.block(label).live_in

    def live_out(self, label: str) -> set[Reg]:
        return self.block(label).live_out

    # -- bitset accessors (the fast path) ---------------------------------------

    def live_in_bits(self, label: str) -> int:
        return self._in[label]

    def live_out_bits(self, label: str) -> int:
        return self._out[label]

    def use_bits(self, label: str) -> int:
        return self._use[label]

    def def_bits(self, label: str) -> int:
        return self._defs[label]

    # -- per-instruction scan ----------------------------------------------------

    def scan_block(self, label: str):
        """Yield ``(inst, live)`` for every instruction of block *label*
        in layout order, where *live* is the ``set[Reg]`` live immediately
        **before** the instruction.

        One backward pass over the block — linear, unlike calling the old
        ``live_at_instruction`` at every point (quadratic).
        """
        index = self.index
        for inst, bits in self.scan_block_bits(label):
            yield inst, index.to_set(bits)

    def scan_block_bits(self, label: str):
        """Like :meth:`scan_block` but yields ``(inst, bitset)``."""
        blk = self.fn.block(label)
        ensure = self.index.ensure
        live = self._out[label]
        before: list[int] = []
        for inst in reversed(blk.instructions):
            for d in inst.dests:
                live &= ~(1 << ensure(d))
            for s in inst.srcs:
                live |= 1 << ensure(s)
            before.append(live)
        before.reverse()
        return zip(blk.instructions, before)

    # -- cache maintenance (coalescing) ------------------------------------------

    def clone(self) -> "LivenessInfo":
        """An independent copy sharing the (append-only) index.

        The bitset rows are immutable ints, so copying the four tables
        decouples the clone from any later :meth:`rename` /
        :meth:`apply_delta` of the original — used by the benchmarks to
        time destructive updates repeatably and by tests to compare a
        patched copy against its pristine source.
        """
        return LivenessInfo(self.fn, self.index, dict(self._use),
                            dict(self._defs), dict(self._in),
                            dict(self._out))

    def rename(self, mapping: dict[Reg, Reg]) -> None:
        """Apply a register renaming (coalesce merges) to every cached
        bitset: each *gone* bit moves onto its representative's bit.

        Coalescing only merges names — the union live range is live
        exactly where either constituent was — so renaming the cached
        fixed point is equivalent to recomputing it on the rewritten
        code (up to the same conservative union ``InterferenceGraph.merge``
        applies), and costs one mask pass per block instead of a new
        fixed-point iteration.
        """
        index = self.index
        moves = {index.id(old): 1 << index.ensure(new)
                 for old, new in mapping.items()
                 if old in index and old != new}
        if not moves:
            return
        # one mask test per row; the per-bit translation loop runs only
        # over moved registers actually present in that row (a handful),
        # so a pass costs O(blocks) big-int ops, not O(moves * blocks)
        old_mask = 0
        for i in moves:
            old_mask |= 1 << i
        for table in (self._use, self._defs, self._in, self._out):
            for label, bits in table.items():
                hits = bits & old_mask
                if not hits:
                    continue
                new_bits = 0
                for i in iter_bits(hits):
                    new_bits |= moves[i]
                table[label] = (bits & ~old_mask) | new_bits
        self._views.clear()

    def apply_delta(self, delta) -> "LivenessUpdateStats":
        """Patch the cached fixed point after an edit described by a
        :class:`~repro.analysis.CodeDelta` (see :mod:`repro.analysis.delta`
        for the exactness contract).

        Four steps: clear the removed registers' bits from every row
        (they occur nowhere, so they are live nowhere — and clearing
        *first* is what lets the restarted worklist below stay exact: a
        decrease can stick at a greater fixed point around a loop);
        clear the *touched* registers' live-in/out bits the same way —
        their ranges may have shrunk (a deleted remat def is also a
        deleted use of its sources) and will regrow from their
        remaining use sites; recompute the dirty blocks' use/def
        summaries from their new instruction lists; re-run the worklist
        seeded with the dirty region plus the touched use sites so
        every genuine data-flow change propagates to the affected
        predecessors — and only to them.
        """
        from .delta import LivenessUpdateStats

        fn = self.fn
        index = self.index
        stats = LivenessUpdateStats(blocks_total=len(self._in))

        removed_mask = 0
        for reg in delta.removed_regs:
            i = index.get(reg)
            if i is not None:
                removed_mask |= 1 << i
        if removed_mask:
            keep = ~removed_mask
            for table in (self._use, self._defs, self._in, self._out):
                for label, bits in table.items():
                    if bits & removed_mask:
                        table[label] = bits & keep

        touched_mask = 0
        for reg in delta.touched_regs:
            i = index.get(reg)
            if i is not None:
                touched_mask |= 1 << i
        touched_mask &= ~removed_mask
        if touched_mask:
            # use/defs of clean blocks are unchanged facts; only the
            # fixed-point rows are cleared for regrowth
            keep = ~touched_mask
            for table in (self._in, self._out):
                for label, bits in table.items():
                    if bits & touched_mask:
                        table[label] = bits & keep

        for label in delta.dirty_blocks:
            if label not in self._in:
                raise ValueError(
                    f"dirty block {label!r} unknown to this liveness; "
                    "CFG edits need invalidation, not update()")
            u, d = _block_use_def_bits(fn.block(label).instructions, index)
            self._use[label] = u
            self._defs[label] = d

        seeds = set(delta.dirty_blocks)
        if touched_mask:
            seeds.update(label for label, bits in self._use.items()
                         if bits & touched_mask)
        if seeds:
            preds = fn.predecessors_map()
            use, defs = self._use, self._defs
            live_in, live_out = self._in, self._out
            # seed in postorder-ish position (reversed RPO) so backward
            # flow converges with few re-visits, exactly as the full
            # fixed point does
            worklist = [label for label in reversed(fn.reverse_postorder())
                        if label in seeds]
            in_list = set(worklist)
            seen: set[str] = set()
            while worklist:
                label = worklist.pop()
                in_list.discard(label)
                seen.add(label)
                stats.worklist_pops += 1
                out = 0
                for succ in fn.block(label).successors():
                    if succ in live_in:
                        out |= live_in[succ]
                new_in = use[label] | (out & ~defs[label])
                live_out[label] = out
                if new_in != live_in[label]:
                    live_in[label] = new_in
                    for p in preds[label]:
                        if p in live_in and p not in in_list:
                            worklist.append(p)
                            in_list.add(p)
            stats.blocks_reanalyzed = len(seen)
        self._views.clear()
        return stats


def block_use_def(instructions: list[Instruction]) -> tuple[set[Reg], set[Reg]]:
    """Upward-exposed uses and defs of a straight-line sequence."""
    use: set[Reg] = set()
    defs: set[Reg] = set()
    for inst in instructions:
        for src in inst.srcs:
            if src not in defs:
                use.add(src)
        defs.update(inst.dests)
    return use, defs


def _block_use_def_bits(instructions: list[Instruction],
                        index: RegIndex) -> tuple[int, int]:
    """Bitset variant of :func:`block_use_def` over *index*."""
    ensure = index.ensure
    use = 0
    defs = 0
    for inst in instructions:
        for src in inst.srcs:
            bit = 1 << ensure(src)
            if not defs & bit:
                use |= bit
        for d in inst.dests:
            defs |= 1 << ensure(d)
    return use, defs


def compute_liveness(fn: Function,
                     index: RegIndex | None = None) -> LivenessInfo:
    """Compute per-block liveness of all registers in *fn*.

    φ pseudo-instructions must not be present (liveness for SSA form is
    handled inside renumber, where φs are given copy semantics on edges).
    An existing *index* may be passed so the result shares dense ids with
    other analyses of the same round; otherwise one is built.
    """
    if index is None:
        index = RegIndex.for_function(fn)
    labels = fn.reverse_postorder()
    use: dict[str, int] = {}
    defs: dict[str, int] = {}
    live_in: dict[str, int] = {}
    live_out: dict[str, int] = {}
    for label in labels:
        u, d = _block_use_def_bits(fn.block(label).instructions, index)
        use[label] = u
        defs[label] = d
        live_in[label] = 0
        live_out[label] = 0

    preds = fn.predecessors_map()
    # Iterate to a fixed point, visiting blocks in postorder (reverse of
    # RPO) so information flows backward quickly.
    worklist = list(reversed(labels))
    in_list = set(worklist)
    while worklist:
        label = worklist.pop()
        in_list.discard(label)
        out = 0
        for succ in fn.block(label).successors():
            if succ in live_in:
                out |= live_in[succ]
        new_in = use[label] | (out & ~defs[label])
        live_out[label] = out
        if new_in != live_in[label]:
            live_in[label] = new_in
            for p in preds[label]:
                if p in live_in and p not in in_list:
                    worklist.append(p)
                    in_list.add(p)
    return LivenessInfo(fn, index, use, defs, live_in, live_out)


def live_at_instruction(fn: Function, liveness: LivenessInfo,
                        label: str, index: int) -> set[Reg]:
    """Registers live immediately *before* instruction *index* of block
    *label*.

    .. deprecated::
        Quadratic when called for every point of a block; whole-block
        consumers should iterate :meth:`LivenessInfo.scan_block` instead,
        which computes every point in one linear pass.
    """
    warnings.warn(
        "live_at_instruction is deprecated (quadratic per block); use "
        "LivenessInfo.scan_block for a linear whole-block scan",
        DeprecationWarning, stacklevel=2)
    for i, (_inst, live) in enumerate(liveness.scan_block(label)):
        if i == index:
            return live
    # index == len(instructions): nothing after the block -> its live-out
    return set(liveness.live_out(label))
