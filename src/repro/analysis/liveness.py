"""Live-variable analysis.

Backward iterative data-flow over basic blocks.  The paper computes liveness
with a sparse data-flow evaluation graph [Choi–Cytron–Ferrante]; we use the
classic worklist formulation, which computes the same fixed point (the
"sparse" aspect only affects compile time, and Python-level set operations
make the dense version the faster one here).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import Function, Instruction, Reg


@dataclass
class BlockLiveness:
    """use/def summaries and live-in/out sets for one block."""

    use: set[Reg]
    defs: set[Reg]
    live_in: set[Reg]
    live_out: set[Reg]


@dataclass
class LivenessInfo:
    """Liveness facts for one function, keyed by block label."""

    blocks: dict[str, BlockLiveness]

    def live_in(self, label: str) -> set[Reg]:
        return self.blocks[label].live_in

    def live_out(self, label: str) -> set[Reg]:
        return self.blocks[label].live_out


def block_use_def(instructions: list[Instruction]) -> tuple[set[Reg], set[Reg]]:
    """Upward-exposed uses and defs of a straight-line sequence."""
    use: set[Reg] = set()
    defs: set[Reg] = set()
    for inst in instructions:
        for src in inst.srcs:
            if src not in defs:
                use.add(src)
        defs.update(inst.dests)
    return use, defs


def compute_liveness(fn: Function) -> LivenessInfo:
    """Compute per-block liveness of all registers in *fn*.

    φ pseudo-instructions must not be present (liveness for SSA form is
    handled inside renumber, where φs are given copy semantics on edges).
    """
    labels = fn.reverse_postorder()
    info: dict[str, BlockLiveness] = {}
    for label in labels:
        use, defs = block_use_def(fn.block(label).instructions)
        info[label] = BlockLiveness(use=use, defs=defs, live_in=set(),
                                    live_out=set())

    preds = fn.predecessors_map()
    # Iterate to a fixed point, visiting blocks in postorder (reverse of
    # RPO) so information flows backward quickly.
    order = list(reversed(labels))
    worklist = list(order)
    in_list = set(worklist)
    while worklist:
        label = worklist.pop()
        in_list.discard(label)
        bl = info[label]
        live_out: set[Reg] = set()
        for succ in fn.block(label).successors():
            if succ in info:
                live_out |= info[succ].live_in
        live_in = bl.use | (live_out - bl.defs)
        bl.live_out = live_out
        if live_in != bl.live_in:
            bl.live_in = live_in
            for p in preds[label]:
                if p in info and p not in in_list:
                    worklist.append(p)
                    in_list.add(p)
    return LivenessInfo(blocks=info)


def live_at_instruction(fn: Function, liveness: LivenessInfo,
                        label: str, index: int) -> set[Reg]:
    """Registers live immediately *before* instruction *index* of block
    *label*.

    A reference utility (quadratic if called for every point); passes that
    need liveness at every point perform their own backward walk.
    """
    blk = fn.block(label)
    live = set(liveness.live_out(label))
    for inst in reversed(blk.instructions[index:]):
        live -= set(inst.dests)
        live |= set(inst.srcs)
    return live
