"""Greedy coloring down the dominance tree (the SSA strategy's select).

On SSA form every live range has one definition and the definition of
any range dominates every point where it is live; walking the blocks in
dominance-tree preorder therefore visits each definition *after* the
definitions of everything live across it.  With pressure at most k at
every point (:mod:`repro.regalloc.maxlive`), a greedy scan that assigns
each destination the first color not used by the live-after set cannot
fail — the chordal-graph argument of Bouchez–Darte–Rastello.

Two practical wrinkles, both self-healing rather than assumed away:

* SSA destruction (maximal splitting, ``RenumberMode.SPLIT_ALL``) gives
  a φ-derived range one definition per predecessor.  The first
  definition fixes the color; later definitions *check* it and, on a
  clash, surrender the range to the caller's respill list.
* Copy destinations do not interfere with their sources (Chaitin's
  exemption, exactly as
  :func:`~repro.regalloc.interference.build_interference_graph` builds
  edges), and a copy destination *prefers* its source's color — the
  biased choice that turns split copies into removable identity copies.

The walk is deterministic: blocks in dominance-tree preorder,
instructions in layout order, colors tried lowest first.
"""

from __future__ import annotations

from ..analysis import DominanceInfo, LivenessInfo
from ..ir import Function, Reg
from ..machine import MachineDescription
from ..obs import NULL_TRACER, DomTreeColorAssigned


def color_dominance_tree(
        fn: Function, dom: DominanceInfo, liveness: LivenessInfo,
        machine: MachineDescription,
        tracer=NULL_TRACER) -> tuple[dict[Reg, int], list[Reg]]:
    """Greedily color every live range of *fn* in dominance order.

    Returns ``(coloring, uncolored)``: a complete physical-color map for
    every range not in *uncolored*, and the ranges that could not be
    colored (no free color at their definition, or a clashing second
    definition of a φ-derived range) in discovery order — the caller
    spills those and retries.
    """
    index = liveness.index
    coloring: dict[Reg, int] = {}
    uncolored: list[Reg] = []
    uncolored_set: set[Reg] = set()
    events = getattr(tracer, "events_enabled", False)

    for label in dom.dom_tree_preorder():
        pairs = list(liveness.scan_block_bits(label))
        out = liveness.live_out_bits(label)
        befores = [bits for _inst, bits in pairs]
        for i, (inst, _before) in enumerate(pairs):
            if not inst.dests:
                continue
            after = befores[i + 1] if i + 1 < len(pairs) else out
            copy_src = inst.src if inst.is_copy else None
            for d in inst.dests:
                forbidden: set[int] = set()
                for r in index.iter_regs(after):
                    if r == d or r.rclass is not d.rclass or r == copy_src:
                        continue
                    c = coloring.get(r)
                    if c is not None:
                        forbidden.add(c)
                if d in uncolored_set:
                    continue
                prior = coloring.get(d)
                if prior is not None:
                    # a later definition of a multi-def (φ-derived)
                    # range: the color must still work here
                    if prior in forbidden:
                        del coloring[d]
                        uncolored.append(d)
                        uncolored_set.add(d)
                    continue
                k = machine.k(d.rclass)
                color = None
                biased_hit = False
                if copy_src is not None and copy_src.rclass is d.rclass:
                    src_color = coloring.get(copy_src)
                    if src_color is not None and src_color < k \
                            and src_color not in forbidden:
                        color = src_color
                        biased_hit = True
                if color is None:
                    for candidate in range(k):
                        if candidate not in forbidden:
                            color = candidate
                            break
                if color is None:
                    uncolored.append(d)
                    uncolored_set.add(d)
                    continue
                coloring[d] = color
                if events:
                    tracer.event(DomTreeColorAssigned(
                        range=str(d), color=color, block=label,
                        n_forbidden=len(forbidden),
                        biased_hit=biased_hit))
    return coloring, uncolored
