"""The optimistic graph-coloring register allocator with rematerialization."""

from .allocator import (AllocationError, AllocationResult, AllocationStats,
                        RoundTimes, allocate)
from .coalesce import CoalesceStats, build_coalesce_loop, coalesce_pass
from .domtree_color import color_dominance_tree
from .interference import InterferenceGraph, build_interference_graph
from .maxlive import choose_spill_everywhere, compute_block_maxlive
from .local import (LocalAllocationError, LocalAllocationResult,
                    allocate_local)
from .renumber import RenumberOutcome, run_renumber
from .select import SelectResult, find_partners, select
from .simplify import SimplifyResult, simplify
from .spillcode import SpillCodeStats, insert_spill_code
from .slots import SlotPackingResult, pack_spill_slots
from .spillcost import SpillCosts, compute_spill_costs
from .splitting import SCHEMES, SplittingScheme
from .strategy import (ALLOCATOR_NAMES, ALLOCATOR_STRATEGIES,
                       AllocationContext, AllocatorStrategy,
                       IteratedColoringStrategy, SSAStrategy, make_strategy)

__all__ = [
    "ALLOCATOR_NAMES",
    "ALLOCATOR_STRATEGIES",
    "AllocationContext",
    "AllocationError",
    "AllocationResult",
    "AllocationStats",
    "AllocatorStrategy",
    "CoalesceStats",
    "IteratedColoringStrategy",
    "SSAStrategy",
    "InterferenceGraph",
    "LocalAllocationError",
    "LocalAllocationResult",
    "RenumberOutcome",
    "SCHEMES",
    "allocate_local",
    "SplittingScheme",
    "RoundTimes",
    "SelectResult",
    "SimplifyResult",
    "SlotPackingResult",
    "pack_spill_slots",
    "SpillCodeStats",
    "SpillCosts",
    "allocate",
    "build_coalesce_loop",
    "build_interference_graph",
    "coalesce_pass",
    "choose_spill_everywhere",
    "color_dominance_tree",
    "compute_block_maxlive",
    "compute_spill_costs",
    "find_partners",
    "insert_spill_code",
    "make_strategy",
    "run_renumber",
    "select",
    "simplify",
]
