"""The optimistic graph-coloring register allocator with rematerialization."""

from .allocator import (AllocationError, AllocationResult, AllocationStats,
                        RoundTimes, allocate)
from .coalesce import CoalesceStats, build_coalesce_loop, coalesce_pass
from .interference import InterferenceGraph, build_interference_graph
from .local import (LocalAllocationError, LocalAllocationResult,
                    allocate_local)
from .renumber import RenumberOutcome, run_renumber
from .select import SelectResult, find_partners, select
from .simplify import SimplifyResult, simplify
from .spillcode import SpillCodeStats, insert_spill_code
from .slots import SlotPackingResult, pack_spill_slots
from .spillcost import SpillCosts, compute_spill_costs
from .splitting import SCHEMES, SplittingScheme

__all__ = [
    "AllocationError",
    "AllocationResult",
    "AllocationStats",
    "CoalesceStats",
    "InterferenceGraph",
    "LocalAllocationError",
    "LocalAllocationResult",
    "RenumberOutcome",
    "SCHEMES",
    "allocate_local",
    "SplittingScheme",
    "RoundTimes",
    "SelectResult",
    "SimplifyResult",
    "SlotPackingResult",
    "pack_spill_slots",
    "SpillCodeStats",
    "SpillCosts",
    "allocate",
    "build_coalesce_loop",
    "build_interference_graph",
    "coalesce_pass",
    "compute_spill_costs",
    "find_partners",
    "insert_spill_code",
    "run_renumber",
    "select",
    "simplify",
]
