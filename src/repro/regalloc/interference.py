"""The interference graph (Section 2, *Build*).

Chaitin advocated a dual representation: a triangular bit matrix for O(1)
membership tests plus adjacency vectors for fast neighbor iteration.  This
class keeps both views (a set of index pairs and per-node adjacency sets)
and additionally supports in-place *node merging* so that coalescing can
perform several combines per build of the graph.

Integer and float live ranges never interfere — they are colored from
disjoint register files — so cross-class edges are rejected.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import Function, Reg
from ..analysis import compute_liveness


class InterferenceGraph:
    """An undirected graph over live-range registers."""

    def __init__(self, nodes: list[Reg] | None = None) -> None:
        self._adj: dict[Reg, set[Reg]] = {}
        # the triangular "bit matrix": canonicalized index pairs
        self._matrix: set[tuple[Reg, Reg]] = set()
        for node in nodes or ():
            self.add_node(node)

    # -- construction ---------------------------------------------------------

    def add_node(self, reg: Reg) -> None:
        self._adj.setdefault(reg, set())

    @staticmethod
    def _key(a: Reg, b: Reg) -> tuple[Reg, Reg]:
        return (a, b) if a.sort_key() <= b.sort_key() else (b, a)

    def add_edge(self, a: Reg, b: Reg) -> None:
        """Record that *a* and *b* interfere.  Self and cross-class pairs
        are ignored."""
        if a == b or a.rclass is not b.rclass:
            return
        key = self._key(a, b)
        if key in self._matrix:
            return
        self._matrix.add(key)
        self._adj.setdefault(a, set()).add(b)
        self._adj.setdefault(b, set()).add(a)

    # -- queries ---------------------------------------------------------------

    def nodes(self) -> list[Reg]:
        return list(self._adj)

    def __contains__(self, reg: Reg) -> bool:
        return reg in self._adj

    def interferes(self, a: Reg, b: Reg) -> bool:
        return self._key(a, b) in self._matrix

    def neighbors(self, reg: Reg) -> set[Reg]:
        return self._adj[reg]

    def degree(self, reg: Reg) -> int:
        return len(self._adj[reg])

    def n_edges(self) -> int:
        return len(self._matrix)

    # -- mutation (coalescing support) -------------------------------------------

    def merge(self, keep: Reg, gone: Reg) -> None:
        """Combine node *gone* into *keep*: N(keep) := N(keep) ∪ N(gone).

        Used by coalescing.  The result is the interference graph of the
        rewritten code (up to the usual conservative union).
        """
        if keep.rclass is not gone.rclass:
            raise ValueError(f"cannot merge {keep} with {gone}")
        for n in list(self._adj[gone]):
            self._matrix.discard(self._key(gone, n))
            self._adj[n].discard(gone)
            self.add_edge(keep, n)
        del self._adj[gone]
        self._matrix.discard(self._key(keep, gone))

    def remove_node(self, reg: Reg) -> None:
        for n in list(self._adj[reg]):
            self._matrix.discard(self._key(reg, n))
            self._adj[n].discard(reg)
        del self._adj[reg]


def build_interference_graph(fn: Function) -> InterferenceGraph:
    """Construct the interference graph of *fn* (post-renumber code).

    Classic backward walk: at each definition point the destinations
    interfere with everything currently live, except that a copy's
    destination does not interfere with its source (Chaitin's refinement
    that makes coalescing possible).
    """
    liveness = compute_liveness(fn)
    graph = InterferenceGraph()
    for _blk, inst in fn.instructions():
        for r in inst.regs():
            graph.add_node(r)

    for blk in fn.blocks:
        live: set[Reg] = set(liveness.live_out(blk.label))
        for inst in reversed(blk.instructions):
            src_exempt = inst.src if inst.is_copy else None
            for d in inst.dests:
                for l in live:
                    if l is not d and l != src_exempt:
                        graph.add_edge(d, l)
            live.difference_update(inst.dests)
            live.update(inst.srcs)
    return graph
