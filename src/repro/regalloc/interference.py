"""The interference graph (Section 2, *Build*).

Chaitin advocated a dual representation: a triangular bit matrix for O(1)
membership tests plus adjacency vectors for fast neighbor iteration.  In
Python the two collapse into one structure that serves both roles: an
int-bitset adjacency *row* per node over a dense
:class:`~repro.analysis.RegIndex`.  Membership is one shift-and-mask,
degree is ``bit_count()``, and adding a whole live set as neighbors of a
definition is a single big-int OR — which is what makes Build fast here
(the seed implementation inserted every edge into a ``set`` of
canonicalized ``Reg`` pairs, one hash and one ``sort_key`` call at a
time).  A single representation also removes the seed's dual-bookkeeping
hazard where the pair-set and the adjacency dict could drift apart under
``merge``.

Integer and float live ranges never interfere — they are colored from
disjoint register files — so cross-class edges are rejected (by masking
with the per-class universe).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import LivenessInfo, RegIndex, compute_liveness, iter_bits
from ..ir import Function, Reg


@dataclass
class GraphPatchStats:
    """What one incremental graph refresh did (vs. a full rebuild)."""

    #: blocks whose edge-insertion scan was re-run
    blocks_rescanned: int = 0
    #: blocks in the function
    blocks_total: int = 0
    #: adjacency bits re-derived (edge endpoints on refreshed rows)
    edges_patched: int = 0


class InterferenceGraph:
    """An undirected graph over live-range registers.

    Nodes are registers; adjacency is one bitset row per node, indexed by
    a shared :class:`RegIndex`.  The row view *is* the bit matrix: the
    edge (a, b) exists iff bit ``id(b)`` of ``row(a)`` is set, and rows
    are kept symmetric by construction.
    """

    def __init__(self, nodes: list[Reg] | None = None,
                 index: RegIndex | None = None) -> None:
        self._index = index if index is not None else RegIndex()
        #: dense id -> adjacency bitset; presence of the key = node exists
        self._rows: dict[int, int] = {}
        #: dense id -> Reg for present nodes, in insertion order (nodes()
        #: must be deterministic and match the seed's ordering)
        self._node_regs: dict[int, Reg] = {}
        for node in nodes or ():
            self.add_node(node)

    # -- construction ---------------------------------------------------------

    @property
    def index(self) -> RegIndex:
        return self._index

    def add_node(self, reg: Reg) -> None:
        i = self._index.ensure(reg)
        if i not in self._rows:
            self._rows[i] = 0
            self._node_regs[i] = reg

    def add_edge(self, a: Reg, b: Reg) -> None:
        """Record that *a* and *b* interfere.  Self and cross-class pairs
        are ignored."""
        if a == b or a.rclass is not b.rclass:
            return
        self.add_node(a)
        self.add_node(b)
        ia = self._index.id(a)
        ib = self._index.id(b)
        self._rows[ia] |= 1 << ib
        self._rows[ib] |= 1 << ia

    def add_def_edges(self, d: Reg, live_bits: int) -> None:
        """Make *d* interfere with every node of *live_bits* at once.

        *live_bits* may span both classes and include *d* itself; the
        cross-class and self bits are masked away.  Reverse rows are
        updated only for bits that are actually new — re-adding the edges
        of a busy loop costs one OR, not one hash probe per neighbor.
        """
        rows = self._rows
        i = self._index.ensure(d)
        row = rows.get(i)
        if row is None:
            self.add_node(d)
            row = 0
        mask = (live_bits & self._index.class_mask(d.rclass)) & ~(1 << i)
        new = mask & ~row
        if not new:
            return
        rows[i] = row | mask
        bit = 1 << i
        for j in iter_bits(new):
            rows[j] |= bit

    # -- queries ---------------------------------------------------------------

    def nodes(self) -> list[Reg]:
        return list(self._node_regs.values())

    def __contains__(self, reg: Reg) -> bool:
        i = self._index.get(reg)
        return i is not None and i in self._rows

    def interferes(self, a: Reg, b: Reg) -> bool:
        ia = self._index.get(a)
        ib = self._index.get(b)
        if ia is None or ib is None:
            return False
        row = self._rows.get(ia)
        return row is not None and bool(row >> ib & 1)

    def neighbors(self, reg: Reg) -> set[Reg]:
        return self._index.to_set(self._rows[self._index.id(reg)])

    def neighbor_bits(self, reg: Reg) -> int:
        """The adjacency row of *reg* as a bitset (the fast path)."""
        return self._rows[self._index.id(reg)]

    def degree(self, reg: Reg) -> int:
        return self._rows[self._index.id(reg)].bit_count()

    def n_edges(self) -> int:
        return sum(row.bit_count() for row in self._rows.values()) // 2

    def clone(self) -> "InterferenceGraph":
        """An independent copy sharing the (append-only) index.

        Rows are immutable ints, so copying the two dicts decouples the
        clone from later :meth:`merge` / refresh calls on the original —
        used to time destructive patches repeatably and to diff a
        patched copy against its pristine source.
        """
        other = InterferenceGraph(index=self._index)
        other._rows = dict(self._rows)
        other._node_regs = dict(self._node_regs)
        return other

    # -- mutation (coalescing support) -------------------------------------------

    def merge(self, keep: Reg, gone: Reg) -> None:
        """Combine node *gone* into *keep*: N(keep) := N(keep) ∪ N(gone).

        Used by coalescing.  The result is the interference graph of the
        rewritten code (up to the usual conservative union).  With a
        single bitset representation, ``interferes`` and ``neighbors``
        cannot drift apart — both read the same rows.
        """
        if keep.rclass is not gone.rclass:
            raise ValueError(f"cannot merge {keep} with {gone}")
        rows = self._rows
        ik = self._index.id(keep)
        ig = self._index.id(gone)
        keep_bit = 1 << ik
        gone_bit = 1 << ig
        gone_row = rows.pop(ig) & ~keep_bit
        del self._node_regs[ig]
        for j in iter_bits(gone_row):
            rows[j] = (rows[j] & ~gone_bit) | keep_bit
        rows[ik] = (rows[ik] | gone_row) & ~gone_bit

    def remove_node(self, reg: Reg) -> None:
        i = self._index.id(reg)
        bit = 1 << i
        row = self._rows.pop(i)
        del self._node_regs[i]
        for j in iter_bits(row):
            self._rows[j] &= ~bit

    # -- incremental maintenance ---------------------------------------------

    def try_refresh_after_coalesce(
            self, fn: Function, liveness: LivenessInfo, dirty: set[Reg],
            max_block_fraction: float = 0.5) -> GraphPatchStats | None:
        """Patch this graph after a coalesce pass so it equals a fresh
        :func:`build_interference_graph` over the rewritten code —
        node order included — touching only what the merges disturbed.

        *dirty* names every register involved in a merge this pass
        (survivors and merged-away members).  Exactness rests on the
        merge structure: the rewrite only renames dirty registers and
        deletes copies that mention them, so the liveness of a clean
        register is unchanged at every unchanged definition point — all
        adjacency bits that can differ from a fresh build involve at
        least one dirty node.  The patch therefore clears the dirty
        rows and columns, re-derives edges incident to dirty nodes by
        rescanning only the blocks where a dirty register is referenced
        or live, and restores program-order node insertion (simplify
        and select iterate :meth:`nodes`; byte-identical coloring needs
        the fresh-build order).

        *liveness* must already reflect the rewrite (the coalescer
        renames it in place).  When more than *max_block_fraction* of
        the blocks would need rescanning — typical for the first, very
        aggressive pass of a round — returns ``None`` without touching
        the graph; the caller should rebuild from scratch.
        """
        index = self._index
        dirty_mask = 0
        for reg in dirty:
            i = index.get(reg)
            if i is not None:
                dirty_mask |= 1 << i
        if not dirty_mask:
            return GraphPatchStats(blocks_total=len(fn.blocks))
        return self._refresh(fn, liveness, dirty_mask, max_block_fraction)

    def refresh_after_spill(self, fn: Function, liveness: LivenessInfo,
                            delta) -> GraphPatchStats:
        """Patch this graph after spill-code insertion described by a
        :class:`~repro.analysis.CodeDelta`: the spilled ranges' rows and
        columns disappear, and the tiny spill-temp intervals gain their
        edges from a rescan of the dirty blocks alone.

        *liveness* must already be patched for the same delta
        (:meth:`~repro.analysis.LivenessInfo.apply_delta`).  Exact for
        the same reason the liveness patch is: spilled registers vanish
        from the code, temps are block-local, and the only surviving
        registers whose liveness can change are the delta's *touched*
        ones (a deleted remat def is also a deleted use of its
        sources) — so every edge that differs from a fresh build
        involves a removed, added, or touched register, and all three
        groups are treated as dirty rows.

        Note the allocator's round loop cannot consume this across
        rounds — renumber renames every register, so each round's first
        build starts a new graph — but the build–coalesce loop's
        *within-round* rebuilds do (see
        :meth:`try_refresh_after_coalesce`), and the delta form is what
        the property suite and scaling bench verify and measure.
        """
        index = self._index
        dirty_mask = 0
        for reg in delta.removed_regs:
            i = index.get(reg)
            if i is not None:
                dirty_mask |= 1 << i
        for reg in delta.touched_regs:
            i = index.get(reg)
            if i is not None:
                dirty_mask |= 1 << i
        for reg in delta.added_regs:
            dirty_mask |= 1 << index.ensure(reg)
        if not dirty_mask:
            return GraphPatchStats(blocks_total=len(fn.blocks))
        return self._refresh(fn, liveness, dirty_mask, None)

    def _refresh(self, fn: Function, liveness: LivenessInfo,
                 dirty_mask: int,
                 max_block_fraction: float | None) -> GraphPatchStats | None:
        """The shared patch engine: make this graph equal a fresh build
        over *fn* given that every changed adjacency bit involves a
        register in *dirty_mask*.

        Clears the dirty rows and columns, restores fresh-build node
        insertion order, then re-derives the dirty-incident edges by
        rescanning only the blocks where a dirty register is referenced
        or live (per the already-updated *liveness*).  When
        *max_block_fraction* is given and exceeded, returns ``None``
        without touching the graph.
        """
        index = self._index
        rows = self._rows
        hit_blocks = [
            blk for blk in fn.blocks
            if (liveness.use_bits(blk.label) | liveness.def_bits(blk.label)
                | liveness.live_out_bits(blk.label)) & dirty_mask]
        n_blocks = len(fn.blocks)
        if (max_block_fraction is not None
                and len(hit_blocks) > max_block_fraction * n_blocks):
            return None
        stats = GraphPatchStats(blocks_rescanned=len(hit_blocks),
                                blocks_total=n_blocks)

        # fresh-build node set and insertion order (same scan as
        # build_interference_graph's add_node loop: dests before srcs)
        new_node_regs: dict[int, Reg] = {}
        ensure = index.ensure
        for blk in fn.blocks:
            for inst in blk.instructions:
                for r in inst.dests:
                    i = ensure(r)
                    if i not in new_node_regs:
                        new_node_regs[i] = r
                for r in inst.srcs:
                    i = ensure(r)
                    if i not in new_node_regs:
                        new_node_regs[i] = r

        keep = ~dirty_mask
        for i in list(rows):
            if i not in new_node_regs:
                # gone from the code entirely (merged-away or spilled:
                # necessarily dirty, so its bits in surviving rows fall
                # to the column clear below)
                del rows[i]
            elif (1 << i) & dirty_mask:
                rows[i] = 0
            else:
                rows[i] &= keep
        for i in new_node_regs:
            if i not in rows:
                rows[i] = 0
        self._node_regs = new_node_regs

        add_def_edges = self.add_def_edges
        for blk in hit_blocks:
            live = liveness.live_out_bits(blk.label)
            for inst in reversed(blk.instructions):
                dest_bits = 0
                if inst.dests:
                    exempt = live
                    if inst.is_copy:
                        exempt &= ~(1 << ensure(inst.src))
                    dirty_live = exempt & dirty_mask
                    for d in inst.dests:
                        bit = 1 << ensure(d)
                        dest_bits |= bit
                        # a clean definition already carries its
                        # clean-neighbor edges; only the dirty slice of
                        # the live set can differ from a fresh build
                        if bit & dirty_mask:
                            add_def_edges(d, exempt)
                        elif dirty_live:
                            add_def_edges(d, dirty_live)
                src_bits = 0
                for s in inst.srcs:
                    src_bits |= 1 << ensure(s)
                live = (live & ~dest_bits) | src_bits

        for i in iter_bits(dirty_mask):
            row = rows.get(i)
            if row is not None:
                stats.edges_patched += row.bit_count()
        return stats


def diff_graphs(a: InterferenceGraph, b: InterferenceGraph) -> list[str]:
    """Human-readable mismatches between two graphs sharing one
    :class:`RegIndex` (empty when identical, node order included); the
    ``verify_incremental`` cross-check for incremental refreshes."""
    if a.index is not b.index:
        raise ValueError("graphs must share a RegIndex to be compared")
    problems: list[str] = []
    order_a = list(a._node_regs.values())
    order_b = list(b._node_regs.values())
    if order_a != order_b:
        extra = set(order_a) ^ set(order_b)
        what = (f"node sets differ: {sorted(map(str, extra))}" if extra
                else "node insertion order differs")
        problems.append(what)
    for i in a._rows.keys() & b._rows.keys():
        if a._rows[i] != b._rows[i]:
            ra, rb = a._rows[i], b._rows[i]
            only_a = a.index.to_set(ra & ~rb)
            only_b = b.index.to_set(rb & ~ra)
            problems.append(
                f"row {a.index.reg(i)}: only-patched="
                f"{sorted(map(str, only_a))} "
                f"only-fresh={sorted(map(str, only_b))}")
    return problems


def build_interference_graph(
        fn: Function,
        liveness: LivenessInfo | None = None) -> InterferenceGraph:
    """Construct the interference graph of *fn* (post-renumber code).

    Classic backward walk: at each definition point the destinations
    interfere with everything currently live, except that a copy's
    destination does not interfere with its source (Chaitin's refinement
    that makes coalescing possible).

    A precomputed *liveness* (sharing its :class:`RegIndex`) may be
    passed; the allocator's build–coalesce loop uses this to reuse one
    liveness fixed point across graph rebuilds.
    """
    if liveness is None:
        liveness = compute_liveness(fn)
    index = liveness.index
    ensure = index.ensure
    graph = InterferenceGraph(index=index)
    for _blk, inst in fn.instructions():
        for r in inst.regs():
            graph.add_node(r)

    for blk in fn.blocks:
        live = liveness.live_out_bits(blk.label)
        for inst in reversed(blk.instructions):
            dest_bits = 0
            for d in inst.dests:
                dest_bits |= 1 << ensure(d)
            exempt = live
            if inst.is_copy:
                exempt &= ~(1 << ensure(inst.src))
            for d in inst.dests:
                graph.add_def_edges(d, exempt)
            src_bits = 0
            for s in inst.srcs:
                src_bits |= 1 << ensure(s)
            live = (live & ~dest_bits) | src_bits
    return graph
