"""The interference graph (Section 2, *Build*).

Chaitin advocated a dual representation: a triangular bit matrix for O(1)
membership tests plus adjacency vectors for fast neighbor iteration.  In
Python the two collapse into one structure that serves both roles: an
int-bitset adjacency *row* per node over a dense
:class:`~repro.analysis.RegIndex`.  Membership is one shift-and-mask,
degree is ``bit_count()``, and adding a whole live set as neighbors of a
definition is a single big-int OR — which is what makes Build fast here
(the seed implementation inserted every edge into a ``set`` of
canonicalized ``Reg`` pairs, one hash and one ``sort_key`` call at a
time).  A single representation also removes the seed's dual-bookkeeping
hazard where the pair-set and the adjacency dict could drift apart under
``merge``.

Integer and float live ranges never interfere — they are colored from
disjoint register files — so cross-class edges are rejected (by masking
with the per-class universe).
"""

from __future__ import annotations

from ..analysis import LivenessInfo, RegIndex, compute_liveness, iter_bits
from ..ir import Function, Reg


class InterferenceGraph:
    """An undirected graph over live-range registers.

    Nodes are registers; adjacency is one bitset row per node, indexed by
    a shared :class:`RegIndex`.  The row view *is* the bit matrix: the
    edge (a, b) exists iff bit ``id(b)`` of ``row(a)`` is set, and rows
    are kept symmetric by construction.
    """

    def __init__(self, nodes: list[Reg] | None = None,
                 index: RegIndex | None = None) -> None:
        self._index = index if index is not None else RegIndex()
        #: dense id -> adjacency bitset; presence of the key = node exists
        self._rows: dict[int, int] = {}
        #: dense id -> Reg for present nodes, in insertion order (nodes()
        #: must be deterministic and match the seed's ordering)
        self._node_regs: dict[int, Reg] = {}
        for node in nodes or ():
            self.add_node(node)

    # -- construction ---------------------------------------------------------

    @property
    def index(self) -> RegIndex:
        return self._index

    def add_node(self, reg: Reg) -> None:
        i = self._index.ensure(reg)
        if i not in self._rows:
            self._rows[i] = 0
            self._node_regs[i] = reg

    def add_edge(self, a: Reg, b: Reg) -> None:
        """Record that *a* and *b* interfere.  Self and cross-class pairs
        are ignored."""
        if a == b or a.rclass is not b.rclass:
            return
        self.add_node(a)
        self.add_node(b)
        ia = self._index.id(a)
        ib = self._index.id(b)
        self._rows[ia] |= 1 << ib
        self._rows[ib] |= 1 << ia

    def add_def_edges(self, d: Reg, live_bits: int) -> None:
        """Make *d* interfere with every node of *live_bits* at once.

        *live_bits* may span both classes and include *d* itself; the
        cross-class and self bits are masked away.  Reverse rows are
        updated only for bits that are actually new — re-adding the edges
        of a busy loop costs one OR, not one hash probe per neighbor.
        """
        rows = self._rows
        i = self._index.ensure(d)
        row = rows.get(i)
        if row is None:
            self.add_node(d)
            row = 0
        mask = (live_bits & self._index.class_mask(d.rclass)) & ~(1 << i)
        new = mask & ~row
        if not new:
            return
        rows[i] = row | mask
        bit = 1 << i
        for j in iter_bits(new):
            rows[j] |= bit

    # -- queries ---------------------------------------------------------------

    def nodes(self) -> list[Reg]:
        return list(self._node_regs.values())

    def __contains__(self, reg: Reg) -> bool:
        i = self._index.get(reg)
        return i is not None and i in self._rows

    def interferes(self, a: Reg, b: Reg) -> bool:
        ia = self._index.get(a)
        ib = self._index.get(b)
        if ia is None or ib is None:
            return False
        row = self._rows.get(ia)
        return row is not None and bool(row >> ib & 1)

    def neighbors(self, reg: Reg) -> set[Reg]:
        return self._index.to_set(self._rows[self._index.id(reg)])

    def neighbor_bits(self, reg: Reg) -> int:
        """The adjacency row of *reg* as a bitset (the fast path)."""
        return self._rows[self._index.id(reg)]

    def degree(self, reg: Reg) -> int:
        return self._rows[self._index.id(reg)].bit_count()

    def n_edges(self) -> int:
        return sum(row.bit_count() for row in self._rows.values()) // 2

    # -- mutation (coalescing support) -------------------------------------------

    def merge(self, keep: Reg, gone: Reg) -> None:
        """Combine node *gone* into *keep*: N(keep) := N(keep) ∪ N(gone).

        Used by coalescing.  The result is the interference graph of the
        rewritten code (up to the usual conservative union).  With a
        single bitset representation, ``interferes`` and ``neighbors``
        cannot drift apart — both read the same rows.
        """
        if keep.rclass is not gone.rclass:
            raise ValueError(f"cannot merge {keep} with {gone}")
        rows = self._rows
        ik = self._index.id(keep)
        ig = self._index.id(gone)
        keep_bit = 1 << ik
        gone_bit = 1 << ig
        gone_row = rows.pop(ig) & ~keep_bit
        del self._node_regs[ig]
        for j in iter_bits(gone_row):
            rows[j] = (rows[j] & ~gone_bit) | keep_bit
        rows[ik] = (rows[ik] | gone_row) & ~gone_bit

    def remove_node(self, reg: Reg) -> None:
        i = self._index.id(reg)
        bit = 1 << i
        row = self._rows.pop(i)
        del self._node_regs[i]
        for j in iter_bits(row):
            self._rows[j] &= ~bit


def build_interference_graph(
        fn: Function,
        liveness: LivenessInfo | None = None) -> InterferenceGraph:
    """Construct the interference graph of *fn* (post-renumber code).

    Classic backward walk: at each definition point the destinations
    interfere with everything currently live, except that a copy's
    destination does not interfere with its source (Chaitin's refinement
    that makes coalescing possible).

    A precomputed *liveness* (sharing its :class:`RegIndex`) may be
    passed; the allocator's build–coalesce loop uses this to reuse one
    liveness fixed point across graph rebuilds.
    """
    if liveness is None:
        liveness = compute_liveness(fn)
    index = liveness.index
    ensure = index.ensure
    graph = InterferenceGraph(index=index)
    for _blk, inst in fn.instructions():
        for r in inst.regs():
            graph.add_node(r)

    for blk in fn.blocks:
        live = liveness.live_out_bits(blk.label)
        for inst in reversed(blk.instructions):
            dest_bits = 0
            for d in inst.dests:
                dest_bits |= 1 << ensure(d)
            exempt = live
            if inst.is_copy:
                exempt &= ~(1 << ensure(inst.src))
            for d in inst.dests:
                graph.add_def_edges(d, exempt)
            src_bits = 0
            for s in inst.srcs:
                src_bits |= 1 << ensure(s)
            live = (live & ~dest_bits) | src_bits
    return graph
