"""Spill-code insertion (Section 2, *Spill Code*; Section 3.2 end).

Each uncolored live range is converted "into a collection of tiny live
ranges by inserting a load or store at each use and definition" — unless
its tag says it is rematerializable, in which case every use is preceded
by a fresh execution of the tag instruction and the original definitions
are simply deleted (never-killed values need no stores; the Ideal column
of Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis import CodeDelta
from ..ir import Function, Instruction, Opcode, Reg, RegClass
from .spillcost import SpillCosts


@dataclass
class SpillCodeStats:
    """What one spill round did to the code."""

    #: temporaries minted for reloads/stores (they must not respill)
    new_temps: set[Reg] = field(default_factory=set)
    #: labels of blocks whose instruction list actually changed
    dirty_blocks: set[str] = field(default_factory=set)
    #: the edit summary for incremental analysis updates — the spilled
    #: ranges vanish entirely (defs deleted or retargeted to fresh
    #: temps, uses reloaded/rematerialized into fresh temps) and every
    #: new temp is block-local, exactly the :class:`CodeDelta` contract
    delta: CodeDelta | None = None
    n_remat_ranges: int = 0
    n_memory_ranges: int = 0
    n_reloads: int = 0
    n_remats: int = 0
    n_stores: int = 0
    n_deleted_defs: int = 0


def _reload_opcode(rclass: RegClass) -> Opcode:
    return Opcode.SPLD if rclass is RegClass.INT else Opcode.FSPLD


def _store_opcode(rclass: RegClass) -> Opcode:
    return Opcode.SPST if rclass is RegClass.INT else Opcode.FSPST


def insert_spill_code(fn: Function, spilled: list[Reg],
                      costs: SpillCosts) -> SpillCodeStats:
    """Rewrite *fn* in place, spilling every live range in *spilled*."""
    stats = SpillCodeStats()
    spill_set = set(spilled)
    remat = {r: costs.remat[r] for r in spill_set if r in costs.remat}
    stats.n_remat_ranges = len(remat)
    stats.n_memory_ranges = len(spill_set) - len(remat)
    slots: dict[Reg, int] = {}

    def slot_of(reg: Reg) -> int:
        if reg not in slots:
            slots[reg] = fn.new_spill_slot()
        return slots[reg]

    # surviving registers occurring in a *deleted* instruction: deleting
    # a remat def also deletes a use of its sources, so (only) these
    # ranges may shrink — the incremental liveness update must know them
    # (CodeDelta.touched_regs).  Rewritten instructions keep every
    # surviving operand in place, so they touch nothing.  (Never-killed
    # opcodes carry no register sources in this encoding, so the set is
    # empty in practice; the bookkeeping keeps the delta contract honest
    # should that change.)
    touched: set[Reg] = set()

    for blk in fn.blocks:
        new_instructions: list[Instruction] = []
        changed = False
        for inst in blk.instructions:
            # a definition of a rematerializable spilled range disappears:
            # its defs are all the (pure) never-killed tag instruction
            if (inst.dests and inst.dests[0] in remat
                    and inst.is_never_killed):
                stats.n_deleted_defs += 1
                touched.update(inst.srcs)
                changed = True
                continue

            # reload spilled sources just before the use
            replacement: dict[Reg, Reg] = {}
            for src in set(inst.srcs):
                if src not in spill_set:
                    continue
                temp = fn.new_reg(src.rclass)
                stats.new_temps.add(temp)
                replacement[src] = temp
                if src in remat:
                    new_instructions.append(
                        remat[src].make_instruction(temp))
                    stats.n_remats += 1
                else:
                    new_instructions.append(
                        Instruction(_reload_opcode(src.rclass),
                                    dests=(temp,), imms=(slot_of(src),)))
                    stats.n_reloads += 1
            if replacement:
                inst.srcs = tuple(replacement.get(s, s) for s in inst.srcs)

            # store spilled destinations just after the definition
            stores: list[Instruction] = []
            new_dests = []
            for d in inst.dests:
                if d in spill_set:
                    temp = fn.new_reg(d.rclass)
                    stats.new_temps.add(temp)
                    new_dests.append(temp)
                    stores.append(
                        Instruction(_store_opcode(d.rclass), srcs=(temp,),
                                    imms=(slot_of(d),)))
                    stats.n_stores += 1
                else:
                    new_dests.append(d)
            inst.dests = tuple(new_dests)

            new_instructions.append(inst)
            new_instructions.extend(stores)
            if replacement or stores:
                changed = True
        if changed:
            blk.instructions = new_instructions
            stats.dirty_blocks.add(blk.label)
    touched -= spill_set
    stats.delta = CodeDelta(frozenset(stats.dirty_blocks),
                            frozenset(spill_set),
                            frozenset(stats.new_temps),
                            frozenset(touched))
    return stats
