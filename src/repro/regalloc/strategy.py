"""Pluggable allocation strategies behind one shared driver.

:func:`~repro.regalloc.allocator.allocate` owns everything every
allocation discipline needs — cloning and CFG normalization, the
per-allocation :class:`~repro.passes.AnalysisManager`, the tracer's
span tree, :class:`AllocationStats`, remat-aware spill-code emission
and the final physical rewrite — and delegates the actual
color-or-spill loop to an :class:`AllocatorStrategy`:

* :class:`IteratedColoringStrategy` (``allocator="iterated"``) — the
  paper's Chaitin/Briggs loop, renumber → build/coalesce → costs →
  simplify/select → spill, moved here verbatim from ``allocate()``.
  Briggs vs. Chaitin is the existing ``optimistic`` flag.
* :class:`SSAStrategy` (``allocator="ssa"``) — spill everywhere under
  SSA (Bouchez–Darte–Rastello, PAPERS.md): maximal splitting makes
  every SSA value its own live range, per-block MAXLIVE
  (:mod:`repro.regalloc.maxlive`) decides colorability, whole ranges
  are spilled until pressure fits the register file, and a greedy walk
  down the dominance tree (:mod:`repro.regalloc.domtree_color`) then
  colors without simplify/select.  Spill emission, rematerialization
  tags and the analysis-manager plumbing are shared with the iterated
  strategy.

Both strategies emit the same span skeleton
(``round → renumber/build/costs/color/spill``), so
:class:`~repro.regalloc.allocator.RoundTimes`, Table 2 and the JSONL
trace exports work unchanged whichever discipline ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis import compute_liveness, diff_liveness
from ..ir import Function, Reg, RegClass, verify_function
from ..machine import MachineDescription
from ..obs import MaxlivePressure, SpillDecision, SSASpillDecision, Tracer
from ..passes import AnalysisManager, PreservedAnalyses
from ..remat import RenumberMode
from .coalesce import build_coalesce_loop
from .domtree_color import color_dominance_tree
from .interference import build_interference_graph
from .maxlive import choose_spill_everywhere, compute_block_maxlive
from .renumber import run_renumber
from .select import find_partners, select
from .simplify import simplify
from .spillcode import SpillCodeStats, insert_spill_code
from .spillcost import compute_spill_costs

#: renumber and spill-code insertion rewrite instructions and register
#: names but never the CFG shape (edges were split up front), so the
#: round loop keeps dominance/post-dominance/loops across rounds and
#: drops only liveness/def-use
_CFG_ONLY = PreservedAnalyses.cfg()


class AllocationError(RuntimeError):
    """Raised when allocation cannot converge (register file too small)."""


@dataclass
class AllocationStats:
    """Aggregate counters for one allocation."""

    n_rounds: int = 0
    n_spilled_ranges: int = 0
    n_remat_spills: int = 0
    n_memory_spills: int = 0
    n_splits_inserted: int = 0
    n_copies_coalesced: int = 0
    n_splits_coalesced: int = 0
    n_identity_copies_removed: int = 0
    n_spill_slots: int = 0
    n_live_ranges_first_round: int = 0
    #: liveness fixed points computed (one per round) vs. reused across
    #: interference-graph rebuilds inside the build-coalesce loop
    n_liveness_cache_hits: int = 0
    n_liveness_cache_misses: int = 0
    #: widest register universe (bitset width in bits) seen in any round
    max_bitset_bits: int = 0
    #: AnalysisManager accounting for the whole allocation: fixed points
    #: actually run vs. requests served from the cache, plus the
    #: liveness share (the satellite metric — pre-split schemes reuse
    #: their hook's fixed point instead of recomputing it)
    n_analyses_computed: int = 0
    n_analyses_reused: int = 0
    n_liveness_computed: int = 0
    #: incremental-analysis accounting (the tentpole metric): liveness
    #: patches applied after spill rounds, and how much of the function
    #: they actually re-analyzed vs. its size — re-analyzed < total on
    #: every round is what makes rounds ≥ 2 cheaper than round 1
    n_liveness_updates: int = 0
    n_incremental_blocks_reanalyzed: int = 0
    n_incremental_blocks_total: int = 0
    #: interference-graph rebuild accounting inside the build–coalesce
    #: loops: from-scratch scans vs. merge-delta patches
    n_graph_builds: int = 0
    n_graph_patches: int = 0
    n_graph_blocks_rescanned: int = 0
    n_graph_edges_patched: int = 0


@dataclass
class AllocationContext:
    """Everything the shared driver prepares for a strategy's run.

    The strategy mutates ``work`` in place until every register is
    physical (or raises :class:`AllocationError`); the driver owns
    everything before (clone, CFG normalization, analysis manager) and
    after (slot/verification epilogue, result assembly).
    """

    fn: Function                    #: the caller's function (names only)
    work: Function                  #: the function being rewritten
    machine: MachineDescription
    mode: RenumberMode
    max_rounds: int
    biased: bool
    lookahead: bool
    coalesce_splits: bool
    optimistic: bool
    verify_rounds: bool
    incremental: bool
    verify_incremental: bool
    tracer: Tracer
    am: AnalysisManager
    dom: object
    loops: object
    stats: AllocationStats = field(default_factory=AllocationStats)


class AllocatorStrategy:
    """One allocation discipline: repeatedly color/spill ``ctx.work``
    until it colors, then rewrite it to physical registers."""

    #: the public name on the ``allocator=`` axis
    name = "?"

    def run(self, ctx: AllocationContext) -> None:
        raise NotImplementedError


class IteratedColoringStrategy(AllocatorStrategy):
    """The paper's iterated Chaitin/Briggs loop (Figure 2)."""

    name = "iterated"

    def run(self, ctx: AllocationContext) -> None:
        tracer, work, am, stats = ctx.tracer, ctx.work, ctx.am, ctx.stats
        machine = ctx.machine
        no_spill_regs: set[Reg] = set()

        for round_index in range(ctx.max_rounds):
            stats.n_rounds += 1
            with tracer.span("round", index=round_index):
                with tracer.span("renumber"):
                    outcome = run_renumber(work, ctx.mode, dom=ctx.dom,
                                           no_spill_regs=no_spill_regs,
                                           tracer=tracer, am=am)
                # renumber renames every register: liveness/def-use are
                # stale, the CFG analyses survive
                am.invalidate(_CFG_ONLY)
                if ctx.verify_rounds:
                    verify_function(work)
                stats.n_splits_inserted += outcome.result.n_splits_inserted
                if round_index == 0:
                    stats.n_live_ranges_first_round = len(
                        outcome.result.live_ranges)
                no_spill = outcome.no_spill

                # one liveness fixed point per round, shared by every
                # graph rebuild of the build-coalesce loop (coalescing
                # renames the manager's cached bitsets in place, which
                # keeps the entry valid); spill-code insertion ends the
                # round and invalidates it below
                with tracer.span("build"):
                    liveness = am.liveness()
                    graph, cstats = build_coalesce_loop(
                        work, machine, build_interference_graph,
                        no_spill=no_spill,
                        coalesce_splits=ctx.coalesce_splits,
                        liveness=liveness, tracer=tracer,
                        incremental=ctx.incremental,
                        verify_incremental=ctx.verify_incremental)
                stats.n_copies_coalesced += cstats.copies_removed
                stats.n_splits_coalesced += cstats.splits_removed
                stats.n_liveness_cache_hits += cstats.liveness_cache_hits
                stats.n_liveness_cache_misses += \
                    cstats.liveness_cache_misses
                stats.n_graph_builds += cstats.graph_builds
                stats.n_graph_patches += cstats.graph_patches
                stats.n_graph_blocks_rescanned += \
                    cstats.graph_blocks_rescanned
                stats.n_graph_edges_patched += cstats.graph_edges_patched
                if cstats.graph_patches:
                    metrics = am.metrics
                    metrics.counter(
                        "analysis.incremental.graph_patches").inc(
                            cstats.graph_patches)
                    metrics.counter(
                        "analysis.incremental.graph_blocks_rescanned").inc(
                            cstats.graph_blocks_rescanned)
                    metrics.counter(
                        "analysis.incremental.graph_edges_patched").inc(
                            cstats.graph_edges_patched)
                stats.max_bitset_bits = max(stats.max_bitset_bits,
                                            len(liveness.index))

                with tracer.span("costs"):
                    costs = compute_spill_costs(work, ctx.loops, machine,
                                                no_spill=no_spill,
                                                tracer=tracer)

                with tracer.span("color"):
                    order = simplify(graph, machine, costs,
                                     optimistic=ctx.optimistic,
                                     tracer=tracer)
                    partners = find_partners(work) if ctx.biased else None
                    chosen = select(graph, order, machine,
                                    partners=partners,
                                    lookahead=ctx.lookahead, tracer=tracer)
                    chosen.spilled.extend(order.pessimistic_spills)

                if not chosen.spilled:
                    _assign_physical(work, chosen.coloring, stats)
                    return

                if tracer.events_enabled:
                    pessimistic = set(order.pessimistic_spills)
                    for reg in chosen.spilled:
                        tracer.event(SpillDecision(
                            range=str(reg),
                            cost=costs.cost.get(reg, 0.0),
                            degree=graph.degree(reg),
                            remat_tag=(str(costs.remat[reg])
                                       if reg in costs.remat else None),
                            chosen_because=("pessimistic-simplify"
                                            if reg in pessimistic
                                            else "select-found-no-color")))

                spill_stats = _emit_spill_code(ctx, chosen.spilled, costs)
                no_spill_regs = no_spill | spill_stats.new_temps

        raise AllocationError(
            f"{ctx.fn.name}: no coloring after {ctx.max_rounds} rounds on "
            f"{machine.name} (k_int={machine.int_regs}, "
            f"k_float={machine.float_regs})")


class SSAStrategy(AllocatorStrategy):
    """Spill everywhere under SSA form (Bouchez–Darte–Rastello).

    Each round renumbers with maximal splitting
    (:attr:`RenumberMode.SPLIT_ALL` — every SSA value becomes its own
    live range, with split copies at predecessor ends standing in for
    the φs), then decides *by pressure alone*:

    1. per-block MAXLIVE; blocks over the register file feed
       :func:`~repro.regalloc.maxlive.choose_spill_everywhere`, whose
       victims are spilled this round and the loop retries — spilling
       is finished before coloring starts;
    2. once every point fits, one greedy walk down the dominance tree
       colors the ranges — no simplify, no select, no optimism needed;
    3. a final audit against the round's interference graph catches the
       multi-def wrinkles SSA destruction introduces (clashing ranges
       are respilled, keeping the strategy self-healing rather than
       trusting the chordal argument off-SSA).

    The ``mode`` knob is ignored — the splitting policy *is* the
    strategy — and the shared spill emission keeps Chaitin-style
    rematerialization: never-killed values respill as recomputation.
    """

    name = "ssa"

    def run(self, ctx: AllocationContext) -> None:
        tracer, work, am, stats = ctx.tracer, ctx.work, ctx.am, ctx.stats
        machine = ctx.machine
        no_spill_regs: set[Reg] = set()

        for round_index in range(ctx.max_rounds):
            stats.n_rounds += 1
            with tracer.span("round", index=round_index):
                with tracer.span("renumber"):
                    outcome = run_renumber(work, RenumberMode.SPLIT_ALL,
                                           dom=ctx.dom,
                                           no_spill_regs=no_spill_regs,
                                           tracer=tracer, am=am)
                am.invalidate(_CFG_ONLY)
                if ctx.verify_rounds:
                    verify_function(work)
                stats.n_splits_inserted += outcome.result.n_splits_inserted
                if round_index == 0:
                    stats.n_live_ranges_first_round = len(
                        outcome.result.live_ranges)
                no_spill = outcome.no_spill

                with tracer.span("build"):
                    liveness = am.liveness()
                    maxlive = compute_block_maxlive(work, liveness)
                stats.max_bitset_bits = max(stats.max_bitset_bits,
                                            len(liveness.index))
                if tracer.events_enabled:
                    for label, pressure in maxlive.items():
                        tracer.event(MaxlivePressure(
                            block=label,
                            int_pressure=pressure[RegClass.INT],
                            float_pressure=pressure[RegClass.FLOAT],
                            k_int=machine.int_regs,
                            k_float=machine.float_regs))

                with tracer.span("costs"):
                    costs = compute_spill_costs(work, ctx.loops, machine,
                                                no_spill=no_spill,
                                                tracer=tracer)

                with tracer.span("color"):
                    spilled = choose_spill_everywhere(
                        work, liveness, machine, costs, tracer=tracer)
                    if not spilled:
                        coloring, spilled = color_dominance_tree(
                            work, ctx.dom, liveness, machine,
                            tracer=tracer)
                        if not spilled:
                            spilled = _audit_coloring(
                                work, liveness, coloring, costs, tracer)
                        if tracer.events_enabled:
                            for reg in spilled:
                                tracer.event(SSASpillDecision(
                                    range=str(reg),
                                    cost=costs.cost.get(reg, 0.0),
                                    block="",
                                    pressure=0,
                                    k=machine.k(reg.rclass),
                                    remat_tag=(str(costs.remat[reg])
                                               if reg in costs.remat
                                               else None),
                                    chosen_because="uncolorable"))

                if not spilled:
                    _assign_physical(work, coloring, stats)
                    return

                spill_stats = _emit_spill_code(ctx, spilled, costs)
                no_spill_regs = no_spill | spill_stats.new_temps

        raise AllocationError(
            f"{ctx.fn.name}: no coloring after {ctx.max_rounds} rounds on "
            f"{machine.name} (k_int={machine.int_regs}, "
            f"k_float={machine.float_regs})")


def _audit_coloring(work: Function, liveness, coloring: dict[Reg, int],
                    costs, tracer) -> list[Reg]:
    """Cross-check a greedy coloring against the actual interference
    graph; returns the cheaper range of every same-color edge (empty
    when the coloring is sound, the common case)."""
    graph = build_interference_graph(work, liveness)
    clashing: set[Reg] = set()
    for reg, color in coloring.items():
        for other in sorted(graph.neighbors(reg), key=Reg.sort_key):
            if other in clashing or reg in clashing:
                continue
            if coloring.get(other) == color:
                victim = min(
                    (reg, other),
                    key=lambda r: (costs.cost.get(r, 0.0), r.sort_key()))
                clashing.add(victim)
    return sorted(clashing, key=Reg.sort_key)


def _emit_spill_code(ctx: AllocationContext, spilled: list[Reg],
                     costs) -> SpillCodeStats:
    """Insert this round's spill code and keep the cached analyses
    honest — the incremental patch-vs-invalidate dance both strategies
    share, byte-for-byte the round epilogue ``allocate()`` always ran."""
    tracer, work, am, stats = ctx.tracer, ctx.work, ctx.am, ctx.stats
    with tracer.span("spill"):
        spill_stats = insert_spill_code(work, spilled, costs)
    if ctx.incremental and spill_stats.delta is not None:
        # patch the cached liveness through the spill delta instead of
        # evicting it: the next round's renumber reads it for SSA
        # pruning as a cache hit, saving one whole-function fixed point
        # per round ≥ 2
        update = am.update(spill_stats.delta, _CFG_ONLY)
        if update is not None:
            stats.n_liveness_updates += 1
            stats.n_incremental_blocks_reanalyzed += \
                update.blocks_reanalyzed
            stats.n_incremental_blocks_total += update.blocks_total
            if ctx.verify_incremental:
                problems = diff_liveness(
                    am.liveness(), compute_liveness(work))
                if problems:
                    raise RuntimeError(
                        "incremental liveness update diverged "
                        f"from recompute on {ctx.fn.name}: "
                        + "; ".join(problems[:5]))
    else:
        am.invalidate(_CFG_ONLY)
    if ctx.verify_rounds:
        verify_function(work)
    stats.n_spilled_ranges += len(spilled)
    stats.n_remat_spills += spill_stats.n_remat_ranges
    stats.n_memory_spills += spill_stats.n_memory_ranges
    return spill_stats


def _assign_physical(fn: Function, coloring: dict[Reg, int],
                     stats: AllocationStats) -> None:
    """Rewrite live ranges to physical registers and drop identity copies.

    Biased coloring often gives split partners the same color; the split
    then becomes an identity copy and disappears here — the late removal
    of unproductive splits (Section 3.4).
    """
    mapping = {
        reg: Reg(reg.rclass, color, physical=True)
        for reg, color in coloring.items()
    }
    for blk in fn.blocks:
        new_instructions = []
        for inst in blk.instructions:
            inst.rewrite_regs(mapping)
            if inst.is_copy and inst.dest == inst.src:
                stats.n_identity_copies_removed += 1
                continue
            new_instructions.append(inst)
        blk.instructions = new_instructions


#: the registered strategies, keyed by their public ``allocator=`` name
ALLOCATOR_STRATEGIES: dict[str, type[AllocatorStrategy]] = {
    cls.name: cls for cls in (IteratedColoringStrategy, SSAStrategy)
}

#: the valid values of the ``allocator=`` axis, in registration order
ALLOCATOR_NAMES: tuple[str, ...] = tuple(ALLOCATOR_STRATEGIES)


def make_strategy(name: str) -> AllocatorStrategy:
    """The strategy registered as *name* (``iterated`` | ``ssa``)."""
    try:
        cls = ALLOCATOR_STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown allocator {name!r} "
            f"(one of {', '.join(ALLOCATOR_NAMES)})") from None
    return cls()
