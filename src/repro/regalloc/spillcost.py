"""Spill-cost estimation (Section 2, *Spill Costs*; Section 3.2 end).

Chaitin's metric: the cost of the memory accesses a spill would add, each
weighted by ``10^d`` where *d* is the instruction's loop-nesting depth.
The rematerialization tags refine this: a never-killed live range needs no
stores — each use costs one execution of the tag instruction, and the
original definitions disappear, so the net cost can even be negative
(a profitable spill).

A live range is rematerializable exactly when *all* of its definitions are
identical never-killed instructions — Chaitin's original criterion.  After
the tag-driven splitting of renumber this test recognizes precisely the
``inst``-tagged live ranges (splits are never inserted *into* an
``inst``-tagged web), so the Old and New allocators can share this code;
the difference between them is entirely in where renumber put the splits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..analysis import LoopInfo
from ..ir import Function, Reg
from ..machine import MachineDescription
from ..obs import NULL_TRACER, RematCost
from ..remat import InstTag


@dataclass
class SpillCosts:
    """Estimated spill cost and remat tag of every live range."""

    cost: dict[Reg, float] = field(default_factory=dict)
    #: live range -> tag, for ranges rematerializable as a whole
    remat: dict[Reg, InstTag] = field(default_factory=dict)

    def is_remat(self, reg: Reg) -> bool:
        return reg in self.remat


def compute_spill_costs(fn: Function, loops: LoopInfo,
                        machine: MachineDescription,
                        no_spill: set[Reg] | None = None,
                        tracer=NULL_TRACER) -> SpillCosts:
    """Estimate spill costs for every register of *fn*.

    Registers in *no_spill* (spill temporaries from earlier rounds) get
    infinite cost so the spill-candidate chooser never selects them.
    When the tracer captures events, every range recognized as
    rematerializable emits a :class:`~repro.obs.RematCost` event
    carrying its tag and net cost.
    """
    no_spill = no_spill or set()
    use_weight: dict[Reg, float] = {}
    def_weight: dict[Reg, float] = {}
    def_keys: dict[Reg, set] = {}
    def_count: dict[Reg, int] = {}
    seen: set[Reg] = set()

    for blk in fn.blocks:
        weight = float(10 ** loops.depth.get(blk.label, 0))
        for inst in blk.instructions:
            # one reload serves all occurrences of a register in one
            # instruction, so count each register once per instruction
            for s in set(inst.srcs):
                use_weight[s] = use_weight.get(s, 0.0) + weight
                seen.add(s)
            for d in inst.dests:
                def_weight[d] = def_weight.get(d, 0.0) + weight
                def_count[d] = def_count.get(d, 0) + 1
                seen.add(d)
                keys = def_keys.setdefault(d, set())
                if inst.is_never_killed:
                    keys.add(inst.remat_key())
                else:
                    keys.add(None)  # not rematerializable from this def

    costs = SpillCosts()
    for reg in seen:
        keys = def_keys.get(reg, set())
        remat_tag: InstTag | None = None
        if len(keys) == 1:
            (key,) = keys
            if key is not None:
                opcode, imms = key
                remat_tag = InstTag(opcode, imms)
        if reg in no_spill:
            costs.cost[reg] = math.inf
        elif remat_tag is not None:
            remat_cost = machine.cycle_cost(remat_tag.opcode)
            # each use is replaced by one remat instruction; every def
            # disappears (it recomputed a value nobody keeps)
            costs.cost[reg] = (remat_cost * use_weight.get(reg, 0.0)
                               - remat_cost * def_weight.get(reg, 0.0))
        else:
            costs.cost[reg] = (machine.load_cost * use_weight.get(reg, 0.0)
                               + machine.store_cost * def_weight.get(reg, 0.0))
        if remat_tag is not None:
            costs.remat[reg] = remat_tag
    if tracer.events_enabled:
        # dense sort-key order: `seen` iterates in hash order
        for reg in sorted(costs.remat, key=Reg.sort_key):
            tracer.event(RematCost(range=str(reg), cost=costs.cost[reg],
                                   remat_tag=str(costs.remat[reg])))
    return costs
