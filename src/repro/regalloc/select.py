"""The select phase with biased coloring (Sections 2 and 4.3).

Select pops nodes off simplify's stack and gives each a color distinct
from its already-colored neighbors; nodes with no free color are left
uncolored (they will be spilled).

*Biased coloring* removes unproductive splits late: before coloring, the
allocator finds *partners* — live ranges connected by split (or copy)
instructions — and select first tries colors already assigned to a
partner.  With *limited lookahead* it additionally prefers, among free
colors, one that is still free for an uncolored partner, so the partner
can later match it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import Function, Reg
from ..machine import MachineDescription
from ..obs import ColorAssigned, NULL_TRACER
from .interference import InterferenceGraph
from .simplify import SimplifyResult


@dataclass
class SelectResult:
    """Colors for the colorable nodes, plus the nodes left uncolored."""

    coloring: dict[Reg, int] = field(default_factory=dict)
    spilled: list[Reg] = field(default_factory=list)


def find_partners(fn: Function,
                  splits_only: bool = False) -> dict[Reg, set[Reg]]:
    """Live ranges connected by split (and optionally plain copy)
    instructions."""
    partners: dict[Reg, set[Reg]] = {}
    for _blk, inst in fn.instructions():
        if not inst.is_copy:
            continue
        if splits_only and not inst.is_split:
            continue
        a, b = inst.dest, inst.src
        if a == b:
            continue
        partners.setdefault(a, set()).add(b)
        partners.setdefault(b, set()).add(a)
    return partners


def select(graph: InterferenceGraph, order: SimplifyResult,
           machine: MachineDescription,
           partners: dict[Reg, set[Reg]] | None = None,
           lookahead: bool = True, tracer=NULL_TRACER) -> SelectResult:
    """Assign colors in the order determined by simplify.

    When the tracer captures events, every successful assignment emits a
    :class:`~repro.obs.ColorAssigned` event recording whether the color
    came from a biased-partner hit or the limited lookahead.
    """
    partners = partners or {}
    result = SelectResult()
    coloring = result.coloring

    index = graph.index
    # one bitset of already-colored nodes per color: a color is
    # forbidden iff the node's adjacency row intersects that color's
    # bitset, so the forbidden set costs k big-int ANDs instead of a
    # dict probe per neighbor (rows are same-class by construction, so
    # the two register files can share the array)
    colored_with = [0] * machine.max_k()
    for node in reversed(order.stack):
        k = machine.k(node.rclass)
        row = graph.neighbor_bits(node)
        available = [c for c in range(k) if not row & colored_with[c]]
        if not available:
            result.spilled.append(node)
            continue
        color, because = _choose_color(node, available, graph, coloring,
                                       colored_with, partners, lookahead)
        coloring[node] = color
        colored_with[color] |= 1 << index.id(node)
        if tracer.events_enabled:
            tracer.event(ColorAssigned(
                range=str(node), color=color,
                n_forbidden=k - len(available),
                biased_hit=because == "biased-partner",
                lookahead_used=because == "lookahead",
                was_candidate=node in order.candidates))
    return result


def _choose_color(node: Reg, available: list[int],
                  graph: InterferenceGraph, coloring: dict[Reg, int],
                  colored_with: list[int],
                  partners: dict[Reg, set[Reg]],
                  lookahead: bool) -> tuple[int, str]:
    """Biased choice among *available* colors, plus why it was chosen
    (``biased-partner`` | ``lookahead`` | ``first-free``)."""
    # sorted for cross-run determinism (sets iterate in hash order)
    mates = sorted(partners.get(node, ()), key=lambda r: r.sort_key())
    # 1. a color some colored partner already has
    for mate in mates:
        c = coloring.get(mate)
        if c is not None and c in available:
            return c, "biased-partner"
    if lookahead and mates:
        # 2. limited lookahead: prefer a color still free for an uncolored
        #    partner, so the partner can match it later; each mate's
        #    adjacency row is fetched once (it does not depend on the
        #    color under trial) and tested against the per-color bitsets
        mate_rows = [graph.neighbor_bits(m) for m in mates
                     if m not in coloring and m in graph]
        best_color = None
        best_score = -1
        for c in available:
            taken = colored_with[c]
            score = sum(1 for row in mate_rows if not row & taken)
            if score > best_score:
                best_color, best_score = c, score
        if best_color is not None:
            return best_color, "lookahead"
    # 3. first free color (Chaitin's default)
    return available[0], "first-free"
