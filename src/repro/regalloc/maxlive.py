"""Per-block register pressure (MAXLIVE) and spill-everywhere choice.

Bouchez, Darte and Rastello ("On the Complexity of Spill Everywhere
under SSA Form", PAPERS.md) observe that on SSA form the interference
graph is chordal, so the chromatic number equals the maximum clique —
and the maximum clique at any program point is simply the set of values
live there.  Allocation therefore decomposes: *per-block MAXLIVE
decides colorability*, spilling lowers MAXLIVE to at most k, and a
greedy walk down the dominance tree then colors without backtracking
(:mod:`repro.regalloc.domtree_color`).

This module supplies the two pressure-side pieces:

* :func:`compute_block_maxlive` — the per-block pressure summary.  The
  pressure of a *point* is the number of simultaneously live registers
  of one class; a block's points are its entry, the instant before each
  instruction, and each definition instant (where the destinations
  coexist with everything live after, matching the def-point edges of
  :func:`~repro.regalloc.interference.build_interference_graph`).
* :func:`choose_spill_everywhere` — walk every point once and, wherever
  effective pressure exceeds the register file, pick the cheapest
  live-through ranges to spill *everywhere* (whole ranges, the paper's
  Chaitin-style granularity — reload temps reuse the existing
  remat-aware :func:`~repro.regalloc.spillcode.insert_spill_code`).
  "Effective" pressure discounts already-spilled ranges but charges one
  register per spilled operand of the adjacent instruction, since its
  reload/store temp occupies a register at exactly that point.

Both walks are deterministic: blocks in reverse postorder, victims by
``(cost, Reg.sort_key)``.
"""

from __future__ import annotations

from ..analysis import LivenessInfo
from ..ir import Function, Reg, RegClass
from ..machine import MachineDescription
from ..obs import NULL_TRACER, SSASpillDecision
from .spillcost import SpillCosts

#: the register classes with their own files (and own pressure)
_CLASSES = (RegClass.INT, RegClass.FLOAT)


def _block_points(fn: Function, liveness: LivenessInfo, label: str):
    """Yield ``(inst | None, bits)`` for every pressure point of the
    block: ``(None, live_in)`` for the entry, ``(inst, before)`` for
    each use point, ``(inst, after | dests)`` for each def point."""
    ensure = liveness.index.ensure
    pairs = list(liveness.scan_block_bits(label))
    if not pairs:
        yield None, liveness.live_in_bits(label)
        return
    out = liveness.live_out_bits(label)
    befores = [bits for _inst, bits in pairs]
    yield None, befores[0]
    for i, (inst, before) in enumerate(pairs):
        yield inst, before
        if inst.dests:
            after = befores[i + 1] if i + 1 < len(pairs) else out
            dest_bits = 0
            for d in inst.dests:
                dest_bits |= 1 << ensure(d)
            yield inst, after | dest_bits


def compute_block_maxlive(
        fn: Function,
        liveness: LivenessInfo) -> dict[str, dict[RegClass, int]]:
    """The per-block, per-class maximum register pressure of *fn*.

    ``result[label][rclass]`` is the largest number of *rclass*
    registers simultaneously live at any point of the block (def points
    counting destinations against the live-after set).  A function is
    greedily colorable down the dominance tree exactly when every entry
    is at most the machine's ``k`` for that class.
    """
    index = liveness.index
    masks = {cls: index.class_mask(cls) for cls in _CLASSES}
    result: dict[str, dict[RegClass, int]] = {}
    for blk in fn.blocks:
        best = {cls: 0 for cls in _CLASSES}
        for _inst, bits in _block_points(fn, liveness, blk.label):
            for cls in _CLASSES:
                n = (bits & masks[cls]).bit_count()
                if n > best[cls]:
                    best[cls] = n
        result[blk.label] = best
    return result


def choose_spill_everywhere(fn: Function, liveness: LivenessInfo,
                            machine: MachineDescription,
                            costs: SpillCosts,
                            tracer=NULL_TRACER) -> list[Reg]:
    """Pick live ranges to spill everywhere until no point's effective
    pressure exceeds the register file.

    One forward walk per block (blocks in reverse postorder).  At every
    over-pressure point the victim is the cheapest live-*through* range
    — spilling a range used or defined at the point itself cannot lower
    that point's pressure, because its reload/store temp still needs a
    register there.  The cost sort puts infinite-cost ranges (spill
    temps) last, so they are only ever taken as a last resort —
    mirroring simplify's infinite-cost fallback.

    Returns the chosen ranges in decision order (deterministic); the
    caller hands them to
    :func:`~repro.regalloc.spillcode.insert_spill_code`.
    """
    index = liveness.index
    masks = {cls: index.class_mask(cls) for cls in _CLASSES}
    ks = {cls: machine.k(cls) for cls in _CLASSES}
    cost_of = costs.cost
    spilled: list[Reg] = []
    spilled_bits = 0
    events = getattr(tracer, "events_enabled", False)

    for label in fn.reverse_postorder():
        for inst, bits in _block_points(fn, liveness, label):
            # registers whose reload/store temps occupy this point
            pinned: tuple[Reg, ...] = ()
            if inst is not None:
                pinned = tuple(dict.fromkeys(inst.regs()))
            for cls in _CLASSES:
                live = bits & masks[cls] & ~spilled_bits
                extra = sum(1 for r in pinned
                            if r.rclass is cls
                            and spilled_bits >> index.ensure(r) & 1)
                need = live.bit_count() + extra - ks[cls]
                if need <= 0:
                    continue
                through = live
                for r in pinned:
                    if r.rclass is cls:
                        through &= ~(1 << index.ensure(r))
                candidates = sorted(
                    index.iter_regs(through),
                    key=lambda r: (cost_of.get(r, 0.0), r.sort_key()))
                for victim in candidates:
                    if need <= 0:
                        break
                    spilled.append(victim)
                    spilled_bits |= 1 << index.ensure(victim)
                    need -= 1
                    if events:
                        tracer.event(SSASpillDecision(
                            range=str(victim),
                            cost=cost_of.get(victim, 0.0),
                            block=label,
                            pressure=live.bit_count() + extra,
                            k=ks[cls],
                            remat_tag=(str(costs.remat[victim])
                                       if victim in costs.remat else None),
                            chosen_because="over-pressure"))
                # a point that stays over-pressure after exhausting its
                # live-through ranges is left for the next round: the
                # spill code inserted for this round's victims shortens
                # ranges everywhere and the chooser runs again
    return spilled
