"""Alternative splitting schemes (Section 6 of the paper).

Beyond tag-driven splitting, the paper experimented with

1. splitting all live ranges around all loops,
2. splitting all live ranges around outer loops,
3. splitting live ranges around the outermost loop where they are neither
   used nor defined,
4. splitting along the forward dominance frontiers (at all φ-nodes), and
5. splitting based on both forward and reverse dominance frontiers.

"Each scheme had several major successes; each had several equally
dramatic failures."  The ablation harness reproduces that mixed verdict.

Schemes 1–3 and the reverse-frontier part of 5 are implemented as
*pre-split hooks*: before renumber runs, ``split r r`` instructions are
inserted at the chosen region boundaries.  Renaming turns each into a
fresh SSA value, so the tag machinery and the conservative-coalesce /
biased-coloring cleanup treat these extra seams exactly like the φ-derived
ones.  Scheme 4 is :data:`~repro.remat.RenumberMode.SPLIT_ALL`.

Hooks accept an optional :class:`~repro.passes.AnalysisManager` (``am``)
and source liveness through it when given; the allocator passes its
round manager, so the hook's liveness fixed point is shared with the
first renumber's SSA construction instead of being recomputed twice on
an unchanged function.  Splitting ``r`` only where ``r`` is live leaves
every block-boundary live set unchanged, so the hooks *preserve*
liveness (the invalidation property tests check this against fresh
recomputes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..analysis import (DominanceInfo, LivenessInfo, LoopInfo,
                        compute_liveness)
from ..ir import Function, Instruction, Opcode, Reg, RegClass
from ..remat import RenumberMode

PreSplitHook = Callable[..., None]


def _liveness(fn: Function, am) -> LivenessInfo:
    return am.liveness() if am is not None else compute_liveness(fn)


def _split_instruction(reg: Reg) -> Instruction:
    opcode = Opcode.SPLIT if reg.rclass is RegClass.INT else Opcode.FSPLIT
    return Instruction(opcode, dests=(reg,), srcs=(reg,))


def _loop_boundary_splits(fn: Function, dom: DominanceInfo,
                          loops: LoopInfo,
                          want_loop,
                          want_reg,
                          am=None) -> int:
    """Insert ``split r r`` at the entries and exits of selected loops.

    *want_loop(loop)* selects loops; *want_reg(reg, loop)* selects which
    live registers to split there.  Returns the number of splits inserted.
    """
    liveness = _liveness(fn, am)
    preds = fn.predecessors_map()
    inserted = 0
    for loop in loops.loops.values():
        if not want_loop(loop):
            continue
        live_at_header = liveness.live_in(loop.header)
        entry_preds = [p for p in preds[loop.header]
                       if p not in loop.latches and p in dom.idom]
        for reg in sorted(live_at_header):
            if not want_reg(reg, loop):
                continue
            for pred in entry_preds:
                fn.block(pred).insert_before_terminator(
                    _split_instruction(reg))
                inserted += 1
        # exits: in-loop blocks with successors outside; after critical
        # edge splitting every such successor has this block as its only
        # predecessor, so a split at its top is on the exit edge alone
        for label in loop.body:
            for succ in fn.block(label).successors():
                if succ in loop.body:
                    continue
                for reg in sorted(liveness.live_in(succ)):
                    if not want_reg(reg, loop):
                        continue
                    fn.block(succ).instructions.insert(
                        0, _split_instruction(reg))
                    inserted += 1
    return inserted


def split_around_all_loops(fn: Function, dom: DominanceInfo,
                           loops: LoopInfo, am=None) -> None:
    """Scheme 1: every live range, every loop."""
    _loop_boundary_splits(fn, dom, loops,
                          want_loop=lambda loop: True,
                          want_reg=lambda reg, loop: True,
                          am=am)


def split_around_outer_loops(fn: Function, dom: DominanceInfo,
                             loops: LoopInfo, am=None) -> None:
    """Scheme 2: every live range, outermost loops only."""
    _loop_boundary_splits(fn, dom, loops,
                          want_loop=lambda loop: loop.parent is None,
                          want_reg=lambda reg, loop: True,
                          am=am)


def split_around_unused_loops(fn: Function, dom: DominanceInfo,
                              loops: LoopInfo, am=None) -> None:
    """Scheme 3: split a live range around the outermost loop where it is
    neither used nor defined (it is merely live through the loop)."""
    # registers referenced per loop body
    referenced: dict[str, set[Reg]] = {}
    for loop in loops.loops.values():
        regs: set[Reg] = set()
        for label in loop.body:
            for inst in fn.block(label).instructions:
                regs.update(inst.regs())
        referenced[loop.header] = regs

    def want_reg(reg: Reg, loop) -> bool:
        if reg in referenced[loop.header]:
            return False
        # outermost such loop: no enclosing loop may also avoid reg
        parent = loop.parent
        while parent is not None:
            if reg not in referenced[parent]:
                return False
            parent = loops.loops[parent].parent
        return True

    _loop_boundary_splits(fn, dom, loops,
                          want_loop=lambda loop: True,
                          want_reg=want_reg,
                          am=am)


def split_reverse_frontier(fn: Function, dom: DominanceInfo,
                           loops: LoopInfo, am=None) -> None:
    """The reverse-frontier half of scheme 5: a split for every live
    register at the entry of each branch target (the joins of the reverse
    CFG)."""
    liveness = _liveness(fn, am)
    for blk in list(fn.blocks):
        succs = blk.successors()
        if len(succs) < 2:
            continue
        for succ in succs:
            for reg in sorted(liveness.live_in(succ)):
                fn.block(succ).instructions.insert(
                    0, _split_instruction(reg))


@dataclass(frozen=True)
class SplittingScheme:
    """A Section 6 configuration: a renumber mode plus optional pre-split."""

    name: str
    mode: RenumberMode
    pre_split: PreSplitHook | None = None


#: the paper's five schemes plus the two baselines
SCHEMES: dict[str, SplittingScheme] = {
    "chaitin": SplittingScheme("chaitin", RenumberMode.CHAITIN),
    "remat": SplittingScheme("remat", RenumberMode.REMAT),
    "around-all-loops": SplittingScheme(
        "around-all-loops", RenumberMode.REMAT, split_around_all_loops),
    "around-outer-loops": SplittingScheme(
        "around-outer-loops", RenumberMode.REMAT, split_around_outer_loops),
    "around-unused-loops": SplittingScheme(
        "around-unused-loops", RenumberMode.REMAT,
        split_around_unused_loops),
    "at-phis": SplittingScheme("at-phis", RenumberMode.SPLIT_ALL),
    "forward-reverse-df": SplittingScheme(
        "forward-reverse-df", RenumberMode.SPLIT_ALL,
        split_reverse_frontier),
}
