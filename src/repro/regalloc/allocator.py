"""The register-allocation driver (Figure 2 of the paper).

``allocate()`` owns what every allocation discipline shares — cloning
and CFG normalization, the per-allocation
:class:`~repro.passes.AnalysisManager`, span-based timing,
:class:`AllocationStats` and the final verification epilogue — and
delegates the color-or-spill loop to a pluggable
:class:`~repro.regalloc.strategy.AllocatorStrategy`:

* ``allocator="iterated"`` (default) — the paper's optimistic
  Chaitin/Briggs loop, renumber → build/coalesce → costs →
  simplify/select → spill, iterating until select leaves nothing
  uncolored.  Three variants share it, differing only in renumber's
  splitting policy (:class:`~repro.remat.RenumberMode`): ``CHAITIN``
  (the paper's *Old* column), ``REMAT`` (the *New* column, tag-driven
  splitting), ``SPLIT_ALL`` (the Section 6 maximal-splitting
  extension).
* ``allocator="ssa"`` — spill everywhere under SSA form
  (Bouchez–Darte–Rastello, PAPERS.md): per-block MAXLIVE decides
  colorability, whole ranges are spilled until pressure fits the
  register file, and a greedy walk down the dominance tree colors with
  no simplify/select at all.  ``mode`` is ignored — maximal splitting
  *is* the strategy.

Per-phase wall-clock times are recorded in the same shape as the
paper's Table 2 (cfa, renum, build, costs, color, spill — per round).
Timing is span-based: every phase opens a span on a
:class:`~repro.obs.Tracer` and the allocation's span tree
(``allocate → round[i] → renumber/build/costs/color/spill``) is the
single source of truth — :class:`RoundTimes`, ``cfa_time``,
``clone_time`` and ``total_time`` are views over it, so Table 2 and
every existing caller see exactly what a JSONL trace export sees.
Pass a ``Tracer(capture_events=True)`` to additionally record the
typed spill/coalesce/split/color decision events
(:mod:`repro.obs.events`); the default tracer records spans only, and
the pass-level hot paths guard event emission behind a single
``events_enabled`` attribute check.

Analyses are served by a per-allocation
:class:`~repro.passes.AnalysisManager`: dominance and loops are computed
once (the CFG shape is fixed after edge splitting) and survive every
round, while renumber and spill-code insertion invalidate liveness per
the pass layer's :class:`~repro.passes.PreservedAnalyses` contract.
Coalescing *maintains* the cached liveness instead (bitset rename, PR 1
semantics), and pre-split hooks share their fixed point with the first
renumber — see ``docs/architecture.md``.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field

from ..ir import Function, verify_function
from ..machine import MachineDescription, standard_machine
from ..obs import Span, Tracer
from ..passes import AnalysisManager, PreservedAnalyses, SPARSE_LIVENESS
from ..remat import RenumberMode
from .strategy import (AllocationContext, AllocationError, AllocationStats,
                       AllocatorStrategy, make_strategy)

#: pre-split hooks insert ``split r r`` only where ``r`` is live, which
#: leaves every block-boundary live set intact — the hook's liveness
#: fixed point stays valid for the first renumber's SSA construction
_PRE_SPLIT_PRESERVES = PreservedAnalyses.of(
    "dominance", "postdominance", "loops", "liveness")

__all__ = [
    "AllocationError", "AllocationResult", "AllocationStats",
    "RoundTimes", "allocate",
]


@dataclass
class RoundTimes:
    """Per-iteration phase timings, Table 2 style (seconds).

    A view over one ``round`` span: the floats are exactly the summed
    durations of the round's like-named child spans (so the span tree
    and Table 2 can never disagree).  Constructing one directly with
    float values remains supported for tests and synthetic data.
    """

    renumber: float = 0.0
    build: float = 0.0
    costs: float = 0.0
    color: float = 0.0
    spill: float = 0.0
    #: the round span these numbers are a view of (``None`` when
    #: constructed synthetically)
    span: Span | None = field(default=None, repr=False, compare=False)

    @classmethod
    def from_span(cls, span: Span) -> "RoundTimes":
        return cls(renumber=span.total("renumber"),
                   build=span.total("build"),
                   costs=span.total("costs"),
                   color=span.total("color"),
                   spill=span.total("spill"),
                   span=span)


@dataclass
class AllocationResult:
    """The allocated function plus everything measured along the way."""

    function: Function
    mode: RenumberMode
    machine: MachineDescription
    stats: AllocationStats
    cfa_time: float
    round_times: list[RoundTimes]
    total_time: float
    #: deep-copy time under ``clone=True`` — kept out of the phase rows
    #: so Table 2 comparisons against in-place runs are apples to apples
    clone_time: float = 0.0
    #: the allocation's root span (``allocate``), for trace export
    trace: Span | None = None
    #: the strategy that produced the coloring (the ``allocator=`` axis)
    allocator: str = "iterated"

    @property
    def rounds(self) -> int:
        return len(self.round_times)


def allocate(fn: Function, machine: MachineDescription | None = None,
             mode: RenumberMode = RenumberMode.REMAT,
             max_rounds: int = 50, clone: bool = True,
             biased: bool = True, lookahead: bool = True,
             coalesce_splits: bool = True, optimistic: bool = True,
             pre_split=None, tracer: Tracer | None = None,
             verify_rounds: bool = False, incremental: bool = True,
             verify_incremental: bool = False,
             liveness_mode: str = "dense",
             allocator: str = "iterated") -> AllocationResult:
    """Allocate registers for *fn*.

    Args:
        fn: input function over virtual registers.
        machine: target description (default: the paper's standard 16+16).
        mode: renumber splitting policy (Old vs New allocator); only
            consulted by the iterated strategy.
        max_rounds: bail-out bound on color/spill iterations.
        clone: work on a copy (default) or rewrite *fn* in place.
        biased: enable biased coloring (Section 4.3).
        lookahead: enable limited lookahead inside biased coloring.
        coalesce_splits: enable conservative split coalescing (Section 4.2).
        optimistic: Briggs' optimistic coloring (the default); with
            ``False`` simplify spills its candidates outright, like
            Chaitin's original allocator.
        pre_split: optional hook ``f(fn, dom, loops) -> None`` run once
            before the first renumber — used by the Section 6 loop-based
            splitting schemes.  Hooks that additionally accept an ``am``
            keyword receive the round loop's
            :class:`~repro.passes.AnalysisManager` and share its cached
            analyses.
        tracer: observability sink; pass
            ``Tracer(capture_events=True)`` to record decision events
            alongside the (always recorded) span tree.
        verify_rounds: run the IR verifier after every mutating phase
            (renumber, spill insertion) of every round — the allocator's
            analogue of the pipeline's ``verify_after_each``.
        incremental: maintain cached analyses across spill rounds (the
            default): spill-code insertion reports a
            :class:`~repro.analysis.CodeDelta` and the manager patches
            the liveness bitsets in place, so the next round's SSA
            pruning is a cache hit instead of a fixed point; the
            build–coalesce loop likewise patches the interference graph
            between passes.  ``False`` restores strict
            invalidate-and-recompute (identical output, more work).
        verify_incremental: cross-check every incremental result
            against a from-scratch recomputation (patched liveness vs.
            a fresh fixed point, patched graphs vs. fresh builds) and
            raise on any divergence.  Expensive; for test suites and CI.
        liveness_mode: ``"dense"`` (the bit-vector worklist solver) or
            ``"sparse"`` (per-variable backward propagation,
            :mod:`repro.analysis.sparse_liveness`) — same fixed point,
            different cost model.
        allocator: the allocation discipline — ``"iterated"`` (the
            paper's Chaitin/Briggs loop, the default) or ``"ssa"``
            (spill everywhere under SSA form; see
            :mod:`repro.regalloc.strategy`).

    Returns:
        an :class:`AllocationResult` whose ``function`` references only
        physical registers within the machine's files.
    """
    # validate every enum-ish argument before any mutation: under
    # ``clone=False`` a failure past this point would leave the
    # caller's function half-normalized (unreachable blocks dropped,
    # critical edges split) — the driver must reject bad arguments
    # while *fn* is still untouched
    if liveness_mode not in ("dense", "sparse"):
        raise ValueError(f"unknown liveness_mode {liveness_mode!r}")
    if not isinstance(mode, RenumberMode):
        raise ValueError(f"mode must be a RenumberMode, got {mode!r}")
    strategy: AllocatorStrategy = make_strategy(allocator)
    if machine is None:
        machine = standard_machine()
    if tracer is None:
        tracer = Tracer()

    with tracer.span("allocate", fn=fn.name, mode=mode.value,
                     machine=machine.name, allocator=allocator) as root:
        with tracer.span("clone"):
            work = fn.clone() if clone else fn
        work.remove_unreachable_blocks()
        work.split_critical_edges()

        # every analysis of the allocation flows through one manager;
        # the CFG shape never changes after edge splitting, so dominance
        # and loop nesting are computed once here and preserved by every
        # round's invalidations
        providers = ({"liveness": SPARSE_LIVENESS}
                     if liveness_mode == "sparse" else None)
        am = AnalysisManager(work, providers=providers)
        with tracer.span("cfa"):
            dom = am.dominance()
            loops = am.loops()

        if pre_split is not None:
            _call_pre_split(pre_split, work, dom, loops, am)
            am.invalidate(_PRE_SPLIT_PRESERVES)
            if verify_rounds:
                verify_function(work)

        ctx = AllocationContext(
            fn=fn, work=work, machine=machine, mode=mode,
            max_rounds=max_rounds, biased=biased, lookahead=lookahead,
            coalesce_splits=coalesce_splits, optimistic=optimistic,
            verify_rounds=verify_rounds, incremental=incremental,
            verify_incremental=verify_incremental, tracer=tracer,
            am=am, dom=dom, loops=loops)
        strategy.run(ctx)
        stats = ctx.stats

        stats.n_spill_slots = work.n_spill_slots
        stats.n_analyses_computed = am.n_computed()
        stats.n_analyses_reused = am.n_reused()
        stats.n_liveness_computed = am.n_computed("liveness")
        verify_function(work, require_physical=True,
                        max_int_reg=machine.int_regs,
                        max_float_reg=machine.float_regs)

    cfa_span = root.child("cfa")
    clone_span = root.child("clone")
    return AllocationResult(
        function=work, mode=mode, machine=machine, stats=stats,
        cfa_time=cfa_span.duration if cfa_span else 0.0,
        round_times=[RoundTimes.from_span(span)
                     for span in root.children_named("round")],
        total_time=root.duration,
        clone_time=clone_span.duration if clone_span else 0.0,
        trace=root,
        allocator=allocator)


def _call_pre_split(hook, fn: Function, dom, loops,
                    am: AnalysisManager) -> None:
    """Invoke a pre-split hook, passing the manager when it takes one.

    The public hook signature stays ``f(fn, dom, loops)``; the bundled
    Section 6 schemes additionally accept ``am`` and share the round
    loop's cached liveness.
    """
    try:
        params = inspect.signature(hook).parameters
    except (TypeError, ValueError):  # builtins / odd callables
        params = {}
    takes_am = "am" in params or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values())
    if takes_am:
        hook(fn, dom, loops, am=am)
    else:
        hook(fn, dom, loops)
