"""The optimistic register allocator (Figure 2 of the paper).

The driver iterates

    renumber -> build/coalesce -> spill costs -> simplify -> select

inserting spill code and retrying whenever select leaves nodes uncolored.
Per-phase wall-clock times are recorded in the same shape as the paper's
Table 2 (cfa, renum, build, costs, color, spill — per round).

Timing is span-based: every phase opens a span on a
:class:`~repro.obs.Tracer` and the allocation's span tree
(``allocate → round[i] → renumber/build/costs/color/spill``) is the
single source of truth — :class:`RoundTimes`, ``cfa_time``,
``clone_time`` and ``total_time`` are views over it, so Table 2 and
every existing caller see exactly what a JSONL trace export sees.
Pass a ``Tracer(capture_events=True)`` to additionally record the
typed spill/coalesce/split/color decision events
(:mod:`repro.obs.events`); the default tracer records spans only, and
the pass-level hot paths guard event emission behind a single
``events_enabled`` attribute check.

Analyses are served by a per-allocation
:class:`~repro.passes.AnalysisManager`: dominance and loops are computed
once (the CFG shape is fixed after edge splitting) and survive every
round, while renumber and spill-code insertion invalidate liveness per
the pass layer's :class:`~repro.passes.PreservedAnalyses` contract.
Coalescing *maintains* the cached liveness instead (bitset rename, PR 1
semantics), and pre-split hooks share their fixed point with the first
renumber — see ``docs/architecture.md``.

Three allocator variants share the driver, differing only in renumber's
splitting policy (:class:`~repro.remat.RenumberMode`):

* ``CHAITIN`` — the paper's *Old* / Optimistic column (Chaitin's limited
  rematerialization: whole live ranges whose defs are one never-killed
  instruction),
* ``REMAT`` — the paper's *New* column (tag-driven splitting),
* ``SPLIT_ALL`` — the Section 6 maximal-splitting extension.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field

from ..analysis import compute_liveness, diff_liveness
from ..ir import Function, Reg, verify_function
from ..machine import MachineDescription, standard_machine
from ..obs import SpillDecision, Span, Tracer
from ..passes import AnalysisManager, PreservedAnalyses, SPARSE_LIVENESS
from ..remat import RenumberMode
from .coalesce import build_coalesce_loop
from .interference import build_interference_graph
from .renumber import run_renumber
from .select import find_partners, select
from .simplify import simplify
from .spillcode import insert_spill_code
from .spillcost import compute_spill_costs

#: renumber and spill-code insertion rewrite instructions and register
#: names but never the CFG shape (edges were split up front), so the
#: round loop keeps dominance/post-dominance/loops across rounds and
#: drops only liveness/def-use
_CFG_ONLY = PreservedAnalyses.cfg()
#: pre-split hooks insert ``split r r`` only where ``r`` is live, which
#: leaves every block-boundary live set intact — the hook's liveness
#: fixed point stays valid for the first renumber's SSA construction
_PRE_SPLIT_PRESERVES = PreservedAnalyses.of(
    "dominance", "postdominance", "loops", "liveness")


class AllocationError(RuntimeError):
    """Raised when allocation cannot converge (register file too small)."""


@dataclass
class RoundTimes:
    """Per-iteration phase timings, Table 2 style (seconds).

    A view over one ``round`` span: the floats are exactly the summed
    durations of the round's like-named child spans (so the span tree
    and Table 2 can never disagree).  Constructing one directly with
    float values remains supported for tests and synthetic data.
    """

    renumber: float = 0.0
    build: float = 0.0
    costs: float = 0.0
    color: float = 0.0
    spill: float = 0.0
    #: the round span these numbers are a view of (``None`` when
    #: constructed synthetically)
    span: Span | None = field(default=None, repr=False, compare=False)

    @classmethod
    def from_span(cls, span: Span) -> "RoundTimes":
        return cls(renumber=span.total("renumber"),
                   build=span.total("build"),
                   costs=span.total("costs"),
                   color=span.total("color"),
                   spill=span.total("spill"),
                   span=span)


@dataclass
class AllocationStats:
    """Aggregate counters for one allocation."""

    n_rounds: int = 0
    n_spilled_ranges: int = 0
    n_remat_spills: int = 0
    n_memory_spills: int = 0
    n_splits_inserted: int = 0
    n_copies_coalesced: int = 0
    n_splits_coalesced: int = 0
    n_identity_copies_removed: int = 0
    n_spill_slots: int = 0
    n_live_ranges_first_round: int = 0
    #: liveness fixed points computed (one per round) vs. reused across
    #: interference-graph rebuilds inside the build-coalesce loop
    n_liveness_cache_hits: int = 0
    n_liveness_cache_misses: int = 0
    #: widest register universe (bitset width in bits) seen in any round
    max_bitset_bits: int = 0
    #: AnalysisManager accounting for the whole allocation: fixed points
    #: actually run vs. requests served from the cache, plus the
    #: liveness share (the satellite metric — pre-split schemes reuse
    #: their hook's fixed point instead of recomputing it)
    n_analyses_computed: int = 0
    n_analyses_reused: int = 0
    n_liveness_computed: int = 0
    #: incremental-analysis accounting (the tentpole metric): liveness
    #: patches applied after spill rounds, and how much of the function
    #: they actually re-analyzed vs. its size — re-analyzed < total on
    #: every round is what makes rounds ≥ 2 cheaper than round 1
    n_liveness_updates: int = 0
    n_incremental_blocks_reanalyzed: int = 0
    n_incremental_blocks_total: int = 0
    #: interference-graph rebuild accounting inside the build–coalesce
    #: loops: from-scratch scans vs. merge-delta patches
    n_graph_builds: int = 0
    n_graph_patches: int = 0
    n_graph_blocks_rescanned: int = 0
    n_graph_edges_patched: int = 0


@dataclass
class AllocationResult:
    """The allocated function plus everything measured along the way."""

    function: Function
    mode: RenumberMode
    machine: MachineDescription
    stats: AllocationStats
    cfa_time: float
    round_times: list[RoundTimes]
    total_time: float
    #: deep-copy time under ``clone=True`` — kept out of the phase rows
    #: so Table 2 comparisons against in-place runs are apples to apples
    clone_time: float = 0.0
    #: the allocation's root span (``allocate``), for trace export
    trace: Span | None = None

    @property
    def rounds(self) -> int:
        return len(self.round_times)


def allocate(fn: Function, machine: MachineDescription | None = None,
             mode: RenumberMode = RenumberMode.REMAT,
             max_rounds: int = 50, clone: bool = True,
             biased: bool = True, lookahead: bool = True,
             coalesce_splits: bool = True, optimistic: bool = True,
             pre_split=None, tracer: Tracer | None = None,
             verify_rounds: bool = False, incremental: bool = True,
             verify_incremental: bool = False,
             liveness_mode: str = "dense") -> AllocationResult:
    """Allocate registers for *fn*.

    Args:
        fn: input function over virtual registers.
        machine: target description (default: the paper's standard 16+16).
        mode: renumber splitting policy (Old vs New allocator).
        max_rounds: bail-out bound on color/spill iterations.
        clone: work on a copy (default) or rewrite *fn* in place.
        biased: enable biased coloring (Section 4.3).
        lookahead: enable limited lookahead inside biased coloring.
        coalesce_splits: enable conservative split coalescing (Section 4.2).
        optimistic: Briggs' optimistic coloring (the default); with
            ``False`` simplify spills its candidates outright, like
            Chaitin's original allocator.
        pre_split: optional hook ``f(fn, dom, loops) -> None`` run once
            before the first renumber — used by the Section 6 loop-based
            splitting schemes.  Hooks that additionally accept an ``am``
            keyword receive the round loop's
            :class:`~repro.passes.AnalysisManager` and share its cached
            analyses.
        tracer: observability sink; pass
            ``Tracer(capture_events=True)`` to record decision events
            alongside the (always recorded) span tree.
        verify_rounds: run the IR verifier after every mutating phase
            (renumber, spill insertion) of every round — the allocator's
            analogue of the pipeline's ``verify_after_each``.
        incremental: maintain cached analyses across spill rounds (the
            default): spill-code insertion reports a
            :class:`~repro.analysis.CodeDelta` and the manager patches
            the liveness bitsets in place, so the next round's SSA
            pruning is a cache hit instead of a fixed point; the
            build–coalesce loop likewise patches the interference graph
            between passes.  ``False`` restores strict
            invalidate-and-recompute (identical output, more work).
        verify_incremental: cross-check every incremental result
            against a from-scratch recomputation (patched liveness vs.
            a fresh fixed point, patched graphs vs. fresh builds) and
            raise on any divergence.  Expensive; for test suites and CI.
        liveness_mode: ``"dense"`` (the bit-vector worklist solver) or
            ``"sparse"`` (per-variable backward propagation,
            :mod:`repro.analysis.sparse_liveness`) — same fixed point,
            different cost model.

    Returns:
        an :class:`AllocationResult` whose ``function`` references only
        physical registers within the machine's files.
    """
    if machine is None:
        machine = standard_machine()
    if tracer is None:
        tracer = Tracer()

    with tracer.span("allocate", fn=fn.name, mode=mode.value,
                     machine=machine.name) as root:
        with tracer.span("clone"):
            work = fn.clone() if clone else fn
        work.remove_unreachable_blocks()
        work.split_critical_edges()

        # every analysis of the allocation flows through one manager;
        # the CFG shape never changes after edge splitting, so dominance
        # and loop nesting are computed once here and preserved by every
        # round's invalidations
        if liveness_mode not in ("dense", "sparse"):
            raise ValueError(f"unknown liveness_mode {liveness_mode!r}")
        providers = ({"liveness": SPARSE_LIVENESS}
                     if liveness_mode == "sparse" else None)
        am = AnalysisManager(work, providers=providers)
        with tracer.span("cfa"):
            dom = am.dominance()
            loops = am.loops()

        if pre_split is not None:
            _call_pre_split(pre_split, work, dom, loops, am)
            am.invalidate(_PRE_SPLIT_PRESERVES)
            if verify_rounds:
                verify_function(work)

        stats = AllocationStats()
        no_spill_regs: set[Reg] = set()

        for round_index in range(max_rounds):
            stats.n_rounds += 1
            with tracer.span("round", index=round_index):
                with tracer.span("renumber"):
                    outcome = run_renumber(work, mode, dom=dom,
                                           no_spill_regs=no_spill_regs,
                                           tracer=tracer, am=am)
                # renumber renames every register: liveness/def-use are
                # stale, the CFG analyses survive
                am.invalidate(_CFG_ONLY)
                if verify_rounds:
                    verify_function(work)
                stats.n_splits_inserted += outcome.result.n_splits_inserted
                if round_index == 0:
                    stats.n_live_ranges_first_round = len(
                        outcome.result.live_ranges)
                no_spill = outcome.no_spill

                # one liveness fixed point per round, shared by every
                # graph rebuild of the build-coalesce loop (coalescing
                # renames the manager's cached bitsets in place, which
                # keeps the entry valid); spill-code insertion ends the
                # round and invalidates it below
                with tracer.span("build"):
                    liveness = am.liveness()
                    graph, cstats = build_coalesce_loop(
                        work, machine, build_interference_graph,
                        no_spill=no_spill,
                        coalesce_splits=coalesce_splits,
                        liveness=liveness, tracer=tracer,
                        incremental=incremental,
                        verify_incremental=verify_incremental)
                stats.n_copies_coalesced += cstats.copies_removed
                stats.n_splits_coalesced += cstats.splits_removed
                stats.n_liveness_cache_hits += cstats.liveness_cache_hits
                stats.n_liveness_cache_misses += \
                    cstats.liveness_cache_misses
                stats.n_graph_builds += cstats.graph_builds
                stats.n_graph_patches += cstats.graph_patches
                stats.n_graph_blocks_rescanned += \
                    cstats.graph_blocks_rescanned
                stats.n_graph_edges_patched += cstats.graph_edges_patched
                if cstats.graph_patches:
                    metrics = am.metrics
                    metrics.counter(
                        "analysis.incremental.graph_patches").inc(
                            cstats.graph_patches)
                    metrics.counter(
                        "analysis.incremental.graph_blocks_rescanned").inc(
                            cstats.graph_blocks_rescanned)
                    metrics.counter(
                        "analysis.incremental.graph_edges_patched").inc(
                            cstats.graph_edges_patched)
                stats.max_bitset_bits = max(stats.max_bitset_bits,
                                            len(liveness.index))

                with tracer.span("costs"):
                    costs = compute_spill_costs(work, loops, machine,
                                                no_spill=no_spill,
                                                tracer=tracer)

                with tracer.span("color"):
                    order = simplify(graph, machine, costs,
                                     optimistic=optimistic, tracer=tracer)
                    partners = find_partners(work) if biased else None
                    chosen = select(graph, order, machine,
                                    partners=partners,
                                    lookahead=lookahead, tracer=tracer)
                    chosen.spilled.extend(order.pessimistic_spills)

                if not chosen.spilled:
                    _assign_physical(work, chosen.coloring, stats)
                    break

                if tracer.events_enabled:
                    pessimistic = set(order.pessimistic_spills)
                    for reg in chosen.spilled:
                        tracer.event(SpillDecision(
                            range=str(reg),
                            cost=costs.cost.get(reg, 0.0),
                            degree=graph.degree(reg),
                            remat_tag=(str(costs.remat[reg])
                                       if reg in costs.remat else None),
                            chosen_because=("pessimistic-simplify"
                                            if reg in pessimistic
                                            else "select-found-no-color")))

                with tracer.span("spill"):
                    spill_stats = insert_spill_code(work, chosen.spilled,
                                                    costs)
                if incremental and spill_stats.delta is not None:
                    # patch the cached liveness through the spill delta
                    # instead of evicting it: the next round's renumber
                    # reads it for SSA pruning as a cache hit, saving
                    # one whole-function fixed point per round ≥ 2
                    update = am.update(spill_stats.delta, _CFG_ONLY)
                    if update is not None:
                        stats.n_liveness_updates += 1
                        stats.n_incremental_blocks_reanalyzed += \
                            update.blocks_reanalyzed
                        stats.n_incremental_blocks_total += \
                            update.blocks_total
                        if verify_incremental:
                            problems = diff_liveness(
                                am.liveness(), compute_liveness(work))
                            if problems:
                                raise RuntimeError(
                                    "incremental liveness update diverged "
                                    f"from recompute on {fn.name}: "
                                    + "; ".join(problems[:5]))
                else:
                    am.invalidate(_CFG_ONLY)
                if verify_rounds:
                    verify_function(work)
                stats.n_spilled_ranges += len(chosen.spilled)
                stats.n_remat_spills += spill_stats.n_remat_ranges
                stats.n_memory_spills += spill_stats.n_memory_ranges
                no_spill_regs = no_spill | spill_stats.new_temps
        else:
            raise AllocationError(
                f"{fn.name}: no coloring after {max_rounds} rounds on "
                f"{machine.name} (k_int={machine.int_regs}, "
                f"k_float={machine.float_regs})")

        stats.n_spill_slots = work.n_spill_slots
        stats.n_analyses_computed = am.n_computed()
        stats.n_analyses_reused = am.n_reused()
        stats.n_liveness_computed = am.n_computed("liveness")
        verify_function(work, require_physical=True,
                        max_int_reg=machine.int_regs,
                        max_float_reg=machine.float_regs)

    cfa_span = root.child("cfa")
    clone_span = root.child("clone")
    return AllocationResult(
        function=work, mode=mode, machine=machine, stats=stats,
        cfa_time=cfa_span.duration if cfa_span else 0.0,
        round_times=[RoundTimes.from_span(span)
                     for span in root.children_named("round")],
        total_time=root.duration,
        clone_time=clone_span.duration if clone_span else 0.0,
        trace=root)


def _call_pre_split(hook, fn: Function, dom, loops,
                    am: AnalysisManager) -> None:
    """Invoke a pre-split hook, passing the manager when it takes one.

    The public hook signature stays ``f(fn, dom, loops)``; the bundled
    Section 6 schemes additionally accept ``am`` and share the round
    loop's cached liveness.
    """
    try:
        params = inspect.signature(hook).parameters
    except (TypeError, ValueError):  # builtins / odd callables
        params = {}
    takes_am = "am" in params or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values())
    if takes_am:
        hook(fn, dom, loops, am=am)
    else:
        hook(fn, dom, loops)


def _assign_physical(fn: Function, coloring: dict[Reg, int],
                     stats: AllocationStats) -> None:
    """Rewrite live ranges to physical registers and drop identity copies.

    Biased coloring often gives split partners the same color; the split
    then becomes an identity copy and disappears here — the late removal
    of unproductive splits (Section 3.4).
    """
    mapping = {
        reg: Reg(reg.rclass, color, physical=True)
        for reg, color in coloring.items()
    }
    for blk in fn.blocks:
        new_instructions = []
        for inst in blk.instructions:
            inst.rewrite_regs(mapping)
            if inst.is_copy and inst.dest == inst.src:
                stats.n_identity_copies_removed += 1
                continue
            new_instructions.append(inst)
        blk.instructions = new_instructions
