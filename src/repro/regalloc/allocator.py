"""The optimistic register allocator (Figure 2 of the paper).

The driver iterates

    renumber -> build/coalesce -> spill costs -> simplify -> select

inserting spill code and retrying whenever select leaves nodes uncolored.
Per-phase wall-clock times are recorded in the same shape as the paper's
Table 2 (cfa, renum, build, costs, color, spill — per round).

Three allocator variants share the driver, differing only in renumber's
splitting policy (:class:`~repro.remat.RenumberMode`):

* ``CHAITIN`` — the paper's *Old* / Optimistic column (Chaitin's limited
  rematerialization: whole live ranges whose defs are one never-killed
  instruction),
* ``REMAT`` — the paper's *New* column (tag-driven splitting),
* ``SPLIT_ALL`` — the Section 6 maximal-splitting extension.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..analysis import compute_dominance, compute_liveness, compute_loops
from ..ir import Function, Reg, verify_function
from ..machine import MachineDescription, standard_machine
from ..remat import RenumberMode
from .coalesce import build_coalesce_loop
from .interference import build_interference_graph
from .renumber import run_renumber
from .select import find_partners, select
from .simplify import simplify
from .spillcode import insert_spill_code
from .spillcost import compute_spill_costs


class AllocationError(RuntimeError):
    """Raised when allocation cannot converge (register file too small)."""


@dataclass
class RoundTimes:
    """Per-iteration phase timings, Table 2 style (seconds)."""

    renumber: float = 0.0
    build: float = 0.0
    costs: float = 0.0
    color: float = 0.0
    spill: float = 0.0


@dataclass
class AllocationStats:
    """Aggregate counters for one allocation."""

    n_rounds: int = 0
    n_spilled_ranges: int = 0
    n_remat_spills: int = 0
    n_memory_spills: int = 0
    n_splits_inserted: int = 0
    n_copies_coalesced: int = 0
    n_splits_coalesced: int = 0
    n_identity_copies_removed: int = 0
    n_spill_slots: int = 0
    n_live_ranges_first_round: int = 0
    #: liveness fixed points computed (one per round) vs. reused across
    #: interference-graph rebuilds inside the build-coalesce loop
    n_liveness_cache_hits: int = 0
    n_liveness_cache_misses: int = 0
    #: widest register universe (bitset width in bits) seen in any round
    max_bitset_bits: int = 0


@dataclass
class AllocationResult:
    """The allocated function plus everything measured along the way."""

    function: Function
    mode: RenumberMode
    machine: MachineDescription
    stats: AllocationStats
    cfa_time: float
    round_times: list[RoundTimes]
    total_time: float

    @property
    def rounds(self) -> int:
        return len(self.round_times)


def allocate(fn: Function, machine: MachineDescription | None = None,
             mode: RenumberMode = RenumberMode.REMAT,
             max_rounds: int = 50, clone: bool = True,
             biased: bool = True, lookahead: bool = True,
             coalesce_splits: bool = True, optimistic: bool = True,
             pre_split=None) -> AllocationResult:
    """Allocate registers for *fn*.

    Args:
        fn: input function over virtual registers.
        machine: target description (default: the paper's standard 16+16).
        mode: renumber splitting policy (Old vs New allocator).
        max_rounds: bail-out bound on color/spill iterations.
        clone: work on a copy (default) or rewrite *fn* in place.
        biased: enable biased coloring (Section 4.3).
        lookahead: enable limited lookahead inside biased coloring.
        coalesce_splits: enable conservative split coalescing (Section 4.2).
        optimistic: Briggs' optimistic coloring (the default); with
            ``False`` simplify spills its candidates outright, like
            Chaitin's original allocator.
        pre_split: optional hook ``f(fn, dom, loops) -> None`` run once
            before the first renumber — used by the Section 6 loop-based
            splitting schemes.

    Returns:
        an :class:`AllocationResult` whose ``function`` references only
        physical registers within the machine's files.
    """
    if machine is None:
        machine = standard_machine()
    t_start = time.perf_counter()
    work = fn.clone() if clone else fn
    work.remove_unreachable_blocks()
    work.split_critical_edges()

    # control-flow analysis: the CFG shape never changes after edge
    # splitting, so dominance and loop nesting are computed once
    t0 = time.perf_counter()
    dom = compute_dominance(work)
    loops = compute_loops(work, dom)
    cfa_time = time.perf_counter() - t0

    if pre_split is not None:
        pre_split(work, dom, loops)

    stats = AllocationStats()
    round_times: list[RoundTimes] = []
    no_spill_regs: set[Reg] = set()

    for round_index in range(max_rounds):
        times = RoundTimes()
        round_times.append(times)
        stats.n_rounds += 1

        t0 = time.perf_counter()
        outcome = run_renumber(work, mode, dom=dom,
                               no_spill_regs=no_spill_regs)
        times.renumber = time.perf_counter() - t0
        stats.n_splits_inserted += outcome.result.n_splits_inserted
        if round_index == 0:
            stats.n_live_ranges_first_round = len(
                outcome.result.live_ranges)
        no_spill = outcome.no_spill

        # one liveness fixed point per round, shared by every graph
        # rebuild of the build-coalesce loop (coalescing renames the
        # cached bitsets in place); spill-code insertion ends the round,
        # so the cache is invalidated simply by recomputing here
        t0 = time.perf_counter()
        liveness = compute_liveness(work)
        graph, cstats = build_coalesce_loop(
            work, machine, build_interference_graph, no_spill=no_spill,
            coalesce_splits=coalesce_splits, liveness=liveness)
        times.build = time.perf_counter() - t0
        stats.n_copies_coalesced += cstats.copies_removed
        stats.n_splits_coalesced += cstats.splits_removed
        stats.n_liveness_cache_hits += cstats.liveness_cache_hits
        stats.n_liveness_cache_misses += cstats.liveness_cache_misses
        stats.max_bitset_bits = max(stats.max_bitset_bits,
                                    len(liveness.index))

        t0 = time.perf_counter()
        costs = compute_spill_costs(work, loops, machine, no_spill=no_spill)
        times.costs = time.perf_counter() - t0

        t0 = time.perf_counter()
        order = simplify(graph, machine, costs, optimistic=optimistic)
        partners = find_partners(work) if biased else None
        chosen = select(graph, order, machine, partners=partners,
                        lookahead=lookahead)
        chosen.spilled.extend(order.pessimistic_spills)
        times.color = time.perf_counter() - t0

        if not chosen.spilled:
            _assign_physical(work, chosen.coloring, stats)
            break

        t0 = time.perf_counter()
        spill_stats = insert_spill_code(work, chosen.spilled, costs)
        times.spill = time.perf_counter() - t0
        stats.n_spilled_ranges += len(chosen.spilled)
        stats.n_remat_spills += spill_stats.n_remat_ranges
        stats.n_memory_spills += spill_stats.n_memory_ranges
        no_spill_regs = no_spill | spill_stats.new_temps
    else:
        raise AllocationError(
            f"{fn.name}: no coloring after {max_rounds} rounds on "
            f"{machine.name} (k_int={machine.int_regs}, "
            f"k_float={machine.float_regs})")

    stats.n_spill_slots = work.n_spill_slots
    verify_function(work, require_physical=True,
                    max_int_reg=machine.int_regs,
                    max_float_reg=machine.float_regs)
    return AllocationResult(function=work, mode=mode, machine=machine,
                            stats=stats, cfa_time=cfa_time,
                            round_times=round_times,
                            total_time=time.perf_counter() - t_start)


def _assign_physical(fn: Function, coloring: dict[Reg, int],
                     stats: AllocationStats) -> None:
    """Rewrite live ranges to physical registers and drop identity copies.

    Biased coloring often gives split partners the same color; the split
    then becomes an identity copy and disappears here — the late removal
    of unproductive splits (Section 3.4).
    """
    mapping = {
        reg: Reg(reg.rclass, color, physical=True)
        for reg, color in coloring.items()
    }
    for blk in fn.blocks:
        new_instructions = []
        for inst in blk.instructions:
            inst.rewrite_regs(mapping)
            if inst.is_copy and inst.dest == inst.src:
                stats.n_identity_copies_removed += 1
                continue
            new_instructions.append(inst)
        blk.instructions = new_instructions
