"""Coalescing: aggressive for ordinary copies, conservative for splits
(Sections 2 and 4.2).

Chaitin's coalesce combines live ranges ``l_i`` and ``l_j`` when ``l_j`` is
defined by a copy from ``l_i`` and they do not otherwise interfere.  To
keep the splits renumber so carefully introduced, split instructions are
only *conservatively* coalesced: the combined live range must have fewer
than k neighbors of *significant degree* (degree >= k), which guarantees it
still simplifies and therefore can never spill.

The driver follows the paper's schedule: first coalesce all ordinary
copies to a fixed point (rebuilding the graph between rounds), then begin
conservatively coalescing split instructions, again to a fixed point.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import Function, Reg
from ..machine import MachineDescription
from ..unionfind import DisjointSets
from .interference import InterferenceGraph


@dataclass
class CoalesceStats:
    """How many copies each stage removed."""

    copies_removed: int = 0
    splits_removed: int = 0


def _conservative_ok(graph: InterferenceGraph, a: Reg, b: Reg,
                     k: int) -> bool:
    """Briggs' criterion: the merged node has < k significant neighbors."""
    significant = 0
    for n in graph.neighbors(a) | graph.neighbors(b):
        if graph.degree(n) >= k:
            significant += 1
            if significant >= k:
                return False
    return True


def coalesce_pass(fn: Function, graph: InterferenceGraph,
                  machine: MachineDescription,
                  splits: bool,
                  no_spill: set[Reg] | None = None) -> int:
    """One pass over the code, combining what the stage allows.

    With ``splits=False`` only ordinary copies are (aggressively)
    coalesced; with ``splits=True`` only split instructions are, under the
    conservative criterion.  The graph is updated in place by node merging
    and the code rewritten, so several combines can happen per pass.
    Returns the number of instructions removed.
    """
    ds = DisjointSets()
    removed_ids: set[int] = set()
    merged = 0

    for blk in fn.blocks:
        for inst in blk.instructions:
            if not inst.is_copy or inst.is_split is not splits:
                continue
            dest = ds.find(inst.dest)
            src = ds.find(inst.src)
            if dest == src:
                removed_ids.add(id(inst))
                merged += 1
                continue
            if dest not in graph or src not in graph:
                continue
            if graph.interferes(dest, src):
                continue
            if splits and not _conservative_ok(graph, dest, src,
                                               machine.k(dest.rclass)):
                continue
            keep = ds.union(dest, src)
            gone = src if keep == dest else dest
            graph.merge(keep, gone)
            if no_spill is not None and gone in no_spill:
                no_spill.discard(gone)
                no_spill.add(keep)
            removed_ids.add(id(inst))
            merged += 1

    if merged:
        rename = {reg: ds.find(reg) for reg in fn.all_regs() if reg in ds}
        for blk in fn.blocks:
            new_instructions = []
            for inst in blk.instructions:
                if id(inst) in removed_ids:
                    continue
                inst.rewrite_regs(rename)
                if inst.is_copy and inst.dest == inst.src:
                    continue  # became an identity copy through renaming
                new_instructions.append(inst)
            blk.instructions = new_instructions
    return merged


def build_coalesce_loop(fn: Function, machine: MachineDescription,
                        build_graph, no_spill: set[Reg] | None = None,
                        coalesce_splits: bool = True,
                        ) -> tuple[InterferenceGraph, CoalesceStats]:
    """The paper's build–coalesce loop.

    *build_graph* is called to (re)construct the interference graph; the
    loop alternates building and coalescing until no combine fires, first
    for ordinary copies, then (if *coalesce_splits*) conservatively for
    splits.  Returns the final graph and the statistics.
    """
    stats = CoalesceStats()
    graph = build_graph(fn)
    while True:
        n = coalesce_pass(fn, graph, machine, splits=False,
                          no_spill=no_spill)
        stats.copies_removed += n
        if n == 0:
            break
        graph = build_graph(fn)
    if coalesce_splits:
        while True:
            n = coalesce_pass(fn, graph, machine, splits=True,
                              no_spill=no_spill)
            stats.splits_removed += n
            if n == 0:
                break
            graph = build_graph(fn)
    return graph, stats
