"""Coalescing: aggressive for ordinary copies, conservative for splits
(Sections 2 and 4.2).

Chaitin's coalesce combines live ranges ``l_i`` and ``l_j`` when ``l_j`` is
defined by a copy from ``l_i`` and they do not otherwise interfere.  To
keep the splits renumber so carefully introduced, split instructions are
only *conservatively* coalesced: the combined live range must have fewer
than k neighbors of *significant degree* (degree >= k), which guarantees it
still simplifies and therefore can never spill.

The driver follows the paper's schedule: first coalesce all ordinary
copies to a fixed point (rebuilding the graph between rounds), then begin
conservatively coalescing split instructions, again to a fixed point.
Each rebuild reuses the round's liveness fixed point: coalescing only
merges names, so the cached bitsets are *renamed* through the shared
:class:`~repro.analysis.RegIndex` instead of re-running the data-flow
iteration (see :meth:`~repro.analysis.LivenessInfo.rename`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import LivenessInfo, iter_bits
from ..ir import Function, Reg
from ..machine import MachineDescription
from ..obs import CoalesceDecision, NULL_TRACER
from ..unionfind import DisjointSets
from .interference import InterferenceGraph


@dataclass
class CoalesceStats:
    """How many copies each stage removed, and how often the round's
    liveness was reused across graph rebuilds."""

    copies_removed: int = 0
    splits_removed: int = 0
    liveness_cache_hits: int = 0
    liveness_cache_misses: int = 0


def _significant_neighbors(graph: InterferenceGraph, a: Reg, b: Reg,
                           k: int) -> int:
    """Significant-degree neighbors of the would-be merged node.

    Briggs' conservative criterion holds when the result is < k; the
    count stops early at k (so a returned k means "at least k").
    """
    index = graph.index
    combined = graph.neighbor_bits(a) | graph.neighbor_bits(b)
    significant = 0
    for i in iter_bits(combined):
        if graph.degree(index.reg(i)) >= k:
            significant += 1
            if significant >= k:
                break
    return significant


def coalesce_pass(fn: Function, graph: InterferenceGraph,
                  machine: MachineDescription,
                  splits: bool,
                  no_spill: set[Reg] | None = None,
                  liveness: LivenessInfo | None = None,
                  tracer=NULL_TRACER) -> int:
    """One pass over the code, combining what the stage allows.

    With ``splits=False`` only ordinary copies are (aggressively)
    coalesced; with ``splits=True`` only split instructions are, under the
    conservative criterion.  The graph is updated in place by node merging
    and the code rewritten, so several combines can happen per pass.
    When a cached *liveness* is supplied its bitsets are renamed through
    the same mapping applied to the code, keeping it valid for the next
    graph rebuild.  Returns the number of instructions removed.

    When the tracer captures events every considered pair emits a
    :class:`~repro.obs.CoalesceDecision` recording acceptance, the
    rejection reason, and (for splits) the Briggs significant-neighbor
    degree the conservative test saw.
    """
    ds = DisjointSets()
    removed_ids: set[int] = set()
    merged = 0
    events = tracer.events_enabled
    kind = "split" if splits else "copy"

    def decide(dest: Reg, src: Reg, accepted: bool, reason: str,
               briggs: int | None = None) -> None:
        tracer.event(CoalesceDecision(
            dest=str(dest), src=str(src), copy_kind=kind,
            accepted=accepted, briggs_degree=briggs, reason=reason))

    for blk in fn.blocks:
        for inst in blk.instructions:
            if not inst.is_copy or inst.is_split is not splits:
                continue
            dest = ds.find(inst.dest)
            src = ds.find(inst.src)
            if dest == src:
                removed_ids.add(id(inst))
                merged += 1
                if events:
                    decide(inst.dest, inst.src, True, "already-unioned")
                continue
            if dest not in graph or src not in graph:
                if events:
                    decide(dest, src, False, "not-in-graph")
                continue
            if graph.interferes(dest, src):
                if events:
                    decide(dest, src, False, "interferes")
                continue
            if splits:
                briggs = _significant_neighbors(graph, dest, src,
                                                machine.k(dest.rclass))
                if briggs >= machine.k(dest.rclass):
                    if events:
                        decide(dest, src, False, "conservative-failed",
                               briggs)
                    continue
            else:
                briggs = None
            if events:
                decide(dest, src, True, "merged", briggs)
            keep = ds.union(dest, src)
            gone = src if keep == dest else dest
            graph.merge(keep, gone)
            if no_spill is not None and gone in no_spill:
                no_spill.discard(gone)
                no_spill.add(keep)
            removed_ids.add(id(inst))
            merged += 1

    if merged:
        rename = {reg: ds.find(reg) for reg in fn.all_regs() if reg in ds}
        for blk in fn.blocks:
            new_instructions = []
            for inst in blk.instructions:
                if id(inst) in removed_ids:
                    continue
                inst.rewrite_regs(rename)
                if inst.is_copy and inst.dest == inst.src:
                    continue  # became an identity copy through renaming
                new_instructions.append(inst)
            blk.instructions = new_instructions
        if liveness is not None:
            liveness.rename(rename)
    return merged


def build_coalesce_loop(fn: Function, machine: MachineDescription,
                        build_graph, no_spill: set[Reg] | None = None,
                        coalesce_splits: bool = True,
                        liveness: LivenessInfo | None = None,
                        tracer=NULL_TRACER,
                        ) -> tuple[InterferenceGraph, CoalesceStats]:
    """The paper's build–coalesce loop.

    *build_graph* is called to (re)construct the interference graph; the
    loop alternates building and coalescing until no combine fires, first
    for ordinary copies, then (if *coalesce_splits*) conservatively for
    splits.  With a cached *liveness* every rebuild after the first is a
    cache hit: the backward edge-insertion scan re-runs over the rewritten
    code, but the block-level fixed point is only renamed, never
    recomputed.  Returns the final graph and the statistics.
    """
    stats = CoalesceStats()

    def rebuild(first: bool) -> InterferenceGraph:
        if liveness is None:
            return build_graph(fn)
        if first:
            stats.liveness_cache_misses += 1
        else:
            stats.liveness_cache_hits += 1
        return build_graph(fn, liveness)

    graph = rebuild(first=True)
    while True:
        n = coalesce_pass(fn, graph, machine, splits=False,
                          no_spill=no_spill, liveness=liveness,
                          tracer=tracer)
        stats.copies_removed += n
        if n == 0:
            break
        graph = rebuild(first=False)
    if coalesce_splits:
        while True:
            n = coalesce_pass(fn, graph, machine, splits=True,
                              no_spill=no_spill, liveness=liveness,
                              tracer=tracer)
            stats.splits_removed += n
            if n == 0:
                break
            graph = rebuild(first=False)
    return graph, stats
