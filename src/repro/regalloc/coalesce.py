"""Coalescing: aggressive for ordinary copies, conservative for splits
(Sections 2 and 4.2).

Chaitin's coalesce combines live ranges ``l_i`` and ``l_j`` when ``l_j`` is
defined by a copy from ``l_i`` and they do not otherwise interfere.  To
keep the splits renumber so carefully introduced, split instructions are
only *conservatively* coalesced: the combined live range must have fewer
than k neighbors of *significant degree* (degree >= k), which guarantees it
still simplifies and therefore can never spill.

The driver follows the paper's schedule: first coalesce all ordinary
copies to a fixed point (rebuilding the graph between rounds), then begin
conservatively coalescing split instructions, again to a fixed point.
Each rebuild reuses the round's liveness fixed point: coalescing only
merges names, so the cached bitsets are *renamed* through the shared
:class:`~repro.analysis.RegIndex` instead of re-running the data-flow
iteration (see :meth:`~repro.analysis.LivenessInfo.rename`), plus a
small exact patch for the deleted copies themselves (a deleted copy's
renamed use/def bits would otherwise linger in its block's summaries,
leaving the cached fixed point conservative — and the next round's
incremental update would then disagree with a from-scratch compute).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import CodeDelta, LivenessInfo, compute_liveness, iter_bits
from ..ir import Function, Reg
from ..machine import MachineDescription
from ..obs import CoalesceDecision, NULL_TRACER
from ..unionfind import DisjointSets
from .interference import InterferenceGraph, diff_graphs


@dataclass
class CoalesceStats:
    """How many copies each stage removed, how often the round's
    liveness was reused across graph rebuilds, and how many of those
    rebuilds were incremental patches instead of from-scratch scans."""

    copies_removed: int = 0
    splits_removed: int = 0
    liveness_cache_hits: int = 0
    liveness_cache_misses: int = 0
    #: from-scratch interference builds (the first one plus any
    #: fallback where a pass merged too much to patch profitably)
    graph_builds: int = 0
    #: rebuilds served by :meth:`InterferenceGraph.try_refresh_after_coalesce`
    graph_patches: int = 0
    #: blocks rescanned across all patches (vs. blocks × rebuilds for
    #: the from-scratch strategy)
    graph_blocks_rescanned: int = 0
    #: adjacency bits re-derived across all patches
    graph_edges_patched: int = 0


def _significant_neighbors(graph: InterferenceGraph, a: Reg, b: Reg,
                           k: int) -> int:
    """Significant-degree neighbors of the would-be merged node.

    Briggs' conservative criterion holds when the result is < k; the
    count stops early at k (so a returned k means "at least k").
    """
    index = graph.index
    combined = graph.neighbor_bits(a) | graph.neighbor_bits(b)
    significant = 0
    for i in iter_bits(combined):
        if graph.degree(index.reg(i)) >= k:
            significant += 1
            if significant >= k:
                break
    return significant


def coalesce_pass(fn: Function, graph: InterferenceGraph,
                  machine: MachineDescription,
                  splits: bool,
                  no_spill: set[Reg] | None = None,
                  liveness: LivenessInfo | None = None,
                  tracer=NULL_TRACER,
                  dirty_out: set[Reg] | None = None) -> int:
    """One pass over the code, combining what the stage allows.

    With ``splits=False`` only ordinary copies are (aggressively)
    coalesced; with ``splits=True`` only split instructions are, under the
    conservative criterion.  The graph is updated in place by node merging
    and the code rewritten, so several combines can happen per pass.
    When a cached *liveness* is supplied its bitsets are renamed through
    the same mapping applied to the code and patched exact over the
    deleted-copy sites, keeping it equal to a from-scratch recompute for
    the next graph rebuild.  A *dirty_out* set collects every register involved
    in a combine (survivors and merged-away names) — the seed for an
    incremental graph refresh.  Returns the number of instructions
    removed.

    When the tracer captures events every considered pair emits a
    :class:`~repro.obs.CoalesceDecision` recording acceptance, the
    rejection reason, and (for splits) the Briggs significant-neighbor
    degree the conservative test saw.
    """
    ds = DisjointSets()
    removed_ids: set[int] = set()
    merged = 0
    events = tracer.events_enabled
    kind = "split" if splits else "copy"

    def decide(dest: Reg, src: Reg, accepted: bool, reason: str,
               briggs: int | None = None) -> None:
        tracer.event(CoalesceDecision(
            dest=str(dest), src=str(src), copy_kind=kind,
            accepted=accepted, briggs_degree=briggs, reason=reason))

    for blk in fn.blocks:
        for inst in blk.instructions:
            if not inst.is_copy or inst.is_split is not splits:
                continue
            dest = ds.find(inst.dest)
            src = ds.find(inst.src)
            if dest == src:
                removed_ids.add(id(inst))
                merged += 1
                if dirty_out is not None:
                    dirty_out.add(inst.dest)
                    dirty_out.add(inst.src)
                if events:
                    decide(inst.dest, inst.src, True, "already-unioned")
                continue
            if dest not in graph or src not in graph:
                if events:
                    decide(dest, src, False, "not-in-graph")
                continue
            if graph.interferes(dest, src):
                if events:
                    decide(dest, src, False, "interferes")
                continue
            if splits:
                briggs = _significant_neighbors(graph, dest, src,
                                                machine.k(dest.rclass))
                if briggs >= machine.k(dest.rclass):
                    if events:
                        decide(dest, src, False, "conservative-failed",
                               briggs)
                    continue
            else:
                briggs = None
            if events:
                decide(dest, src, True, "merged", briggs)
            keep = ds.union(dest, src)
            gone = src if keep == dest else dest
            graph.merge(keep, gone)
            if dirty_out is not None:
                dirty_out.add(keep)
                dirty_out.add(gone)
            if no_spill is not None and gone in no_spill:
                no_spill.discard(gone)
                no_spill.add(keep)
            removed_ids.add(id(inst))
            merged += 1

    if merged:
        # every register the pass touched is already in the union-find;
        # walking it directly beats re-collecting fn.all_regs() (an
        # O(program) instruction sweep) just to filter it back down
        rename = {reg: ds.find(reg) for reg in ds}
        deleted_blocks: set[str] = set()
        deleted_regs: set[Reg] = set()
        for blk in fn.blocks:
            new_instructions = []
            for inst in blk.instructions:
                if id(inst) in removed_ids:
                    deleted_blocks.add(blk.label)
                    deleted_regs.add(ds.find(inst.dest))
                    continue
                inst.rewrite_regs(rename)
                if inst.is_copy and inst.dest == inst.src:
                    # became an identity copy through renaming
                    deleted_blocks.add(blk.label)
                    deleted_regs.add(inst.dest)
                    continue
                new_instructions.append(inst)
            blk.instructions = new_instructions
        if liveness is not None:
            liveness.rename(rename)
            if deleted_blocks:
                # rename() alone leaves the deleted copies' use/def bits
                # behind (the copy's occurrence of both names is gone from
                # the code but its renamed bit survives in the block
                # summaries), so the cached fixed point would drift
                # conservative.  Patch it exact: the deleted sites are the
                # dirty blocks and the representatives are the touched
                # registers whose ranges may have shrunk.
                liveness.apply_delta(CodeDelta.of(
                    dirty_blocks=deleted_blocks,
                    touched_regs=deleted_regs))
    return merged


def build_coalesce_loop(fn: Function, machine: MachineDescription,
                        build_graph, no_spill: set[Reg] | None = None,
                        coalesce_splits: bool = True,
                        liveness: LivenessInfo | None = None,
                        tracer=NULL_TRACER, incremental: bool = True,
                        verify_incremental: bool = False,
                        ) -> tuple[InterferenceGraph, CoalesceStats]:
    """The paper's build–coalesce loop.

    *build_graph* is called to (re)construct the interference graph; the
    loop alternates building and coalescing until no combine fires, first
    for ordinary copies, then (if *coalesce_splits*) conservatively for
    splits.  One liveness fixed point serves the whole loop: the caller's
    cached *liveness* when given, else one computed here up front — never
    one per rebuild — and every rebuild after the first is a cache hit
    because coalescing renames the bitsets in place.

    With *incremental* (the default), rebuilds after a pass are served
    by :meth:`InterferenceGraph.try_refresh_after_coalesce` — an edge
    patch over the merge-dirty rows — falling back to a from-scratch
    scan when a pass merged more than patching profits from (typically
    the first, aggressive pass).  *verify_incremental* cross-checks
    every patch against a from-scratch build and raises on any mismatch
    (rows or node order).  Returns the final graph and the statistics.
    """
    stats = CoalesceStats()
    if liveness is None:
        liveness = compute_liveness(fn)

    def fresh_build() -> InterferenceGraph:
        stats.graph_builds += 1
        return build_graph(fn, liveness)

    def rebuild(graph: InterferenceGraph,
                dirty: set[Reg]) -> InterferenceGraph:
        stats.liveness_cache_hits += 1
        if incremental:
            patch = graph.try_refresh_after_coalesce(fn, liveness, dirty)
            if patch is not None:
                stats.graph_patches += 1
                stats.graph_blocks_rescanned += patch.blocks_rescanned
                stats.graph_edges_patched += patch.edges_patched
                if verify_incremental:
                    problems = diff_graphs(graph, fresh_build())
                    if problems:
                        raise RuntimeError(
                            "incremental interference refresh diverged "
                            f"from from-scratch build on {fn.name}: "
                            + "; ".join(problems[:5]))
                return graph
        return fresh_build()

    stats.liveness_cache_misses += 1
    graph = fresh_build()
    while True:
        dirty: set[Reg] = set()
        n = coalesce_pass(fn, graph, machine, splits=False,
                          no_spill=no_spill, liveness=liveness,
                          tracer=tracer, dirty_out=dirty)
        stats.copies_removed += n
        if n == 0:
            break
        graph = rebuild(graph, dirty)
    if coalesce_splits:
        while True:
            dirty = set()
            n = coalesce_pass(fn, graph, machine, splits=True,
                              no_spill=no_spill, liveness=liveness,
                              tracer=tracer, dirty_out=dirty)
            stats.splits_removed += n
            if n == 0:
                break
            graph = rebuild(graph, dirty)
    return graph, stats
