"""A fast local (per-block) register allocator.

The paper closes Section 5.4 by noting that graph-coloring speeds "are not
competitive with the fast, local techniques used in non-optimizing
compilers [Fraser–Hanson]; however, we believe that global optimizations
require global register allocation."  This module provides that local
baseline so the trade-off is measurable: every virtual register gets a
frame home, values are kept in registers only within a basic block
(write-through to the home on every definition), and nothing survives a
block boundary in a register.

Allocation is a single linear pass — far faster than the coloring
pipeline — and the produced code is far slower, which is exactly the
paper's point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import (Function, Instruction, Opcode, Reg, RegClass,
                  verify_function)
from ..machine import MachineDescription, standard_machine
from ..obs import Span, Tracer


class LocalAllocationError(RuntimeError):
    """Raised when an instruction needs more registers than the file has."""


@dataclass
class LocalAllocationResult:
    """The rewritten function plus simple statistics."""

    function: Function
    machine: MachineDescription
    n_reloads: int = 0
    n_stores: int = 0
    n_slots: int = 0
    #: duration of the ``local_allocate`` span (a view over :attr:`trace`)
    total_time: float = 0.0
    #: deep-copy time under ``clone=True``, as its own span/field
    clone_time: float = 0.0
    #: the allocation's root span, for trace export
    trace: Span | None = field(default=None, repr=False, compare=False)


class _BlockState:
    """Register bindings within one basic block."""

    def __init__(self, machine: MachineDescription) -> None:
        self.machine = machine
        #: virtual -> physical
        self.binding: dict[Reg, Reg] = {}
        #: physical -> virtual
        self.holder: dict[Reg, Reg] = {}
        #: LRU order of physical registers per class (front = oldest)
        self.lru: dict[RegClass, list[Reg]] = {RegClass.INT: [],
                                               RegClass.FLOAT: []}

    def touch(self, phys: Reg) -> None:
        order = self.lru[phys.rclass]
        if phys in order:
            order.remove(phys)
        order.append(phys)

    def allocate(self, virt: Reg, pinned: set[Reg]) -> Reg:
        """A physical register for *virt*, evicting the LRU if needed."""
        k = self.machine.k(virt.rclass)
        in_use = {p.index for p in self.holder if p.rclass is virt.rclass}
        for index in range(k):
            if index not in in_use:
                phys = Reg(virt.rclass, index, physical=True)
                self.bind(virt, phys)
                return phys
        for phys in self.lru[virt.rclass]:
            if phys not in pinned:
                self.unbind(self.holder[phys])
                self.bind(virt, phys)
                return phys
        raise LocalAllocationError(
            f"instruction needs more than {k} {virt.rclass.name} registers")

    def bind(self, virt: Reg, phys: Reg) -> None:
        self.binding[virt] = phys
        self.holder[phys] = virt
        self.touch(phys)

    def unbind(self, virt: Reg) -> None:
        phys = self.binding.pop(virt)
        del self.holder[phys]
        self.lru[phys.rclass].remove(phys)


def allocate_local(fn: Function,
                   machine: MachineDescription | None = None,
                   clone: bool = True,
                   tracer: Tracer | None = None) -> LocalAllocationResult:
    """Allocate *fn* with the local write-through strategy."""
    if machine is None:
        machine = standard_machine()
    if machine.int_regs < 3 or machine.float_regs < 2:
        raise LocalAllocationError(
            "the local allocator needs at least 3 int / 2 float registers")
    if tracer is None:
        tracer = Tracer()
    with tracer.span("local_allocate", fn=fn.name,
                     machine=machine.name) as root:
        with tracer.span("clone"):
            work = fn.clone() if clone else fn
        result = LocalAllocationResult(function=work, machine=machine)
        _rewrite_blocks(work, machine, result)
        result.n_slots = work.n_spill_slots
        verify_function(work, require_physical=True,
                        max_int_reg=machine.int_regs,
                        max_float_reg=machine.float_regs)
    result.total_time = root.duration
    clone_span = root.child("clone")
    result.clone_time = clone_span.duration if clone_span else 0.0
    result.trace = root
    return result


def _rewrite_blocks(work: Function, machine: MachineDescription,
                    result: LocalAllocationResult) -> None:
    """The single linear pass: reload-before-use, write-through-on-def."""
    homes: dict[Reg, int] = {}

    def home_of(virt: Reg) -> int:
        if virt not in homes:
            homes[virt] = work.new_spill_slot()
        return homes[virt]

    def reload_op(rclass: RegClass) -> Opcode:
        return Opcode.SPLD if rclass is RegClass.INT else Opcode.FSPLD

    def store_op(rclass: RegClass) -> Opcode:
        return Opcode.SPST if rclass is RegClass.INT else Opcode.FSPST

    for blk in work.blocks:
        state = _BlockState(machine)
        new_instructions: list[Instruction] = []
        for inst in blk.instructions:
            pinned: set[Reg] = set()
            # sources: reload from home if not already bound.  Source and
            # destination maps are kept apart: for `add r1 r1 r2` the
            # source r1 must read its old register even though the
            # destination r1 may land elsewhere.
            src_map: dict[Reg, Reg] = {}
            for src in inst.srcs:
                if src in src_map:
                    continue
                phys = state.binding.get(src)
                if phys is None:
                    phys = state.allocate(src, pinned)
                    new_instructions.append(
                        Instruction(reload_op(src.rclass), dests=(phys,),
                                    imms=(home_of(src),)))
                    result.n_reloads += 1
                else:
                    state.touch(phys)
                src_map[src] = phys
                pinned.add(phys)
            inst.srcs = tuple(src_map[s] for s in inst.srcs)
            # destinations: bind and write through to the home slot
            stores: list[Instruction] = []
            dest_map: dict[Reg, Reg] = {}
            for dest in inst.dests:
                if dest in state.binding:
                    state.unbind(dest)
                phys = state.allocate(dest, pinned)
                dest_map[dest] = phys
                pinned.add(phys)
                stores.append(
                    Instruction(store_op(dest.rclass), srcs=(phys,),
                                imms=(home_of(dest),)))
                result.n_stores += 1
            inst.dests = tuple(dest_map[d] for d in inst.dests)
            new_instructions.append(inst)
            new_instructions.extend(stores)
        blk.instructions = new_instructions
