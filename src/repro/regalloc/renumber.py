"""The renumber phase (Section 4.1).

Wraps the SSA + tag-propagation + splitting pipeline into the allocator's
first phase.  The six steps of the paper's modified renumber map onto:

1. liveness                         — :func:`repro.analysis.compute_liveness`
2. pruned φ insertion               — :func:`repro.ssa.construct_ssa`
3. renaming + tag initialization    — ``construct_ssa`` + ``initial_tags``
4. sparse tag propagation           — :func:`repro.remat.propagate_tags`
5. unioning identically-tagged copies  — :func:`repro.remat.plan_unions`
6. φ examination: union or split       — ``plan_unions`` + ``apply_plan``

Under ``RenumberMode.CHAITIN`` steps 4–5 are skipped and step 6 degenerates
to "union everything" — the paper's *Old* allocator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis import DominanceInfo, compute_dominance
from ..ir import Function, Reg
from ..obs import NULL_TRACER
from ..remat import (RenumberMode, RenumberResult, apply_plan, plan_unions,
                     propagate_tags)
from ..ssa import SSAGraph, construct_ssa


@dataclass
class RenumberOutcome:
    """A :class:`~repro.remat.RenumberResult` plus allocator bookkeeping."""

    result: RenumberResult
    #: live ranges that must not be chosen for spilling (they contain
    #: spill temporaries minted by an earlier round)
    no_spill: set[Reg] = field(default_factory=set)


def run_renumber(fn: Function, mode: RenumberMode,
                 dom: DominanceInfo | None = None,
                 no_spill_regs: set[Reg] | None = None,
                 tracer=NULL_TRACER, am=None) -> RenumberOutcome:
    """Renumber *fn* in place under *mode*.

    *no_spill_regs* names (pre-renumber) registers that are spill
    temporaries; the returned outcome translates them into the new
    live-range namespace.  Split insertions are emitted as
    :class:`~repro.obs.SplitInserted` events on an event-capturing
    *tracer*.  With an :class:`~repro.passes.AnalysisManager` (*am*),
    dominance and the pruning liveness are sourced through it — e.g. a
    pre-split hook's fixed point is reused instead of recomputed.
    """
    if dom is None:
        dom = am.dominance() if am is not None else compute_dominance(fn)
    liveness = am.liveness() if am is not None else None
    info = construct_ssa(fn, dom=dom, liveness=liveness)
    tags = None
    if mode is RenumberMode.REMAT:
        graph = SSAGraph.build(fn, info)
        tags = propagate_tags(graph)
    plan = plan_unions(fn, info, tags, mode)
    result = apply_plan(fn, info, plan, tags, tracer=tracer)

    no_spill: set[Reg] = set()
    if no_spill_regs:
        for lr, values in result.members.items():
            if any(info.orig_reg[v] in no_spill_regs for v in values):
                no_spill.add(lr)
    return RenumberOutcome(result=result, no_spill=no_spill)
