"""Spill-slot packing.

Each spilled live range receives its own frame slot during spill-code
insertion; across several color–spill rounds the frame grows even though
many slots are never simultaneously live.  This optional post-pass colors
the *slots* the same way the allocator colors registers: two slots
interfere when one is live (between a ``spst`` and a later ``spld``)
while the other is stored or loaded; non-interfering slots share a frame
location.

This is an extension beyond the paper (whose experiments measure dynamic
cycles, not frame sizes), but it is standard practice in the allocators
that descend from it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import Function, Opcode, RegClass

#: spill opcodes that define a slot's value (stores into the frame)
_STORES = (Opcode.SPST, Opcode.FSPST)
#: spill opcodes that use a slot's value (reloads from the frame)
_LOADS = (Opcode.SPLD, Opcode.FSPLD)


@dataclass
class SlotPackingResult:
    """Outcome of one packing run."""

    slots_before: int
    slots_after: int
    #: old slot index -> new slot index
    mapping: dict[int, int]


def _slot_liveness(fn: Function) -> dict[str, set[int]]:
    """Live-in slot sets per block, by backward iteration.

    A slot is live when a later ``spld`` of it may execute before the
    next ``spst`` to it.
    """
    use: dict[str, set[int]] = {}
    defs: dict[str, set[int]] = {}
    for blk in fn.blocks:
        u: set[int] = set()
        d: set[int] = set()
        for inst in blk.instructions:
            if inst.opcode in _LOADS:
                slot = inst.imms[0]
                if slot not in d:
                    u.add(slot)
            elif inst.opcode in _STORES:
                d.add(inst.imms[0])
        use[blk.label] = u
        defs[blk.label] = d

    live_in: dict[str, set[int]] = {b.label: set() for b in fn.blocks}
    changed = True
    while changed:
        changed = False
        for blk in fn.blocks:
            out: set[int] = set()
            for succ in blk.successors():
                out |= live_in[succ]
            new = use[blk.label] | (out - defs[blk.label])
            if new != live_in[blk.label]:
                live_in[blk.label] = new
                changed = True
    return live_in


def pack_spill_slots(fn: Function) -> SlotPackingResult:
    """Renumber spill slots of *fn* in place so the frame is minimal.

    Slots of int and float spills are kept apart (a frame location holds
    one value class in this memory model's strict interpreter).
    """
    live_in = _slot_liveness(fn)

    # slot classes (int vs float) and the interference relation
    slot_class: dict[int, RegClass] = {}
    adjacency: dict[int, set[int]] = {}

    def note(slot: int, rclass: RegClass) -> None:
        slot_class.setdefault(slot, rclass)
        adjacency.setdefault(slot, set())

    for blk in fn.blocks:
        # compute live-out by union of successor live-ins
        live: set[int] = set()
        for succ in blk.successors():
            live |= live_in[succ]
        for inst in reversed(blk.instructions):
            if inst.opcode in _STORES:
                slot = inst.imms[0]
                rclass = (RegClass.INT if inst.opcode is Opcode.SPST
                          else RegClass.FLOAT)
                note(slot, rclass)
                for other in live:
                    if other != slot:
                        adjacency.setdefault(other, set()).add(slot)
                        adjacency[slot].add(other)
                live.discard(slot)
            elif inst.opcode in _LOADS:
                slot = inst.imms[0]
                rclass = (RegClass.INT if inst.opcode is Opcode.SPLD
                          else RegClass.FLOAT)
                note(slot, rclass)
                live.add(slot)

    # greedy coloring per class, in slot order (stable and deterministic)
    mapping: dict[int, int] = {}
    next_index = 0
    assigned: dict[int, int] = {}
    for slot in sorted(slot_class):
        forbidden = {assigned[n] for n in adjacency[slot] if n in assigned
                     and slot_class[n] is slot_class[slot]}
        # also avoid sharing across classes: a frame cell holds one kind
        cross = {assigned[n] for n in adjacency[slot] if n in assigned}
        color = 0
        while color in forbidden or color in cross:
            color += 1
        assigned[slot] = color
        mapping[slot] = color
        next_index = max(next_index, color + 1)

    for blk in fn.blocks:
        for inst in blk.instructions:
            if inst.opcode in _STORES or inst.opcode in _LOADS:
                inst.imms = (mapping[inst.imms[0]],)

    before = fn.n_spill_slots
    fn.n_spill_slots = next_index
    return SlotPackingResult(slots_before=before, slots_after=next_index,
                             mapping=mapping)
