"""The optimistic simplify phase (Section 2, *Simplify*).

Briggs' variant of Chaitin's simplification: remove nodes of degree < k
(pushing them on the stack and decrementing neighbor degrees); when only
high-degree nodes remain, choose a spill *candidate* by Chaitin's metric —
minimum spill cost divided by current degree — but push it on the stack
anyway ("optimism"): select may still find it a color.

The phase is exact Briggs but engineered for scale: live nodes are a
bitset mask (so neighbor walks skip removed nodes with one AND), per-id
arrays replace per-``Reg`` dict probes on the hot decrement path, and
the spill-candidate choice is a lazy min-heap over ``(ratio, sort_key)``
refreshed on every degree decrement — the same candidate the original
linear rescan picked (min ratio, ties to the smaller ``sort_key``), at
``O(log n)`` per choice instead of ``O(live nodes)``.  Degrees only
fall, so a popped entry is valid exactly when it matches the node's
current ratio; stale entries are discarded lazily and the heap is
compacted when it outgrows the live set.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush

from ..analysis import iter_bits
from ..ir import Reg
from ..machine import MachineDescription
from ..obs import NULL_TRACER, SpillCandidateChosen
from .interference import InterferenceGraph
from .spillcost import SpillCosts


@dataclass
class SimplifyResult:
    """The coloring order and which pushes were spill candidates."""

    #: every node, in push order (select pops from the end)
    stack: list[Reg]
    #: nodes pushed as spill candidates (degree >= k at push time)
    candidates: set[Reg]
    #: nodes spilled outright by the pessimistic (original Chaitin)
    #: variant; empty under the optimistic default
    pessimistic_spills: list[Reg] = field(default_factory=list)


def simplify(graph: InterferenceGraph, machine: MachineDescription,
             costs: SpillCosts, optimistic: bool = True,
             tracer=NULL_TRACER) -> SimplifyResult:
    """Order the nodes of *graph* for select.

    With ``optimistic=False`` the phase behaves like Chaitin's original
    simplification: a spill candidate is spilled immediately instead of
    being pushed for select to try — the pessimism that Briggs' optimistic
    coloring removed (and the paper's base allocator assumes removed).

    Each spill-candidate choice is emitted as a
    :class:`~repro.obs.SpillCandidateChosen` event with its cost/degree
    provenance when the tracer captures events.
    """
    index = graph.index
    nodes = graph.nodes()
    ids = [index.id(n) for n in nodes]
    width = len(index)
    regs_by_id: list[Reg | None] = [None] * width
    degree_by_id = [0] * width
    k_by_id = [0] * width
    cost_by_id = [math.inf] * width
    cost_get = costs.cost.get
    alive_mask = 0
    for node, i in zip(nodes, ids):
        regs_by_id[i] = node
        degree_by_id[i] = graph.degree(node)
        k_by_id[i] = machine.k(node.rclass)
        cost_by_id[i] = cost_get(node, math.inf)
        alive_mask |= 1 << i
    n_alive = len(nodes)

    stack: list[Reg] = []
    candidates: set[Reg] = set()
    pessimistic_spills: list[Reg] = []

    # the candidate heap holds (ratio, sort_key, node) for finite-cost
    # nodes; infinite-cost nodes (spill temps) are only ever a fallback,
    # served in node order by an advancing pointer
    heap: list[tuple[float, tuple, Reg]] = [
        (cost_by_id[i] / max(degree_by_id[i], 1), node.sort_key(), node)
        for node, i in zip(nodes, ids)
        if not math.isinf(cost_by_id[i])]
    heapify(heap)
    inf_nodes = [(node, i) for node, i in zip(nodes, ids)
                 if math.isinf(cost_by_id[i])]
    inf_pos = 0

    worklist = [n for n, i in zip(nodes, ids)
                if degree_by_id[i] < k_by_id[i]]

    def remove(node: Reg, push: bool = True) -> None:
        nonlocal alive_mask, n_alive
        i = index.id(node)
        alive_mask &= ~(1 << i)
        n_alive -= 1
        if push:
            stack.append(node)
        # neighbors in dense-index order: deterministic across runs,
        # unlike hash-ordered set iteration
        for j in iter_bits(graph.neighbor_bits(node) & alive_mask):
            d = degree_by_id[j] = degree_by_id[j] - 1
            if d == k_by_id[j] - 1:
                worklist.append(regs_by_id[j])
            c = cost_by_id[j]
            if not math.isinf(c):
                neighbor = regs_by_id[j]
                heappush(heap, (c / max(d, 1), neighbor.sort_key(),
                                neighbor))

    def pick_candidate() -> Reg | None:
        nonlocal inf_pos
        # compact when stale entries dominate (bounded memory, amortized
        # linear): rebuild from the currently-alive finite nodes
        if len(heap) > 1024 and len(heap) > 4 * n_alive:
            fresh = [
                (cost_by_id[i] / max(degree_by_id[i], 1),
                 reg.sort_key(), reg)
                for i in iter_bits(alive_mask)
                if not math.isinf(cost_by_id[i])
                for reg in (regs_by_id[i],)]
            heap[:] = fresh
            heapify(heap)
        while heap:
            ratio, _sk, node = heap[0]
            i = index.id(node)
            if (not alive_mask >> i & 1
                    or ratio != cost_by_id[i] / max(degree_by_id[i], 1)):
                heappop(heap)  # removed node or stale (pre-decrement) ratio
                continue
            return node
        while inf_pos < len(inf_nodes):
            node, i = inf_nodes[inf_pos]
            if alive_mask >> i & 1:
                return node
            inf_pos += 1
        return None

    while n_alive:
        while worklist:
            node = worklist.pop()
            i = index.id(node)
            if alive_mask >> i & 1 and degree_by_id[i] < k_by_id[i]:
                remove(node)
        if not n_alive:
            break
        candidate = pick_candidate()
        if candidate is None:
            break  # only isolated leftovers; cannot happen in practice
        candidates.add(candidate)
        if tracer.events_enabled:
            ci = index.id(candidate)
            cost = cost_by_id[ci]
            deg = degree_by_id[ci]
            tracer.event(SpillCandidateChosen(
                range=str(candidate), cost=cost, degree=deg,
                ratio=cost / max(deg, 1),
                chosen_because=("infinite-cost-fallback"
                                if math.isinf(cost) else "min-ratio"),
                optimistic=optimistic))
        if optimistic:
            remove(candidate)
        else:
            pessimistic_spills.append(candidate)
            remove(candidate, push=False)
    return SimplifyResult(stack=stack, candidates=candidates,
                          pessimistic_spills=pessimistic_spills)
