"""The optimistic simplify phase (Section 2, *Simplify*).

Briggs' variant of Chaitin's simplification: remove nodes of degree < k
(pushing them on the stack and decrementing neighbor degrees); when only
high-degree nodes remain, choose a spill *candidate* by Chaitin's metric —
minimum spill cost divided by current degree — but push it on the stack
anyway ("optimism"): select may still find it a color.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..ir import Reg
from ..machine import MachineDescription
from ..obs import NULL_TRACER, SpillCandidateChosen
from .interference import InterferenceGraph
from .spillcost import SpillCosts


@dataclass
class SimplifyResult:
    """The coloring order and which pushes were spill candidates."""

    #: every node, in push order (select pops from the end)
    stack: list[Reg]
    #: nodes pushed as spill candidates (degree >= k at push time)
    candidates: set[Reg]
    #: nodes spilled outright by the pessimistic (original Chaitin)
    #: variant; empty under the optimistic default
    pessimistic_spills: list[Reg] = field(default_factory=list)


def simplify(graph: InterferenceGraph, machine: MachineDescription,
             costs: SpillCosts, optimistic: bool = True,
             tracer=NULL_TRACER) -> SimplifyResult:
    """Order the nodes of *graph* for select.

    With ``optimistic=False`` the phase behaves like Chaitin's original
    simplification: a spill candidate is spilled immediately instead of
    being pushed for select to try — the pessimism that Briggs' optimistic
    coloring removed (and the paper's base allocator assumes removed).

    Each spill-candidate choice is emitted as a
    :class:`~repro.obs.SpillCandidateChosen` event with its cost/degree
    provenance when the tracer captures events.
    """
    degree: dict[Reg, int] = {n: graph.degree(n) for n in graph.nodes()}
    # the not-yet-removed nodes, maintained incrementally as an
    # insertion-ordered dict so spill-candidate scans touch only live
    # nodes (the old full-degree rescan was O(n^2) under pressure) while
    # keeping the exact deterministic iteration order of the original
    alive: dict[Reg, None] = dict.fromkeys(degree)
    stack: list[Reg] = []
    candidates: set[Reg] = set()
    pessimistic_spills: list[Reg] = []
    index = graph.index

    def k_of(reg: Reg) -> int:
        return machine.k(reg.rclass)

    worklist = [n for n in degree if degree[n] < k_of(n)]

    def remove(node: Reg, push: bool = True) -> None:
        del alive[node]
        if push:
            stack.append(node)
        # neighbors in dense-index order: deterministic across runs,
        # unlike hash-ordered set iteration
        for n in index.iter_regs(graph.neighbor_bits(node)):
            if n not in alive:
                continue
            degree[n] -= 1
            if degree[n] == k_of(n) - 1:
                worklist.append(n)

    while alive:
        while worklist:
            node = worklist.pop()
            if node in alive and degree[node] < k_of(node):
                remove(node)
        if not alive:
            break
        candidate = _pick_spill_candidate(degree, alive, costs)
        if candidate is None:
            break  # only isolated leftovers; cannot happen in practice
        candidates.add(candidate)
        if tracer.events_enabled:
            cost = costs.cost.get(candidate, math.inf)
            deg = degree[candidate]
            tracer.event(SpillCandidateChosen(
                range=str(candidate), cost=cost, degree=deg,
                ratio=cost / max(deg, 1),
                chosen_because=("infinite-cost-fallback"
                                if math.isinf(cost) else "min-ratio"),
                optimistic=optimistic))
        if optimistic:
            remove(candidate)
        else:
            pessimistic_spills.append(candidate)
            remove(candidate, push=False)
    return SimplifyResult(stack=stack, candidates=candidates,
                          pessimistic_spills=pessimistic_spills)


def _pick_spill_candidate(degree: dict[Reg, int], alive: dict[Reg, None],
                          costs: SpillCosts) -> Reg | None:
    """Chaitin's choice: minimize cost / current degree.

    Infinite-cost nodes (spill temporaries) are chosen only when no finite
    node remains — the optimistic select usually colors them anyway.
    """
    best: Reg | None = None
    best_ratio = math.inf
    fallback: Reg | None = None
    for node in alive:
        deg = degree[node]
        cost = costs.cost.get(node, math.inf)
        if math.isinf(cost):
            if fallback is None:
                fallback = node
            continue
        ratio = cost / max(deg, 1)
        if ratio < best_ratio or (ratio == best_ratio and best is not None
                                  and node.sort_key() < best.sort_key()):
            best, best_ratio = node, ratio
    return best if best is not None else fallback
