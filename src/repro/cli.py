"""Command-line interface: ``python -m repro <command> ...``.

Commands

* ``compile FILE``  — MiniFort source → ILOC text on stdout
* ``allocate FILE`` — compile/parse, allocate, print the allocated ILOC
  (``--trace FILE.jsonl`` also records a full allocation trace)
* ``run FILE``      — compile/parse (optionally allocate) and interpret
* ``cgen FILE``     — emit the instrumented C translation (Figure 4)
* ``trace TARGET``  — record or inspect an allocation trace: ``TARGET``
  is a ``.jsonl`` trace to re-render, a source file to allocate, or a
  benchmark kernel name; ``--format jsonl|tree|summary`` picks the
  view and ``--diff OTHER.jsonl`` compares two traces round by round
  (see ``docs/observability.md``)
* ``opt FILE``      — run an explicit pass pipeline (``--passes
  dce,lvn,licm``) with optional ``--verify-after-each`` and
  ``--print-before/--print-after PASS`` IR dumps
* ``passes``        — list the registered passes and what each declares
  it preserves
* ``table1`` / ``table2`` / ``ablation`` / ``sweep`` — the experiments,
  executed through the allocation-experiment engine (``--jobs N`` for
  parallel fan-out, ``--no-cache`` to bypass the persistent result
  cache under ``benchmarks/results/cache/``, ``--timeout`` /
  ``--retries`` for the supervisor's failure policy).  Quarantined
  requests render as a partial-results appendix and exit nonzero
  instead of aborting the table (see ``docs/robustness.md``)
* ``cache {stats,verify,gc}`` — inspect, re-checksum, or sweep the
  persistent result cache and its ``quarantine/`` directory (``gc``
  also migrates legacy flat entries into their shards)
* ``serve``             — run the persistent allocation server: a warm
  worker pool plus the shared result cache behind a JSONL/TCP protocol
  with admission control and micro-batching; ``--access-log`` /
  ``--metrics-addr`` / ``--flight-dump`` wire up the service
  observability described in ``docs/observability.md`` (see
  ``docs/serving.md``)
* ``top HOST:PORT``     — live dashboard over a running server's
  ``metrics`` op: request rates, latency quantiles, queue depth,
  dedup/cache ratios, pool spawn/reuse (``--format table|json|prom``)

``FILE`` may be MiniFort (``.mf``) or textual ILOC (``.il``); anything
else is sniffed by content (ILOC starts with ``proc NAME NPARAMS``).
"""

from __future__ import annotations

import argparse
import os
import sys

from .frontend import compile_source
from .interp import run_function
from .ir import Function, function_to_text, parse_function
from .machine import machine_with
from .obs import (ALLOCATE_LINE_KEYS, Tracer, load_trace,
                  metrics_from_allocation, parse_trace, render_diff,
                  render_summary, render_tree, trace_to_text, write_trace)
from .regalloc import ALLOCATOR_NAMES, allocate
from .remat import RenumberMode


def _load(path: str) -> Function:
    with open(path) as handle:
        text = handle.read()
    if path.endswith(".il"):
        return parse_function(text)
    if path.endswith(".mf"):
        return compile_source(text)
    first = next((line for line in text.splitlines() if line.strip()), "")
    if first.startswith("proc") and len(first.split()) == 3 \
            and first.split()[2].isdigit():
        return parse_function(text)
    return compile_source(text)


def _machine(args: argparse.Namespace):
    return machine_with(args.k, args.kf if args.kf is not None else args.k)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--k", type=int, default=16,
                        help="integer register count (default 16)")
    parser.add_argument("--kf", type=int, default=None,
                        help="float register count (default: same as --k)")
    parser.add_argument("--mode", choices=[m.value for m in RenumberMode],
                        default="remat", help="allocator variant")
    parser.add_argument("--allocator", choices=list(ALLOCATOR_NAMES),
                        default="iterated",
                        help="allocation strategy: the paper's iterated "
                             "Chaitin/Briggs loop (default) or SSA "
                             "spill-everywhere (ignores --mode)")
    parser.add_argument("--opt", action="store_true",
                        help="run LVN/LICM/DCE before allocation")


def _add_engine(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for cache misses "
                             "(default: all cores)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent result cache under "
                             "benchmarks/results/cache/")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent result cache directory "
                             "(default: benchmarks/results/cache/ or "
                             "$REPRO_CACHE_DIR)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-attempt wall-clock budget; a worker "
                             "exceeding it is killed and the request "
                             "retried (default: no timeout)")
    parser.add_argument("--retries", type=int, default=3, metavar="N",
                        help="attempts per request before it is "
                             "quarantined as a failure (default 3)")


def _engine(args: argparse.Namespace):
    from .engine import ExperimentEngine, SupervisorConfig

    return ExperimentEngine(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        supervisor=SupervisorConfig(timeout=args.timeout,
                                    max_attempts=args.retries))


def _report_failures(engine) -> int:
    """Print the partial-results appendix to stderr; nonzero when the
    rendered tables are missing quarantined requests."""
    if not engine.failures:
        return 0
    from .experiments import render_failures

    print(render_failures(engine.failures), file=sys.stderr)
    return 1


def _maybe_optimize(fn: Function, args: argparse.Namespace) -> None:
    if getattr(args, "opt", False):
        from .opt import optimize
        optimize(fn)


def cmd_compile(args: argparse.Namespace) -> int:
    fn = _load(args.file)
    _maybe_optimize(fn, args)
    print(function_to_text(fn), end="")
    return 0


def _trace_meta(result, source: str) -> dict:
    """The identity block of a trace's ``meta`` line."""
    machine = result.machine
    return {"function": result.function.name, "mode": result.mode.value,
            "allocator": result.allocator, "machine": machine.name,
            "int_regs": machine.int_regs,
            "float_regs": machine.float_regs, "source": source}


def cmd_allocate(args: argparse.Namespace) -> int:
    fn = _load(args.file)
    _maybe_optimize(fn, args)
    tracer = Tracer(capture_events=True) if args.trace else None
    result = allocate(fn, machine=_machine(args),
                      mode=RenumberMode(args.mode),
                      allocator=args.allocator, tracer=tracer)
    print(function_to_text(result.function), end="")
    registry = metrics_from_allocation(result)
    print("# " + registry.render_line(ALLOCATE_LINE_KEYS), file=sys.stderr)
    if args.trace:
        write_trace(args.trace, result.trace,
                    _trace_meta(result, args.file), registry)
        print(f"# trace written to {args.trace}", file=sys.stderr)
    return 0


def cmd_opt(args: argparse.Namespace) -> int:
    from .passes import (AnalysisManager, PassPipeline, PreservedAnalyses,
                         make_pass)

    fn = _load(args.file)
    try:
        passes = [make_pass(name.strip())
                  for name in args.passes.split(",") if name.strip()]
    except KeyError as exc:
        raise SystemExit(f"repro opt: {exc.args[0]}")
    if not passes:
        raise SystemExit("repro opt: --passes named no passes")
    am = AnalysisManager(fn)
    pipeline = PassPipeline(
        passes,
        verify_after_each=args.verify_after_each,
        print_before=args.print_before,
        print_after=args.print_after,
        dump=lambda line: print(line, file=sys.stderr))
    report = pipeline.run(fn, am)
    print(function_to_text(fn), end="")
    changed = [name for name, preserved
               in zip(report.pass_names, report.preserved)
               if preserved != PreservedAnalyses.all()]
    print(f"# passes={','.join(report.pass_names)} "
          f"changed={','.join(changed) or '-'} "
          f"verified={report.verifications} "
          f"analyses_computed={am.n_computed()} "
          f"analyses_reused={am.n_reused()}", file=sys.stderr)
    return 0


def cmd_passes(args: argparse.Namespace) -> int:
    from .passes import PASS_REGISTRY, make_pass

    width = max(len(name) for name in PASS_REGISTRY)
    for name in sorted(PASS_REGISTRY):
        p = make_pass(name)
        doc = (type(p).__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"{name:<{width}}  preserves: {p.preserves.describe()}")
        if summary:
            print(f"{'':<{width}}  {summary}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    fn = _load(args.file)
    _maybe_optimize(fn, args)
    machine = _machine(args)
    if args.allocated:
        fn = allocate(fn, machine=machine,
                      mode=RenumberMode(args.mode),
                      allocator=args.allocator).function
    run = run_function(fn, args=[int(a) for a in args.args])
    for value in run.output:
        print(value)
    counts = " ".join(f"{cls.value}={n}"
                      for cls, n in sorted(run.counts.items(),
                                           key=lambda kv: kv[0].value))
    print(f"# steps={run.steps} cycles={machine.cycles(run.counts)} "
          f"{counts}", file=sys.stderr)
    return 0


def cmd_cgen(args: argparse.Namespace) -> int:
    from .cgen import emit_function

    fn = _load(args.file)
    _maybe_optimize(fn, args)
    if args.allocated:
        fn = allocate(fn, machine=_machine(args),
                      mode=RenumberMode(args.mode),
                      allocator=args.allocator).function
    print(emit_function(fn), end="")
    return 0


def _trace_function(target: str) -> tuple[Function, str]:
    """Resolve a ``repro trace`` TARGET that is not a ``.jsonl`` trace:
    a source file on disk, or a kernel/program name from the benchmark
    suite (a program name picks its first kernel)."""
    if os.path.exists(target):
        return _load(target), target
    from .benchsuite import ALL_KERNELS, KERNELS_BY_NAME

    kernel = KERNELS_BY_NAME.get(target)
    if kernel is None:
        kernel = next((k for k in ALL_KERNELS if k.program == target), None)
    if kernel is None:
        raise SystemExit(
            f"repro trace: {target!r} is neither a file, a kernel name, "
            f"nor a program name (try one of: "
            f"{', '.join(sorted(KERNELS_BY_NAME))})")
    return kernel.compile(), kernel.name


def cmd_trace(args: argparse.Namespace) -> int:
    if args.target.endswith(".jsonl") and os.path.exists(args.target):
        with open(args.target) as handle:
            text = handle.read()
    else:
        fn, source = _trace_function(args.target)
        _maybe_optimize(fn, args)
        tracer = Tracer(capture_events=True)
        result = allocate(fn, machine=_machine(args),
                          mode=RenumberMode(args.mode),
                          allocator=args.allocator, tracer=tracer)
        text = trace_to_text(result.trace, _trace_meta(result, source),
                             metrics_from_allocation(result))
    doc = parse_trace(text)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"# trace written to {args.out}", file=sys.stderr)
    if args.diff:
        other = load_trace(args.diff)
        print(render_diff(other, doc,
                          a_name=args.diff, b_name=args.target))
        return 0
    if args.format == "jsonl":
        print(text, end="")
    elif args.format == "tree":
        print(render_tree(doc))
    else:
        print(render_summary(doc))
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    from .experiments import generate_table1

    engine = _engine(args)
    print(generate_table1(machine=_machine(args),
                          optimize_first=args.opt,
                          engine=engine,
                          allocator=args.allocator).render())
    return _report_failures(engine)


def cmd_table2(args: argparse.Namespace) -> int:
    from .experiments import generate_table2

    # timing requests are cacheable=False by construction, so the
    # engine only contributes parallel fan-out here — never stale times
    engine = _engine(args)
    print(generate_table2(repeats=args.repeats, engine=engine).render())
    return _report_failures(engine)


def cmd_ablation(args: argparse.Namespace) -> int:
    from .experiments import run_ablation, run_heuristic_ablation

    engine = _engine(args)
    print(run_ablation(engine=engine, allocator=args.allocator).render())
    print()
    print(run_heuristic_ablation(engine=engine,
                                 allocator=args.allocator).render())
    return _report_failures(engine)


def cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments import run_register_sweep

    engine = _engine(args)
    print(run_register_sweep(engine=engine,
                             allocator=args.allocator).render())
    return _report_failures(engine)


def cmd_ssa_compare(args: argparse.Namespace) -> int:
    from .experiments import run_allocator_comparison

    engine = _engine(args)
    print(run_allocator_comparison(engine=engine).render())
    return _report_failures(engine)


def cmd_cache(args: argparse.Namespace) -> int:
    import json

    from .engine import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        print(json.dumps(cache.stats_report(), indent=2))
    elif args.action == "verify":
        ok, corrupt = cache.verify()
        print(f"verified {ok + corrupt} entries: {ok} ok, "
              f"{corrupt} corrupt (quarantined)")
        return 1 if corrupt else 0
    else:  # gc
        swept = cache.gc()
        print(f"removed {swept['quarantined_removed']} quarantined "
              f"entries, {swept['tmp_removed']} stray temp files; "
              f"migrated {swept['migrated']} legacy entries into shards")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .engine import ExperimentEngine, SupervisorConfig, WorkerPool
    from .serve import ServeConfig, run_server

    def announce(host: str, port: int) -> None:
        print(f"# serving on {host}:{port}", flush=True)

    if args.backends >= 1:
        # cluster mode: this process becomes the router; the backends
        # are repro serve subprocesses it spawns and supervises.
        # --backends 1 still routes (useful to measure routing cost);
        # the default (0) serves directly from this process.
        from .serve.cluster import ClusterConfig, run_cluster
        from .serve.router import RouterConfig

        extra: list[str] = ["--queue-limit", str(args.queue_limit),
                            "--batch-window", str(args.batch_window),
                            "--max-batch", str(args.max_batch)]
        if args.no_cache:
            extra.append("--no-cache")
        if args.no_request_tracing:
            extra.append("--no-request-tracing")
        if args.timeout is not None:
            extra += ["--timeout", str(args.timeout)]
        extra += ["--retries", str(args.retries)]
        jobs = args.jobs if args.jobs is not None else \
            max(1, (os.cpu_count() or 1) // args.backends)
        return run_cluster(
            ClusterConfig(backends=args.backends, jobs=jobs,
                          cache_dir=args.cache_dir,
                          serve_faults=args.serve_faults,
                          extra_args=tuple(extra)),
            RouterConfig(host=args.host, port=args.port,
                         shed_low=args.shed_low,
                         shed_high=args.shed_high,
                         bucket_rate=args.client_rate,
                         bucket_burst=args.client_burst),
            announce=announce)

    fault_plan = None
    if args.serve_faults is not None:
        import json

        from .engine import ServeFaultPlan

        with open(args.serve_faults, encoding="utf-8") as handle:
            fault_plan = ServeFaultPlan.from_json(json.load(handle))

    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    pool = WorkerPool(jobs)
    engine = ExperimentEngine(
        jobs=jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        supervisor=SupervisorConfig(timeout=args.timeout,
                                    max_attempts=args.retries),
        pool=pool)
    config = ServeConfig(host=args.host, port=args.port,
                         queue_limit=args.queue_limit,
                         batch_window=args.batch_window,
                         max_batch=args.max_batch,
                         trace_requests=not args.no_request_tracing,
                         access_log=args.access_log,
                         flight_slots=args.flight_slots,
                         flight_dump=args.flight_dump,
                         metrics_addr=args.metrics_addr,
                         backend_id=args.backend_id,
                         fault_plan=fault_plan)

    def announce_metrics(host: str, port: int) -> None:
        print(f"# metrics on http://{host}:{port}/metrics", flush=True)

    try:
        return asyncio.run(run_server(engine, config, announce=announce,
                                      announce_metrics=announce_metrics))
    finally:
        pool.close()


def cmd_top(args: argparse.Namespace) -> int:
    from .serve.top import run_top

    host, _, port = args.addr.rpartition(":")
    try:
        iterations = 1 if args.once else args.iterations
        return run_top(host or "127.0.0.1", int(port),
                       interval=args.interval, iterations=iterations,
                       fmt=args.format)
    except KeyboardInterrupt:
        return 0
    except ConnectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Rematerialization (Briggs/Cooper/Torczon, PLDI 1992) "
                    "— reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="lower MiniFort to ILOC")
    p.add_argument("file")
    _add_common(p)
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("allocate", help="allocate registers")
    p.add_argument("file")
    p.add_argument("--trace", metavar="FILE.jsonl", default=None,
                   help="record a full allocation trace to FILE.jsonl")
    _add_common(p)
    p.set_defaults(func=cmd_allocate)

    p = sub.add_parser("opt", help="run an explicit pass pipeline")
    p.add_argument("file")
    p.add_argument("--passes", default="lvn,licm,dce", metavar="P1,P2,...",
                   help="comma-separated pass names (see `repro passes`; "
                        "default lvn,licm,dce)")
    p.add_argument("--verify-after-each", action="store_true",
                   help="verify the IR after every pass")
    p.add_argument("--print-before", metavar="PASS", action="append",
                   default=[], help="dump IR to stderr before PASS "
                                    "('all' for every pass)")
    p.add_argument("--print-after", metavar="PASS", action="append",
                   default=[], help="dump IR to stderr after PASS "
                                    "('all' for every pass)")
    p.set_defaults(func=cmd_opt)

    p = sub.add_parser("passes",
                       help="list registered passes and their "
                            "invalidation contracts")
    p.set_defaults(func=cmd_passes)

    p = sub.add_parser("run", help="interpret a routine")
    p.add_argument("file")
    p.add_argument("args", nargs="*", help="integer arguments")
    p.add_argument("--allocated", action="store_true",
                   help="allocate before running")
    _add_common(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("cgen", help="emit instrumented C (Figure 4)")
    p.add_argument("file")
    p.add_argument("--allocated", action="store_true")
    _add_common(p)
    p.set_defaults(func=cmd_cgen)

    p = sub.add_parser("trace", help="record or inspect an allocation "
                                     "trace")
    p.add_argument("target",
                   help="a .jsonl trace to inspect, a source FILE to "
                        "allocate, or a benchmark kernel/program name")
    p.add_argument("--format", choices=["jsonl", "tree", "summary"],
                   default="summary", help="how to render the trace "
                                           "(default: summary)")
    p.add_argument("--out", metavar="FILE.jsonl", default=None,
                   help="also write the trace JSONL to FILE.jsonl")
    p.add_argument("--diff", metavar="OTHER.jsonl", default=None,
                   help="compare against another trace round by round "
                        "instead of rendering")
    _add_common(p)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("table1", help="regenerate Table 1")
    _add_common(p)
    _add_engine(p)
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("table2", help="regenerate Table 2")
    p.add_argument("--repeats", type=int, default=5)
    _add_engine(p)
    p.set_defaults(func=cmd_table2)

    p = sub.add_parser("ablation", help="Section 6 + heuristic ablations")
    p.add_argument("--allocator", choices=list(ALLOCATOR_NAMES),
                   default="iterated", help="allocation strategy")
    _add_engine(p)
    p.set_defaults(func=cmd_ablation)

    p = sub.add_parser("sweep", help="register-set size sweep")
    p.add_argument("--allocator", choices=list(ALLOCATOR_NAMES),
                   default="iterated", help="allocation strategy")
    _add_engine(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("ssa-compare",
                       help="head-to-head: SSA spill-everywhere vs the "
                            "iterated allocator across the register "
                            "sweep")
    _add_engine(p)
    p.set_defaults(func=cmd_ssa_compare)

    p = sub.add_parser("cache", help="inspect or maintain the persistent "
                                     "result cache")
    p.add_argument("action", choices=["stats", "verify", "gc"],
                   help="stats: occupancy snapshot (JSON); verify: "
                        "re-checksum every entry, quarantining corrupt "
                        "ones (exit 1 if any); gc: sweep quarantine/ "
                        "and stray temp files")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="cache directory (default: "
                        "benchmarks/results/cache/ or $REPRO_CACHE_DIR)")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser("serve", help="run the persistent allocation "
                                     "server (JSONL over TCP)")
    p.add_argument("--host", default="127.0.0.1",
                   help="listen address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=0,
                   help="listen port; 0 binds an ephemeral port "
                        "(announced as '# serving on HOST:PORT')")
    p.add_argument("--queue-limit", type=int, default=256, metavar="N",
                   help="admission bound — requests beyond N pending "
                        "are rejected with a typed overload error "
                        "(default 256)")
    p.add_argument("--batch-window", type=float, default=0.005,
                   metavar="SECONDS",
                   help="how long the batcher lingers for stragglers "
                        "before dispatching a batch (default 0.005)")
    p.add_argument("--max-batch", type=int, default=32, metavar="N",
                   help="requests per engine batch (default 32)")
    p.add_argument("--access-log", default=None, metavar="FILE",
                   help="append one JSON access-log line per request "
                        "to FILE (op, key, outcome, retries, per-phase "
                        "latency breakdown)")
    p.add_argument("--metrics-addr", default=None, metavar="HOST:PORT",
                   help="also serve a Prometheus text exposition of "
                        "the metrics snapshot at this address")
    p.add_argument("--flight-slots", type=int, default=64, metavar="N",
                   help="stitched traces the flight recorder keeps "
                        "(N slowest + N most recent failures; "
                        "default 64)")
    p.add_argument("--flight-dump", default=None, metavar="FILE",
                   help="write the flight recorder dump to FILE when "
                        "the server drains")
    p.add_argument("--no-request-tracing", action="store_true",
                   help="skip per-request span stitching (lifecycle "
                        "stamps and latency histograms stay on)")
    p.add_argument("--backends", type=int, default=0, metavar="N",
                   help="run N backend server processes behind a "
                        "consistent-hash router with health checks, "
                        "failover and restart; N=1 routes to a lone "
                        "backend (measures routing cost), the default "
                        "(0) serves directly from this process")
    p.add_argument("--backend-id", default=None, metavar="NAME",
                   help="this server's name within a cluster (set by "
                        "the cluster supervisor; stamps the metrics "
                        "snapshot)")
    p.add_argument("--shed-low", type=int, default=64, metavar="N",
                   help="cluster mode: per-backend in-flight depth "
                        "where probabilistic load shedding starts "
                        "(default 64)")
    p.add_argument("--shed-high", type=int, default=256, metavar="N",
                   help="cluster mode: in-flight depth where shedding "
                        "reaches 100%% (default 256)")
    p.add_argument("--client-rate", type=float, default=500.0,
                   metavar="N",
                   help="cluster mode: fair-admission tokens per "
                        "second per client (default 500)")
    p.add_argument("--client-burst", type=float, default=250.0,
                   metavar="N",
                   help="cluster mode: fair-admission burst capacity "
                        "per client (default 250)")
    p.add_argument("--serve-faults", default=None, metavar="FILE",
                   help="chaos runs: load a ServeFaultPlan JSON and "
                        "inject its backend kills / accept stalls / "
                        "dropped and garbled replies")
    _add_engine(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("top", help="live dashboard over a running "
                                   "allocation server's metrics op")
    p.add_argument("addr", metavar="HOST:PORT",
                   help="the server address (as announced by "
                        "'# serving on HOST:PORT')")
    p.add_argument("--interval", type=float, default=2.0,
                   metavar="SECONDS",
                   help="seconds between polls (default 2.0)")
    p.add_argument("--iterations", type=int, default=0, metavar="N",
                   help="stop after N polls (default: run until ^C)")
    p.add_argument("--once", action="store_true",
                   help="poll once and exit (same as --iterations 1)")
    p.add_argument("--format", choices=["table", "json", "prom"],
                   default="table",
                   help="render as the dashboard table, the raw JSON "
                        "snapshot, or Prometheus text (default table)")
    p.set_defaults(func=cmd_top)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
