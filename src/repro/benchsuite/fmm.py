"""Kernels in the spirit of Forsythe, Malcolm & Moler's numerical-methods
routines (the first eleven rows of the paper's test suite).

The originals are not redistributable, so these are freshly written
MiniFort routines with the same numerical character: Runge–Kutta stages
full of rational coefficient constants (``fehl``), spline evaluation
(``seval``/``spline``), LU decomposition (``decomp``), root finding
(``zeroin``), rotation sweeps (``svd``), and adaptive-quadrature weights
(``quanc8``).  The constant-rich inner loops are exactly where
rematerialization pays: every coefficient and array base is a never-killed
value competing for registers with the loop-carried state.
"""

from .kernel import Kernel

FEHL = Kernel(
    name="fehl",
    program="rkf45",
    description="a Runge-Kutta-Fehlberg stage: slope blends with many "
                "rational coefficients",
    args=(24,),
    source="""
proc fehl(n) {
  int i;
  float h, y0, k1, k2, k3, k4, k5, k6, t, yn, err, acc;
  array float y[64];
  array float f[64];
  for i = 0 to n {
    y[i] = float(i) * 0.125;
    f[i] = float(i) * 0.0625 - 0.5;
  }
  h = 0.1;
  acc = 0.0;
  err = 0.0;
  for i = 0 to n {
    y0 = y[i];
    t = f[i];
    k1 = h * t;
    k2 = h * (t + 0.25 * k1);
    k3 = h * (t + 0.09375 * k1 + 0.28125 * k2);
    k4 = h * (t + 0.87938 * k1 - 3.27720 * k2 + 3.32089 * k3);
    k5 = h * (t + 2.03241 * k1 - 8.0 * k2 + 7.17349 * k3 - 0.20590 * k4);
    k6 = h * (t - 0.29630 * k1 + 2.0 * k2 - 1.38168 * k3
              + 0.45297 * k4 - 0.275 * k5);
    yn = y0 + 0.11574 * k1 + 0.54893 * k3 + 0.53533 * k4
         - 0.2 * k5;
    err = err + fabs(0.00277 * k1 - 0.02994 * k3 - 0.02919 * k4
                     + 0.02 * k5 + 0.03636 * k6);
    y[i] = yn;
    acc = acc + yn;
  }
  out(acc);
  out(err);
}
""")

SPLINE = Kernel(
    name="spline",
    program="seval",
    description="natural cubic spline coefficient setup and evaluation",
    args=(20,),
    source="""
proc spline(n) {
  int i;
  float d, p, q, s, u, acc;
  array float x[64];
  array float y[64];
  array float b[64];
  array float c[64];
  for i = 0 to n {
    x[i] = float(i) * 0.5;
    y[i] = float(i * i) * 0.125 - float(i);
  }
  # second-difference sweep
  for i = 1 to n - 1 {
    d = x[i + 1] - x[i - 1];
    p = x[i] - x[i - 1];
    q = x[i + 1] - x[i];
    s = (y[i + 1] - y[i]) / q - (y[i] - y[i - 1]) / p;
    c[i] = 6.0 * s / d;
    b[i] = 0.5 * (p + q);
  }
  # evaluate at midpoints
  acc = 0.0;
  for i = 1 to n - 1 {
    u = 0.5 * (x[i] + x[i + 1]) - x[i];
    acc = acc + y[i] + u * (b[i] + u * c[i] * 0.16667);
  }
  out(acc);
}
""")

DECOMP = Kernel(
    name="decomp",
    program="solve",
    description="LU decomposition (Doolittle, no pivoting) of a diagonally "
                "dominant matrix",
    args=(10,),
    source="""
proc decomp(n) {
  int i, j, k;
  float pivot, factor, acc;
  array float a[144];
  for i = 0 to n {
    for j = 0 to n {
      if (i == j) { a[i * n + j] = float(n) + 2.0; }
      else { a[i * n + j] = 1.0 / (float(i + j) + 1.0); }
    }
  }
  for k = 0 to n - 1 {
    pivot = a[k * n + k];
    for i = k + 1 to n {
      factor = a[i * n + k] / pivot;
      a[i * n + k] = factor;
      for j = k + 1 to n {
        a[i * n + j] = a[i * n + j] - factor * a[k * n + j];
      }
    }
  }
  acc = 0.0;
  for i = 0 to n { acc = acc + a[i * n + i]; }
  out(acc);
}
""")

ZEROIN = Kernel(
    name="zeroin",
    program="zeroin",
    description="bisection root finding on a cubic",
    args=(40,),
    source="""
proc zeroin(n) {
  int it;
  float lo, hi, mid, flo, fmid, root;
  lo = 0.0;
  hi = 4.0;
  flo = ((lo - 3.0) * lo + 1.0) * lo - 5.0;
  for it = 0 to n {
    mid = 0.5 * (lo + hi);
    fmid = ((mid - 3.0) * mid + 1.0) * mid - 5.0;
    if ((flo < 0.0 && fmid < 0.0) || (flo >= 0.0 && fmid >= 0.0)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  root = 0.5 * (lo + hi);
  out(root);
}
""")

SVDROT = Kernel(
    name="svd",
    program="svd",
    description="Givens rotation sweeps over paired vectors, as in the "
                "SVD's bidiagonalization",
    args=(16,),
    source="""
proc svd(n) {
  int i, sweep;
  float c, s, u, v, hyp, acc;
  array float x[64];
  array float y[64];
  for i = 0 to n {
    x[i] = 1.0 + float(i) * 0.25;
    y[i] = 2.0 - float(i) * 0.125;
  }
  for sweep = 0 to 4 {
    # rotation coefficients from the leading pair
    u = x[0];
    v = y[0];
    hyp = fabs(u) + fabs(v) + 0.0001;
    c = u / hyp;
    s = v / hyp;
    for i = 0 to n {
      u = x[i];
      v = y[i];
      x[i] = c * u + s * v;
      y[i] = c * v - s * u;
    }
  }
  acc = 0.0;
  for i = 0 to n { acc = acc + x[i] * x[i] + y[i] * y[i]; }
  out(acc);
}
""")

QUANC8 = Kernel(
    name="quanc8",
    program="quanc8",
    description="8-panel Newton-Cotes quadrature: a weight constant per "
                "panel point",
    args=(12,),
    source="""
proc quanc8(n) {
  int i;
  float h, f0, f1, f2, f3, f4, f5, f6, f7, f8, area;
  array float f[128];
  for i = 0 to 8 * n + 1 {
    f[i] = 1.0 / (1.0 + float(i) * 0.03125);
  }
  h = 0.0625;
  area = 0.0;
  for i = 0 to n {
    f0 = f[8 * i];
    f1 = f[8 * i + 1];
    f2 = f[8 * i + 2];
    f3 = f[8 * i + 3];
    f4 = f[8 * i + 4];
    f5 = f[8 * i + 5];
    f6 = f[8 * i + 6];
    f7 = f[8 * i + 7];
    f8 = f[8 * i + 8];
    area = area + h * (989.0 * f0 + 5888.0 * f1 - 928.0 * f2
         + 10496.0 * f3 - 4540.0 * f4 + 10496.0 * f5
         - 928.0 * f6 + 5888.0 * f7 + 989.0 * f8) / 28350.0;
  }
  out(area);
}
""")

RKSTEP = Kernel(
    name="rkstep",
    program="rkf45",
    description="classic RK4 integration of a scalar ODE",
    args=(60,),
    source="""
proc rkstep(n) {
  int i;
  float t, y, h, k1, k2, k3, k4;
  t = 0.0;
  y = 1.0;
  h = 0.015625;
  for i = 0 to n {
    k1 = y - t * t + 1.0;
    k2 = (y + 0.5 * h * k1) - (t + 0.5 * h) * (t + 0.5 * h) + 1.0;
    k3 = (y + 0.5 * h * k2) - (t + 0.5 * h) * (t + 0.5 * h) + 1.0;
    k4 = (y + h * k3) - (t + h) * (t + h) + 1.0;
    y = y + h * (k1 + 2.0 * k2 + 2.0 * k3 + k4) / 6.0;
    t = t + h;
  }
  out(y);
}
""")

FMM_KERNELS = [FEHL, SPLINE, DECOMP, ZEROIN, SVDROT, QUANC8, RKSTEP]
