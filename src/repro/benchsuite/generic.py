"""Additional general-purpose kernels rounding out the suite.

These exercise integer-heavy and control-heavy code shapes that the
FMM/SPEC-style kernels do not: sorting, searching, histograms, scans and
fixed-point iteration.
"""

from .kernel import Kernel

FIR = Kernel(
    name="fir",
    program="signal",
    description="an 8-tap FIR filter with one weight constant per tap",
    args=(40,),
    source="""
proc fir(n) {
  int i;
  float acc, s;
  array float x[64];
  array float y[64];
  for i = 0 to n + 8 { x[i] = float(i % 7) * 0.25 - 0.5; }
  for i = 0 to n {
    s = 0.042 * x[i] + 0.141 * x[i + 1] + 0.281 * x[i + 2]
      + 0.375 * x[i + 3] + 0.281 * x[i + 4] + 0.141 * x[i + 5]
      + 0.042 * x[i + 6] - 0.013 * x[i + 7];
    y[i] = s;
  }
  acc = 0.0;
  for i = 0 to n { acc = acc + y[i] * y[i]; }
  out(acc);
}
""")

HORNER = Kernel(
    name="horner",
    program="poly",
    description="degree-9 polynomial evaluation by Horner's rule",
    args=(48,),
    source="""
proc horner(n) {
  int i;
  float x, p, acc;
  acc = 0.0;
  for i = 0 to n {
    x = float(i) * 0.0625 - 1.5;
    p = 0.0001;
    p = p * x + 0.0009;
    p = p * x - 0.0035;
    p = p * x + 0.0151;
    p = p * x - 0.0625;
    p = p * x + 0.25;
    p = p * x - 0.9375;
    p = p * x + 2.75;
    p = p * x - 5.125;
    p = p * x + 4.0;
    acc = acc + p;
  }
  out(acc);
}
""")

HEAT1D = Kernel(
    name="heat1d",
    program="pde",
    description="explicit finite-difference heat equation stepping",
    args=(24,),
    source="""
proc heat1d(n) {
  int i, t;
  float alpha, left, mid, right, acc;
  array float u[64];
  array float v[64];
  for i = 0 to n { u[i] = float(i) * float(n - i) * 0.1; }
  alpha = 0.24;
  for t = 0 to 6 {
    for i = 1 to n - 1 {
      left = u[i - 1];
      mid = u[i];
      right = u[i + 1];
      v[i] = mid + alpha * (left - 2.0 * mid + right);
    }
    for i = 1 to n - 1 { u[i] = v[i]; }
  }
  acc = 0.0;
  for i = 0 to n { acc = acc + u[i]; }
  out(acc);
}
""")

GAUSS_SEIDEL = Kernel(
    name="gseidel",
    program="pde",
    description="Gauss-Seidel sweeps on a tridiagonal system",
    args=(20,),
    source="""
proc gseidel(n) {
  int i, it;
  float acc;
  array float x[64];
  array float b[64];
  for i = 0 to n {
    x[i] = 0.0;
    b[i] = 1.0 + 0.125 * float(i);
  }
  for it = 0 to 8 {
    for i = 1 to n - 1 {
      x[i] = 0.5 * (b[i] + 0.25 * x[i - 1] + 0.25 * x[i + 1]);
    }
  }
  acc = 0.0;
  for i = 0 to n { acc = acc + x[i]; }
  out(acc);
}
""")

NORM2 = Kernel(
    name="norm2",
    program="blas",
    description="scaled 2-norm with overflow-avoiding rescaling",
    args=(32,),
    source="""
proc norm2(n) {
  int i;
  float scale, ssq, v, ratio;
  array float x[64];
  for i = 0 to n { x[i] = float(i - 7) * 1.5; }
  scale = 0.0001;
  ssq = 1.0;
  for i = 0 to n {
    v = fabs(x[i]);
    if (v > scale) {
      ratio = scale / v;
      ssq = 1.0 + ssq * ratio * ratio;
      scale = v;
    } else {
      ratio = v / scale;
      ssq = ssq + ratio * ratio;
    }
  }
  out(scale * scale * ssq);
}
""")

HISTOGRAM = Kernel(
    name="histogram",
    program="intkern",
    description="bucketed counting with computed indices (integer kernel)",
    args=(48,),
    source="""
proc histogram(n) {
  int i, v, bucket, acc;
  array int h[16];
  array int data[64];
  for i = 0 to 16 { h[i] = 0; }
  for i = 0 to n { data[i] = (i * 37 + 11) % 61; }
  for i = 0 to n {
    v = data[i];
    bucket = v / 4;
    if (bucket > 15) { bucket = 15; }
    h[bucket] = h[bucket] + 1;
  }
  acc = 0;
  for i = 0 to 16 { acc = acc + h[i] * i; }
  out(acc);
}
""")

PREFIX = Kernel(
    name="prefix",
    program="intkern",
    description="in-place prefix sum followed by range queries",
    args=(40,),
    source="""
proc prefix(n) {
  int i, lo, hi, acc;
  array int a[64];
  for i = 0 to n { a[i] = (i * 7) % 13; }
  for i = 1 to n { a[i] = a[i] + a[i - 1]; }
  acc = 0;
  for i = 0 to n / 2 {
    lo = i;
    hi = n - 1 - i;
    if (lo < hi) { acc = acc + a[hi] - a[lo]; }
  }
  out(acc);
}
""")

BUBBLE = Kernel(
    name="bubble",
    program="intkern",
    description="bubble sort (data-dependent branching)",
    args=(16,),
    source="""
proc bubble(n) {
  int i, j, t, acc;
  array int a[32];
  for i = 0 to n { a[i] = (i * 29 + 7) % 31; }
  for i = 0 to n {
    for j = 0 to n - 1 - i {
      if (a[j] > a[j + 1]) {
        t = a[j];
        a[j] = a[j + 1];
        a[j + 1] = t;
      }
    }
  }
  acc = 0;
  for i = 0 to n { acc = acc + a[i] * i; }
  out(acc);
}
""")

BINSEARCH = Kernel(
    name="binsearch",
    program="intkern",
    description="repeated binary searches over a sorted table",
    args=(32,),
    source="""
proc binsearch(n) {
  int i, lo, hi, mid, key, found;
  array int a[64];
  for i = 0 to n { a[i] = i * 3; }
  found = 0;
  for i = 0 to 2 * n {
    key = i;
    lo = 0;
    hi = n;
    while (lo < hi) {
      mid = (lo + hi) / 2;
      if (a[mid] < key) { lo = mid + 1; } else { hi = mid; }
    }
    if (lo < n) {
      if (a[lo] == key) { found = found + 1; }
    }
  }
  out(found);
}
""")

MANDEL = Kernel(
    name="mandel",
    program="intkern",
    description="fixed-point escape-time iteration (scaled integers)",
    args=(12,),
    source="""
proc mandel(n) {
  int px, py, x, y, x2, y2, cx, cy, it, total, scale;
  scale = 256;
  total = 0;
  for py = 0 to n {
    for px = 0 to n {
      cx = (px * 512) / n - 384;
      cy = (py * 512) / n - 256;
      x = 0;
      y = 0;
      it = 0;
      x2 = 0;
      y2 = 0;
      while (it < 16 && x2 + y2 < 4 * scale * scale) {
        y = (2 * x * y) / scale + cy;
        x = x2 / scale - y2 / scale + cx;
        x2 = x * x;
        y2 = y * y;
        it = it + 1;
      }
      total = total + it;
    }
  }
  out(total);
}
""")

TRANSPOSE = Kernel(
    name="transpose",
    program="blas",
    description="blocked-ish matrix transpose plus row sums",
    args=(10,),
    source="""
proc transpose(n) {
  int i, j;
  float acc;
  array float a[144];
  array float b[144];
  for i = 0 to n {
    for j = 0 to n {
      a[i * n + j] = float(i * 3 - j * 2) * 0.125;
    }
  }
  for i = 0 to n {
    for j = 0 to n {
      b[j * n + i] = a[i * n + j];
    }
  }
  acc = 0.0;
  for i = 0 to n {
    for j = 0 to n {
      acc = acc + b[i * n + j] * 0.01;
    }
  }
  out(acc);
}
""")

GENERIC_KERNELS = [FIR, HORNER, HEAT1D, GAUSS_SEIDEL, NORM2, HISTOGRAM,
                   PREFIX, BUBBLE, BINSEARCH, MANDEL, TRANSPOSE]
