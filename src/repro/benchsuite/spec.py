"""Kernels in the spirit of the SPEC routines the paper measures
(doduc, fpppp, matrix300, tomcatv).

As with :mod:`repro.benchsuite.fmm`, these are freshly written MiniFort
routines that exercise the same code shapes: dense linear algebra
(``sgemm``), mesh relaxation with coefficient-heavy stencils
(``tomcatv``-like), reduction-rich physics loops (``bilan``-like), and a
large many-loop driver standing in for ``twldrv``.
"""

from .kernel import Kernel

SGEMM = Kernel(
    name="sgemm",
    program="matrix300",
    description="dense matrix-matrix multiply (the matrix300 core)",
    args=(8,),
    source="""
proc sgemm(n) {
  int i, j, k;
  float s, alpha, beta;
  array float a[144];
  array float b[144];
  array float c[144];
  for i = 0 to n {
    for j = 0 to n {
      a[i * n + j] = float(i - j) * 0.25;
      b[i * n + j] = float(i + j) * 0.125;
      c[i * n + j] = 1.0;
    }
  }
  alpha = 0.5;
  beta = 0.25;
  for i = 0 to n {
    for j = 0 to n {
      s = 0.0;
      for k = 0 to n {
        s = s + a[i * n + k] * b[k * n + j];
      }
      c[i * n + j] = alpha * s + beta * c[i * n + j];
    }
  }
  s = 0.0;
  for i = 0 to n { s = s + c[i * n + i]; }
  out(s);
}
""")

TOMCATV = Kernel(
    name="tomcatv",
    program="tomcatv",
    description="mesh relaxation: a 9-point stencil with many loop-"
                "invariant coefficients (the tomcatv core loop)",
    args=(8,),
    source="""
proc tomcatv(n) {
  int i, j, it;
  float xm, xp, ym, yp, xc, dxc, dyc, rel, r1, r2, acc;
  array float x[144];
  array float y[144];
  for i = 0 to n {
    for j = 0 to n {
      x[i * n + j] = float(i) + 0.1 * float(j);
      y[i * n + j] = float(j) - 0.05 * float(i);
    }
  }
  rel = 0.98;
  for it = 0 to 3 {
    for i = 1 to n - 1 {
      for j = 1 to n - 1 {
        xm = x[i * n + j - 1];
        xp = x[i * n + j + 1];
        ym = x[(i - 1) * n + j];
        yp = x[(i + 1) * n + j];
        xc = x[i * n + j];
        dxc = 0.25 * (xm + xp + ym + yp) - xc;
        r1 = y[i * n + j - 1] + y[i * n + j + 1];
        r2 = y[(i - 1) * n + j] + y[(i + 1) * n + j];
        dyc = 0.25 * (r1 + r2) - y[i * n + j];
        x[i * n + j] = xc + rel * dxc;
        y[i * n + j] = y[i * n + j] + rel * dyc;
      }
    }
  }
  acc = 0.0;
  for i = 0 to n { acc = acc + x[i * n + i] + y[i * n + i]; }
  out(acc);
}
""")

BILAN = Kernel(
    name="bilan",
    program="doduc",
    description="an energy-balance style loop: several concurrent "
                "reductions with physical constants",
    args=(32,),
    source="""
proc bilan(n) {
  int i;
  float e1, e2, e3, e4, p, q, r, w, acc;
  array float rho[64];
  array float vel[64];
  array float tmp[64];
  for i = 0 to n {
    rho[i] = 1.0 + 0.01 * float(i);
    vel[i] = 0.5 - 0.005 * float(i);
    tmp[i] = 300.0 + float(i);
  }
  e1 = 0.0; e2 = 0.0; e3 = 0.0; e4 = 0.0;
  for i = 0 to n {
    p = rho[i];
    q = vel[i];
    r = tmp[i];
    w = p * q;
    e1 = e1 + 0.5 * w * q;
    e2 = e2 + 718.0 * p * r;
    e3 = e3 + 287.0 * p * r;
    e4 = e4 + 1.4 * w * r * 0.001;
  }
  acc = e1 + e2 - e3 + e4;
  out(acc);
}
""")

INTEGR = Kernel(
    name="integr",
    program="doduc",
    description="numerical integration of a piecewise polynomial with "
                "region-dependent coefficients",
    args=(48,),
    source="""
proc integr(n) {
  int i;
  float x, h, v, acc;
  h = 0.03125;
  acc = 0.0;
  x = 0.0;
  for i = 0 to n {
    if (x < 0.5) {
      v = ((2.0 * x - 3.0) * x + 1.5) * x + 0.25;
    } else {
      if (x < 1.0) {
        v = ((-1.5 * x + 2.25) * x - 0.75) * x + 0.5;
      } else {
        v = 0.125 * x + 0.0625;
      }
    }
    acc = acc + h * v;
    x = x + h;
  }
  out(acc);
}
""")

REPVID = Kernel(
    name="repvid",
    program="doduc",
    description="a medium-sized routine (the paper's small Table 2 "
                "specimen): staged vector updates",
    args=(24,),
    source="""
proc repvid(n) {
  int i;
  float a, b, c, d, acc;
  array float u[64];
  array float v[64];
  array float w[64];
  for i = 0 to n {
    u[i] = 0.25 * float(i);
    v[i] = 1.0 - 0.125 * float(i);
    w[i] = 0.0;
  }
  a = 1.1; b = 0.9; c = 0.5; d = 0.25;
  for i = 0 to n {
    w[i] = a * u[i] + b * v[i];
  }
  for i = 1 to n {
    w[i] = w[i] + c * w[i - 1];
  }
  acc = 0.0;
  for i = 0 to n {
    acc = acc + d * w[i] * w[i];
  }
  out(acc);
}
""")

PASTEM = Kernel(
    name="pastem",
    program="doduc",
    description="time-stepping with saturating clamps (branchy float "
                "loop)",
    args=(40,),
    source="""
proc pastem(n) {
  int i;
  float t, dt, s, lo, hi, acc;
  lo = -1.0;
  hi = 1.0;
  dt = 0.05;
  t = 0.0;
  s = 0.3;
  acc = 0.0;
  for i = 0 to n {
    s = s + dt * (1.0 - s * s) - 0.01 * t;
    if (s > hi) { s = hi; }
    if (s < lo) { s = lo; }
    t = t + dt;
    acc = acc + s;
  }
  out(acc);
}
""")

DRIGL = Kernel(
    name="drigl",
    program="doduc",
    description="table-driven interpolation between breakpoints",
    args=(32,),
    source="""
proc drigl(n) {
  int i, k;
  float x, frac, acc;
  array float table[32];
  for i = 0 to 16 {
    table[i] = float(i * i) * 0.0625;
  }
  acc = 0.0;
  for i = 0 to n {
    x = float(i) * 0.4;
    k = int(x);
    if (k > 14) { k = 14; }
    frac = x - float(k);
    acc = acc + table[k] + frac * (table[k + 1] - table[k]);
  }
  out(acc);
}
""")

FPPPP_D2ESP = Kernel(
    name="d2esp",
    program="fpppp",
    description="a straight-line blast of float expressions over a small "
                "working set (fpppp's signature shape)",
    args=(16,),
    source="""
proc d2esp(n) {
  int i;
  float a, b, c, d, e, f, g, h2, s1, s2, s3, s4, acc;
  array float q[64];
  for i = 0 to n { q[i] = 1.0 / (1.0 + float(i)); }
  acc = 0.0;
  for i = 0 to n - 4 {
    a = q[i];
    b = q[i + 1];
    c = q[i + 2];
    d = q[i + 3];
    e = a * b + 0.5 * c;
    f = b * c - 0.25 * d;
    g = c * d + 0.125 * a;
    h2 = d * a - 0.0625 * b;
    s1 = e * f + g * h2;
    s2 = e * g - f * h2;
    s3 = e * h2 + f * g;
    s4 = (s1 + s2) * (s3 + 1.0);
    acc = acc + s4 - s3 * 0.3333 + s2 * 0.6667 - s1 * 0.1111;
  }
  out(acc);
}
""")


def make_twldrv_like(n_sections: int = 8) -> str:
    """Generate a large multi-loop routine standing in for ``twldrv``
    (881 lines of FORTRAN in the paper; the biggest Table 2 specimen).

    Each section is a loop nest with its own constants and working
    vectors, all feeding one running checksum, so the routine is long but
    semantically transparent.
    """
    parts = ["proc twldrv(n) {",
             "  int i, j;",
             "  float acc, t1, t2, t3, t4;",
             "  array float work[96];",
             "  for i = 0 to 96 { work[i] = 0.5 + 0.01 * float(i); }",
             "  acc = 0.0;"]
    for s in range(n_sections):
        c1 = 0.1 + 0.05 * s
        c2 = 1.0 - 0.03 * s
        c3 = 0.25 + 0.125 * (s % 4)
        parts.append(f"""
  # section {s}
  for i = 1 to n {{
    t1 = work[i] * {c1:.4f} + work[i - 1] * {c2:.4f};
    t2 = t1 * t1 - {c3:.4f};
    t3 = fabs(t2) + 0.0001;
    t4 = t1 / t3;
    work[i] = t4 * {c2:.4f} + {c1:.4f};
    acc = acc + t4;
  }}
  for i = 0 to n {{
    for j = 0 to 3 {{
      acc = acc + work[i] * {c3:.4f} - float(j) * {c1:.4f};
    }}
  }}""")
    parts.append("  out(acc);")
    parts.append("}")
    return "\n".join(parts)


TWLDRV = Kernel(
    name="twldrv",
    program="fpppp",
    description="a large generated routine (the paper's big Table 2 "
                "specimen)",
    args=(20,),
    source=make_twldrv_like(8),
)

SPEC_KERNELS = [SGEMM, TOMCATV, BILAN, INTEGR, REPVID, PASTEM, DRIGL,
                FPPPP_D2ESP, TWLDRV]
