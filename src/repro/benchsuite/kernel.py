"""The kernel registry datatype."""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..frontend import compile_source
from ..ir import Function


@dataclass(frozen=True)
class Kernel:
    """One benchmark routine.

    Mirrors the paper's test-suite rows: a *program* grouping (the paper
    groups routines under rkf45, doduc, fpppp, …) and a routine *name*.
    ``args`` are the default arguments used by the measurement harness.
    """

    name: str
    program: str
    source: str
    args: tuple
    description: str

    def compile(self) -> Function:
        """Lower the kernel to ILOC (fresh function each call)."""
        return _compile_cached(self.source).clone()


@lru_cache(maxsize=None)
def _compile_cached(source: str) -> Function:
    return compile_source(source)
