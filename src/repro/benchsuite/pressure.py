"""High-pressure kernels with multi-valued, partially never-killed live
ranges — the code shape of the paper's Figure 1.

Each kernel here follows the figure's recipe:

* a variable is initialized to a *never-killed* value (an integer or
  float constant, or an address offset),
* it is **used, unmodified**, throughout a hot region whose register
  pressure comes from ~k loop-carried *computed* values (which are
  expensive to spill),
* a later loop **modifies** it, so SSA merges the constant with computed
  values at that loop's φ-node — making the live range multi-valued.

Chaitin's allocator sees one unrematerializable live range and pays
stores+loads through the hot region; the tagged allocator splits the
constant region off and rematerializes it.  The paper's FORTRAN suite got
this shape for free from its optimizer's strength reduction; MiniFort has
no optimizer, so the kernels are written post-strength-reduction by hand.
"""

from .kernel import Kernel

PTRSUM = Kernel(
    name="ptrsum",
    program="pressure",
    description="integer cursor constant through the reduction loop, "
                "walked afterwards (Figure 1's p verbatim)",
    args=(20,),
    source="""
proc ptrsum(n) {
  int i, p, q, acc;
  int d1, d2, d3, d4, d5, d6, d7, d8, d9, d10, d11, d12, d13, d14;
  array int a[128];
  array int b[128];
  for i = 0 to 2 * n { a[i] = (i * 13 + 5) % 37; }
  p = 0;
  q = 4;
  d1 = 1; d2 = 2; d3 = 3; d4 = 4; d5 = 5; d6 = 6; d7 = 7;
  d8 = 8; d9 = 9; d10 = 10; d11 = 11; d12 = 12; d13 = 13; d14 = 14;
  acc = 0;
  for i = 0 to n {
    d1 = d1 + a[p + i];
    d2 = d2 + d1 * 3;
    d3 = d3 + d2 - d1;
    d4 = d4 + d3 * 2;
    d5 = d5 + d4 - d2;
    d6 = d6 + d5 + d3;
    d7 = d7 + d6 - d4;
    d8 = d8 + d7 + d5;
    d9 = d9 + d8 - d6;
    d10 = d10 + d9 + d7;
    d11 = d11 + d10 - d8;
    d12 = d12 + d11 + a[q + i];
    d13 = d13 + d12 - d10;
    d14 = d14 + d13 + d11;
    acc = acc + a[p + i] - a[q + i];
  }
  while (p < n) {
    b[p] = acc % 29;
    p = p + 3;
    q = q + 2;
  }
  out(acc + d1 + d2 + d3 + d4 + d5 + d6 + d7 + d8 + d9 + d10
      + d11 + d12 + d13 + d14 + p + q);
}
""")

ADAPT = Kernel(
    name="adapt",
    program="pressure",
    description="float scale and time step constant through the main "
                "sweep, adapted in a later loop",
    args=(24,),
    source="""
proc adapt(n) {
  int i, t;
  float sc, dt, acc;
  float a1, a2, a3, a4, a5, a6, a7, a8, a9, a10, a11, a12, a13, a14;
  array float x[64];
  for i = 0 to n { x[i] = float(i) * 0.125 - 1.0; }
  sc = 0.5;
  dt = 0.01;
  a1 = 0.1; a2 = 0.2; a3 = 0.3; a4 = 0.4; a5 = 0.5; a6 = 0.6; a7 = 0.7;
  a8 = 0.8; a9 = 0.9; a10 = 1.0; a11 = 1.1; a12 = 1.2; a13 = 1.3;
  a14 = 1.4;
  acc = 0.0;
  for i = 0 to n {
    a1 = a1 + sc * x[i];
    a2 = a2 + a1 * dt;
    a3 = a3 + a2 - a1;
    a4 = a4 + a3 * sc;
    a5 = a5 + a4 - a2;
    a6 = a6 + a5 + a3;
    a7 = a7 + a6 * dt;
    a8 = a8 + a7 + a5;
    a9 = a9 + a8 - a6;
    a10 = a10 + a9 * sc;
    a11 = a11 + a10 - a8;
    a12 = a12 + a11 + x[i] * dt;
    a13 = a13 + a12 - a10;
    a14 = a14 + a13 + a11;
    acc = acc + a14 * 0.001;
  }
  # adaptation: sc and dt become phi-merged multi-value live ranges
  for t = 0 to 4 {
    sc = sc * 0.9 + acc * 0.0001;
    dt = dt * 1.1;
    acc = acc + sc * dt;
  }
  out(acc + a1 + a4 + a9 + a14 + sc + dt);
}
""")

RELAX = Kernel(
    name="relax",
    program="pressure",
    description="relaxation sweep with an over-relaxation factor held "
                "constant per stage and damped between stages",
    args=(16,),
    source="""
proc relax(n) {
  int i, stage;
  float omega, acc;
  float r1, r2, r3, r4, r5, r6, r7, r8, r9, r10, r11, r12, r13;
  array float u[64];
  for i = 0 to n + 2 { u[i] = float(i % 8) * 0.4 - 1.1; }
  omega = 1.25;
  r1 = 0.01; r2 = 0.02; r3 = 0.03; r4 = 0.04; r5 = 0.05; r6 = 0.06;
  r7 = 0.07; r8 = 0.08; r9 = 0.09; r10 = 0.10; r11 = 0.11; r12 = 0.12;
  r13 = 0.13;
  acc = 0.0;
  for stage = 0 to 3 {
    for i = 1 to n {
      r1 = r1 + omega * (u[i - 1] - u[i]);
      r2 = r2 + r1 * omega;
      r3 = r3 + r2 - r1;
      r4 = r4 + r3 + u[i + 1] * omega;
      r5 = r5 + r4 - r2;
      r6 = r6 + r5 + r3;
      r7 = r7 + r6 - r4;
      r8 = r8 + r7 + r5;
      r9 = r9 + r8 - r6;
      r10 = r10 + r9 + r7;
      r11 = r11 + r10 - r8;
      r12 = r12 + r11 + r9;
      r13 = r13 + r12 - r10;
      acc = acc + r13 * 0.0001;
    }
    # the factor is damped between sweeps: omega's live range becomes
    # multi-valued at the stage loop's header
    omega = omega * 0.5 + 0.5;
  }
  out(acc + r1 + r5 + r9 + r13 + omega);
}
""")

BASEWALK = Kernel(
    name="basewalk",
    program="pressure",
    description="two array cursors: one pinned during the gather loop "
                "and advanced in the scatter loop, one always moving",
    args=(18,),
    source="""
proc basewalk(n) {
  int i, src, dst, acc;
  int e1, e2, e3, e4, e5, e6, e7, e8, e9, e10, e11, e12, e13, e14, e15;
  array int buf[160];
  for i = 0 to 4 * n { buf[i] = (i * 11 + 3) % 23; }
  src = 64;
  dst = 0;
  # the pressure chain starts from data (bottom values), so the cursors
  # are the forced spill victims in both allocators
  e1 = buf[0]; e2 = buf[1]; e3 = buf[2]; e4 = buf[3]; e5 = buf[4];
  e6 = buf[5]; e7 = buf[6]; e8 = buf[7]; e9 = buf[8]; e10 = buf[9];
  e11 = buf[10]; e12 = buf[11]; e13 = buf[12]; e14 = buf[13]; e15 = buf[14];
  acc = 0;
  for i = 0 to n {
    e1 = e1 + buf[src + i];
    e2 = e2 + e1 % 19;
    e3 = e3 + e2 + e1;
    e4 = e4 + e3 - e2;
    e5 = e5 + e4 + e3;
    e6 = e6 + e5 - e3;
    e7 = e7 + e6 + e4;
    e8 = e8 + e7 - e5;
    e9 = e9 + e8 + e6;
    e10 = e10 + e9 - e7;
    e11 = e11 + e10 + e8;
    e12 = e12 + e11 - e9;
    e13 = e13 + e12 + e10;
    e14 = e14 + e13 - e11;
    e15 = e15 + e14 + e12;
    acc = acc + e15 % 41;
  }
  while (dst < n) {
    buf[dst] = acc % 13 + e15 % 7;
    dst = dst + 2;
    src = src + 1;
  }
  out(acc + e1 + e3 + e5 + e7 + e9 + e11 + e13 + e15 + src + dst);
}
""")

BLEND = Kernel(
    name="blend",
    program="pressure",
    description="two blend weights constant through a long dot-product "
                "chain, renormalized in a cleanup loop",
    args=(22,),
    source="""
proc blend(n) {
  int i, t;
  float wa, wb, acc;
  float b1, b2, b3, b4, b5, b6, b7, b8, b9, b10, b11, b12, b13, b14;
  array float p[64];
  array float q[64];
  for i = 0 to n {
    p[i] = 1.0 / (float(i) + 1.0);
    q[i] = float(i) * 0.0625;
  }
  wa = 0.75;
  wb = 0.25;
  b1 = p[0]; b2 = p[1]; b3 = p[2]; b4 = p[3]; b5 = p[4]; b6 = p[5];
  b7 = q[0]; b8 = q[1]; b9 = q[2]; b10 = q[3]; b11 = q[4]; b12 = q[5];
  b13 = p[6]; b14 = q[6];
  acc = 0.0;
  for i = 0 to n {
    b1 = b1 + wa * p[i];
    b2 = b2 + b1 + p[i];
    b3 = b3 + b2 - b1;
    b4 = b4 + b3 + p[i];
    b5 = b5 + b4 - b2;
    b6 = b6 + b5 + b3;
    b7 = b7 + b6 - b4;
    b8 = b8 + b7 + b5;
    b9 = b9 + b8 - b6;
    b10 = b10 + b9 + b7;
    b11 = b11 + b10 - b8;
    b12 = b12 + b11 + wb * q[i];
    b13 = b13 + b12 - b9;
    b14 = b14 + b13 + b10;
    acc = acc + b14 * 0.001;
  }
  for t = 0 to 3 {
    wa = wa * 0.9;
    wb = 1.0 - wa;
    acc = acc + wa * wb;
  }
  out(acc + b1 + b6 + b12 + b14 + wa + wb);
}
""")

MARGINAL = Kernel(
    name="marginal",
    program="pressure",
    description="a borderline case: the rematerializable web is barely "
                "used, so splitting can cost as much as it saves "
                "(the paper's small-degradation rows)",
    args=(16,),
    source="""
proc marginal(n) {
  int i, t;
  float k, acc;
  float m1, m2, m3, m4, m5, m6, m7, m8, m9, m10, m11, m12, m13, m14;
  array float z[64];
  for i = 0 to n { z[i] = float(i) * 0.2 - 1.0; }
  k = 2.5;
  m1 = 0.1; m2 = 0.2; m3 = 0.3; m4 = 0.4; m5 = 0.5; m6 = 0.6;
  m7 = 0.7; m8 = 0.8; m9 = 0.9; m10 = 1.0; m11 = 1.1; m12 = 1.2;
  m13 = 1.3; m14 = 1.4;
  acc = 0.0;
  for i = 0 to n {
    # k is referenced just once per iteration: the split's savings are
    # at the noise floor
    m1 = m1 + z[i] * 0.5;
    m2 = m2 + m1 - z[i];
    m3 = m3 + m2 + m1;
    m4 = m4 + m3 - m2;
    m5 = m5 + m4 + m3;
    m6 = m6 + m5 - m4;
    m7 = m7 + m6 + m5;
    m8 = m8 + m7 - m6;
    m9 = m9 + m8 + m7;
    m10 = m10 + m9 - m8;
    m11 = m11 + m10 + m9;
    m12 = m12 + m11 - m10;
    m13 = m13 + m12 + m11;
    m14 = m14 + m13 + k;
    acc = acc + m14 * 0.0001;
  }
  for t = 0 to 2 {
    k = k * 0.75;
    acc = acc + k;
  }
  out(acc + m1 + m7 + m14 + k);
}
""")

COLBUR = Kernel(
    name="colbur",
    program="pressure",
    description="a specimen where splitting hurts: many marginal "
                "constant-initialized accumulators perturb the spill "
                "choices (the paper's colbur row lost 26%)",
    args=(18,),
    source="""
proc colbur(n) {
  int i, src, dst, acc;
  int e1, e2, e3, e4, e5, e6, e7, e8, e9, e10, e11, e12, e13;
  array int buf[160];
  for i = 0 to 4 * n { buf[i] = (i * 11 + 3) % 23; }
  src = 64;
  dst = 0;
  e1 = 1; e2 = 1; e3 = 2; e4 = 3; e5 = 5; e6 = 8; e7 = 13;
  e8 = 21; e9 = 34; e10 = 55; e11 = 89; e12 = 144; e13 = 233;
  acc = 0;
  for i = 0 to n {
    e1 = e1 + buf[src + i];
    e2 = e2 + e1 % 19;
    e3 = e3 + e2 + e1;
    e4 = e4 + e3 - e2;
    e5 = e5 + e4 + buf[src + i + 1];
    e6 = e6 + e5 - e3;
    e7 = e7 + e6 + e4;
    e8 = e8 + e7 - e5;
    e9 = e9 + e8 + e6;
    e10 = e10 + e9 - e7;
    e11 = e11 + e10 + e8;
    e12 = e12 + e11 - e9;
    e13 = e13 + e12 + e10;
    acc = acc + buf[src + i] * 2;
  }
  while (dst < n) {
    buf[dst] = acc % 13 + e13 % 7;
    dst = dst + 2;
    src = src + 1;
  }
  out(acc + e1 + e3 + e5 + e7 + e9 + e11 + e13 + src + dst);
}
""")

PRESSURE_KERNELS = [PTRSUM, ADAPT, RELAX, BASEWALK, BLEND, MARGINAL,
                    COLBUR]
