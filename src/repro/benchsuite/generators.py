"""Random, terminating ILOC program generation for property tests.

The generator emits structured programs (sequences, if/else, counted
loops) over integer arithmetic with observable ``out`` output.  Every
loop has a constant trip count, so the programs always terminate; division
is by non-zero constants only.  Variables are initialized before the first
structured region so every register is defined on every path.

The full allocator pipeline is validated by interpreting each generated
program before and after allocation and comparing outputs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..ir import Function, IRBuilder, Reg


@dataclass(frozen=True)
class GeneratorConfig:
    """Shape bounds for generated programs."""

    n_vars: int = 6
    max_depth: int = 3
    max_stmts: int = 6
    max_trip: int = 4
    #: probability weights for (assign, if, loop, out)
    weights: tuple[float, float, float, float] = (0.5, 0.2, 0.15, 0.15)


class _ProgramGenerator:
    def __init__(self, rng: random.Random, config: GeneratorConfig) -> None:
        self.rng = rng
        self.config = config
        self.b = IRBuilder("generated")
        self.vars: list[Reg] = []

    def generate(self) -> Function:
        fn = self.b.function
        for i in range(self.config.n_vars):
            var = fn.new_reg(self.b.ldi(0).rclass)
            self.b.copy_to(var, self.b.ldi(self.rng.randint(-8, 8)))
            self.vars.append(var)
        self.block(depth=0)
        for var in self.vars:
            self.b.out(var)
        self.b.ret()
        return self.b.finish()

    # -- expressions -----------------------------------------------------------

    def expr(self) -> Reg:
        """A small integer expression over current variables."""
        rng = self.rng
        kind = rng.random()
        if kind < 0.3:
            return self.b.ldi(rng.randint(-10, 10))
        if kind < 0.55:
            return rng.choice(self.vars)
        a = rng.choice(self.vars)
        op = rng.choice(["add", "sub", "mul", "addi", "divi", "cmp"])
        if op == "addi":
            return self.b.addi(a, rng.randint(-5, 5))
        if op == "divi":
            return self.b.div(a, self.b.ldi(rng.choice([1, 2, 3, 5])))
        bvar = rng.choice(self.vars)
        if op == "add":
            return self.b.add(a, bvar)
        if op == "sub":
            return self.b.sub(a, bvar)
        if op == "mul":
            # keep magnitudes bounded: scale one side down first
            small = self.b.div(bvar, self.b.ldi(4))
            return self.b.mul(a, small)
        return self.b.cmp_lt(a, bvar)

    # -- statements ---------------------------------------------------------------

    def block(self, depth: int) -> None:
        for _ in range(self.rng.randint(1, self.config.max_stmts)):
            self.statement(depth)

    def statement(self, depth: int) -> None:
        rng = self.rng
        wa, wi, wl, wo = self.config.weights
        roll = rng.random() * (wa + wi + wl + wo)
        if roll < wa or depth >= self.config.max_depth:
            self.b.copy_to(rng.choice(self.vars), self.expr())
        elif roll < wa + wi:
            self.if_statement(depth)
        elif roll < wa + wi + wl:
            self.loop_statement(depth)
        else:
            self.b.out(self.expr())

    def if_statement(self, depth: int) -> None:
        cond = self.expr()
        n = self.b.function.new_label()
        then_l, else_l, join = f"t{n}", f"e{n}", f"j{n}"
        has_else = self.rng.random() < 0.6
        self.b.cbr(cond, then_l, else_l if has_else else join)
        self.b.label(then_l)
        self.block(depth + 1)
        self.b.jmp(join)
        if has_else:
            self.b.label(else_l)
            self.block(depth + 1)
            self.b.jmp(join)
        self.b.label(join)

    def loop_statement(self, depth: int) -> None:
        trip = self.rng.randint(1, self.config.max_trip)
        counter = self.b.function.new_reg(self.vars[0].rclass)
        self.b.copy_to(counter, self.b.ldi(0))
        bound = self.b.ldi(trip)
        n = self.b.function.new_label()
        head, body, exit_l = f"h{n}", f"b{n}", f"x{n}"
        self.b.jmp(head)
        self.b.label(head)
        cond = self.b.cmp_lt(counter, bound)
        self.b.cbr(cond, body, exit_l)
        self.b.label(body)
        self.block(depth + 1)
        self.b.copy_to(counter, self.b.addi(counter, 1))
        self.b.jmp(head)
        self.b.label(exit_l)


def random_program(seed: int,
                   config: GeneratorConfig | None = None) -> Function:
    """Generate a deterministic random program from *seed*."""
    return _ProgramGenerator(random.Random(seed),
                             config or GeneratorConfig()).generate()
