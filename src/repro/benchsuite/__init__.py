"""The benchmark kernel suite (the paper's 70-routine test suite analog)."""

from .extra import EXTRA_KERNELS
from .figures import figure1_function, figure1_pressured
from .fmm import FMM_KERNELS
from .generators import GeneratorConfig, random_program
from .generic import GENERIC_KERNELS
from .kernel import Kernel
from .pressure import PRESSURE_KERNELS
from .spec import SPEC_KERNELS, make_twldrv_like

#: every kernel, in suite order (FMM-style first, like the paper's table)
ALL_KERNELS: list[Kernel] = (FMM_KERNELS + SPEC_KERNELS + PRESSURE_KERNELS
                             + GENERIC_KERNELS + EXTRA_KERNELS)

#: kernel lookup by routine name
KERNELS_BY_NAME: dict[str, Kernel] = {k.name: k for k in ALL_KERNELS}

__all__ = [
    "ALL_KERNELS",
    "EXTRA_KERNELS",
    "FMM_KERNELS",
    "GENERIC_KERNELS",
    "GeneratorConfig",
    "random_program",
    "Kernel",
    "KERNELS_BY_NAME",
    "PRESSURE_KERNELS",
    "SPEC_KERNELS",
    "figure1_function",
    "figure1_pressured",
    "make_twldrv_like",
]
