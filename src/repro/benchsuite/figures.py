"""The paper's running example (Figures 1 and 3) as ILOC functions."""

from __future__ import annotations

from ..ir import Function, IRBuilder


def figure1_function() -> Function:
    """The two-loop fragment of Figure 1.

    ``p`` holds an address constant through the first loop and varies in
    the second: one live range, three values (the ``lsd``, the ``p+1`` and
    their merge at the second loop's header) — the case Chaitin's allocator
    cannot rematerialize but the paper's can.
    """
    b = IRBuilder("figure1", n_params=1)
    n = b.param(0)
    p = b.function.new_reg(n.rclass)
    y = b.function.new_reg(n.rclass)
    b.copy_to(p, b.lsd(64))
    # y starts from memory (a ⊥ value): as in the figure, p carries the
    # only never-killed component
    b.copy_to(y, b.ldw(b.lsd(0)))
    b.jmp("head1")
    b.label("head1")
    c1 = b.cmp_lt(y, n)
    b.cbr(c1, "body1", "head2")
    b.label("body1")
    v = b.ldw(p)
    b.copy_to(y, b.add(y, v))
    b.copy_to(y, b.addi(y, 1))
    b.jmp("head1")
    b.label("head2")
    limit = b.add(b.lsd(64), n)
    c2 = b.cmp_lt(p, limit)
    b.cbr(c2, "body2", "exit")
    b.label("body2")
    b.copy_to(p, b.addi(p, 1))
    b.jmp("head2")
    b.label("exit")
    b.out(y)
    b.out(p)
    b.ret()
    return b.finish()


def figure1_pressured() -> Function:
    """Figure 1 with "high demand for registers in the first loop".

    Extra long-lived scalars (q1..q3, live across both loops and used
    inside loop 1) create the pressure that forces ``p`` to spill on a
    small register file, demonstrating the Ideal/Chaitin contrast of the
    figure.
    """
    b = IRBuilder("figure1p", n_params=1)
    n = b.param(0)
    p = b.function.new_reg(n.rclass)
    y = b.function.new_reg(n.rclass)
    b.copy_to(p, b.lsd(64))
    b.copy_to(y, b.ldw(b.lsd(0)))
    q1 = b.ldw(b.lsd(8))
    q2 = b.ldw(b.lsd(16))
    q3 = b.ldw(b.lsd(24))
    b.jmp("head1")
    b.label("head1")
    c1 = b.cmp_lt(y, n)
    b.cbr(c1, "body1", "head2")
    b.label("body1")
    v = b.ldw(p)
    t = b.add(q1, q2)
    t2 = b.add(t, q3)
    b.copy_to(y, b.add(y, v))
    b.copy_to(y, b.add(y, t2))
    b.copy_to(y, b.addi(y, 1))
    b.jmp("head1")
    b.label("head2")
    limit = b.add(b.lsd(64), n)
    c2 = b.cmp_lt(p, limit)
    b.cbr(c2, "body2", "exit")
    b.label("body2")
    b.copy_to(p, b.addi(p, 1))
    b.jmp("head2")
    b.label("exit")
    b.out(y)
    b.out(p)
    b.out(b.add(q1, q3))
    b.ret()
    return b.finish()
