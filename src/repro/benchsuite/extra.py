"""Additional suite kernels: more numerical methods, more integer codes,
and further pressure variants — rounding the suite toward the breadth of
the paper's seventy routines.
"""

from .kernel import Kernel

URAND = Kernel(
    name="urand",
    program="intkern",
    description="linear congruential generator, summed (FMM's urand)",
    args=(64,),
    source="""
proc urand(n) {
  int i, seed, acc;
  seed = 12345;
  acc = 0;
  for i = 0 to n {
    seed = (seed * 1103 + 12713) % 65536;
    acc = acc + seed % 100;
  }
  out(acc);
}
""")

TRID = Kernel(
    name="trid",
    program="solve",
    description="Thomas-algorithm tridiagonal solve",
    args=(20,),
    source="""
proc trid(n) {
  int i;
  float m, acc;
  array float a[64];
  array float b[64];
  array float c[64];
  array float d[64];
  for i = 0 to n {
    a[i] = -1.0;
    b[i] = 4.0;
    c[i] = -1.0;
    d[i] = 1.0 + 0.125 * float(i);
  }
  # forward elimination
  for i = 1 to n {
    m = a[i] / b[i - 1];
    b[i] = b[i] - m * c[i - 1];
    d[i] = d[i] - m * d[i - 1];
  }
  # back substitution
  d[n - 1] = d[n - 1] / b[n - 1];
  i = n - 2;
  while (i >= 0) {
    d[i] = (d[i] - c[i] * d[i + 1]) / b[i];
    i = i - 1;
  }
  acc = 0.0;
  for i = 0 to n { acc = acc + d[i]; }
  out(acc);
}
""")

JACOBI2D = Kernel(
    name="jacobi2d",
    program="pde",
    description="2D Jacobi relaxation with double buffering",
    args=(7,),
    source="""
proc jacobi2d(n) {
  int i, j, t;
  float acc;
  array float u[100];
  array float v[100];
  for i = 0 to n {
    for j = 0 to n {
      u[i * n + j] = float(i * j) * 0.05;
    }
  }
  for t = 0 to 4 {
    for i = 1 to n - 1 {
      for j = 1 to n - 1 {
        v[i * n + j] = 0.25 * (u[(i - 1) * n + j] + u[(i + 1) * n + j]
                             + u[i * n + j - 1] + u[i * n + j + 1]);
      }
    }
    for i = 1 to n - 1 {
      for j = 1 to n - 1 {
        u[i * n + j] = v[i * n + j];
      }
    }
  }
  acc = 0.0;
  for i = 0 to n { acc = acc + u[i * n + i]; }
  out(acc);
}
""")

SERIES = Kernel(
    name="series",
    program="poly",
    description="Taylor-series exponential approximation",
    args=(24,),
    source="""
proc series(n) {
  int i, k;
  float x, term, sum, acc;
  acc = 0.0;
  for i = 0 to n {
    x = float(i) * 0.125 - 1.5;
    term = 1.0;
    sum = 1.0;
    for k = 1 to 10 {
      term = term * x / float(k);
      sum = sum + term;
    }
    acc = acc + sum;
  }
  out(acc);
}
""")

CROSSPROD = Kernel(
    name="crossprod",
    program="blas",
    description="3-vector cross products over packed arrays",
    args=(20,),
    source="""
proc crossprod(n) {
  int i;
  float ax, ay, az, bx, by, bz, cx, cy, cz, acc;
  array float a[96];
  array float b[96];
  for i = 0 to 3 * n + 3 {
    a[i] = float(i % 7) * 0.5 - 1.0;
    b[i] = float(i % 5) * 0.25 + 0.5;
  }
  acc = 0.0;
  for i = 0 to n {
    ax = a[3 * i];
    ay = a[3 * i + 1];
    az = a[3 * i + 2];
    bx = b[3 * i];
    by = b[3 * i + 1];
    bz = b[3 * i + 2];
    cx = ay * bz - az * by;
    cy = az * bx - ax * bz;
    cz = ax * by - ay * bx;
    acc = acc + cx * cx + cy * cy + cz * cz;
  }
  out(acc);
}
""")

NEWTON = Kernel(
    name="newton",
    program="zeroin",
    description="Newton iteration for square roots",
    args=(30,),
    source="""
proc newton(n) {
  int i, it;
  float x, guess, acc;
  acc = 0.0;
  for i = 1 to n {
    x = float(i) * 2.0;
    guess = x;
    for it = 0 to 6 {
      guess = 0.5 * (guess + x / guess);
    }
    acc = acc + guess;
  }
  out(acc);
}
""")

ROMBERG = Kernel(
    name="romberg",
    program="quanc8",
    description="Romberg-style triangular extrapolation table",
    args=(10,),
    source="""
proc romberg(n) {
  int i, j;
  float h, s, p, acc;
  array float table[144];
  # first column: composite trapezoid sums of 1/(1+x) on [0,1]
  for i = 0 to n {
    h = 1.0;
    for j = 0 to i { h = h * 0.5; }
    s = 0.5 * (1.0 + 0.5);
    p = h;
    while (p < 1.0 - 0.0001) {
      s = s + 1.0 / (1.0 + p);
      p = p + h;
    }
    table[i * n] = s * h;
  }
  # extrapolate
  for j = 1 to n {
    p = 1.0;
    for i = 0 to j { p = p * 4.0; }
    for i = j to n {
      table[i * n + j] = (p * table[i * n + j - 1]
                          - table[(i - 1) * n + j - 1]) / (p - 1.0);
    }
  }
  out(table[(n - 1) * n + n - 1]);
}
""")

CONV3 = Kernel(
    name="conv3",
    program="signal",
    description="3x3 convolution over a small image",
    args=(8,),
    source="""
proc conv3(n) {
  int i, j;
  float k00, k01, k02, k10, k11, k12, k20, k21, k22, acc;
  array float img[144];
  array float res[144];
  for i = 0 to n {
    for j = 0 to n { img[i * n + j] = float((i * 3 + j * 5) % 11); }
  }
  k00 = 0.0625; k01 = 0.125; k02 = 0.0625;
  k10 = 0.125;  k11 = 0.25;  k12 = 0.125;
  k20 = 0.0625; k21 = 0.125; k22 = 0.0625;
  for i = 1 to n - 1 {
    for j = 1 to n - 1 {
      res[i * n + j] =
          k00 * img[(i - 1) * n + j - 1] + k01 * img[(i - 1) * n + j]
        + k02 * img[(i - 1) * n + j + 1] + k10 * img[i * n + j - 1]
        + k11 * img[i * n + j]           + k12 * img[i * n + j + 1]
        + k20 * img[(i + 1) * n + j - 1] + k21 * img[(i + 1) * n + j]
        + k22 * img[(i + 1) * n + j + 1];
    }
  }
  acc = 0.0;
  for i = 0 to n { acc = acc + res[i * n + i]; }
  out(acc);
}
""")

SAXPY_CHAIN = Kernel(
    name="saxpy3",
    program="blas",
    description="three chained saxpy passes with distinct scalars",
    args=(28,),
    source="""
proc saxpy3(n) {
  int i;
  float a1, a2, a3, acc;
  array float x[64];
  array float y[64];
  array float z[64];
  for i = 0 to n {
    x[i] = float(i) * 0.1;
    y[i] = 1.0 - float(i) * 0.05;
    z[i] = 0.0;
  }
  a1 = 2.0;
  a2 = -0.5;
  a3 = 0.125;
  for i = 0 to n { z[i] = a1 * x[i] + y[i]; }
  for i = 0 to n { y[i] = a2 * z[i] + x[i]; }
  for i = 0 to n { x[i] = a3 * y[i] + z[i]; }
  acc = 0.0;
  for i = 0 to n { acc = acc + x[i]; }
  out(acc);
}
""")

BITS = Kernel(
    name="bits",
    program="intkern",
    description="population counts and parity via divide-and-conquer "
                "arithmetic (no bitwise operators in MiniFort)",
    args=(48,),
    source="""
proc bits(n) {
  int i, v, count, parity, acc;
  acc = 0;
  for i = 0 to n {
    v = i * 2654435761 % 65536;
    count = 0;
    while (v > 0) {
      count = count + v % 2;
      v = v / 2;
    }
    parity = count % 2;
    acc = acc + count + parity * 10;
  }
  out(acc);
}
""")

QUEUE_SIM = Kernel(
    name="queuesim",
    program="intkern",
    description="circular-buffer queue simulation",
    args=(40,),
    source="""
proc queuesim(n) {
  int i, head, tail, size, item, acc;
  array int buf[16];
  head = 0;
  tail = 0;
  size = 0;
  acc = 0;
  for i = 0 to 3 * n {
    if (i % 3 < 2 && size < 15) {
      buf[tail] = i;
      tail = (tail + 1) % 16;
      size = size + 1;
    } else {
      if (size > 0) {
        item = buf[head];
        head = (head + 1) % 16;
        size = size - 1;
        acc = acc + item;
      }
    }
  }
  out(acc + size);
}
""")

INTERP_SEARCH = Kernel(
    name="isearch",
    program="intkern",
    description="interpolation search over a uniform table",
    args=(40,),
    source="""
proc isearch(n) {
  int i, lo, hi, mid, key, found, span;
  array int a[64];
  for i = 0 to n { a[i] = i * 4 + 2; }
  found = 0;
  for i = 0 to 2 * n {
    key = i * 2;
    lo = 0;
    hi = n - 1;
    while (lo <= hi && key >= a[lo] && key <= a[hi]) {
      span = a[hi] - a[lo];
      if (span == 0) {
        mid = lo;
      } else {
        mid = lo + ((key - a[lo]) * (hi - lo)) / span;
      }
      if (a[mid] == key) {
        found = found + 1;
        lo = hi + 1;
      } else {
        if (a[mid] < key) { lo = mid + 1; } else { hi = mid - 1; }
      }
    }
  }
  out(found);
}
""")

WAVEFRONT = Kernel(
    name="wavefront",
    program="pressure",
    description="a 2D row cursor pinned through the sweep and advanced "
                "in a cleanup phase (Figure 1's shape in two dimensions)",
    args=(12,),
    source="""
proc wavefront(n) {
  int i, j, row, acc;
  int w1, w2, w3, w4, w5, w6, w7, w8, w9, w10, w11, w12, w13;
  array int grid[196];
  for i = 0 to n * n + 2 * n { grid[i] = (i * 3 + 1) % 29; }
  row = 0;
  w1 = grid[0]; w2 = grid[1]; w3 = grid[2]; w4 = grid[3];
  w5 = grid[4]; w6 = grid[5]; w7 = grid[6]; w8 = grid[7];
  w9 = grid[8]; w10 = grid[9]; w11 = grid[10]; w12 = grid[11];
  w13 = grid[12];
  acc = 0;
  for i = 0 to n {
    for j = 0 to n {
      w1 = w1 + grid[row + i * n + j];
      w2 = w2 + w1 % 23;
      w3 = w3 + w2 + w1;
      w4 = w4 + w3 - w2;
      w5 = w5 + w4 + w3;
      w6 = w6 + w5 - w4;
      w7 = w7 + w6 + w5;
      w8 = w8 + w7 - w6;
      w9 = w9 + w8 + w7;
      w10 = w10 + w9 - w8;
      w11 = w11 + w10 + w9;
      w12 = w12 + w11 - w10;
      w13 = w13 + w12 + w11;
      acc = acc + grid[row + i * n + j];
    }
  }
  while (row < n) {
    grid[row] = acc % 31 + w13 % 5;
    row = row + 2;
  }
  out(acc + w1 + w4 + w7 + w10 + w13 + row);
}
""")

CHECKSUM = Kernel(
    name="checksum",
    program="intkern",
    description="Adler-style rolling checksum",
    args=(56,),
    source="""
proc checksum(n) {
  int i, s1, s2;
  array int data[64];
  for i = 0 to n { data[i] = (i * 17 + 3) % 251; }
  s1 = 1;
  s2 = 0;
  for i = 0 to n {
    s1 = (s1 + data[i]) % 65521;
    s2 = (s2 + s1) % 65521;
  }
  out(s2 * 65536 + s1);
}
""")

EXTRA_KERNELS = [URAND, TRID, JACOBI2D, SERIES, CROSSPROD, NEWTON, ROMBERG,
                 CONV3, SAXPY_CHAIN, BITS, QUEUE_SIM, INTERP_SEARCH,
                 WAVEFRONT, CHECKSUM]
