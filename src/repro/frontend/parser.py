"""Recursive-descent parser for MiniFort.

Grammar (EBNF)::

    program   := proc*
    proc      := 'proc' IDENT '(' [ IDENT {',' IDENT} ] ')' block
    block     := '{' stmt* '}'
    stmt      := vardecl | arraydecl | assign | if | while | for | out
    vardecl   := ('int'|'float') IDENT {',' IDENT} ';'
    arraydecl := 'array' ('int'|'float') IDENT '[' INT ']' ';'
    assign    := IDENT '=' expr ';'
               | IDENT '[' expr ']' '=' expr ';'
    if        := 'if' '(' expr ')' block [ 'else' block ]
    while     := 'while' '(' expr ')' block
    for       := 'for' IDENT '=' expr 'to' expr block
    out       := 'out' '(' expr ')' ';'
    expr      := orexpr
    orexpr    := andexpr { '||' andexpr }
    andexpr   := cmp { '&&' cmp }
    cmp       := sum [ ('<'|'<='|'>'|'>='|'=='|'!=') sum ]
    sum       := term { ('+'|'-') term }
    term      := factor { ('*'|'/'|'%') factor }
    factor    := INT | FLOAT | IDENT | IDENT '[' expr ']'
               | '(' expr ')' | '-' factor | 'not' factor
               | 'fabs' '(' expr ')' | 'int' '(' expr ')'
               | 'float' '(' expr ')'
"""

from __future__ import annotations

from .ast_nodes import (ArrayDecl, Assign, Binary, Expr, FloatLit, For, If,
                        Index, IntLit, Out, Proc, Program, Stmt, Store, Type,
                        Unary, VarDecl, VarRef, While)
from .lexer import TokKind, Token, tokenize


class MiniFortSyntaxError(ValueError):
    def __init__(self, token: Token, message: str) -> None:
        super().__init__(f"line {token.line}: {message} "
                         f"(at {token.text!r})")
        self.token = token


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -------------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.cur
        self.pos += 1
        return tok

    def check(self, text: str) -> bool:
        return self.cur.text == text and self.cur.kind in (TokKind.PUNCT,
                                                           TokKind.KEYWORD)

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.check(text):
            raise MiniFortSyntaxError(self.cur, f"expected {text!r}")
        return self.advance()

    def expect_ident(self) -> str:
        if self.cur.kind is not TokKind.IDENT:
            raise MiniFortSyntaxError(self.cur, "expected identifier")
        return self.advance().text

    # -- grammar ----------------------------------------------------------------

    def program(self) -> Program:
        procs = []
        while self.cur.kind is not TokKind.EOF:
            procs.append(self.proc())
        if not procs:
            raise MiniFortSyntaxError(self.cur, "empty program")
        return Program(procs)

    def proc(self) -> Proc:
        self.expect("proc")
        name = self.expect_ident()
        self.expect("(")
        params = []
        if not self.check(")"):
            params.append(self.expect_ident())
            while self.accept(","):
                params.append(self.expect_ident())
        self.expect(")")
        body = self.block()
        return Proc(name=name, params=params, body=body)

    def block(self) -> list[Stmt]:
        self.expect("{")
        stmts = []
        while not self.accept("}"):
            stmts.append(self.stmt())
        return stmts

    def stmt(self) -> Stmt:
        if self.check("int") or self.check("float"):
            return self.vardecl()
        if self.check("array"):
            return self.arraydecl()
        if self.check("if"):
            return self.ifstmt()
        if self.check("while"):
            return self.whilestmt()
        if self.check("for"):
            return self.forstmt()
        if self.check("out"):
            self.advance()
            self.expect("(")
            value = self.expr()
            self.expect(")")
            self.expect(";")
            return Out(value)
        return self.assign()

    def vardecl(self) -> VarDecl:
        ty = Type(self.advance().text)
        names = [self.expect_ident()]
        while self.accept(","):
            names.append(self.expect_ident())
        self.expect(";")
        return VarDecl(ty, names)

    def arraydecl(self) -> ArrayDecl:
        self.expect("array")
        if not (self.check("int") or self.check("float")):
            raise MiniFortSyntaxError(self.cur, "expected element type")
        ty = Type(self.advance().text)
        name = self.expect_ident()
        self.expect("[")
        if self.cur.kind is not TokKind.INT:
            raise MiniFortSyntaxError(self.cur, "array size must be an "
                                      "integer literal")
        size = int(self.advance().text)
        self.expect("]")
        self.expect(";")
        return ArrayDecl(ty, name, size)

    def assign(self) -> Stmt:
        name = self.expect_ident()
        if self.accept("["):
            index = self.expr()
            self.expect("]")
            self.expect("=")
            value = self.expr()
            self.expect(";")
            return Store(name, index, value)
        self.expect("=")
        value = self.expr()
        self.expect(";")
        return Assign(name, value)

    def ifstmt(self) -> If:
        self.expect("if")
        self.expect("(")
        cond = self.expr()
        self.expect(")")
        then = self.block()
        otherwise: list[Stmt] = []
        if self.accept("else"):
            if self.check("if"):
                otherwise = [self.ifstmt()]
            else:
                otherwise = self.block()
        return If(cond, then, otherwise)

    def whilestmt(self) -> While:
        self.expect("while")
        self.expect("(")
        cond = self.expr()
        self.expect(")")
        return While(cond, self.block())

    def forstmt(self) -> For:
        self.expect("for")
        var = self.expect_ident()
        self.expect("=")
        lo = self.expr()
        self.expect("to")
        hi = self.expr()
        return For(var, lo, hi, self.block())

    # -- expressions ---------------------------------------------------------------

    def expr(self) -> Expr:
        return self.orexpr()

    def orexpr(self) -> Expr:
        left = self.andexpr()
        while self.accept("||"):
            left = Binary("||", left, self.andexpr())
        return left

    def andexpr(self) -> Expr:
        left = self.cmp()
        while self.accept("&&"):
            left = Binary("&&", left, self.cmp())
        return left

    def cmp(self) -> Expr:
        left = self.sum()
        for op in ("<=", ">=", "==", "!=", "<", ">"):
            if self.accept(op):
                return Binary(op, left, self.sum())
        return left

    def sum(self) -> Expr:
        left = self.term()
        while True:
            if self.accept("+"):
                left = Binary("+", left, self.term())
            elif self.accept("-"):
                left = Binary("-", left, self.term())
            else:
                return left

    def term(self) -> Expr:
        left = self.factor()
        while True:
            if self.accept("*"):
                left = Binary("*", left, self.factor())
            elif self.accept("/"):
                left = Binary("/", left, self.factor())
            elif self.accept("%"):
                left = Binary("%", left, self.factor())
            else:
                return left

    def factor(self) -> Expr:
        tok = self.cur
        if tok.kind is TokKind.INT:
            self.advance()
            return IntLit(int(tok.text))
        if tok.kind is TokKind.FLOAT:
            self.advance()
            return FloatLit(float(tok.text))
        if self.accept("("):
            inner = self.expr()
            self.expect(")")
            return inner
        if self.accept("-"):
            return Unary("-", self.factor())
        if self.accept("not"):
            return Unary("not", self.factor())
        if self.accept("fabs"):
            self.expect("(")
            inner = self.expr()
            self.expect(")")
            return Unary("fabs", inner)
        if self.accept("int"):
            self.expect("(")
            inner = self.expr()
            self.expect(")")
            return Unary("int", inner)
        if self.accept("float"):
            self.expect("(")
            inner = self.expr()
            self.expect(")")
            return Unary("float", inner)
        if tok.kind is TokKind.IDENT:
            name = self.advance().text
            if self.accept("["):
                index = self.expr()
                self.expect("]")
                return Index(name, index)
            return VarRef(name)
        raise MiniFortSyntaxError(tok, "expected an expression")


def parse_program(source: str) -> Program:
    """Parse MiniFort *source* into an AST."""
    return _Parser(tokenize(source)).program()


def parse_proc(source: str) -> Proc:
    """Parse a source containing exactly one procedure."""
    program = parse_program(source)
    if len(program.procs) != 1:
        raise ValueError(f"expected one proc, found {len(program.procs)}")
    return program.procs[0]
