"""MiniFort: the small imperative front end for the benchmark kernels."""

from .ast_nodes import (ArrayDecl, Assign, Binary, Expr, FloatLit, For, If,
                        Index, IntLit, Out, Proc, Program, Stmt, Store, Type,
                        Unary, VarDecl, VarRef, While)
from .codegen import MiniFortTypeError, compile_proc, compile_source
from .lexer import LexError, Token, TokKind, tokenize
from .parser import MiniFortSyntaxError, parse_proc, parse_program

__all__ = [
    "ArrayDecl", "Assign", "Binary", "Expr", "FloatLit", "For", "If",
    "Index", "IntLit", "LexError", "MiniFortSyntaxError",
    "MiniFortTypeError", "Out", "Proc", "Program", "Stmt", "Store",
    "TokKind", "Token", "Type", "Unary", "VarDecl", "VarRef", "While",
    "compile_proc", "compile_source", "parse_proc", "parse_program",
    "tokenize",
]
