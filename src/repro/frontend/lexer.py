"""Lexer for MiniFort, the small imperative language of the benchmark
kernels.

MiniFort stands in for the paper's FORTRAN front end: scalar ``int``/
``float`` variables, static arrays, counted and conditional loops, and
arithmetic — enough to express the numerical routines the paper measures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokKind(enum.Enum):
    IDENT = "ident"
    INT = "int-literal"
    FLOAT = "float-literal"
    KEYWORD = "keyword"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset({
    "proc", "int", "float", "array", "if", "else", "while", "for", "to",
    "out", "fabs", "not",
})

#: multi-character punctuation first so maximal munch works
PUNCTUATION = ("<=", ">=", "==", "!=", "&&", "||",
               "(", ")", "{", "}", "[", "]", ";", ",", "=", "<", ">",
               "+", "-", "*", "/", "%")


@dataclass(frozen=True)
class Token:
    kind: TokKind
    text: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.kind.value}, {self.text!r}, line {self.line})"


class LexError(ValueError):
    """Raised on unrecognizable input."""

    def __init__(self, line: int, message: str) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


def tokenize(source: str) -> list[Token]:
    """Split *source* into tokens.  ``#`` comments run to end of line."""
    tokens: list[Token] = []
    line = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if ch == "#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = TokKind.KEYWORD if text in KEYWORDS else TokKind.IDENT
            tokens.append(Token(kind, text, line))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and
                            source[i + 1].isdigit()):
            start = i
            while i < n and source[i].isdigit():
                i += 1
            is_float = False
            if i < n and source[i] == ".":
                is_float = True
                i += 1
                while i < n and source[i].isdigit():
                    i += 1
            if i < n and source[i] in "eE":
                is_float = True
                i += 1
                if i < n and source[i] in "+-":
                    i += 1
                if i >= n or not source[i].isdigit():
                    raise LexError(line, "malformed exponent")
                while i < n and source[i].isdigit():
                    i += 1
            kind = TokKind.FLOAT if is_float else TokKind.INT
            tokens.append(Token(kind, source[start:i], line))
            continue
        for punct in PUNCTUATION:
            if source.startswith(punct, i):
                tokens.append(Token(TokKind.PUNCT, punct, line))
                i += len(punct)
                break
        else:
            raise LexError(line, f"unexpected character {ch!r}")
    tokens.append(Token(TokKind.EOF, "", line))
    return tokens
