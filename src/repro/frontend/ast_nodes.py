"""Abstract syntax of MiniFort."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Union


class Type(enum.Enum):
    INT = "int"
    FLOAT = "float"


# --- expressions ---------------------------------------------------------------


@dataclass(frozen=True)
class IntLit:
    value: int


@dataclass(frozen=True)
class FloatLit:
    value: float


@dataclass(frozen=True)
class VarRef:
    name: str


@dataclass(frozen=True)
class Index:
    """Array element read: ``a[i]``."""

    array: str
    index: "Expr"


@dataclass(frozen=True)
class Unary:
    """``-e``, ``not e``, ``fabs(e)``, ``int(e)``, ``float(e)``."""

    op: str
    operand: "Expr"


@dataclass(frozen=True)
class Binary:
    """Arithmetic, comparison and logical operators."""

    op: str
    left: "Expr"
    right: "Expr"


Expr = Union[IntLit, FloatLit, VarRef, Index, Unary, Binary]


# --- statements -----------------------------------------------------------------


@dataclass
class VarDecl:
    type: Type
    names: list[str]


@dataclass
class ArrayDecl:
    type: Type
    name: str
    size: int


@dataclass
class Assign:
    name: str
    value: Expr


@dataclass
class Store:
    """Array element write: ``a[i] = e``."""

    array: str
    index: Expr
    value: Expr


@dataclass
class If:
    cond: Expr
    then: list["Stmt"]
    otherwise: list["Stmt"] = field(default_factory=list)


@dataclass
class While:
    cond: Expr
    body: list["Stmt"]


@dataclass
class For:
    """``for v = lo to hi { ... }`` iterates v over [lo, hi)."""

    var: str
    lo: Expr
    hi: Expr
    body: list["Stmt"]


@dataclass
class Out:
    value: Expr


Stmt = Union[VarDecl, ArrayDecl, Assign, Store, If, While, For, Out]


@dataclass
class Proc:
    """One procedure; parameters are integers (FORTRAN-style sizes)."""

    name: str
    params: list[str]
    body: list[Stmt]


@dataclass
class Program:
    procs: list[Proc]

    def proc(self, name: str) -> Proc:
        for p in self.procs:
            if p.name == name:
                return p
        raise KeyError(name)
