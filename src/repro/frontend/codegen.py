"""MiniFort → ILOC code generation.

Straightforward, unoptimized translation onto an unlimited virtual register
file — the input the allocator expects:

* every scalar variable lives in one virtual register,
* arrays live in the static data area; element addresses are computed as
  ``lsd base`` + ``index * 8`` (the ``lsd`` is a never-killed constant —
  exactly the address arithmetic whose rematerialization the paper
  targets),
* literals materialize with ``ldi``/``ldf`` at each occurrence,
* logical operators evaluate eagerly over 0/1 integers (MiniFort
  expressions have no side effects, so short-circuiting is unobservable).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import Function, IRBuilder, Reg, RegClass
from .ast_nodes import (ArrayDecl, Assign, Binary, Expr, FloatLit, For, If,
                        Index, IntLit, Out, Proc, Stmt, Store, Type, Unary,
                        VarDecl, VarRef, While)
from .parser import parse_proc


class MiniFortTypeError(ValueError):
    """Raised on type mismatches, undeclared names and redeclarations."""


@dataclass
class _ArrayInfo:
    type: Type
    base: int
    size: int


_WORD = 8


def _rclass(ty: Type) -> RegClass:
    return RegClass.INT if ty is Type.INT else RegClass.FLOAT


class _CodeGen:
    def __init__(self, proc: Proc) -> None:
        self.proc = proc
        self.b = IRBuilder(proc.name, n_params=len(proc.params))
        self.vars: dict[str, tuple[Type, Reg]] = {}
        self.arrays: dict[str, _ArrayInfo] = {}
        self.static_top = 0
        self.label_n = 0

    # -- helpers -------------------------------------------------------------------

    def fail(self, message: str) -> None:
        raise MiniFortTypeError(f"{self.proc.name}: {message}")

    def fresh_label(self, prefix: str) -> str:
        self.label_n += 1
        return f"{prefix}{self.label_n}"

    def declare_var(self, name: str, ty: Type) -> Reg:
        if name in self.vars or name in self.arrays:
            self.fail(f"redeclaration of {name!r}")
        reg = self.b.function.new_reg(_rclass(ty))
        self.vars[name] = (ty, reg)
        return reg

    def lookup_var(self, name: str) -> tuple[Type, Reg]:
        if name not in self.vars:
            if name in self.arrays:
                self.fail(f"array {name!r} used as a scalar")
            self.fail(f"undeclared variable {name!r}")
        return self.vars[name]

    def lookup_array(self, name: str) -> _ArrayInfo:
        if name not in self.arrays:
            if name in self.vars:
                self.fail(f"scalar {name!r} indexed like an array")
            self.fail(f"undeclared array {name!r}")
        return self.arrays[name]

    # -- entry ----------------------------------------------------------------------

    def run(self) -> Function:
        for i, param in enumerate(self.proc.params):
            reg = self.declare_var(param, Type.INT)
            value = self.b.param(i)
            self.b.copy_to(reg, value)
        self.gen_stmts(self.proc.body)
        if not self.b.current.is_terminated:
            self.b.ret()
        # terminate any empty trailing blocks defensively
        fn = self.b.function
        for blk in fn.blocks:
            if not blk.is_terminated:
                self.fail(f"internal: unterminated block {blk.label}")
        return fn

    # -- statements --------------------------------------------------------------------

    def gen_stmts(self, stmts: list[Stmt]) -> None:
        for stmt in stmts:
            self.gen_stmt(stmt)

    def gen_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, VarDecl):
            for name in stmt.names:
                self.declare_var(name, stmt.type)
        elif isinstance(stmt, ArrayDecl):
            if stmt.name in self.vars or stmt.name in self.arrays:
                self.fail(f"redeclaration of {stmt.name!r}")
            if stmt.size <= 0:
                self.fail(f"array {stmt.name!r} has non-positive size")
            self.arrays[stmt.name] = _ArrayInfo(stmt.type, self.static_top,
                                                stmt.size)
            self.static_top += stmt.size * _WORD
        elif isinstance(stmt, Assign):
            ty, reg = self.lookup_var(stmt.name)
            value_ty, value = self.gen_expr(stmt.value)
            if value_ty is not ty:
                self.fail(f"assigning {value_ty.value} to {ty.value} "
                          f"variable {stmt.name!r}")
            self.b.copy_to(reg, value)
        elif isinstance(stmt, Store):
            info = self.lookup_array(stmt.array)
            addr = self.gen_address(info, stmt.index)
            value_ty, value = self.gen_expr(stmt.value)
            if value_ty is not info.type:
                self.fail(f"storing {value_ty.value} into "
                          f"{info.type.value} array {stmt.array!r}")
            if info.type is Type.INT:
                self.b.stw(value, addr)
            else:
                self.b.fst(value, addr)
        elif isinstance(stmt, If):
            self.gen_if(stmt)
        elif isinstance(stmt, While):
            self.gen_while(stmt)
        elif isinstance(stmt, For):
            self.gen_for(stmt)
        elif isinstance(stmt, Out):
            _ty, value = self.gen_expr(stmt.value)
            self.b.out(value)
        else:  # pragma: no cover - AST is closed
            self.fail(f"unknown statement {stmt!r}")

    def gen_if(self, stmt: If) -> None:
        cond = self.gen_cond(stmt.cond)
        n = self.fresh_label("")
        then_label, else_label, join = (f"then{n}", f"else{n}", f"join{n}")
        if stmt.otherwise:
            self.b.cbr(cond, then_label, else_label)
        else:
            self.b.cbr(cond, then_label, join)
        self.b.label(then_label)
        self.gen_stmts(stmt.then)
        if not self.b.current.is_terminated:
            self.b.jmp(join)
        if stmt.otherwise:
            self.b.label(else_label)
            self.gen_stmts(stmt.otherwise)
            if not self.b.current.is_terminated:
                self.b.jmp(join)
        self.b.label(join)

    def gen_while(self, stmt: While) -> None:
        n = self.fresh_label("")
        head, body, exit_ = f"whead{n}", f"wbody{n}", f"wexit{n}"
        self.b.jmp(head)
        self.b.label(head)
        cond = self.gen_cond(stmt.cond)
        self.b.cbr(cond, body, exit_)
        self.b.label(body)
        self.gen_stmts(stmt.body)
        if not self.b.current.is_terminated:
            self.b.jmp(head)
        self.b.label(exit_)

    def gen_for(self, stmt: For) -> None:
        ty, var = self.lookup_var(stmt.var)
        if ty is not Type.INT:
            self.fail(f"for-variable {stmt.var!r} must be int")
        lo_ty, lo = self.gen_expr(stmt.lo)
        hi_ty, hi = self.gen_expr(stmt.hi)
        if lo_ty is not Type.INT or hi_ty is not Type.INT:
            self.fail("for bounds must be int")
        # keep the bound in a dedicated register so it survives the body
        bound = self.b.function.new_reg(RegClass.INT)
        self.b.copy_to(bound, hi)
        self.b.copy_to(var, lo)
        n = self.fresh_label("")
        head, body, exit_ = f"fhead{n}", f"fbody{n}", f"fexit{n}"
        self.b.jmp(head)
        self.b.label(head)
        cond = self.b.cmp_lt(var, bound)
        self.b.cbr(cond, body, exit_)
        self.b.label(body)
        self.gen_stmts(stmt.body)
        if not self.b.current.is_terminated:
            self.b.copy_to(var, self.b.addi(var, 1))
            self.b.jmp(head)
        self.b.label(exit_)

    # -- expressions ------------------------------------------------------------------------

    def gen_cond(self, expr: Expr) -> Reg:
        ty, value = self.gen_expr(expr)
        if ty is not Type.INT:
            self.fail("condition must be int (use a comparison)")
        return value

    def gen_address(self, info: _ArrayInfo, index: Expr) -> Reg:
        idx_ty, idx = self.gen_expr(index)
        if idx_ty is not Type.INT:
            self.fail("array index must be int")
        base = self.b.lsd(info.base)
        offset = self.b.muli(idx, _WORD)
        return self.b.add(base, offset)

    def gen_expr(self, expr: Expr) -> tuple[Type, Reg]:
        if isinstance(expr, IntLit):
            return Type.INT, self.b.ldi(expr.value)
        if isinstance(expr, FloatLit):
            return Type.FLOAT, self.b.ldf(expr.value)
        if isinstance(expr, VarRef):
            ty, reg = self.lookup_var(expr.name)
            return ty, reg
        if isinstance(expr, Index):
            info = self.lookup_array(expr.array)
            addr = self.gen_address(info, expr.index)
            if info.type is Type.INT:
                return Type.INT, self.b.ldw(addr)
            return Type.FLOAT, self.b.fld(addr)
        if isinstance(expr, Unary):
            return self.gen_unary(expr)
        if isinstance(expr, Binary):
            return self.gen_binary(expr)
        self.fail(f"unknown expression {expr!r}")  # pragma: no cover

    def gen_unary(self, expr: Unary) -> tuple[Type, Reg]:
        ty, value = self.gen_expr(expr.operand)
        if expr.op == "-":
            if ty is Type.INT:
                return Type.INT, self.b.neg(value)
            return Type.FLOAT, self.b.fneg(value)
        if expr.op == "not":
            if ty is not Type.INT:
                self.fail("'not' needs an int operand")
            return Type.INT, self.b.cmp_eq(value, self.b.ldi(0))
        if expr.op == "fabs":
            if ty is not Type.FLOAT:
                self.fail("fabs needs a float operand")
            return Type.FLOAT, self.b.fabs(value)
        if expr.op == "int":
            if ty is Type.INT:
                return Type.INT, value
            return Type.INT, self.b.f2i(value)
        if expr.op == "float":
            if ty is Type.FLOAT:
                return Type.FLOAT, value
            return Type.FLOAT, self.b.i2f(value)
        self.fail(f"unknown unary operator {expr.op!r}")  # pragma: no cover

    _INT_ARITH = {"+": "add", "-": "sub", "*": "mul", "/": "div"}
    _FLOAT_ARITH = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}
    _INT_CMP = {"<": "cmp_lt", "<=": "cmp_le", ">": "cmp_gt",
                ">=": "cmp_ge", "==": "cmp_eq", "!=": "cmp_ne"}
    _FLOAT_CMP = {"<": "fcmp_lt", "<=": "fcmp_le", ">": "fcmp_gt",
                  ">=": "fcmp_ge", "==": "fcmp_eq", "!=": "fcmp_ne"}

    def gen_binary(self, expr: Binary) -> tuple[Type, Reg]:
        left_ty, left = self.gen_expr(expr.left)
        right_ty, right = self.gen_expr(expr.right)
        op = expr.op
        if left_ty is not right_ty:
            self.fail(f"operator {op!r} applied to mixed types "
                      f"({left_ty.value}, {right_ty.value}); "
                      f"use int()/float() casts")
        if op in ("&&", "||"):
            if left_ty is not Type.INT:
                self.fail(f"{op!r} needs int operands")
            if op == "&&":
                # both flags are 0/1: multiplication is conjunction
                return Type.INT, self.b.mul(left, right)
            summed = self.b.add(left, right)
            return Type.INT, self.b.cmp_ne(summed, self.b.ldi(0))
        if op == "%":
            if left_ty is not Type.INT:
                self.fail("'%' needs int operands")
            quotient = self.b.div(left, right)
            return Type.INT, self.b.sub(left, self.b.mul(quotient, right))
        if op in self._INT_CMP:
            table = self._INT_CMP if left_ty is Type.INT else self._FLOAT_CMP
            return Type.INT, getattr(self.b, table[op])(left, right)
        if op in self._INT_ARITH:
            if left_ty is Type.INT:
                return Type.INT, getattr(self.b,
                                         self._INT_ARITH[op])(left, right)
            return Type.FLOAT, getattr(self.b,
                                       self._FLOAT_ARITH[op])(left, right)
        self.fail(f"unknown operator {op!r}")  # pragma: no cover


def compile_proc(proc: Proc) -> Function:
    """Lower one parsed procedure to ILOC."""
    return _CodeGen(proc).run()


def compile_source(source: str) -> Function:
    """Parse and lower a single-procedure MiniFort source."""
    return compile_proc(parse_proc(source))
