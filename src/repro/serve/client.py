"""A small synchronous client for the allocation server.

One :class:`ServeClient` is one TCP connection speaking strict
request/response (send a line, read lines until the matching id comes
back).  It is what the load generator, the benchmarks, and the smoke
tests use; a thread gets its own client — the class is not locked.
"""

from __future__ import annotations

import socket
from typing import Any

from . import protocol


class ServeError(RuntimeError):
    """A typed error reply (``ok: false``) from the server."""

    def __init__(self, error: dict):
        super().__init__(f"{error.get('kind')}: {error.get('message')}")
        self.error = error

    @property
    def kind(self) -> str:
        return self.error.get("kind", "internal")


class ServeClient:
    """Blocking JSONL client; usable as a context manager."""

    def __init__(self, host: str, port: int, timeout: float = 120.0):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.file = self.sock.makefile("rwb")
        self._next_id = 0

    # -- plumbing --------------------------------------------------------------

    def call_raw(self, op: str, request: dict | None = None) -> dict:
        """One round-trip; returns the whole response object."""
        self._next_id += 1
        request_id = f"c{self._next_id}"
        envelope: dict[str, Any] = {"v": protocol.PROTOCOL_VERSION,
                                    "id": request_id, "op": op}
        if request is not None:
            envelope["request"] = request
        self.file.write(protocol.encode_line(envelope))
        self.file.flush()
        while True:
            line = self.file.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            response = protocol.decode_line(line)
            if response.get("id") == request_id:
                return response

    def call(self, op: str, request: dict | None = None) -> Any:
        """One round-trip; returns ``result`` or raises
        :class:`ServeError`."""
        response = self.call_raw(op, request)
        if not response.get("ok"):
            raise ServeError(response.get("error") or {})
        return response.get("result")

    # -- operations ------------------------------------------------------------

    def allocate(self, **request_fields) -> dict:
        """Run one allocation experiment; returns the summary JSON."""
        return self.call("allocate", request_fields)

    def trace(self, **request_fields) -> str:
        """Record one allocation trace; returns the JSONL text."""
        return self.call("trace", request_fields)["trace_text"]

    def ping(self) -> bool:
        return bool(self.call("ping").get("pong"))

    def metrics(self) -> dict:
        return self.call("metrics")

    def debug(self) -> dict:
        """The flight recorder's dump: slowest + failed request traces."""
        return self.call("debug")

    def shutdown(self) -> None:
        """Ask the server to drain and exit."""
        self.call("shutdown")

    def close(self) -> None:
        try:
            self.file.close()
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
