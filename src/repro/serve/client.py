"""Clients for the allocation server: raw and resilient.

:class:`ServeClient` is one TCP connection speaking strict
request/response — send a line, read lines until the matching id comes
back.  It is now **thread-safe**: an internal lock serializes whole
round-trips, so the load generator and multi-threaded harnesses can
share one client instead of opening a connection per thread.

:class:`ResilientClient` is the fault-tolerant wrapper the cluster
work demands: it owns an *address* rather than a connection,
reconnects on broken pipes, retries retryable errors (``overload`` /
``draining`` / ``unavailable`` — see
:data:`~repro.serve.protocol.RETRYABLE_KINDS`) and transport failures
with jittered exponential backoff (honouring server ``retry_after``
hints), and propagates an end-to-end deadline in the v2 envelope so
servers can drop work that has already expired.  Retrying is safe
because allocation requests are idempotent: content-hashed, cached,
and deterministic.  Connections are per-thread, so concurrent callers
don't serialize behind one socket.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from typing import Any

from . import protocol


class ServeError(RuntimeError):
    """A typed error reply (``ok: false``) from the server."""

    def __init__(self, error: dict):
        super().__init__(f"{error.get('kind')}: {error.get('message')}")
        self.error = error

    @property
    def kind(self) -> str:
        return self.error.get("kind", "internal")

    @property
    def retryable(self) -> bool:
        """Whether retrying the same request can succeed: ``overload``,
        ``draining`` and ``unavailable`` are transient conditions of
        *this moment* (or this backend); ``bad_request``, ``failed``,
        ``expired`` and ``internal`` are definitive answers."""
        return self.kind in protocol.RETRYABLE_KINDS

    @property
    def retry_after(self) -> float | None:
        """The server's back-off hint in seconds, if it gave one."""
        value = self.error.get("retry_after")
        return float(value) if isinstance(value, (int, float)) else None


class ServeClient:
    """Blocking JSONL client; usable as a context manager.

    Thread-safe: a lock serializes each round-trip, so threads sharing
    one client interleave whole request/response pairs, never bytes.
    """

    def __init__(self, host: str, port: int, timeout: float = 120.0,
                 client_id: str | None = None):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.file = self.sock.makefile("rwb")
        self.client_id = client_id
        self._next_id = 0
        self._lock = threading.RLock()

    # -- plumbing --------------------------------------------------------------

    def call_raw(self, op: str, request: dict | None = None,
                 deadline_s: float | None = None) -> dict:
        """One round-trip; returns the whole response object."""
        with self._lock:
            self._next_id += 1
            request_id = f"c{self._next_id}"
            envelope: dict[str, Any] = {"v": protocol.PROTOCOL_VERSION,
                                        "id": request_id, "op": op}
            if request is not None:
                envelope["request"] = request
            if self.client_id is not None:
                envelope["client"] = self.client_id
            if deadline_s is not None:
                envelope["deadline_s"] = round(deadline_s, 4)
            self.file.write(protocol.encode_line(envelope))
            self.file.flush()
            while True:
                line = self.file.readline()
                if not line:
                    raise ConnectionError("server closed the connection")
                response = protocol.decode_line(line)
                if response.get("id") == request_id:
                    return response

    def call(self, op: str, request: dict | None = None,
             deadline_s: float | None = None) -> Any:
        """One round-trip; returns ``result`` or raises
        :class:`ServeError`."""
        response = self.call_raw(op, request, deadline_s=deadline_s)
        if not response.get("ok"):
            raise ServeError(response.get("error") or {})
        return response.get("result")

    # -- operations ------------------------------------------------------------

    def allocate(self, **request_fields) -> dict:
        """Run one allocation experiment; returns the summary JSON."""
        return self.call("allocate", request_fields)

    def trace(self, **request_fields) -> str:
        """Record one allocation trace; returns the JSONL text."""
        return self.call("trace", request_fields)["trace_text"]

    def ping(self) -> bool:
        return bool(self.call("ping").get("pong"))

    def metrics(self) -> dict:
        return self.call("metrics")

    def debug(self) -> dict:
        """The flight recorder's dump: slowest + failed request traces.
        Through the router this aggregates every backend's recorder."""
        return self.call("debug")

    def shutdown(self) -> None:
        """Ask the server to drain and exit."""
        self.call("shutdown")

    def close(self) -> None:
        try:
            self.file.close()
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: transport-level failures the resilient client reconnects after
TRANSPORT_ERRORS = (ConnectionError, BrokenPipeError, OSError,
                    protocol.ProtocolError, EOFError)


class RetriesExhausted(ServeError):
    """The resilient client gave up; carries the last typed error."""


class ResilientClient:
    """A reconnecting, retrying, deadline-propagating client.

    Owns an address, not a socket.  Each thread gets its own underlying
    :class:`ServeClient` (lazily dialled, transparently re-dialled
    after transport failures), so threads sharing one resilient client
    never serialize behind a single connection.

    Retry policy: transport errors and retryable typed errors
    (``overload`` / ``draining`` / ``unavailable``) back off
    ``backoff * 2**attempt`` seconds with ±50% jitter, capped at
    *backoff_cap* and raised to any server ``retry_after`` hint, up to
    *max_retries* retries — then :class:`RetriesExhausted` carries the
    last error.  Non-retryable typed errors raise immediately.

    Deadline: a per-call (or constructor-default) *deadline* is an
    end-to-end budget in seconds.  The remaining budget rides the v2
    envelope (``deadline_s``) so servers can drop expired work, shrinks
    across retries, and bounds the backoff sleeps; once spent, the
    client raises a local ``expired`` :class:`ServeError` rather than
    sending dead requests.
    """

    def __init__(self, host: str, port: int, *, timeout: float = 120.0,
                 client_id: str | None = None, max_retries: int = 8,
                 backoff: float = 0.02, backoff_cap: float = 1.0,
                 deadline: float | None = None,
                 rng: random.Random | None = None):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.client_id = client_id
        self.max_retries = max_retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.deadline = deadline
        self._rng = rng or random.Random()
        self._rng_lock = threading.Lock()
        self._local = threading.local()
        #: transport reconnects + retryable-error retries, lifetime
        self.retries = 0
        self.reconnects = 0
        self._stats_lock = threading.Lock()

    # -- connection management -------------------------------------------------

    def _connection(self) -> ServeClient:
        client = getattr(self._local, "client", None)
        if client is None:
            client = ServeClient(self.host, self.port,
                                 timeout=self.timeout,
                                 client_id=self.client_id)
            self._local.client = client
        return client

    def _discard_connection(self) -> None:
        client = getattr(self._local, "client", None)
        if client is not None:
            client.close()
            self._local.client = None
            with self._stats_lock:
                self.reconnects += 1

    def _sleep_for(self, attempt: int, hint: float | None) -> float:
        with self._rng_lock:
            jitter = 0.5 + self._rng.random()
        delay = min(self.backoff_cap, self.backoff * (2 ** attempt)) \
            * jitter
        if hint is not None:
            delay = max(delay, hint)
        return delay

    # -- calls -----------------------------------------------------------------

    def call(self, op: str, request: dict | None = None,
             deadline: float | None = None) -> Any:
        budget = deadline if deadline is not None else self.deadline
        expires = time.monotonic() + budget if budget is not None else None
        last_error: dict = {"kind": "unavailable",
                            "message": "no attempt made"}
        for attempt in range(self.max_retries + 1):
            remaining = None
            if expires is not None:
                remaining = expires - time.monotonic()
                if remaining <= 0:
                    raise ServeError({"kind": "expired",
                                      "message": "deadline spent "
                                                 "client-side"})
            try:
                client = self._connection()
                return client.call(op, request, deadline_s=remaining)
            except ServeError as exc:
                if not exc.retryable:
                    raise
                last_error = exc.error
                hint = exc.retry_after
            except TRANSPORT_ERRORS as exc:
                self._discard_connection()
                last_error = {"kind": "unavailable",
                              "message": f"transport: "
                                         f"{type(exc).__name__}: {exc}"}
                hint = None
            if attempt >= self.max_retries:
                break
            with self._stats_lock:
                self.retries += 1
            delay = self._sleep_for(attempt, hint)
            if expires is not None:
                delay = min(delay, max(0.0, expires - time.monotonic()))
            if delay > 0:
                time.sleep(delay)
        raise RetriesExhausted(last_error)

    def allocate(self, **request_fields) -> dict:
        return self.call("allocate", request_fields)

    def trace(self, **request_fields) -> str:
        return self.call("trace", request_fields)["trace_text"]

    def ping(self) -> bool:
        return bool(self.call("ping").get("pong"))

    def metrics(self) -> dict:
        return self.call("metrics")

    def debug(self) -> dict:
        return self.call("debug")

    def close(self) -> None:
        """Close *this thread's* connection (other threads' connections
        close when their threads drop the thread-local)."""
        client = getattr(self._local, "client", None)
        if client is not None:
            client.close()
            self._local.client = None

    def __enter__(self) -> "ResilientClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
