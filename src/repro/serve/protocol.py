"""The allocation server's wire protocol: JSONL over one TCP stream.

Every message — request and response — is a single JSON object on its
own line.  Requests carry an **envelope** identifying the protocol
version, a client-chosen correlation id, and an operation::

    {"v": 1, "id": "r1", "op": "allocate", "request": {...}}

Operations:

* ``allocate`` — one allocation experiment; the ``request`` object maps
  onto :class:`~repro.engine.request.ExperimentRequest` (see
  :func:`request_from_json`), and the result is the JSON form of the
  engine's :class:`~repro.engine.request.AllocationSummary`
  (:func:`summary_to_json`).
* ``trace``    — allocate with the tracer attached and return the full
  JSONL trace document as text (``{"trace_text": ...}``), exactly what
  ``repro trace --format jsonl`` prints for the same inputs.
* ``ping``     — liveness probe.
* ``metrics``  — the server's observability snapshot (``serve.*``
  admission counters and request/phase latency histograms with
  p50/p90/p99, ``pool.*`` warm-pool accounting, ``engine.*``
  provenance and fault counters).
* ``debug``    — the flight recorder's dump: the N slowest and the
  most recent failed requests, each with its access record and fully
  stitched span tree (see :mod:`repro.serve.observe`).
* ``shutdown`` — begin a drain: stop admitting, finish what is queued.

Responses echo the id and carry either a result or a typed error::

    {"id": "r1", "ok": true,  "result": {...}}
    {"id": "r1", "ok": false, "error": {"kind": "overload", ...}}

Error kinds: ``bad_request`` (malformed envelope or request),
``overload`` (admission queue full or load shed — back off and retry),
``draining`` (server is shutting down), ``failed`` (the supervisor
quarantined the request; the error carries the attempt forensics),
``expired`` (the request's end-to-end deadline passed before it could
be executed), ``unavailable`` (no healthy backend could answer — a
router-layer error), ``internal``.  :data:`RETRYABLE_KINDS` classifies
them: ``overload``/``draining``/``unavailable`` are safe to retry
(allocation requests are idempotent — content-hashed and cached);
``bad_request``/``failed``/``expired``/``internal`` are not.

**Protocol v2** adds three optional envelope/response fields (v1
envelopes remain accepted — the new fields simply default off):

* ``client`` — a stable client identity string; the router's
  fair-admission token buckets meter traffic per ``client`` so one
  greedy client cannot starve the rest (connections without one are
  metered by peer address).
* ``deadline_s`` — the requester's *remaining* end-to-end budget in
  seconds (relative, because wall clocks don't cross processes).
  Every hop re-stamps it with what is left; a server drops work whose
  deadline already passed from its queue and answers ``expired``
  instead of executing dead requests.
* ``retry_after`` — on ``overload``/``draining`` errors, a server
  hint (seconds) for when to retry; the resilient client honours it.

**Byte identity.**  All server-side serialization goes through
:func:`dumps` — ``sort_keys`` plus minimal separators — and
:func:`summary_to_json` is deterministic field-by-field, so a response
body is byte-for-byte identical to serializing the summary returned by
a local :meth:`ExperimentEngine.run_many
<repro.engine.engine.ExperimentEngine.run_many>` for the same request.
Wall-clock ``timing`` is deliberately *not* part of the protocol (it is
never cached and never identical across runs); summaries are shipped
through :meth:`~repro.engine.request.AllocationSummary.without_timing`.
"""

from __future__ import annotations

import json
from typing import Any

from ..engine import AllocationSummary, ExperimentFailure, ExperimentRequest
from ..machine import machine_with
from ..regalloc import ALLOCATOR_NAMES
from ..remat import RenumberMode

#: bump when the envelope or an operation's shape changes incompatibly
PROTOCOL_VERSION = 2

#: envelope versions this server still accepts (v2 only *adds*
#: optional fields, so v1 clients keep working unchanged)
ACCEPTED_VERSIONS = (1, 2)

#: operations a client may put in the envelope
OPERATIONS = ("allocate", "trace", "ping", "metrics", "debug",
              "shutdown")

#: error kinds a client may safely retry (the work is idempotent);
#: everything else is a definitive answer
RETRYABLE_KINDS = frozenset({"overload", "draining", "unavailable"})

#: every typed error kind a server can answer with
ERROR_KINDS = ("bad_request", "overload", "draining", "failed",
               "expired", "unavailable", "internal")

#: ``request`` fields accepted by :func:`request_from_json`
REQUEST_FIELDS = frozenset({
    "ir_text", "kernel", "int_regs", "float_regs", "mode", "allocator",
    "optimize_first", "biased", "lookahead", "coalesce_splits",
    "optimistic", "scheme", "args", "run", "cacheable",
})


class ProtocolError(ValueError):
    """A malformed message; ``kind``/``message`` feed the error reply."""

    def __init__(self, kind: str, message: str):
        super().__init__(message)
        self.kind = kind
        self.message = message


def dumps(obj: Any) -> str:
    """The canonical serialization every server reply uses (stable key
    order, no whitespace) — the basis of the byte-identity guarantee."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def encode_line(obj: Any) -> bytes:
    return dumps(obj).encode() + b"\n"


def decode_line(line: bytes) -> dict:
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise ProtocolError("bad_request", f"invalid JSON: {exc}")
    if not isinstance(obj, dict):
        raise ProtocolError("bad_request", "message must be a JSON object")
    return obj


def check_envelope(obj: dict) -> tuple[Any, str]:
    """Validate a request envelope; returns ``(id, op)``."""
    version = obj.get("v")
    if version not in ACCEPTED_VERSIONS:
        raise ProtocolError(
            "bad_request",
            f"unsupported protocol version {version!r} "
            f"(this server speaks v{PROTOCOL_VERSION})")
    op = obj.get("op")
    if op not in OPERATIONS:
        raise ProtocolError(
            "bad_request",
            f"unknown op {op!r} (one of {', '.join(OPERATIONS)})")
    return obj.get("id"), op


def envelope_meta(obj: dict) -> tuple[str | None, float | None]:
    """The v2 envelope extras: ``(client identity, deadline_s)``.

    Both are optional; a v1 envelope simply has neither.  Raises
    :class:`ProtocolError` on malformed values.
    """
    client = obj.get("client")
    if client is not None and not isinstance(client, str):
        raise ProtocolError("bad_request", "client must be a string")
    deadline_s = obj.get("deadline_s")
    if deadline_s is not None:
        if not isinstance(deadline_s, (int, float)) \
                or isinstance(deadline_s, bool):
            raise ProtocolError("bad_request",
                                "deadline_s must be a number of seconds")
        deadline_s = float(deadline_s)
    return client, deadline_s


def request_from_json(spec: Any) -> ExperimentRequest:
    """Build the engine request described by a client's ``request``
    object; raises :class:`ProtocolError` on anything malformed.

    The function comes either inline (``ir_text``, canonical ILOC) or
    by benchmark-suite name (``kernel`` — which also supplies default
    interpreter ``args``).  ``repeats`` is deliberately not accepted:
    the server never measures wall-clock timing.
    """
    if not isinstance(spec, dict):
        raise ProtocolError("bad_request", "request must be a JSON object")
    unknown = sorted(set(spec) - REQUEST_FIELDS)
    if unknown:
        raise ProtocolError("bad_request",
                            f"unknown request field(s): {', '.join(unknown)}")

    kernel_name = spec.get("kernel")
    ir_text = spec.get("ir_text")
    if (kernel_name is None) == (ir_text is None):
        raise ProtocolError(
            "bad_request", "exactly one of ir_text/kernel is required")
    args = spec.get("args")
    if kernel_name is not None:
        from ..benchsuite import KERNELS_BY_NAME
        from ..ir import function_to_text

        kernel = KERNELS_BY_NAME.get(kernel_name)
        if kernel is None:
            raise ProtocolError("bad_request",
                                f"unknown kernel {kernel_name!r}")
        ir_text = function_to_text(kernel.compile())
        if args is None:
            args = list(kernel.args)
    if not isinstance(ir_text, str) or not ir_text.strip():
        raise ProtocolError("bad_request", "ir_text must be ILOC text")

    int_regs = spec.get("int_regs", 16)
    float_regs = spec.get("float_regs", int_regs)
    if not isinstance(int_regs, int) or not isinstance(float_regs, int) \
            or int_regs < 1 or float_regs < 1:
        raise ProtocolError("bad_request",
                            "int_regs/float_regs must be positive integers")

    mode_name = spec.get("mode", RenumberMode.REMAT.value)
    try:
        mode = RenumberMode(mode_name)
    except ValueError:
        raise ProtocolError(
            "bad_request",
            f"unknown mode {mode_name!r} "
            f"(one of {', '.join(m.value for m in RenumberMode)})")

    allocator = spec.get("allocator", "iterated")
    if allocator not in ALLOCATOR_NAMES:
        raise ProtocolError(
            "bad_request",
            f"unknown allocator {allocator!r} "
            f"(one of {', '.join(ALLOCATOR_NAMES)})")

    flags = {}
    for name in ("optimize_first", "biased", "lookahead",
                 "coalesce_splits", "optimistic", "run", "cacheable"):
        if name in spec:
            if not isinstance(spec[name], bool):
                raise ProtocolError("bad_request",
                                    f"{name} must be a boolean")
            flags[name] = spec[name]

    scheme = spec.get("scheme")
    if scheme is not None and not isinstance(scheme, str):
        raise ProtocolError("bad_request", "scheme must be a string")
    if args is None:
        args = []
    if not isinstance(args, list):
        raise ProtocolError("bad_request", "args must be an array")

    try:
        return ExperimentRequest(
            ir_text=ir_text,
            machine=machine_with(int_regs, float_regs),
            mode=mode, scheme=scheme, allocator=allocator,
            args=tuple(args), **flags)
    except (TypeError, ValueError) as exc:
        raise ProtocolError("bad_request", str(exc))


def summary_to_json(summary: AllocationSummary) -> dict:
    """The deterministic JSON form of an engine summary (timing
    excluded; see the module docstring's byte-identity note)."""
    from dataclasses import asdict

    counts = None
    if summary.counts is not None:
        counts = {cls.value: n for cls, n in summary.counts.items()}
    output = None
    if summary.output is not None:
        output = list(summary.output)
    return {
        "key": summary.key,
        "function": summary.function_name,
        "machine": summary.machine_name,
        "int_regs": summary.int_regs,
        "float_regs": summary.float_regs,
        "mode": summary.mode.value,
        "allocator": summary.allocator,
        "stats": asdict(summary.stats),
        "rounds": summary.rounds,
        "code_size": summary.code_size,
        "allocated_size": summary.allocated_size,
        "counts": counts,
        "steps": summary.steps,
        "output": output,
    }


def failure_to_json(failure: ExperimentFailure) -> dict:
    """The typed error body for a quarantined request.  A failure the
    deadline-aware supervisor declared expired (rather than poison)
    answers with the ``expired`` kind so clients don't retry dead work."""
    return {
        "kind": "expired" if failure.error_class == "DeadlineExpired"
        else "failed",
        "key": failure.key,
        "function": failure.function_name,
        "error_class": failure.error_class,
        "message": failure.message,
        "attempts": failure.attempts,
        "worker_fate": failure.worker_fate,
        "attempt_errors": list(failure.attempt_errors),
    }


def error_response(request_id: Any, kind: str, message: str,
                   retry_after: float | None = None) -> dict:
    error: dict[str, Any] = {"kind": kind, "message": message}
    if retry_after is not None:
        error["retry_after"] = round(retry_after, 4)
    return {"id": request_id, "ok": False, "error": error}


def ok_response(request_id: Any, result: Any) -> dict:
    return {"id": request_id, "ok": True, "result": result}
