"""Allocation-as-a-service: the persistent async compile server.

One process owns one :class:`~repro.engine.engine.ExperimentEngine`
with a warm :class:`~repro.engine.supervisor.WorkerPool` attached, and
serves allocation requests to any number of clients over JSONL/TCP
(:mod:`repro.serve.protocol`).  The moving parts:

* **Admission control** — every ``allocate``/``trace`` request must win
  a slot in a bounded queue.  A full queue is answered *immediately*
  with a typed ``overload`` rejection instead of unbounded buffering;
  clients back off and retry (``serve.overload_rejections`` counts the
  pushback).
* **In-flight dedup** — admitted requests are keyed by the engine's
  content hash (:func:`~repro.engine.request.request_key`).  A request
  whose key is already queued or executing attaches to the existing
  future and consumes *no* queue slot: one execution answers every
  subscriber (``serve.deduplicated``).
* **Micro-batching** — a single batcher task drains the queue, waits
  ``batch_window`` seconds for stragglers (up to ``max_batch``), and
  hands the whole batch to :meth:`ExperimentEngine.run_many
  <repro.engine.engine.ExperimentEngine.run_many>` on a worker thread.
  Concurrent clients therefore share one cache pass and one supervised
  fan-out instead of serializing whole round-trips.
* **Warm workers** — the engine's pool outlives every batch, so
  steady-state traffic reuses live worker processes; interpreter spawn
  and import cost is paid at most ``pool.size`` times (plus crash
  replacement), not per request.  All of the supervisor's failure
  handling — per-attempt timeouts, retry with backoff, quarantine,
  serial fallback — applies unchanged; a quarantined request comes
  back to its clients as a typed ``failed`` error.
* **Drain on SIGTERM** — the listener closes, admission stops
  (``draining`` rejections), everything already admitted runs to
  completion and is answered, then the process exits 0.
* **Request observability** — every request line gets a server-minted
  id and contiguous lifecycle stamps (``accept → parse → admission →
  queue_wait → batch_wait → execute → respond``); with tracing on the
  engine's per-attempt spans — including the worker-side ``exec``
  subtrees rebased across the process boundary — are stitched under
  ``execute`` into one per-request trace.  The N slowest and all
  failed traces live in a bounded flight recorder (the ``debug`` op;
  dumped to disk on drain), each request can be appended to a JSONL
  access log, and latency quantiles are served by the ``metrics`` op
  and an optional Prometheus text endpoint (see
  :mod:`repro.serve.observe`).

The batcher is the only touchpoint of the (thread-oblivious) engine and
pool, so no locking is needed around them; per-connection writes are
serialized with an ``asyncio`` lock so interleaved responses cannot
corrupt the stream.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import logging
import os
import pathlib
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from ..engine import (AllocationSummary, ExperimentEngine,
                      ExperimentFailure, RequestObservation,
                      SERVE_KILL_EXIT_CODE, ServeFaultPlan, request_key)
from ..obs import MetricsRegistry, render_prometheus
from . import protocol
from .observe import FlightRecorder, RequestRecord, access_line

logger = logging.getLogger(__name__)


@dataclass
class ServeConfig:
    """Tunables of one :class:`AllocationServer`.

    Attributes:
        host / port: listen address; port 0 binds an ephemeral port
            (the bound port is announced and available as
            :attr:`AllocationServer.port`).
        queue_limit: admission bound — queued-but-unbatched requests
            beyond this are rejected with ``overload``.
        batch_window: seconds the batcher lingers for stragglers after
            the first request of a batch arrives.
        max_batch: requests per engine batch (a full batch dispatches
            without waiting out the window).
        trace_requests: collect per-request engine observations
            (attempt spans, provenance) and stitch complete traces for
            the flight recorder; off, requests still get lifecycle
            stamps but no execution subtree.
        access_log: path of the structured JSONL access log (one
            :func:`~repro.serve.observe.access_line` per request);
            ``None`` disables it.
        flight_slots: traces kept by the flight recorder (N slowest
            plus the N most recent failures).
        flight_dump: path the flight recorder dump is written to when
            the server drains; ``None`` skips the dump.
        metrics_addr: ``HOST:PORT`` (or just ``PORT``) for the
            Prometheus text exposition endpoint; ``None`` disables it.
        backend_id: this server's name within a cluster (``b0`` …);
            stamped into the metrics snapshot so the router and ``repro
            top`` can attribute per-backend health.  ``None`` outside a
            cluster.
        fault_plan: serve-layer chaos injection
            (:class:`~repro.engine.faults.ServeFaultPlan`) — kill this
            backend as it begins executing a planned key, stall its
            accept path, drop or garble planned responses.  Never set
            in production paths.
    """

    host: str = "127.0.0.1"
    port: int = 0
    queue_limit: int = 256
    batch_window: float = 0.005
    max_batch: int = 32
    trace_requests: bool = True
    access_log: str | pathlib.Path | None = None
    flight_slots: int = 64
    flight_dump: str | pathlib.Path | None = None
    metrics_addr: str | None = None
    backend_id: str | None = None
    fault_plan: ServeFaultPlan | None = None


@dataclass
class _Pending:
    """One admitted unit of work (unique by key) and its subscribers."""

    key: str
    op: str
    request: Any
    future: asyncio.Future = field(repr=False)
    #: the latest subscriber deadline (absolute ``time.monotonic``);
    #: ``None`` once any subscriber has no deadline — the work must
    #: then run to completion
    deadline: float | None = None
    #: batcher stamps shared by every subscriber's lifecycle record
    t_dequeue: float | None = None
    t_dispatch: float | None = None
    #: the engine's per-request observation (tracing on, allocate only)
    observation: RequestObservation | None = None


class AllocationServer:
    """The asyncio server; owns admission, dedup, and the batcher.

    The caller owns the *engine* (and its pool): construct, pass in,
    and close the pool after :meth:`wait_closed` returns.
    """

    def __init__(self, engine: ExperimentEngine,
                 config: ServeConfig | None = None):
        self.engine = engine
        self.config = config or ServeConfig()
        self.metrics = MetricsRegistry()
        self.queue: asyncio.Queue[_Pending | None] = \
            asyncio.Queue(maxsize=self.config.queue_limit)
        #: key → pending work, for in-flight dedup
        self.inflight: dict[str, _Pending] = {}
        self.flight = FlightRecorder(self.config.flight_slots)
        self.draining = False
        self.port: int | None = None
        self.metrics_port: int | None = None
        self._server: asyncio.Server | None = None
        self._metrics_server: asyncio.Server | None = None
        self._batcher_task: asyncio.Task | None = None
        self._drain_task: asyncio.Task | None = None
        self._closed = asyncio.Event()
        self._conn_tasks: set[asyncio.Task] = set()
        self._request_seq = itertools.count(1)
        self._access_log = None

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        if self.config.access_log is not None:
            self._access_log = open(self.config.access_log, "a",
                                    encoding="utf-8")
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.metrics_addr is not None:
            host, mport = _parse_addr(self.config.metrics_addr)
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics_conn, host, mport)
            self.metrics_port = \
                self._metrics_server.sockets[0].getsockname()[1]
        self._batcher_task = asyncio.create_task(self._batcher())

    def request_shutdown(self) -> None:
        """Begin the drain (idempotent; safe from a signal handler)."""
        if self._drain_task is None:
            self.draining = True
            self._drain_task = asyncio.create_task(self._drain())

    async def wait_closed(self) -> None:
        await self._closed.wait()

    async def _drain(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # everything admitted before the drain still gets its answer
        while self.inflight:
            await asyncio.gather(
                *(p.future for p in self.inflight.values()),
                return_exceptions=True)
        await self.queue.put(None)
        if self._batcher_task is not None:
            await self._batcher_task
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks),
                                 return_exceptions=True)
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
        if self.config.flight_dump is not None:
            try:
                with open(self.config.flight_dump, "w",
                          encoding="utf-8") as handle:
                    json.dump(self.flight.dump(), handle, sort_keys=True)
            except OSError:
                logger.exception("could not write flight-recorder dump")
        if self._access_log is not None:
            self._access_log.close()
            self._access_log = None
        self._closed.set()

    # -- connections -----------------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        write_lock = asyncio.Lock()
        pending: set[asyncio.Task] = set()
        plan = self.config.fault_plan
        if plan is not None:
            # injected accept stall: the connection sits unserved, the
            # stand-in for a wedged event loop — only the router's
            # health checks notice
            stall = plan.claim_accept_hang(self.config.backend_id)
            if stall:
                await asyncio.sleep(stall)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.create_task(
                    self._serve_line(line, writer, write_lock))
                pending.add(task)
                self._conn_tasks.add(task)
                task.add_done_callback(pending.discard)
                task.add_done_callback(self._conn_tasks.discard)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if pending:
                await asyncio.gather(*list(pending),
                                     return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_line(self, line: bytes,
                          writer: asyncio.StreamWriter,
                          write_lock: asyncio.Lock) -> None:
        record = self._new_record()
        response = await self._respond(line, record)
        payload = protocol.encode_line(response)
        plan = self.config.fault_plan
        garbled = False
        if plan is not None and record.key is not None:
            raw_key = record.key.split(":", 1)[-1]
            if plan.claim_drop(raw_key):
                payload = None          # vanished reply
            elif plan.claim_garble(raw_key):
                payload = b"\x00\xfe{not json" + payload[:16] + b"\n"
                garbled = True
        async with write_lock:
            try:
                if payload is None:
                    writer.close()
                else:
                    writer.write(payload)
                    await writer.drain()
                    if garbled:
                        writer.close()  # a garbled reply ends the conn
            except (ConnectionError, OSError):
                pass  # client went away; the work still fed the cache
        self._finish_record(record)

    # -- request handling ------------------------------------------------------

    def _new_record(self) -> RequestRecord:
        return RequestRecord(
            request_id=f"r{next(self._request_seq):06d}",
            wall_time=time.time(), t_accept=time.monotonic())

    def _finish_record(self, record: RequestRecord) -> None:
        """Stamp the respond boundary and fan the finished record out
        to the phase histograms, the access log, the flight recorder."""
        record.t_respond = time.monotonic()
        engine_op = record.op in ("allocate", "trace")
        if engine_op:
            self.metrics.histogram("serve.request_seconds").observe(
                record.total_s)
            for name, value in record.phase_seconds().items():
                self.metrics.histogram(f"serve.phase.{name}").observe(
                    value)
        if self._access_log is not None:
            try:
                self._access_log.write(access_line(record) + "\n")
                self._access_log.flush()
            except (OSError, ValueError):
                pass  # a broken log must never break serving
        if engine_op or record.outcome != "ok":
            self.flight.record(record)

    async def _respond(self, line: bytes,
                       record: RequestRecord | None = None) -> dict:
        """One request line → one response object (never raises)."""
        if record is None:  # direct callers (tests) skip _serve_line
            record = self._new_record()
        request_id = None
        try:
            obj = protocol.decode_line(line)
            request_id = obj.get("id")
            record.client_id = request_id
            _, op = protocol.check_envelope(obj)
            record.op = op
            client, deadline_s = protocol.envelope_meta(obj)
            record.client = client
            self.metrics.counter("serve.requests").inc()
            self.metrics.counter(f"serve.op.{op}").inc()
            if op in ("ping", "metrics", "shutdown", "debug"):
                record.t_parse = time.monotonic()
                if op == "ping":
                    return protocol.ok_response(request_id, {"pong": True})
                if op == "metrics":
                    return protocol.ok_response(request_id,
                                                self.metrics_snapshot())
                if op == "debug":
                    return protocol.ok_response(request_id,
                                                self.flight.dump())
                self.request_shutdown()
                return protocol.ok_response(request_id, {"draining": True})
            deadline = (time.monotonic() + deadline_s
                        if deadline_s is not None else None)
            return await self._admit(request_id, op, obj.get("request"),
                                     record, deadline)
        except protocol.ProtocolError as exc:
            record.outcome = exc.kind
            self.metrics.counter("serve.bad_requests").inc()
            return protocol.error_response(request_id, exc.kind,
                                           exc.message)
        except Exception as exc:  # never kill the connection loop
            record.outcome = "internal"
            logger.exception("internal error serving request")
            return protocol.error_response(request_id, "internal",
                                           f"{type(exc).__name__}: {exc}")

    async def _admit(self, request_id: Any, op: str, spec: Any,
                     record: RequestRecord,
                     deadline: float | None = None) -> dict:
        request = protocol.request_from_json(spec)
        key = f"{op}:{request_key(request)}"
        record.t_parse = time.monotonic()
        record.key = key
        record.allocator = request.allocator
        if deadline is not None and record.t_parse >= deadline:
            # already dead on arrival: don't waste a queue slot
            record.outcome = "expired"
            record.t_admit = time.monotonic()
            self.metrics.counter("serve.expired").inc()
            return protocol.error_response(
                request_id, "expired",
                "end-to-end deadline passed before admission")
        pending = self.inflight.get(key)
        if pending is None:
            if self.draining:
                record.outcome = "draining"
                record.t_admit = time.monotonic()
                self.metrics.counter("serve.drain_rejections").inc()
                return protocol.error_response(
                    request_id, "draining", "server is shutting down",
                    retry_after=self._retry_after())
            pending = _Pending(key, op, request,
                               asyncio.get_running_loop().create_future(),
                               deadline=deadline)
            try:
                self.queue.put_nowait(pending)
            except asyncio.QueueFull:
                record.outcome = "overload"
                record.t_admit = time.monotonic()
                self.metrics.counter("serve.overload_rejections").inc()
                return protocol.error_response(
                    request_id, "overload",
                    f"admission queue full "
                    f"({self.config.queue_limit} pending); retry",
                    retry_after=self._retry_after())
            self.inflight[key] = pending
        else:
            record.dedup = True
            self.metrics.counter("serve.deduplicated").inc()
            if deadline is None:
                # this subscriber waits forever: the work must finish
                pending.deadline = None
            elif pending.deadline is not None:
                pending.deadline = max(pending.deadline, deadline)
        record.t_admit = time.monotonic()
        status, body = await asyncio.shield(pending.future)
        if record.dedup:
            # a subscriber did not queue or batch: its whole wait is
            # the execute phase, keeping its phase sum contiguous
            record.t_dequeue = record.t_dispatch = record.t_admit
        else:
            record.t_dequeue = pending.t_dequeue
            record.t_dispatch = pending.t_dispatch
        record.t_execute = time.monotonic()
        observation = pending.observation
        if observation is not None:
            record.source = observation.source
            record.attempts = observation.attempts
            record.retries = observation.retries
            record.cache_put_s = observation.cache_put_s
            record.spans = list(observation.spans)
        if status == "ok":
            return protocol.ok_response(request_id, body)
        record.outcome = body.get("kind", "internal") \
            if isinstance(body, dict) else "internal"
        if record.outcome == "expired":
            self.metrics.counter("serve.expired").inc()
        return {"id": request_id, "ok": False, "error": body}

    def _retry_after(self) -> float:
        """The back-off hint for a rejected request: roughly how long
        the backlog takes to clear one batch's worth of room."""
        batches_queued = self.queue.qsize() / max(1, self.config.max_batch)
        return round(self.config.batch_window * (1.0 + batches_queued)
                     + 0.01, 4)

    # -- the batcher -----------------------------------------------------------

    async def _batcher(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            head = await self.queue.get()
            if head is None:
                return
            head.t_dequeue = time.monotonic()
            batch = [head]
            deadline = loop.time() + self.config.batch_window
            while len(batch) < self.config.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    item = await asyncio.wait_for(self.queue.get(),
                                                  remaining)
                except asyncio.TimeoutError:
                    break
                if item is None:  # drain sentinel: finish, then stop
                    await self._run_batch(batch)
                    return
                item.t_dequeue = time.monotonic()
                batch.append(item)
            await self._run_batch(batch)

    async def _run_batch(self, batch: list[_Pending]) -> None:
        self.metrics.counter("serve.batches").inc()
        self.metrics.histogram("serve.batch_size").observe(len(batch))
        dispatched = time.monotonic()
        for pending in batch:
            pending.t_dispatch = dispatched
        loop = asyncio.get_running_loop()
        try:
            outcomes = await loop.run_in_executor(None, self._execute,
                                                  batch)
        except Exception as exc:  # defensive: answer rather than hang
            logger.exception("batch execution failed")
            outcomes = {p.key: ("error", {"kind": "internal",
                                          "message": str(exc)})
                        for p in batch}
        for pending in batch:
            self.inflight.pop(pending.key, None)
            if not pending.future.done():
                pending.future.set_result(
                    outcomes.get(pending.key,
                                 ("error", {"kind": "internal",
                                            "message": "no outcome"})))

    def _execute(self, batch: list[_Pending]) -> dict[str, tuple]:
        """Worker-thread side: the only caller of the engine and pool."""
        outcomes: dict[str, tuple] = {}
        plan = self.config.fault_plan
        if plan is not None:
            for pending in batch:
                if plan.claim_kill(pending.key.split(":", 1)[-1]):
                    # injected backend death mid-request: admitted work
                    # dies unanswered; the router must fail it over and
                    # the cluster supervisor must restart this process
                    os._exit(SERVE_KILL_EXIT_CODE)
        allocs = [p for p in batch if p.op == "allocate"]
        if allocs:
            observations: dict[str, RequestObservation] | None = \
                {} if self.config.trace_requests else None
            deadlines = {p.key.split(":", 1)[-1]: p.deadline
                         for p in allocs if p.deadline is not None}
            results = self.engine.run_many([p.request for p in allocs],
                                           observations=observations,
                                           deadlines=deadlines or None)
            for pending, result in zip(allocs, results):
                if observations is not None:
                    pending.observation = observations.get(
                        pending.key.split(":", 1)[1])
                if isinstance(result, AllocationSummary):
                    outcomes[pending.key] = \
                        ("ok", protocol.summary_to_json(result))
                else:
                    assert isinstance(result, ExperimentFailure)
                    outcomes[pending.key] = \
                        ("error", protocol.failure_to_json(result))
        for pending in batch:
            if pending.op != "trace":
                continue
            if pending.deadline is not None \
                    and time.monotonic() >= pending.deadline:
                outcomes[pending.key] = \
                    ("error", {"kind": "expired",
                               "message": "end-to-end deadline passed "
                                          "before execution"})
                continue
            try:
                text = execute_trace(pending.request)
            except Exception as exc:
                outcomes[pending.key] = \
                    ("error", {"kind": "internal",
                               "message": f"{type(exc).__name__}: {exc}"})
            else:
                outcomes[pending.key] = ("ok", {"trace_text": text})
        return outcomes

    # -- observability ---------------------------------------------------------

    async def _handle_metrics_conn(self, reader: asyncio.StreamReader,
                                   writer: asyncio.StreamWriter) -> None:
        """A deliberately tiny HTTP/1.1 responder: every GET gets the
        Prometheus text exposition of :meth:`metrics_snapshot`."""
        try:
            while True:  # consume the request head; the path is ignored
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            body = render_prometheus(self.metrics_snapshot()).encode()
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/plain; version=0.0.4; "
                b"charset=utf-8\r\n"
                + f"Content-Length: {len(body)}\r\n".encode()
                + b"Connection: close\r\n\r\n" + body)
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def metrics_snapshot(self) -> dict:
        """``serve.*`` + ``pool.*`` + the engine's own registry."""
        merged = MetricsRegistry()
        for name, value in self.metrics.counters().items():
            merged.counter(name).inc(value)
        for name, value in self.engine.metrics().counters().items():
            merged.counter(name).inc(value)
        if self.engine.pool is not None:
            merged.absorb_dataclass(self.engine.pool.stats, "pool")
            merged.counter("pool.size").inc(self.engine.pool.size)
        snapshot = {"counters": merged.counters()}
        histograms = self.metrics.histograms()
        histograms.update(self.engine.metrics().histograms())
        snapshot["histograms"] = histograms
        snapshot["queue_depth"] = self.queue.qsize()
        snapshot["inflight"] = len(self.inflight)
        if self.config.backend_id is not None:
            snapshot["backend_id"] = self.config.backend_id
        return snapshot


def _parse_addr(addr: str) -> tuple[str, int]:
    """``HOST:PORT`` (or bare ``PORT``) → ``(host, port)``."""
    host, _, port = addr.rpartition(":")
    return host or "127.0.0.1", int(port)


def execute_trace(request) -> str:
    """The ``trace`` operation: allocate with the tracer attached and
    render the JSONL document — identical to what ``repro trace
    --format jsonl`` emits for the same function/machine/mode."""
    from ..ir import parse_function
    from ..obs import Tracer, metrics_from_allocation, trace_to_text
    from ..opt import optimize
    from ..regalloc import allocate

    fn = parse_function(request.ir_text)
    if request.optimize_first:
        optimize(fn)
    tracer = Tracer(capture_events=True)
    result = allocate(fn, machine=request.machine, mode=request.mode,
                      tracer=tracer)
    meta = {"function": result.function.name,
            "mode": result.mode.value,
            "machine": result.machine.name,
            "int_regs": result.machine.int_regs,
            "float_regs": result.machine.float_regs,
            "source": "<serve>"}
    return trace_to_text(result.trace, meta,
                         metrics_from_allocation(result))


async def run_server(engine: ExperimentEngine, config: ServeConfig,
                     announce=None, announce_metrics=None) -> int:
    """Start, announce, install signal-driven drain, serve until done.

    *announce* is called once with the bound ``(host, port)`` — the CLI
    prints the ``# serving on HOST:PORT`` line from it so wrappers can
    scrape the ephemeral port.  *announce_metrics* likewise receives
    the Prometheus endpoint's bound ``(host, port)`` when
    ``metrics_addr`` is configured.
    """
    server = AllocationServer(engine, config)
    await server.start()
    if announce is not None:
        announce(config.host, server.port)
    if announce_metrics is not None and server.metrics_port is not None:
        announce_metrics(_parse_addr(config.metrics_addr)[0],
                         server.metrics_port)
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, server.request_shutdown)
        except (NotImplementedError, RuntimeError):
            pass  # non-Unix loop or nested loop: Ctrl-C still unwinds
    await server.wait_closed()
    return 0


class ServerThread:
    """An in-process server on a background thread (tests, benches).

    Usage::

        with ServerThread(engine) as srv:
            client = ServeClient("127.0.0.1", srv.port)

    The context exit drains the server exactly like SIGTERM would.
    """

    def __init__(self, engine: ExperimentEngine,
                 config: ServeConfig | None = None):
        self.engine = engine
        self.config = config or ServeConfig()
        self.server: AllocationServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    @property
    def port(self) -> int:
        assert self.server is not None and self.server.port is not None
        return self.server.port

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.server = AllocationServer(self.engine, self.config)
        await self.server.start()
        self._ready.set()
        await self.server.wait_closed()

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server thread failed to start")
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def stop(self) -> None:
        if self._loop is not None and self.server is not None:
            try:
                self._loop.call_soon_threadsafe(
                    self.server.request_shutdown)
            except RuntimeError:
                pass  # loop already closed: the server drained itself
        self._thread.join(timeout=60)
