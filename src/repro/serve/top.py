"""``repro top`` — a live dashboard over the ``metrics`` protocol op.

Polls a running allocation server and renders the numbers an operator
watches: request and execution rates (derived from successive counter
snapshots), server-side latency quantiles (the bucketed
``serve.request_seconds`` histogram — the same p50/p99 the Prometheus
endpoint exposes), queue depth and in-flight dedup, cache hit ratio,
warm-pool spawn/reuse, and the per-phase p50 breakdown.

Pointed at a cluster router the same ``metrics`` op answers the
*merged* snapshot, and the dashboard grows a per-backend section —
health, circuit-breaker state, router-tracked in-flight depth, probe
and restart counts — from the snapshot's ``router`` block.

Pure rendering over snapshots: :func:`render_dashboard` takes the
current (and optionally previous) ``metrics`` result, so tests feed it
canned snapshots and the CLI loop stays trivial.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable

from ..obs.metrics import render_prometheus
from .client import ServeClient

#: the contiguous lifecycle phases, dashboard order
_PHASES = ("parse", "admission", "queue_wait", "batch_wait", "execute",
           "respond")


def format_seconds(value: float) -> str:
    """A latency with a human unit: ``17µs`` / ``4.2ms`` / ``1.31s``."""
    if value < 1e-3:
        return f"{value * 1e6:.0f}µs"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def _rate(current: dict, previous: dict | None, name: str,
          interval: float | None) -> float | None:
    if previous is None or not interval or interval <= 0:
        return None
    now = current.get("counters", {}).get(name, 0)
    then = previous.get("counters", {}).get(name, 0)
    return max(0.0, (now - then) / interval)


def render_dashboard(snapshot: dict[str, Any],
                     previous: dict[str, Any] | None = None,
                     interval: float | None = None) -> str:
    """The ``repro top`` table for one ``metrics`` snapshot.

    *previous* and *interval* (seconds between the two snapshots)
    enable the derived per-second rates; without them the rate columns
    are omitted.
    """
    counters = snapshot.get("counters", {})
    histograms = snapshot.get("histograms", {})

    def c(name: str) -> int:
        return counters.get(name, 0)

    lines: list[str] = []
    req_rate = _rate(snapshot, previous, "serve.requests", interval)
    exec_rate = _rate(snapshot, previous, "engine.executed", interval)
    rate = "" if req_rate is None else f"   {req_rate:.1f} req/s"
    lines.append(
        f"requests   {c('serve.requests'):>8}{rate}   "
        f"bad {c('serve.bad_requests')}  "
        f"overload {c('serve.overload_rejections')}  "
        f"draining {c('serve.drain_rejections')}")

    latency = histograms.get("serve.request_seconds") or {}
    if latency.get("count"):
        lines.append(
            f"latency    p50 {format_seconds(latency['p50'])}  "
            f"p90 {format_seconds(latency['p90'])}  "
            f"p99 {format_seconds(latency['p99'])}  "
            f"max {format_seconds(latency['max'])}  "
            f"(n={latency['count']})")
    else:
        lines.append("latency    (no requests observed)")

    lines.append(
        f"queue      {snapshot.get('queue_depth', 0)} queued   "
        f"{snapshot.get('inflight', 0)} in flight   "
        f"dedup {c('serve.deduplicated')}")

    batch = histograms.get("serve.batch_size") or {}
    mean = (batch.get("total", 0.0) / batch["count"]) \
        if batch.get("count") else 0.0
    lines.append(f"batches    {c('serve.batches'):>8}   "
                 f"avg size {mean:.1f}")

    answered = (c("engine.memo_hits") + c("engine.cache_hits")
                + c("engine.executed"))
    hit_ratio = ((c("engine.memo_hits") + c("engine.cache_hits"))
                 / answered if answered else 0.0)
    exec_part = "" if exec_rate is None else f"   {exec_rate:.1f} exec/s"
    lines.append(
        f"engine     memo {c('engine.memo_hits')}  "
        f"cache {c('engine.cache_hits')}  "
        f"executed {c('engine.executed')}  "
        f"hit ratio {hit_ratio:.0%}{exec_part}")

    lines.append(
        f"faults     retries {c('engine.retries')}  "
        f"timeouts {c('engine.timeouts')}  "
        f"crashes {c('engine.worker_crashes')}  "
        f"quarantined {c('engine.quarantined')}")

    lines.append(
        f"pool       size {c('pool.size')}  "
        f"spawned {c('pool.spawned')}  "
        f"reused {c('pool.reused')}  "
        f"discarded {c('pool.discarded')}")

    phases = []
    for name in _PHASES:
        snap = histograms.get(f"serve.phase.{name}") or {}
        if snap.get("count"):
            phases.append(f"{name} {format_seconds(snap['p50'])}")
    if phases:
        lines.append("phase p50  " + "  ".join(phases))

    router = snapshot.get("router")
    if router:
        lines.append(
            f"router     {router.get('healthy', 0)}/"
            f"{len(router.get('backends', {}))} healthy   "
            f"forwarded {c('router.forwarded')}  "
            f"failovers {c('router.failovers')}  "
            f"shed {c('router.shed')}  "
            f"throttled {c('router.throttled')}  "
            f"restarts {c('router.backend_restarts')}")
        for name, state in sorted(router.get("backends", {}).items()):
            status = "up" if state.get("healthy") else (
                "breaker" if state.get("breaker_open") else "down")
            lines.append(
                f"  {name:<8} {status:<7} {state.get('addr', '?'):<21} "
                f"inflight {state.get('inflight', 0):<4} "
                f"probes {state.get('probes_ok', 0)}/"
                f"{state.get('probes_ok', 0) + state.get('probes_failed', 0)} "
                f"restarts {state.get('restarts', 0)}")
    return "\n".join(lines)


def run_top(host: str, port: int, interval: float = 2.0,
            iterations: int = 0, fmt: str = "table",
            out: Callable[[str], None] = print,
            sleep: Callable[[float], None] = time.sleep) -> int:
    """Poll the server's ``metrics`` op and render until interrupted.

    ``iterations`` bounds the number of polls (0 = forever); *out* and
    *sleep* are injectable for tests.  Returns an exit code.
    """
    previous: dict[str, Any] | None = None
    polls = 0
    with ServeClient(host, port) as client:
        while True:
            snapshot = client.metrics()
            if fmt == "json":
                out(json.dumps(snapshot, sort_keys=True))
            elif fmt == "prom":
                out(render_prometheus(snapshot))
            else:
                out(render_dashboard(
                    snapshot, previous,
                    interval if previous is not None else None))
            previous = snapshot
            polls += 1
            if iterations and polls >= iterations:
                return 0
            sleep(interval)
