"""Backend process supervision for ``repro serve --backends N``.

The :class:`ClusterSupervisor` owns N ``repro serve`` subprocesses —
one :class:`~repro.serve.server.AllocationServer` each, all sharing the
same 256-way sharded on-disk :class:`~repro.engine.cache.ResultCache`
(multi-process safe: atomic renames, checksummed envelopes) — and
keeps them alive:

* **spawn** — each backend is launched with ``--port 0`` and its bound
  address scraped from the ``# serving on HOST:PORT`` announce line,
  so N backends never race over fixed ports;
* **restart** — a monitor thread polls the processes; a backend that
  dies outside a drain is respawned with per-backend exponential
  backoff and the router is told the replacement's (new) address
  through :meth:`ClusterRouter.update_backend_threadsafe
  <repro.serve.router.ClusterRouter.update_backend_threadsafe>`;
* **drain** — SIGTERM to every backend, each of which answers
  everything it admitted and exits 0 (the server's own drain path);
  stragglers are killed after a timeout.

This mirrors the engine's worker :class:`~repro.engine.supervisor.
WorkerPool` one layer up: processes are cattle, state lives in the
shared cache, and the only contract is that admitted work is answered
or failed typed — the router's failover covers the gap in between.

:func:`run_cluster` wires supervisor + router together for the CLI;
:class:`ClusterHarness` does the same in-process for tests and
benchmarks.
"""

from __future__ import annotations

import logging
import pathlib
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field

from .router import RouterConfig, RouterThread, run_router

logger = logging.getLogger(__name__)


@dataclass
class ClusterConfig:
    """Tunables of one :class:`ClusterSupervisor`.

    Attributes:
        backends: how many ``repro serve`` processes to run.
        jobs: worker processes *per backend* (each backend has its own
            warm :class:`~repro.engine.supervisor.WorkerPool`).
        cache_dir: the shared persistent result cache every backend
            mounts; ``None`` uses the default.
        host: address the backends bind (always with ``--port 0``).
        spawn_timeout: seconds to wait for a backend's announce line.
        restart_backoff / restart_cap: the n-th consecutive restart of
            one backend waits ``min(cap, backoff * 2**(n-1))`` seconds
            first.
        poll_interval: monitor thread's process-poll cadence.
        serve_faults: path of a JSON
            :class:`~repro.engine.faults.ServeFaultPlan` handed to
            every backend (chaos runs only).
        extra_args: additional ``repro serve`` CLI arguments appended
            to every backend's command line.
    """

    backends: int = 2
    jobs: int = 1
    cache_dir: str | pathlib.Path | None = None
    host: str = "127.0.0.1"
    spawn_timeout: float = 60.0
    restart_backoff: float = 0.05
    restart_cap: float = 2.0
    poll_interval: float = 0.05
    serve_faults: str | pathlib.Path | None = None
    extra_args: tuple[str, ...] = ()


@dataclass
class BackendProcess:
    """One supervised ``repro serve`` subprocess and its address."""

    name: str
    process: subprocess.Popen = field(repr=False)
    host: str = "127.0.0.1"
    port: int = 0
    consecutive_restarts: int = 0
    #: monotonic time before which the monitor must not respawn
    restart_after: float = 0.0

    @property
    def alive(self) -> bool:
        return self.process.poll() is None


def _drain_stdout(process: subprocess.Popen) -> None:
    """Keep reading a backend's stdout so it can never block on a full
    pipe (announce lines past the first are simply dropped)."""

    def pump() -> None:
        try:
            assert process.stdout is not None
            for _ in process.stdout:
                pass
        except (OSError, ValueError):
            pass

    threading.Thread(target=pump, daemon=True).start()


class ClusterSupervisor:
    """Spawns, restarts, and drains the backend fleet."""

    def __init__(self, config: ClusterConfig | None = None):
        self.config = config or ClusterConfig()
        self.backends: dict[str, BackendProcess] = {}
        self.draining = False
        #: lifetime respawns across every backend
        self.restarts = 0
        self._router = None
        self._monitor: threading.Thread | None = None
        self._stop = threading.Event()
        self._lock = threading.Lock()

    # -- spawning --------------------------------------------------------------

    def _command(self, name: str) -> list[str]:
        cmd = [sys.executable, "-m", "repro", "serve",
               "--host", self.config.host, "--port", "0",
               "--backend-id", name,
               "--jobs", str(self.config.jobs)]
        if self.config.cache_dir is not None:
            cmd += ["--cache-dir", str(self.config.cache_dir)]
        if self.config.serve_faults is not None:
            cmd += ["--serve-faults", str(self.config.serve_faults)]
        cmd += list(self.config.extra_args)
        return cmd

    def _spawn(self, name: str) -> tuple[subprocess.Popen, str, int]:
        process = subprocess.Popen(
            self._command(name), stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, text=True)
        assert process.stdout is not None
        deadline = time.monotonic() + self.config.spawn_timeout
        while True:
            if time.monotonic() > deadline:
                process.kill()
                raise RuntimeError(
                    f"backend {name} never announced its port")
            line = process.stdout.readline()
            if not line:
                code = process.poll()
                raise RuntimeError(
                    f"backend {name} exited (code {code}) before "
                    f"announcing")
            if line.startswith("# serving on "):
                addr = line.split("# serving on ", 1)[1].strip()
                host, _, port = addr.rpartition(":")
                _drain_stdout(process)
                return process, host, int(port)

    def start(self) -> dict[str, tuple[str, int]]:
        """Spawn every backend; returns ``name → (host, port)`` for the
        router's ring."""
        addresses: dict[str, tuple[str, int]] = {}
        for i in range(max(1, self.config.backends)):
            name = f"b{i}"
            process, host, port = self._spawn(name)
            self.backends[name] = BackendProcess(name, process, host,
                                                 port)
            addresses[name] = (host, port)
        return addresses

    def addresses(self) -> dict[str, tuple[str, int]]:
        with self._lock:
            return {name: (b.host, b.port)
                    for name, b in self.backends.items()}

    # -- supervision -----------------------------------------------------------

    def attach(self, router) -> None:
        """Hook a live :class:`~repro.serve.router.ClusterRouter` and
        start the restart monitor (idempotent per supervisor)."""
        self._router = router
        if self._monitor is None:
            self._monitor = threading.Thread(target=self._watch,
                                             daemon=True)
            self._monitor.start()

    def _watch(self) -> None:
        while not self._stop.wait(self.config.poll_interval):
            if self.draining:
                continue
            for backend in list(self.backends.values()):
                if backend.alive:
                    backend.consecutive_restarts = 0
                    continue
                now = time.monotonic()
                if backend.restart_after == 0.0:
                    code = backend.process.poll()
                    backend.consecutive_restarts += 1
                    backoff = min(
                        self.config.restart_cap,
                        self.config.restart_backoff
                        * (2 ** (backend.consecutive_restarts - 1)))
                    backend.restart_after = now + backoff
                    logger.warning(
                        "backend %s died (exit %s); restart in %.3fs",
                        backend.name, code, backoff)
                if now < backend.restart_after:
                    continue
                try:
                    process, host, port = self._spawn(backend.name)
                except RuntimeError:
                    # spawn itself failed: back off again and retry
                    backend.restart_after = time.monotonic() + min(
                        self.config.restart_cap,
                        self.config.restart_backoff
                        * (2 ** backend.consecutive_restarts))
                    backend.consecutive_restarts += 1
                    continue
                with self._lock:
                    backend.process = process
                    backend.host, backend.port = host, port
                    backend.restart_after = 0.0
                    self.restarts += 1
                if self._router is not None:
                    self._router.update_backend_threadsafe(
                        backend.name, host, port)

    # -- teardown --------------------------------------------------------------

    def drain(self, timeout: float = 60.0) -> None:
        """SIGTERM every backend and wait for clean exits; this is the
        router's ``on_drain`` hook, so it runs after admission stopped
        and in-flight forwards were answered."""
        self.draining = True
        self._stop.set()
        for backend in self.backends.values():
            if backend.alive:
                try:
                    backend.process.send_signal(signal.SIGTERM)
                except OSError:
                    pass
        deadline = time.monotonic() + timeout
        for backend in self.backends.values():
            remaining = max(0.1, deadline - time.monotonic())
            try:
                backend.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                logger.warning("backend %s ignored the drain; killing",
                               backend.name)
                backend.process.kill()
                backend.process.wait(timeout=10)
        if self._monitor is not None:
            self._monitor.join(timeout=10)

    def kill(self) -> None:
        """Hard teardown (tests' finally blocks): no drain, no waiting
        for admitted work."""
        self.draining = True
        self._stop.set()
        for backend in self.backends.values():
            if backend.alive:
                backend.process.kill()
        for backend in self.backends.values():
            try:
                backend.process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                pass
        if self._monitor is not None:
            self._monitor.join(timeout=10)

    def exit_codes(self) -> dict[str, int | None]:
        return {name: b.process.poll()
                for name, b in self.backends.items()}


def run_cluster(cluster_config: ClusterConfig,
                router_config: RouterConfig,
                announce=None) -> int:
    """The CLI path of ``repro serve --backends N``: boot the fleet,
    route in the foreground, drain everything on SIGTERM/SIGINT."""
    import asyncio

    supervisor = ClusterSupervisor(cluster_config)
    addresses = supervisor.start()
    try:
        return asyncio.run(run_router(
            addresses, router_config, announce=announce,
            on_started=supervisor.attach, on_drain=supervisor.drain))
    finally:
        supervisor.kill()  # no-op after a clean drain


class ClusterHarness:
    """Subprocess backends + in-process router, as a context manager.

    The chaos suite and the cluster benchmarks use this: real ``repro
    serve`` processes (so injected kills take down a whole backend)
    behind a :class:`~repro.serve.router.RouterThread` whose restart
    callback is wired to the supervisor.

    Usage::

        with ClusterHarness(ClusterConfig(backends=2,
                                          cache_dir=tmp)) as cluster:
            client = ResilientClient("127.0.0.1", cluster.port)
    """

    def __init__(self, cluster_config: ClusterConfig | None = None,
                 router_config: RouterConfig | None = None):
        self.cluster_config = cluster_config or ClusterConfig()
        self.router_config = router_config or RouterConfig()
        self.supervisor = ClusterSupervisor(self.cluster_config)
        self.router_thread: RouterThread | None = None

    @property
    def port(self) -> int:
        assert self.router_thread is not None
        return self.router_thread.port

    @property
    def router(self):
        assert self.router_thread is not None
        return self.router_thread.router

    def __enter__(self) -> "ClusterHarness":
        addresses = self.supervisor.start()
        self.router_thread = RouterThread(addresses, self.router_config)
        try:
            self.router_thread.__enter__()
            assert self.router_thread.router is not None
            self.supervisor.attach(self.router_thread.router)
        except BaseException:
            self.supervisor.kill()
            raise
        return self

    def __exit__(self, *exc) -> None:
        try:
            if self.router_thread is not None:
                # the router's drain answers in-flight work first; the
                # supervisor then drains the backends
                assert self.router_thread.router is not None
                self.router_thread.router.on_drain = self.supervisor.drain
                self.router_thread.stop()
        finally:
            self.supervisor.kill()
