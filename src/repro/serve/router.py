"""The cluster front-end: consistent-hash routing with graceful decay.

One :class:`ClusterRouter` sits in front of N
:class:`~repro.serve.server.AllocationServer` backends (usually spawned
by :class:`~repro.serve.cluster.ClusterSupervisor`) and speaks the same
JSONL protocol on both sides, so every existing client works unchanged.
The moving parts:

* **Consistent-hash routing** — engine requests route by a hash of the
  canonical ``request`` object over a ring with virtual nodes
  (:class:`HashRing`), so identical requests — hence identical engine
  ``request_key``s — always land on the same backend and the backend's
  in-flight dedup keeps collapsing concurrent duplicates.  Responses
  pass through as the backend's raw bytes (the byte-identity guarantee
  crosses the router untouched); only the *request* envelope is
  re-encoded, to re-stamp the remaining ``deadline_s`` budget per hop.
* **Active health checks** — a probe task per backend pings on a short
  interval; consecutive failures open a circuit breaker with
  exponential backoff (:class:`BackendState`), and an open breaker
  takes the backend out of the routing ring until a probe succeeds.
* **Failover** — a forward that dies in transport (backend crashed
  mid-request) or comes back ``draining``/``unavailable`` retries on
  the next distinct backend in ring order.  Requests are idempotent
  (content-hashed, cached, deterministic), so retrying a request whose
  first execution may or may not have finished is safe — at worst the
  shared cache already has the answer.  Ring order is deterministic,
  so concurrent failovers of one key all land on the same peer and
  dedup still holds.
* **Graceful degradation** — instead of the single binary ``overload``
  cliff, the router sheds probabilistically between per-backend
  in-flight watermarks (``shed_low`` → ``shed_high``), meters each
  client through a fair-admission :class:`TokenBucket` (the v2 ``client``
  envelope field; peer address otherwise), and stamps ``retry_after``
  hints on every rejection so well-behaved clients back off by the
  right amount.
* **Aggregation** — ``metrics`` fans out to every backend and merges
  counters and histogram buckets into one cluster view (per-backend
  snapshots ride along under ``backends`` for ``repro top``);
  ``debug`` merges every backend's live flight-recorder dump.
* **Drain** — ``shutdown`` (or SIGTERM via
  :func:`~repro.serve.cluster.run_cluster`) stops admission, answers
  everything already forwarded, then drains every backend.

The router deliberately holds **no request state** beyond in-flight
accounting: all memo/cache/dedup state lives in the backends and the
shared sharded :class:`~repro.engine.cache.ResultCache`, which is what
makes killing and restarting any backend survivable.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import logging
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from ..obs.metrics import Histogram, MetricsRegistry
from . import protocol

logger = logging.getLogger(__name__)


def _hash_point(text: str) -> int:
    return int.from_bytes(
        hashlib.sha256(text.encode()).digest()[:8], "big")


class HashRing:
    """Consistent hashing over backend names with virtual nodes.

    Virtual nodes smooth the load split (a 2-backend ring with one
    point each would route ~76/24 for unlucky hashes); ring order also
    defines each key's deterministic failover sequence.
    """

    def __init__(self, names: list[str], virtual_nodes: int = 32):
        if not names:
            raise ValueError("a hash ring needs at least one backend")
        self.names = sorted(names)
        points = []
        for name in self.names:
            for i in range(max(1, virtual_nodes)):
                points.append((_hash_point(f"{name}#{i}"), name))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [n for _, n in points]

    def order(self, key: str) -> list[str]:
        """Every backend, in this key's preference order (primary
        first, then the failover sequence)."""
        start = bisect.bisect_right(self._points, _hash_point(key))
        seen: list[str] = []
        for i in range(len(self._owners)):
            owner = self._owners[(start + i) % len(self._owners)]
            if owner not in seen:
                seen.append(owner)
                if len(seen) == len(self.names):
                    break
        return seen

    def primary(self, key: str) -> str:
        return self.order(key)[0]


class TokenBucket:
    """Fair admission: *rate* tokens/second, holding at most *burst*.

    :meth:`admit` spends one token and returns 0.0, or returns how
    many seconds until a token accrues — the ``retry_after`` hint for
    the throttled client.
    """

    def __init__(self, rate: float, burst: float,
                 now: float | None = None):
        self.rate = max(1e-9, rate)
        self.burst = max(1.0, burst)
        self.tokens = self.burst
        self.last = time.monotonic() if now is None else now

    def admit(self, now: float | None = None, cost: float = 1.0) -> float:
        if now is None:
            now = time.monotonic()
        self.tokens = min(self.burst,
                          self.tokens + (now - self.last) * self.rate)
        self.last = now
        if self.tokens >= cost:
            self.tokens -= cost
            return 0.0
        return (cost - self.tokens) / self.rate


@dataclass
class RouterConfig:
    """Tunables of one :class:`ClusterRouter`.

    Attributes:
        host / port: listen address (port 0 binds an ephemeral port).
        virtual_nodes: ring points per backend.
        ping_interval: seconds between health probes of a healthy
            backend.
        ping_timeout: per-probe connect+roundtrip budget.
        breaker_base / breaker_cap: circuit-breaker backoff after the
            n-th consecutive probe failure is
            ``min(cap, base * 2**(n-1))`` seconds.
        shed_low / shed_high: per-backend in-flight watermarks.  Below
            ``shed_low`` everything is admitted; between them requests
            are shed with probability rising linearly to 1.0 at
            ``shed_high``.
        shed_seed: seeds the shedding RNG so chaos runs reproduce.
        bucket_rate / bucket_burst: per-client fair-admission tokens
            per second and burst capacity.
        failover_attempts: distinct backends tried per request.
        forward_timeout: per-forward roundtrip budget in seconds.
    """

    host: str = "127.0.0.1"
    port: int = 0
    virtual_nodes: int = 32
    ping_interval: float = 0.2
    ping_timeout: float = 2.0
    breaker_base: float = 0.05
    breaker_cap: float = 2.0
    shed_low: int = 64
    shed_high: int = 256
    shed_seed: int = 0
    bucket_rate: float = 500.0
    bucket_burst: float = 250.0
    failover_attempts: int = 3
    forward_timeout: float = 120.0


@dataclass
class BackendState:
    """What the router knows about one backend right now."""

    name: str
    host: str
    port: int
    #: set by the first successful probe; routing skips unhealthy
    #: backends entirely
    healthy: bool = False
    #: router-tracked concurrent forwards (the shedding signal —
    #: cheaper than asking the backend for its queue depth per request)
    inflight: int = 0
    consecutive_failures: int = 0
    #: circuit breaker: no probes or forwards until this deadline
    breaker_until: float = 0.0
    probes_ok: int = 0
    probes_failed: int = 0
    #: times the cluster supervisor replaced this backend's process
    restarts: int = 0

    def available(self, now: float) -> bool:
        return self.healthy and now >= self.breaker_until

    def describe(self, now: float) -> dict[str, Any]:
        return {"addr": f"{self.host}:{self.port}",
                "healthy": self.healthy,
                "inflight": self.inflight,
                "breaker_open": now < self.breaker_until,
                "consecutive_failures": self.consecutive_failures,
                "probes_ok": self.probes_ok,
                "probes_failed": self.probes_failed,
                "restarts": self.restarts}


class _Link:
    """One backend connection belonging to one client connection.

    Round-trips are serialized under a lock, so responses match the
    request just written and pass through as raw bytes.  A link is
    pinned to the address it dialled; when the backend restarts on a
    new port the link errors out and is re-dialled lazily.
    """

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.lock = asyncio.Lock()

    async def connect(self) -> None:
        if self.writer is None:
            self.reader, self.writer = await asyncio.open_connection(
                self.host, self.port)

    async def roundtrip(self, payload: bytes, request_id: Any) -> bytes:
        """Write one request line, return the matching raw reply line."""
        # canonical responses let us match the id by substring and skip
        # a full json.loads on the forwarding hot path
        needle = None
        if isinstance(request_id, str):
            needle = b'"id":' + json.dumps(request_id).encode()
        async with self.lock:
            await self.connect()
            assert self.reader is not None and self.writer is not None
            self.writer.write(payload)
            await self.writer.drain()
            while True:
                line = await self.reader.readline()
                if not line:
                    raise ConnectionError("backend closed the connection")
                if needle is not None and needle in line \
                        and line.startswith(b'{"'):
                    return line
                try:
                    obj = json.loads(line)
                except ValueError:
                    raise ConnectionError("backend sent garbage")
                if isinstance(obj, dict) and obj.get("id") == request_id:
                    return line

    def close(self) -> None:
        if self.writer is not None:
            try:
                self.writer.close()
            except (ConnectionError, OSError, RuntimeError):
                pass
        self.reader = self.writer = None


class ClusterRouter:
    """The asyncio front-end; owns admission, routing, and health."""

    def __init__(self, backends: dict[str, tuple[str, int]],
                 config: RouterConfig | None = None):
        self.config = config or RouterConfig()
        self.backends = {name: BackendState(name, host, port)
                         for name, (host, port) in backends.items()}
        self.ring = HashRing(list(self.backends),
                             self.config.virtual_nodes)
        self.metrics = MetricsRegistry()
        self.buckets: dict[str, TokenBucket] = {}
        self._rng = random.Random(self.config.shed_seed)
        self.draining = False
        self.port: int | None = None
        self._server: asyncio.Server | None = None
        self._probe_tasks: list[asyncio.Task] = []
        self._drain_task: asyncio.Task | None = None
        self._closed = asyncio.Event()
        self._stopping = asyncio.Event()
        self._conn_tasks: set[asyncio.Task] = set()
        self._inflight_total = 0
        self._idle = asyncio.Event()
        self._idle.set()
        #: called (in the loop) when the drain begins — the cluster
        #: supervisor hooks backend drain/teardown here
        self.on_drain = None
        self._loop: asyncio.AbstractEventLoop | None = None

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        for state in self.backends.values():
            self._probe_tasks.append(
                asyncio.create_task(self._probe_loop(state)))

    def request_shutdown(self) -> None:
        """Begin the drain (idempotent; safe from a signal handler)."""
        if self._drain_task is None:
            self.draining = True
            self._drain_task = asyncio.create_task(self._drain())

    async def wait_closed(self) -> None:
        await self._closed.wait()

    async def _drain(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # every forward already in flight still gets its answer
        await self._idle.wait()
        self._stopping.set()
        for task in self._probe_tasks:
            task.cancel()
        if self._probe_tasks:
            await asyncio.gather(*self._probe_tasks,
                                 return_exceptions=True)
        if self.on_drain is not None:
            # backend teardown is blocking subprocess work; keep the
            # loop serving draining-rejections meanwhile
            await asyncio.get_running_loop().run_in_executor(
                None, self.on_drain)
        self._closed.set()

    def update_backend(self, name: str, host: str, port: int) -> None:
        """A backend came back on a (possibly new) address — reset its
        breaker so the next probe can mark it healthy.  Must run on the
        router's loop; the cluster supervisor goes through
        :meth:`update_backend_threadsafe`."""
        state = self.backends[name]
        state.host, state.port = host, port
        state.healthy = False
        state.consecutive_failures = 0
        state.breaker_until = 0.0
        state.restarts += 1
        self.metrics.counter("router.backend_restarts").inc()

    def update_backend_threadsafe(self, name: str, host: str,
                                  port: int) -> None:
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self.update_backend, name,
                                        host, port)

    # -- health ----------------------------------------------------------------

    async def _probe_loop(self, state: BackendState) -> None:
        try:
            while not self._stopping.is_set():
                now = time.monotonic()
                if now < state.breaker_until:
                    await asyncio.sleep(state.breaker_until - now)
                    continue
                if await self._probe(state):
                    if not state.healthy:
                        self.metrics.counter(
                            "router.backend_recoveries").inc()
                    state.healthy = True
                    state.consecutive_failures = 0
                    state.probes_ok += 1
                    await asyncio.sleep(self.config.ping_interval)
                else:
                    state.healthy = False
                    state.probes_failed += 1
                    state.consecutive_failures += 1
                    self.metrics.counter("router.failed_probes").inc()
                    backoff = min(
                        self.config.breaker_cap,
                        self.config.breaker_base
                        * (2 ** (state.consecutive_failures - 1)))
                    state.breaker_until = time.monotonic() + backoff
        except asyncio.CancelledError:
            pass

    async def _probe(self, state: BackendState) -> bool:
        """One fresh-connection ping against the backend's current
        address.  Fresh because a wedged accept loop must fail the
        probe even while old connections still answer."""
        writer = None
        try:
            async with asyncio.timeout(self.config.ping_timeout):
                reader, writer = await asyncio.open_connection(
                    state.host, state.port)
                writer.write(protocol.encode_line(
                    {"v": protocol.PROTOCOL_VERSION, "id": "hc",
                     "op": "ping"}))
                await writer.drain()
                line = await reader.readline()
            obj = json.loads(line) if line else None
            return bool(isinstance(obj, dict) and obj.get("ok"))
        except (ConnectionError, OSError, TimeoutError, ValueError):
            return False
        finally:
            if writer is not None:
                writer.close()

    # -- connections -----------------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        write_lock = asyncio.Lock()
        links: dict[str, _Link] = {}
        peer = writer.get_extra_info("peername")
        peer_id = f"{peer[0]}:{peer[1]}" if isinstance(peer, tuple) \
            else "?"
        pending: set[asyncio.Task] = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.create_task(self._serve_line(
                    line, writer, write_lock, links, peer_id))
                pending.add(task)
                self._conn_tasks.add(task)
                task.add_done_callback(pending.discard)
                task.add_done_callback(self._conn_tasks.discard)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # loop teardown with the connection still open (a client
            # outliving the drain); exit quietly — asyncio logs a
            # cancelled connection-handler task as an error
            pass
        finally:
            if pending:
                await asyncio.gather(*list(pending),
                                     return_exceptions=True)
            for link in links.values():
                link.close()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _serve_line(self, line: bytes,
                          writer: asyncio.StreamWriter,
                          write_lock: asyncio.Lock,
                          links: dict[str, _Link],
                          peer_id: str) -> None:
        started = time.monotonic()
        payload = await self._route(line, links, peer_id)
        self.metrics.histogram("router.request_seconds").observe(
            time.monotonic() - started)
        async with write_lock:
            try:
                writer.write(payload)
                await writer.drain()
            except (ConnectionError, OSError):
                pass

    async def _route(self, line: bytes, links: dict[str, _Link],
                     peer_id: str) -> bytes:
        """One request line → one raw response line (never raises)."""
        request_id = None
        try:
            obj = protocol.decode_line(line)
            request_id = obj.get("id")
            _, op = protocol.check_envelope(obj)
            client, deadline_s = protocol.envelope_meta(obj)
            self.metrics.counter("router.requests").inc()
            if op == "ping":
                now = time.monotonic()
                healthy = sum(1 for s in self.backends.values()
                              if s.available(now))
                return protocol.encode_line(protocol.ok_response(
                    request_id, {"pong": True, "healthy": healthy,
                                 "backends": len(self.backends)}))
            if op == "metrics":
                return protocol.encode_line(protocol.ok_response(
                    request_id, await self._aggregate_metrics(links)))
            if op == "debug":
                return protocol.encode_line(protocol.ok_response(
                    request_id, await self._aggregate_debug(links)))
            if op == "shutdown":
                self.request_shutdown()
                return protocol.encode_line(protocol.ok_response(
                    request_id, {"draining": True}))
            return await self._forward(obj, line, request_id, client,
                                       deadline_s, links, peer_id)
        except protocol.ProtocolError as exc:
            self.metrics.counter("router.bad_requests").inc()
            return protocol.encode_line(protocol.error_response(
                request_id, exc.kind, exc.message))
        except Exception as exc:  # never kill the connection loop
            logger.exception("internal error routing request")
            self.metrics.counter("router.internal_errors").inc()
            return protocol.encode_line(protocol.error_response(
                request_id, "internal",
                f"{type(exc).__name__}: {exc}"))

    # -- admission + forwarding ------------------------------------------------

    def _admission_error(self, request_id: Any, kind: str, message: str,
                         retry_after: float) -> bytes:
        return protocol.encode_line(protocol.error_response(
            request_id, kind, message, retry_after=retry_after))

    def _shed_probability(self, inflight: int) -> float:
        low, high = self.config.shed_low, self.config.shed_high
        if inflight < low:
            return 0.0
        if inflight >= high:
            return 1.0
        return (inflight - low) / max(1, high - low)

    async def _forward(self, obj: dict, line: bytes, request_id: Any,
                       client: str | None, deadline_s: float | None,
                       links: dict[str, _Link], peer_id: str) -> bytes:
        if self.draining:
            self.metrics.counter("router.drain_rejections").inc()
            return self._admission_error(
                request_id, "draining", "router is shutting down",
                retry_after=0.1)

        # fair admission: one token per engine request, metered by the
        # declared client identity (peer address for v1 clients)
        bucket_key = client if client is not None else peer_id
        bucket = self.buckets.get(bucket_key)
        if bucket is None:
            bucket = TokenBucket(self.config.bucket_rate,
                                 self.config.bucket_burst)
            self.buckets[bucket_key] = bucket
        wait = bucket.admit()
        if wait > 0.0:
            self.metrics.counter("router.throttled").inc()
            return self._admission_error(
                request_id, "overload",
                f"client {bucket_key!r} over its admission rate",
                retry_after=wait)

        route_key = protocol.dumps(obj.get("request"))
        order = self.ring.order(route_key)
        now = time.monotonic()
        candidates = [self.backends[name] for name in order
                      if self.backends[name].available(now)]
        if not candidates:
            self.metrics.counter("router.unavailable").inc()
            return self._admission_error(
                request_id, "unavailable", "no healthy backend",
                retry_after=self.config.breaker_base * 4)

        # probabilistic shedding against the primary's in-flight depth:
        # never reroute shed traffic — that would defeat per-backend
        # dedup and melt the next backend too
        primary = candidates[0]
        shed_p = self._shed_probability(primary.inflight)
        if shed_p and self._rng.random() < shed_p:
            self.metrics.counter("router.shed").inc()
            return self._admission_error(
                request_id, "overload",
                f"backend {primary.name} at {primary.inflight} "
                f"in-flight; shed",
                retry_after=0.01 + 0.05 * shed_p)

        expires = now + deadline_s if deadline_s is not None else None
        attempts = max(1, self.config.failover_attempts)
        last_error = "no forward attempted"
        for state in candidates[:attempts]:
            remaining = None
            if expires is not None:
                remaining = expires - time.monotonic()
                if remaining <= 0:
                    self.metrics.counter("router.expired").inc()
                    return protocol.encode_line(protocol.error_response(
                        request_id, "expired",
                        "deadline spent before a backend answered"))
            if remaining is None:
                payload = line    # no deadline to re-stamp: pass the
            else:                 # client's bytes through untouched
                hop = dict(obj)
                hop["deadline_s"] = round(remaining, 4)
                payload = protocol.encode_line(hop)
            link = links.get(state.name)
            if link is None or (link.host, link.port) != (state.host,
                                                          state.port):
                if link is not None:
                    link.close()
                link = _Link(state.host, state.port)
                links[state.name] = link
            state.inflight += 1
            self._forward_started()
            try:
                timeout = self.config.forward_timeout
                if remaining is not None:
                    timeout = min(timeout, remaining + 0.1)
                async with asyncio.timeout(timeout):
                    raw = await link.roundtrip(payload, request_id)
            except (ConnectionError, OSError, TimeoutError) as exc:
                link.close()
                last_error = f"{state.name}: {type(exc).__name__}: {exc}"
                self.metrics.counter("router.failovers").inc()
                continue
            finally:
                state.inflight -= 1
                self._forward_finished()
            # canonical responses make success a substring check; only
            # errors (rare) pay a parse to see if the kind fails over
            if b'"ok":true' not in raw:
                response = json.loads(raw)
                kind = (response.get("error") or {}).get("kind")
                if kind in ("draining", "unavailable"):
                    last_error = f"{state.name}: {kind}"
                    self.metrics.counter("router.failovers").inc()
                    continue
            self.metrics.counter("router.forwarded").inc()
            return raw
        self.metrics.counter("router.unavailable").inc()
        return self._admission_error(
            request_id, "unavailable",
            f"every backend failed ({last_error})",
            retry_after=self.config.breaker_base * 4)

    def _forward_started(self) -> None:
        self._inflight_total += 1
        self._idle.clear()

    def _forward_finished(self) -> None:
        self._inflight_total -= 1
        if self._inflight_total <= 0:
            self._idle.set()

    # -- aggregation ops -------------------------------------------------------

    async def _backend_call(self, state: BackendState,
                            links: dict[str, _Link], op: str) -> Any:
        """One op against one backend over this connection's link;
        ``None`` if the backend could not answer."""
        link = links.get(state.name)
        if link is None or (link.host, link.port) != (state.host,
                                                      state.port):
            if link is not None:
                link.close()
            link = _Link(state.host, state.port)
            links[state.name] = link
        rid = f"agg-{op}-{state.name}"
        try:
            async with asyncio.timeout(self.config.ping_timeout):
                raw = await link.roundtrip(protocol.encode_line(
                    {"v": protocol.PROTOCOL_VERSION, "id": rid,
                     "op": op}), rid)
        except (ConnectionError, OSError, TimeoutError):
            link.close()
            return None
        response = json.loads(raw)
        return response.get("result") if response.get("ok") else None

    def _router_snapshot(self) -> dict[str, Any]:
        now = time.monotonic()
        return {
            "healthy": sum(1 for s in self.backends.values()
                           if s.available(now)),
            "draining": self.draining,
            "clients": len(self.buckets),
            "backends": {name: state.describe(now)
                         for name, state in sorted(self.backends.items())},
        }

    async def _aggregate_metrics(self, links: dict[str, _Link]
                                 ) -> dict[str, Any]:
        """Every backend's snapshot merged into one cluster view."""
        merged = MetricsRegistry()
        for name, value in self.metrics.counters().items():
            merged.counter(name).inc(value)
        histograms: dict[str, Histogram] = {}
        per_backend: dict[str, Any] = {}
        queue_depth = inflight = 0
        for name, state in sorted(self.backends.items()):
            snap = await self._backend_call(state, links, "metrics")
            if snap is None:
                per_backend[name] = None
                continue
            per_backend[name] = snap
            queue_depth += snap.get("queue_depth", 0)
            inflight += snap.get("inflight", 0)
            for cname, value in snap.get("counters", {}).items():
                merged.counter(cname).inc(value)
            for hname, hsnap in snap.get("histograms", {}).items():
                if not hsnap.get("count"):
                    continue
                combined = histograms.setdefault(hname,
                                                 Histogram(hname))
                combined.count += hsnap["count"]
                combined.total += hsnap["total"]
                combined.min = min(combined.min, hsnap["min"])
                combined.max = max(combined.max, hsnap["max"])
                combined.merge_counts(hsnap.get("buckets", []))
        snapshot = {"counters": merged.counters()}
        snapshot["histograms"] = dict(
            self.metrics.histograms(),
            **{name: h.snapshot() for name, h in sorted(
                histograms.items())})
        snapshot["queue_depth"] = queue_depth
        snapshot["inflight"] = inflight
        snapshot["router"] = self._router_snapshot()
        snapshot["backends"] = per_backend
        return snapshot

    async def _aggregate_debug(self, links: dict[str, _Link]
                               ) -> dict[str, Any]:
        """Every backend's live flight-recorder dump, merged: slowest
        across the cluster first, failures in backend order."""
        per_backend: dict[str, Any] = {}
        slowest: list[dict] = []
        failures: list[dict] = []
        recorded = 0
        for name, state in sorted(self.backends.items()):
            dump = await self._backend_call(state, links, "debug")
            per_backend[name] = dump
            if dump is None:
                continue
            recorded += dump.get("recorded", 0)
            for entry in dump.get("slowest", []):
                entry = dict(entry, backend=name)
                slowest.append(entry)
            for entry in dump.get("failures", []):
                failures.append(dict(entry, backend=name))
        slowest.sort(
            key=lambda e: -(e.get("access", {}).get("total_s") or 0.0))
        return {"recorded": recorded, "slowest": slowest,
                "failures": failures, "backends": per_backend}


async def run_router(backends: dict[str, tuple[str, int]],
                     config: RouterConfig, announce=None,
                     on_drain=None, on_started=None) -> int:
    """Start, announce, install signal-driven drain, route until done.

    *announce* receives the bound ``(host, port)`` (the CLI prints the
    ``# serving on HOST:PORT`` line from it).  *on_drain* runs — off
    the loop — once admission has stopped and in-flight forwards have
    answered; the cluster supervisor drains its backends there.
    *on_started* receives the live :class:`ClusterRouter` before
    serving begins (the cluster supervisor wires restart callbacks
    through it).
    """
    router = ClusterRouter(backends, config)
    router.on_drain = on_drain
    await router.start()
    if on_started is not None:
        on_started(router)
    if announce is not None:
        announce(config.host, router.port)
    loop = asyncio.get_running_loop()
    for sig_name in ("SIGTERM", "SIGINT"):
        import signal as _signal

        try:
            loop.add_signal_handler(getattr(_signal, sig_name),
                                    router.request_shutdown)
        except (NotImplementedError, RuntimeError):
            pass
    await router.wait_closed()
    return 0


class RouterThread:
    """An in-process router on a background thread (tests, benches).

    Usage::

        with ServerThread(engine_a) as a, ServerThread(engine_b) as b:
            backends = {"b0": ("127.0.0.1", a.port),
                        "b1": ("127.0.0.1", b.port)}
            with RouterThread(backends) as rt:
                client = ResilientClient("127.0.0.1", rt.port)
    """

    def __init__(self, backends: dict[str, tuple[str, int]],
                 config: RouterConfig | None = None):
        self.backends = backends
        self.config = config or RouterConfig()
        self.router: ClusterRouter | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    @property
    def port(self) -> int:
        assert self.router is not None and self.router.port is not None
        return self.router.port

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.router = ClusterRouter(self.backends, self.config)
        await self.router.start()
        self._ready.set()
        await self.router.wait_closed()

    def wait_healthy(self, count: int | None = None,
                     timeout: float = 30.0) -> None:
        """Block until *count* backends (default: all) answer probes."""
        assert self.router is not None
        want = count if count is not None else len(self.backends)
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            now = time.monotonic()
            healthy = sum(1 for s in self.router.backends.values()
                          if s.available(now))
            if healthy >= want:
                return
            time.sleep(0.02)
        raise TimeoutError(f"only waiting for {want} healthy backends")

    def __enter__(self) -> "RouterThread":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("router thread failed to start")
        self.wait_healthy()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def stop(self) -> None:
        if self._loop is not None and self.router is not None:
            try:
                self._loop.call_soon_threadsafe(
                    self.router.request_shutdown)
            except RuntimeError:
                pass
        self._thread.join(timeout=60)
