"""A threaded load generator for the allocation server.

``run_load`` opens one :class:`~repro.serve.client.ServeClient` per
simulated client, round-robins a request corpus across them, and
reports latency percentiles and sustained throughput — the numbers
``benchmarks/bench_serve.py`` gates on.  Overload rejections are part
of the protocol, not failures: the generator counts them and retries
with a short backoff.

Also runnable by hand::

    python -m repro.serve.loadgen --port 4540 --clients 8 --requests 100
"""

from __future__ import annotations

import argparse
import threading
import time
from dataclasses import dataclass, field

from ..obs.metrics import percentile
from .client import ServeClient, ServeError

__all__ = ["LoadReport", "default_corpus", "percentile", "run_load"]


@dataclass
class LoadReport:
    """What one load run measured."""

    clients: int = 0
    requests: int = 0
    ok: int = 0
    failed: int = 0
    #: overload rejections absorbed (each was retried)
    rejected: int = 0
    duration: float = 0.0
    latencies: list[float] = field(default_factory=list, repr=False)

    @property
    def throughput(self) -> float:
        """Completed requests per second over the whole run."""
        return self.ok / self.duration if self.duration > 0 else 0.0

    def latency_ms(self, q: float) -> float:
        return percentile(self.latencies, q) * 1000.0

    def as_json(self) -> dict:
        return {
            "clients": self.clients,
            "requests": self.requests,
            "ok": self.ok,
            "failed": self.failed,
            "rejected": self.rejected,
            "duration_s": round(self.duration, 6),
            "throughput_rps": round(self.throughput, 3),
            "p50_ms": round(self.latency_ms(50), 3),
            "p99_ms": round(self.latency_ms(99), 3),
        }


def run_load(host: str, port: int, corpus: list[dict], clients: int,
             total_requests: int, op: str = "allocate",
             timeout: float = 120.0) -> LoadReport:
    """Fire *total_requests* (round-robin over *corpus*) from *clients*
    concurrent connections; returns the merged :class:`LoadReport`."""
    assert corpus, "load corpus is empty"
    report = LoadReport(clients=clients, requests=total_requests)
    lock = threading.Lock()
    counts = [total_requests // clients] * clients
    for i in range(total_requests % clients):
        counts[i] += 1

    def worker(worker_index: int, quota: int) -> None:
        ok = failed = rejected = 0
        latencies: list[float] = []
        with ServeClient(host, port, timeout=timeout) as client:
            for n in range(quota):
                payload = corpus[(worker_index + n * clients)
                                 % len(corpus)]
                started = time.monotonic()
                while True:
                    try:
                        client.call(op, payload)
                        ok += 1
                    except ServeError as exc:
                        if exc.kind == "overload":
                            rejected += 1
                            time.sleep(0.005)
                            continue
                        failed += 1
                    break
                latencies.append(time.monotonic() - started)
        with lock:
            report.ok += ok
            report.failed += failed
            report.rejected += rejected
            report.latencies.extend(latencies)

    threads = [threading.Thread(target=worker, args=(i, counts[i]))
               for i in range(clients) if counts[i]]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.duration = time.monotonic() - started
    return report


def default_corpus(kernels: list[str] | None = None,
                   k: int = 8) -> list[dict]:
    """A small mixed corpus: each kernel under both allocator modes."""
    names = kernels or ["zeroin", "fehl", "spline"]
    return [{"kernel": name, "int_regs": k, "float_regs": k, "mode": mode}
            for name in names for mode in ("chaitin", "remat")]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="drive load at a running allocation server")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=100)
    parser.add_argument("--k", type=int, default=8,
                        help="register count of the corpus requests")
    parser.add_argument("--kernels", default=None,
                        help="comma-separated kernel names")
    args = parser.parse_args(argv)
    kernels = args.kernels.split(",") if args.kernels else None
    report = run_load(args.host, args.port,
                      default_corpus(kernels, args.k),
                      clients=args.clients,
                      total_requests=args.requests)
    import json

    print(json.dumps(report.as_json(), indent=2))
    return 0 if report.failed == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
