"""A threaded load generator for the allocation server and cluster.

``run_load`` opens one :class:`~repro.serve.client.ServeClient` per
simulated client, round-robins a request corpus across them, and
reports latency percentiles and sustained throughput — the numbers
``benchmarks/bench_serve.py`` gates on.  Retryable rejections
(``overload`` / ``draining`` / ``unavailable`` — see
:attr:`ServeError.retryable <repro.serve.client.ServeError.retryable>`)
are part of the protocol, not failures: the generator counts them and
retries with a short backoff honouring the server's ``retry_after``
hint.

For the cluster's fairness experiments each simulated client can carry
a stable ``client_id`` (the router's fair-admission token buckets
meter by it) and a per-request *think time*; the report then breaks
latencies down per client id, so a test can assert that a polite
client's p99 survives a greedy neighbour.

Also runnable by hand::

    python -m repro.serve.loadgen --port 4540 --clients 8 --requests 100
"""

from __future__ import annotations

import argparse
import threading
import time
from dataclasses import dataclass, field

from ..obs.metrics import percentile
from .client import ServeClient, ServeError

__all__ = ["LoadReport", "default_corpus", "percentile", "run_load"]


@dataclass
class LoadReport:
    """What one load run measured."""

    clients: int = 0
    requests: int = 0
    ok: int = 0
    failed: int = 0
    #: retryable rejections absorbed (each was retried)
    rejected: int = 0
    duration: float = 0.0
    latencies: list[float] = field(default_factory=list, repr=False)
    #: per-``client_id`` latencies (only ids given to :func:`run_load`)
    client_latencies: dict[str, list[float]] = field(
        default_factory=dict, repr=False)

    @property
    def throughput(self) -> float:
        """Completed requests per second over the whole run."""
        return self.ok / self.duration if self.duration > 0 else 0.0

    def latency_ms(self, q: float) -> float:
        return percentile(self.latencies, q) * 1000.0

    def client_latency_ms(self, client_id: str, q: float) -> float:
        return percentile(self.client_latencies.get(client_id, []),
                          q) * 1000.0

    def as_json(self) -> dict:
        return {
            "clients": self.clients,
            "requests": self.requests,
            "ok": self.ok,
            "failed": self.failed,
            "rejected": self.rejected,
            "duration_s": round(self.duration, 6),
            "throughput_rps": round(self.throughput, 3),
            "p50_ms": round(self.latency_ms(50), 3),
            "p99_ms": round(self.latency_ms(99), 3),
            "client_p99_ms": {
                cid: round(self.client_latency_ms(cid, 99), 3)
                for cid in sorted(self.client_latencies)},
        }


def run_load(host: str, port: int, corpus: list[dict], clients: int,
             total_requests: int, op: str = "allocate",
             timeout: float = 120.0,
             client_ids: list[str] | None = None,
             think_time: float = 0.0,
             max_rejects: int = 10_000) -> LoadReport:
    """Fire *total_requests* (round-robin over *corpus*) from *clients*
    concurrent connections; returns the merged :class:`LoadReport`.

    *client_ids*, when given, assigns simulated client *i* the identity
    ``client_ids[i % len(client_ids)]`` — several threads may share one
    identity (a multi-connection tenant) and the router meters them as
    one.  *think_time* sleeps between a client's requests.
    *max_rejects* bounds retryable-rejection retries per request so an
    unhealthy cluster fails the run instead of spinning forever.
    """
    assert corpus, "load corpus is empty"
    report = LoadReport(clients=clients, requests=total_requests)
    lock = threading.Lock()
    counts = [total_requests // clients] * clients
    for i in range(total_requests % clients):
        counts[i] += 1

    def worker(worker_index: int, quota: int) -> None:
        client_id = None
        if client_ids:
            client_id = client_ids[worker_index % len(client_ids)]
        ok = failed = rejected = 0
        latencies: list[float] = []
        with ServeClient(host, port, timeout=timeout,
                         client_id=client_id) as client:
            for n in range(quota):
                if think_time and n:
                    time.sleep(think_time)
                payload = corpus[(worker_index + n * clients)
                                 % len(corpus)]
                started = time.monotonic()
                rejects = 0
                while True:
                    try:
                        client.call(op, payload)
                        ok += 1
                    except ServeError as exc:
                        if exc.retryable and rejects < max_rejects:
                            rejected += 1
                            rejects += 1
                            hint = exc.retry_after
                            time.sleep(hint if hint is not None
                                       else 0.005)
                            continue
                        failed += 1
                    break
                latencies.append(time.monotonic() - started)
        with lock:
            report.ok += ok
            report.failed += failed
            report.rejected += rejected
            report.latencies.extend(latencies)
            if client_id is not None:
                report.client_latencies.setdefault(
                    client_id, []).extend(latencies)

    threads = [threading.Thread(target=worker, args=(i, counts[i]))
               for i in range(clients) if counts[i]]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.duration = time.monotonic() - started
    return report


def default_corpus(kernels: list[str] | None = None,
                   k: int = 8) -> list[dict]:
    """A small mixed corpus: each kernel under both allocator modes."""
    names = kernels or ["zeroin", "fehl", "spline"]
    return [{"kernel": name, "int_regs": k, "float_regs": k, "mode": mode}
            for name in names for mode in ("chaitin", "remat")]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="drive load at a running allocation server")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=100)
    parser.add_argument("--k", type=int, default=8,
                        help="register count of the corpus requests")
    parser.add_argument("--kernels", default=None,
                        help="comma-separated kernel names")
    parser.add_argument("--client-id", default=None,
                        help="stable client identity every simulated "
                             "client shares (fair-admission metering)")
    parser.add_argument("--think-time", type=float, default=0.0,
                        help="seconds each client idles between its "
                             "requests")
    args = parser.parse_args(argv)
    kernels = args.kernels.split(",") if args.kernels else None
    report = run_load(args.host, args.port,
                      default_corpus(kernels, args.k),
                      clients=args.clients,
                      total_requests=args.requests,
                      client_ids=[args.client_id]
                      if args.client_id else None,
                      think_time=args.think_time)
    import json

    print(json.dumps(report.as_json(), indent=2))
    return 0 if report.failed == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
