"""Server-side request observability: lifecycle records, the access
log, trace stitching, and the flight recorder.

Every request line the allocation server accepts gets a
:class:`RequestRecord` carrying the server-minted request id and the
lifecycle stamps ``accept → parse → admission → queue_wait →
batch_wait → execute → respond``.  The stamps are *contiguous* — each
phase ends exactly where the next begins — so the per-phase latencies
in an access-log line always sum to the end-to-end latency (phases a
request never reached collapse to zero width instead of leaving gaps).

Three consumers share the record:

* :func:`access_line` — one JSON object per request for the structured
  access log (``repro serve --access-log``),
* :func:`stitch_request_trace` — the record as a single well-nested
  span tree: lifecycle phases as children of one ``request`` root, the
  engine's per-attempt spans (worker-side ``exec`` subtrees already
  rebased by the supervisor) grafted under ``execute``,
* :class:`FlightRecorder` — a bounded ring of the N slowest and the
  most recent failed requests, stitched traces included, dumpable via
  the ``debug`` protocol op and on drain.

Everything here is pure over the record (no clock reads), so the
access-line format is golden-testable and the stitcher deterministic.
"""

from __future__ import annotations

import heapq
import itertools
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..obs.span import Span, clamp_span, span_to_payload

#: the contiguous lifecycle phases, in stamp order
PHASES = ("parse", "admission", "queue_wait", "batch_wait", "execute",
          "respond")


@dataclass
class RequestRecord:
    """One request line's lifecycle, as the server saw it.

    Stamps are ``time.monotonic`` readings; ``None`` means the request
    never reached that boundary (a rejected request has no dequeue
    stamp).  ``wall_time`` is the one wall-clock reading, taken at
    accept, for the access-log timestamp.
    """

    request_id: str
    wall_time: float = 0.0
    op: str = "?"
    client_id: Any = None
    #: the v2 envelope's stable client identity (fair admission meters
    #: by it); ``None`` for v1 clients
    client: str | None = None
    key: str | None = None
    #: the allocation strategy of an engine request (``iterated`` /
    #: ``ssa``); ``None`` for non-engine ops and rejected envelopes
    allocator: str | None = None
    #: ``ok`` or the error kind (``bad_request`` / ``overload`` /
    #: ``draining`` / ``failed`` / ``internal``)
    outcome: str = "ok"
    #: attached to an already in-flight execution (no queue slot used)
    dedup: bool = False
    #: where the engine's answer came from (``memo`` / ``cache`` /
    #: ``executed`` / ``failed``); ``None`` for non-engine ops
    source: str | None = None
    attempts: int = 0
    retries: int = 0
    cache_put_s: float = 0.0
    t_accept: float = 0.0
    t_parse: float | None = None
    t_admit: float | None = None
    t_dequeue: float | None = None
    t_dispatch: float | None = None
    t_execute: float | None = None
    t_respond: float | None = None
    #: the engine's ``attempt`` / ``cache_put`` spans for this request
    spans: list[Span] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        end = self.t_respond if self.t_respond is not None else self.t_accept
        return end - self.t_accept

    def stamps(self) -> list[float]:
        """The seven boundary stamps with gaps forward-filled, so the
        implied phases are contiguous and sum to :attr:`total_s`."""
        filled = [self.t_accept]
        for stamp in (self.t_parse, self.t_admit, self.t_dequeue,
                      self.t_dispatch, self.t_execute, self.t_respond):
            filled.append(stamp if stamp is not None else filled[-1])
        return filled

    def phase_seconds(self) -> dict[str, float]:
        """Per-phase latencies, keyed by :data:`PHASES`."""
        stamps = self.stamps()
        return {name: max(0.0, stamps[i + 1] - stamps[i])
                for i, name in enumerate(PHASES)}


def access_record(record: RequestRecord) -> dict[str, Any]:
    """The access-log object for one finished request."""
    return {
        "ts": round(record.wall_time, 6),
        "id": record.request_id,
        "client_id": record.client_id,
        "client": record.client,
        "op": record.op,
        "key": record.key,
        "allocator": record.allocator,
        "outcome": record.outcome,
        "dedup": record.dedup,
        "source": record.source,
        "attempts": record.attempts,
        "retries": record.retries,
        "total_s": round(record.total_s, 6),
        "phases": {name: round(value, 6)
                   for name, value in record.phase_seconds().items()},
        "cache_put_s": round(record.cache_put_s, 6),
    }


def access_line(record: RequestRecord) -> str:
    """One access-log line (canonical JSON, no newline)."""
    return json.dumps(access_record(record), sort_keys=True,
                      separators=(",", ":"))


def stitch_request_trace(record: RequestRecord) -> Span:
    """The record as one well-nested span tree.

    The root ``request`` span covers accept→respond; its children are
    the six lifecycle phases (contiguous by construction), and the
    engine's per-attempt spans — each already carrying the rebased
    worker-side ``exec`` subtree — are grafted under ``execute``,
    clamped into its window so the tree stays well-nested even when an
    attempt's clock readings protrude by scheduling jitter.
    """
    stamps = record.stamps()
    root = Span("request", {
        "id": record.request_id, "op": record.op,
        "outcome": record.outcome, "dedup": record.dedup,
        **({"key": record.key} if record.key else {}),
        **({"source": record.source} if record.source else {}),
    }, start=stamps[0], end=stamps[-1])
    for i, name in enumerate(PHASES):
        phase = Span(name, start=stamps[i], end=stamps[i + 1])
        clamp_span(phase, root.start, root.end)
        if name == "execute":
            for span in record.spans:
                clamp_span(span, phase.start, phase.end)
                phase.children.append(span)
        root.children.append(phase)
    return root


class FlightRecorder:
    """A bounded ring of the most interesting request traces.

    Keeps the *slots* slowest successful ``allocate``/``trace``
    requests (a min-heap, cheapest evicted first) and the *slots* most
    recent failed requests of any op (a deque), each as its access
    record plus the stitched trace in payload form.  Memory is bounded
    by ``2 * slots`` entries regardless of traffic.
    """

    def __init__(self, slots: int = 64):
        self.slots = max(1, slots)
        self.recorded = 0
        self._slowest: list[tuple[float, int, dict]] = []
        self._failed: deque[dict] = deque(maxlen=self.slots)
        self._seq = itertools.count()

    def record(self, record: RequestRecord) -> None:
        self.recorded += 1
        entry = {
            "access": access_record(record),
            "trace": span_to_payload(stitch_request_trace(record)),
        }
        if record.outcome != "ok":
            self._failed.append(entry)
            return
        item = (record.total_s, next(self._seq), entry)
        if len(self._slowest) < self.slots:
            heapq.heappush(self._slowest, item)
        elif item[0] > self._slowest[0][0]:
            heapq.heapreplace(self._slowest, item)

    def dump(self) -> dict[str, Any]:
        """JSON-ready snapshot: slowest first, failures oldest first."""
        slowest = [entry for _, _, entry in
                   sorted(self._slowest, key=lambda item: -item[0])]
        return {"slots": self.slots, "recorded": self.recorded,
                "slowest": slowest, "failures": list(self._failed)}
