"""Allocation-as-a-service: the persistent async compile server.

``repro serve`` keeps one :class:`~repro.engine.engine.ExperimentEngine`
— warm worker pool, in-process memo, sharded persistent cache — alive
behind a JSONL/TCP front end, so repeated experiment traffic pays
interpreter spawn and import cost once instead of per invocation.
``server.py`` holds the asyncio daemon (admission control, in-flight
dedup, micro-batching, drain-on-SIGTERM), ``protocol.py`` the wire
format and its byte-identity guarantees, ``client.py`` the blocking
client library plus the reconnecting/retrying
:class:`~repro.serve.client.ResilientClient`, ``router.py`` the
cluster front-end (consistent-hash routing, health-checked circuit
breakers, failover, probabilistic shedding, per-client fair
admission), ``cluster.py`` the backend process supervisor behind
``repro serve --backends N``, ``loadgen.py`` the threaded load
generator the benchmarks drive, ``observe.py`` the per-request
lifecycle records, access log and flight recorder, and ``top.py`` the
live ``repro top`` dashboard.  See ``docs/serving.md`` and
``docs/observability.md``.
"""

from .client import (ResilientClient, RetriesExhausted, ServeClient,
                     ServeError)
from .cluster import (ClusterConfig, ClusterHarness, ClusterSupervisor,
                      run_cluster)
from .loadgen import LoadReport, default_corpus, percentile, run_load
from .observe import (FlightRecorder, PHASES, RequestRecord,
                      access_line, access_record, stitch_request_trace)
from .protocol import (PROTOCOL_VERSION, ProtocolError, RETRYABLE_KINDS,
                       dumps, envelope_meta, failure_to_json,
                       request_from_json, summary_to_json)
from .router import (BackendState, ClusterRouter, HashRing,
                     RouterConfig, RouterThread, TokenBucket,
                     run_router)
from .server import (AllocationServer, ServeConfig, ServerThread,
                     execute_trace, run_server)
from .top import format_seconds, render_dashboard, run_top

__all__ = [
    "AllocationServer",
    "BackendState",
    "ClusterConfig",
    "ClusterHarness",
    "ClusterRouter",
    "ClusterSupervisor",
    "FlightRecorder",
    "HashRing",
    "LoadReport",
    "PHASES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RETRYABLE_KINDS",
    "RequestRecord",
    "ResilientClient",
    "RetriesExhausted",
    "RouterConfig",
    "RouterThread",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServerThread",
    "TokenBucket",
    "access_line",
    "access_record",
    "default_corpus",
    "dumps",
    "envelope_meta",
    "execute_trace",
    "failure_to_json",
    "format_seconds",
    "percentile",
    "render_dashboard",
    "request_from_json",
    "run_cluster",
    "run_load",
    "run_router",
    "run_server",
    "run_top",
    "stitch_request_trace",
    "summary_to_json",
]
