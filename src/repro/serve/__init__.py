"""Allocation-as-a-service: the persistent async compile server.

``repro serve`` keeps one :class:`~repro.engine.engine.ExperimentEngine`
— warm worker pool, in-process memo, sharded persistent cache — alive
behind a JSONL/TCP front end, so repeated experiment traffic pays
interpreter spawn and import cost once instead of per invocation.
``server.py`` holds the asyncio daemon (admission control, in-flight
dedup, micro-batching, drain-on-SIGTERM), ``protocol.py`` the wire
format and its byte-identity guarantees, ``client.py`` the blocking
client library, and ``loadgen.py`` the threaded load generator the
benchmarks drive.  See ``docs/serving.md``.
"""

from .client import ServeClient, ServeError
from .loadgen import LoadReport, default_corpus, percentile, run_load
from .protocol import (PROTOCOL_VERSION, ProtocolError, dumps,
                       failure_to_json, request_from_json,
                       summary_to_json)
from .server import (AllocationServer, ServeConfig, ServerThread,
                     execute_trace, run_server)

__all__ = [
    "AllocationServer",
    "LoadReport",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServerThread",
    "default_corpus",
    "dumps",
    "execute_trace",
    "failure_to_json",
    "percentile",
    "request_from_json",
    "run_load",
    "run_server",
    "summary_to_json",
]
