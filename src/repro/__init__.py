"""repro — reproduction of Briggs, Cooper & Torczon, *Rematerialization*
(PLDI 1992).

A Chaitin/Briggs optimistic graph-coloring register allocator with
SSA-based rematerialization-tag propagation, built on an ILOC-like IR,
with an interpreter, a small front end (MiniFort), a benchmark kernel
suite and an experiment harness regenerating the paper's tables and
figures.

Quickstart::

    from repro import allocate, parse_function, run_function
    from repro import RenumberMode, standard_machine

    fn = parse_function(SOURCE)                       # or compile_source
    result = allocate(fn, machine=standard_machine(),
                      mode=RenumberMode.REMAT)
    run = run_function(result.function, args=[100])
    print(run.output, run.counts)
"""

__version__ = "1.0.0"

from .frontend import compile_source, parse_proc, parse_program
from .interp import Interpreter, InterpreterError, RunResult, run_function
from .ir import (BasicBlock, CountClass, Function, IRBuilder, Instruction,
                 Opcode, ParseError, Reg, RegClass, function_to_text,
                 parse_function, print_function, verify_function)
from .machine import (MachineDescription, huge_machine, machine_with,
                      standard_machine, tiny_machine)
from .regalloc import (AllocationError, AllocationResult, SCHEMES, allocate)
from .remat import (BOTTOM, InstTag, RenumberMode, TOP, Tag, is_remat, meet,
                    propagate_tags)

__all__ = [
    "AllocationError",
    "AllocationResult",
    "BOTTOM",
    "BasicBlock",
    "CountClass",
    "Function",
    "IRBuilder",
    "InstTag",
    "Instruction",
    "Interpreter",
    "InterpreterError",
    "MachineDescription",
    "Opcode",
    "ParseError",
    "Reg",
    "RegClass",
    "RenumberMode",
    "RunResult",
    "SCHEMES",
    "TOP",
    "Tag",
    "__version__",
    "allocate",
    "compile_source",
    "function_to_text",
    "huge_machine",
    "is_remat",
    "machine_with",
    "meet",
    "parse_function",
    "parse_proc",
    "parse_program",
    "print_function",
    "propagate_tags",
    "run_function",
    "standard_machine",
    "tiny_machine",
    "verify_function",
]
