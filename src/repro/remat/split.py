"""Live-range formation and tag-driven splitting (Sections 3.3, 3.4, 4.1).

Renumber's last two steps operate on the SSA form:

5. Examine each copy instruction.  If the source and destination values
   have identical ``inst`` tags, union them and remove the copy.
6. Examine the operands of each φ-node.  If an operand value has the same
   tag as the result value, union the values; otherwise insert a *split* (a
   distinguished copy) connecting the values in the corresponding
   predecessor block.

Three policies are provided:

* ``CHAITIN`` — the paper's *Old* allocator: union every φ operand with the
  φ result (classic live-range discovery, no splits, no tags needed),
* ``REMAT`` — the paper's *New* allocator: the tag-driven steps above,
* ``SPLIT_ALL`` — the Section 6 extension that splits at every φ-node
  (Cytron–Ferrante-style maximal splitting).

Ordering safety
---------------

Split copies are inserted at the end of predecessor blocks without
parallel-copy machinery.  This is safe because no split's destination web
can be another split's source web: destination webs are always ⊥-tagged
(an ``inst``-tagged φ result forces *all* its operands to carry the same
``inst`` tag, so no split is inserted into it), while source webs are
always ``inst``-tagged (a ⊥ operand always matches its ⊥ result and is
unioned instead).  Under ``SPLIT_ALL`` every value is its own live range,
so destinations (φ results of the successor) and sources (values reaching
the predecessor's end) are likewise disjoint.  Critical edges must have
been split beforehand.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..ir import Function, Instruction, Opcode, Reg, RegClass
from ..obs import NULL_TRACER, SplitInserted
from ..ssa import SSAInfo
from ..unionfind import DisjointSets
from .lattice import BOTTOM, Tag, is_remat, meet_all


class RenumberMode(enum.Enum):
    """Live-range formation policy."""

    #: the paper's baseline (Chaitin's renumber: union all φ webs)
    CHAITIN = "chaitin"
    #: the paper's contribution (tag-driven splitting)
    REMAT = "remat"
    #: Section 6 extension: a split at every φ operand
    SPLIT_ALL = "split_all"


@dataclass
class SplitPlan:
    """Which values to union, which copies die, which splits to insert."""

    ds: DisjointSets
    #: instruction identities (``id()``) of copies removed by step 5
    deleted_copies: set[int] = field(default_factory=set)
    #: (pred_label, phi_result_value, operand_value) triples needing splits
    splits: list[tuple[str, Reg, Reg]] = field(default_factory=list)


@dataclass
class RenumberResult:
    """The outcome of renumber: code rewritten in terms of live ranges."""

    fn: Function
    #: the fresh register of every live range
    live_ranges: list[Reg]
    #: SSA value -> live-range register
    value_to_lr: dict[Reg, Reg]
    #: live-range register -> member SSA values
    members: dict[Reg, list[Reg]]
    #: live-range register -> meet of member tags (⊥ when tags were not
    #: computed, i.e. under CHAITIN where spill handling re-derives them)
    lr_tags: dict[Reg, Tag]
    n_splits_inserted: int = 0
    n_copies_removed: int = 0


def plan_unions(fn: Function, info: SSAInfo, tags: dict[Reg, Tag] | None,
                mode: RenumberMode) -> SplitPlan:
    """Decide unions, copy removals and split insertions for *mode*."""
    ds = DisjointSets(info.def_site.keys())
    plan = SplitPlan(ds=ds)

    if mode is RenumberMode.REMAT:
        if tags is None:
            raise ValueError("REMAT renumbering requires propagated tags")
        # step 5: copies whose endpoints carry identical inst tags
        for _blk, inst in fn.instructions():
            if not inst.is_copy:
                continue
            src_tag, dest_tag = tags[inst.src], tags[inst.dest]
            if is_remat(src_tag) and src_tag == dest_tag:
                ds.union(inst.src, inst.dest)
                plan.deleted_copies.add(id(inst))

    for label, preds in info.phi_preds.items():
        for phi in fn.block(label).phis():
            result = phi.dest
            for pred, operand in zip(preds, phi.srcs):
                if mode is RenumberMode.CHAITIN:
                    ds.union(result, operand)
                elif mode is RenumberMode.SPLIT_ALL:
                    plan.splits.append((label_pred(pred), result, operand))
                else:  # REMAT, step 6
                    if tags[operand] == tags[result]:
                        ds.union(result, operand)
                    else:
                        plan.splits.append((pred, result, operand))
    return plan


def label_pred(pred: str) -> str:
    """Identity helper kept for symmetry/clarity in :func:`plan_unions`."""
    return pred


def apply_plan(fn: Function, info: SSAInfo, plan: SplitPlan,
               tags: dict[Reg, Tag] | None = None,
               tracer=NULL_TRACER) -> RenumberResult:
    """Rewrite *fn* from SSA values to live ranges according to *plan*.

    φ pseudo-ops disappear; step-5 copies and identity copies are removed;
    splits appear at the end of the named predecessor blocks.  Each split
    actually inserted emits a :class:`~repro.obs.SplitInserted` event on
    an event-capturing *tracer* (so the event count reconciles exactly
    with ``n_splits_inserted``).
    """
    ds = plan.ds

    # one fresh register per union class
    classes = ds.classes()
    lr_of_root: dict[Reg, Reg] = {}
    members: dict[Reg, list[Reg]] = {}
    lr_tags: dict[Reg, Tag] = {}
    for root, values in classes.items():
        lr = fn.new_reg(root.rclass)
        lr_of_root[root] = lr
        members[lr] = values
        if tags is not None:
            lr_tags[lr] = meet_all(tags[v] for v in values)
        else:
            lr_tags[lr] = BOTTOM

    value_to_lr = {value: lr_of_root[ds.find(value)]
                   for value in info.def_site}

    # insert split copies (before operand rewriting: we map values directly)
    n_splits = 0
    for pred, result, operand in plan.splits:
        dest_lr = value_to_lr[result]
        src_lr = value_to_lr[operand]
        if dest_lr == src_lr:
            continue  # degenerate (possible only under SPLIT_ALL re-runs)
        opcode = (Opcode.SPLIT if dest_lr.rclass is RegClass.INT
                  else Opcode.FSPLIT)
        fn.block(pred).insert_before_terminator(
            Instruction(opcode, dests=(dest_lr,), srcs=(src_lr,)))
        n_splits += 1
        if tracer.events_enabled:
            tracer.event(SplitInserted(block=pred, dest=str(dest_lr),
                                       src=str(src_lr)))

    # rewrite instructions, dropping φs, dead copies and identity copies
    n_removed = 0
    for blk in fn.blocks:
        new_instructions: list[Instruction] = []
        for inst in blk.instructions:
            if inst.opcode is Opcode.PHI:
                continue
            if id(inst) in plan.deleted_copies:
                n_removed += 1
                continue
            inst.dests = tuple(value_to_lr.get(r, r) for r in inst.dests)
            inst.srcs = tuple(value_to_lr.get(r, r) for r in inst.srcs)
            if inst.is_copy and inst.dest == inst.src:
                n_removed += 1
                continue
            new_instructions.append(inst)
        blk.instructions = new_instructions

    return RenumberResult(fn=fn, live_ranges=list(members),
                          value_to_lr=value_to_lr, members=members,
                          lr_tags=lr_tags, n_splits_inserted=n_splits,
                          n_copies_removed=n_removed)
