"""The rematerialization lattice (Section 3.2 of the paper).

Three kinds of element:

* ⊤ (*top*) — no information yet; the optimistic initial tag of values
  defined by copies and φ-nodes,
* ``inst`` — the value is *never-killed* and should be rematerialized by
  the instruction identified by the tag,
* ⊥ (*bottom*) — the value must be spilled and restored the heavyweight
  way.

The meet ⊓ follows the paper's table::

    any  ⊓ ⊤     = any
    any  ⊓ ⊥     = ⊥
    inst_i ⊓ inst_j = inst_i   if inst_i = inst_j
    inst_i ⊓ inst_j = ⊥        if inst_i ≠ inst_j

``inst_i = inst_j`` compares the instructions operand by operand; in this
IR never-killed opcodes carry only immediates, so the comparison is of
``(opcode, immediates)`` pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import Iterable, Union

from ..ir import Immediate, Instruction, Opcode


@dataclass(frozen=True)
class _Top:
    def __repr__(self) -> str:
        return "⊤"


@dataclass(frozen=True)
class _Bottom:
    def __repr__(self) -> str:
        return "⊥"


@dataclass(frozen=True)
class InstTag:
    """A never-killed computation: rematerialize with this instruction."""

    opcode: Opcode
    imms: tuple[Immediate, ...]

    def __repr__(self) -> str:
        imms = " ".join(str(i) for i in self.imms)
        return f"inst[{self.opcode.mnemonic} {imms}]"

    def make_instruction(self, dest) -> Instruction:
        """Materialize the tag as an instruction defining *dest*."""
        return Instruction(self.opcode, dests=(dest,), imms=self.imms)

    @staticmethod
    def of(inst: Instruction) -> "InstTag":
        """The tag of a never-killed instruction."""
        opcode, imms = inst.remat_key()
        return InstTag(opcode, imms)


TOP = _Top()
BOTTOM = _Bottom()

Tag = Union[_Top, _Bottom, InstTag]


def meet(a: Tag, b: Tag) -> Tag:
    """The paper's modified meet operation."""
    if a is TOP:
        return b
    if b is TOP:
        return a
    if a is BOTTOM or b is BOTTOM:
        return BOTTOM
    return a if a == b else BOTTOM


def meet_all(tags: Iterable[Tag]) -> Tag:
    """Fold :func:`meet` over *tags* (⊤ for an empty sequence)."""
    return reduce(meet, tags, TOP)


def is_remat(tag: Tag) -> bool:
    """True when *tag* says the value can be rematerialized."""
    return isinstance(tag, InstTag)
