"""Rematerialization tags: lattice, initialization, propagation, splitting.

This package is the paper's primary contribution (Section 3): tag each SSA
value with how it should be spilled, propagate the tags sparsely, then
split live ranges so values with different tags are isolated.
"""

from .lattice import BOTTOM, InstTag, TOP, Tag, is_remat, meet, meet_all
from .propagate import propagate_tags
from .split import (RenumberMode, RenumberResult, SplitPlan, apply_plan,
                    plan_unions)
from .tags import initial_tag, initial_tags

__all__ = [
    "BOTTOM",
    "InstTag",
    "RenumberMode",
    "RenumberResult",
    "SplitPlan",
    "TOP",
    "Tag",
    "apply_plan",
    "initial_tag",
    "initial_tags",
    "is_remat",
    "meet",
    "meet_all",
    "plan_unions",
    "propagate_tags",
]
