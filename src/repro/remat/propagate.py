"""Sparse propagation of rematerialization tags (Section 3.2).

An analog of Wegman and Zadeck's *sparse simple constant* algorithm with
the modified lattice of :mod:`repro.remat.lattice`:

* values defined by copies take the tag of the value flowing in,
* values defined by φ-nodes take the meet of their operands' tags,
* everything else keeps its initial tag (``inst`` or ⊥).

The worklist runs over SSA edges only (sparse), so each value is
re-evaluated at most twice — the lattice has height two.
"""

from __future__ import annotations

from ..ir import Instruction, Opcode, Reg
from ..ssa import SSAGraph
from .lattice import BOTTOM, Tag, TOP, meet, meet_all
from .tags import initial_tags


def _evaluate(inst: Instruction, tags: dict[Reg, Tag]) -> Tag:
    """Re-evaluate the tag of the value defined by a copy or φ."""
    if inst.opcode is Opcode.PHI:
        return meet_all(tags[s] for s in inst.srcs)
    # copy (or split): the tag of the incoming value
    return tags[inst.src]


def propagate_tags(graph: SSAGraph,
                   lower_leftover_top: bool = True) -> dict[Reg, Tag]:
    """Propagate tags over *graph* to a fixed point.

    With *lower_leftover_top* (the default) any value still at ⊤ after the
    fixed point — possible only for values fed exclusively by other ⊤
    values, which strict SSA rules out for executable code — is lowered to
    ⊥ so consumers never see ⊤.
    """
    tags = initial_tags(graph)
    worklist: list[Reg] = [v for v, t in tags.items() if t is not TOP]
    on_list = set(worklist)
    while worklist:
        value = worklist.pop()
        on_list.discard(value)
        for user in graph.users[value]:
            if user.opcode is not Opcode.PHI and not user.is_copy:
                continue
            for dest in user.dests:
                if dest not in tags:
                    continue
                new_tag = _evaluate(user, tags)
                old_tag = tags[dest]
                merged = meet(old_tag, new_tag)
                if merged != old_tag:
                    tags[dest] = merged
                    if dest not in on_list:
                        worklist.append(dest)
                        on_list.add(dest)
    if lower_leftover_top:
        for value, tag in tags.items():
            if tag is TOP:
                tags[value] = BOTTOM
    return tags
