"""Initial rematerialization tags (Section 3.2).

"A value defined by a copy instruction or a φ-node has an initial tag of ⊤.
If a value is defined by an appropriate instruction (never-killed) ... the
value's tag is simply a pointer to the instruction.  Any value defined by
an 'inappropriate' instruction is immediately tagged with ⊥."
"""

from __future__ import annotations

from ..ir import Instruction, Opcode, Reg
from ..ssa import SSAGraph
from .lattice import BOTTOM, InstTag, TOP, Tag


def initial_tag(inst: Instruction) -> Tag:
    """The initial lattice element for a value defined by *inst*."""
    if inst.opcode is Opcode.PHI or inst.is_copy:
        return TOP
    if inst.is_never_killed:
        return InstTag.of(inst)
    return BOTTOM


def initial_tags(graph: SSAGraph) -> dict[Reg, Tag]:
    """Initial tags for every value of an SSA graph."""
    return {value: initial_tag(inst)
            for value, inst in graph.def_inst.items()}
