"""Cross-cutting allocator invariants, checked on random programs and
suite kernels.

These go beyond output equivalence: they check *structural* properties of
the allocator's results — pressure bounds, coloring validity, interference
completeness, and parser/printer round-trips.
"""

import pytest

from repro.analysis import compute_liveness
from repro.benchsuite import ALL_KERNELS, random_program
from repro.ir import RegClass, function_to_text, parse_function
from repro.machine import machine_with, standard_machine
from repro.regalloc import allocate, build_interference_graph
from repro.remat import RenumberMode


def max_pressure(fn):
    """Maximum number of simultaneously live registers, per class."""
    liveness = compute_liveness(fn)
    peak = {RegClass.INT: 0, RegClass.FLOAT: 0}
    for blk in fn.blocks:
        live = set(liveness.live_out(blk.label))
        for inst in reversed(blk.instructions):
            live.difference_update(inst.dests)
            live.update(inst.srcs)
            for cls in peak:
                n = sum(1 for r in live if r.rclass is cls)
                peak[cls] = max(peak[cls], n)
    return peak


class TestPressureBound:
    """After allocation at k registers, at most k values of each class are
    ever simultaneously live (they all fit in distinct registers)."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_programs(self, seed):
        k = 4 + seed % 4
        fn = random_program(seed)
        result = allocate(fn, machine=machine_with(k, k))
        peak = max_pressure(result.function)
        assert peak[RegClass.INT] <= k
        assert peak[RegClass.FLOAT] <= k

    @pytest.mark.parametrize("kernel", ALL_KERNELS[:10],
                             ids=lambda k: k.name)
    def test_suite_kernels(self, kernel):
        result = allocate(kernel.compile(), machine=standard_machine())
        peak = max_pressure(result.function)
        assert peak[RegClass.INT] <= 16
        assert peak[RegClass.FLOAT] <= 16


class TestColoringValidity:
    """The interference graph of the *allocated* code never connects two
    occurrences of the same physical register — i.e. the coloring was a
    proper coloring of the true interference relation."""

    @pytest.mark.parametrize("seed", range(12))
    def test_no_self_interference_after_allocation(self, seed):
        fn = random_program(seed + 50)
        result = allocate(fn, machine=machine_with(5, 5))
        graph = build_interference_graph(result.function)
        for node in graph.nodes():
            for neighbor in graph.neighbors(node):
                assert node != neighbor

    @pytest.mark.parametrize("mode", list(RenumberMode))
    def test_virtual_coloring_is_proper(self, mode):
        """Before rewriting, neighboring live ranges got distinct colors:
        equivalently, after rewriting, no two simultaneously-live values
        share a register — which the strict interpreter plus the pressure
        bound already witness; here we recheck via the graph."""
        fn = random_program(7)
        result = allocate(fn, machine=machine_with(5, 5), mode=mode)
        graph = build_interference_graph(result.function)
        # physical registers interfering with themselves would appear as
        # self-loops, which add_edge forbids; instead check degree sanity:
        for node in graph.nodes():
            assert graph.degree(node) == len(graph.neighbors(node))


class TestInterferenceDefinition:
    """Edges match the definition: a register defined while another is
    live (and not its copy source) interferes with it."""

    @pytest.mark.parametrize("seed", range(8))
    def test_edges_cover_def_against_live(self, seed):
        fn = random_program(seed + 200)
        graph = build_interference_graph(fn)
        liveness = compute_liveness(fn)
        for blk in fn.blocks:
            live = set(liveness.live_out(blk.label))
            for inst in reversed(blk.instructions):
                exempt = inst.src if inst.is_copy else None
                for d in inst.dests:
                    for l in live:
                        if (l != d and l != exempt
                                and l.rclass is d.rclass):
                            assert graph.interferes(d, l), (d, l, inst)
                live.difference_update(inst.dests)
                live.update(inst.srcs)


class TestRoundTrips:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_program_text_roundtrip(self, seed):
        fn = random_program(seed + 300)
        text = function_to_text(fn)
        assert function_to_text(parse_function(text)) == text

    @pytest.mark.parametrize("kernel", ALL_KERNELS,
                             ids=lambda k: k.name)
    def test_kernel_text_roundtrip(self, kernel):
        fn = kernel.compile()
        text = function_to_text(fn)
        assert function_to_text(parse_function(text)) == text

    def test_allocated_code_roundtrip(self):
        fn = random_program(5)
        result = allocate(fn, machine=machine_with(6, 6))
        text = function_to_text(result.function)
        assert function_to_text(parse_function(text)) == text


class TestDeterminism:
    """Allocation is deterministic: same input, same output."""

    @pytest.mark.parametrize("mode", list(RenumberMode))
    def test_same_input_same_output(self, mode):
        fn = random_program(11)
        a = allocate(fn, machine=machine_with(5, 5), mode=mode)
        b = allocate(fn, machine=machine_with(5, 5), mode=mode)
        assert function_to_text(a.function) == function_to_text(b.function)

    def test_kernel_allocation_deterministic(self):
        from repro.benchsuite import KERNELS_BY_NAME
        kernel = KERNELS_BY_NAME["adapt"]
        a = allocate(kernel.compile(), machine=standard_machine())
        b = allocate(kernel.compile(), machine=standard_machine())
        assert function_to_text(a.function) == function_to_text(b.function)
