"""Exhaustive per-opcode semantic tests for the interpreter.

Every non-control opcode gets at least one directed check of its value
semantics, so a regression in any single case cannot hide behind the
aggregate kernels.
"""

import pytest

from repro.interp import FP_BASE, SD_BASE, run_function
from repro.ir import Opcode, parse_function


def run(body, args=None, const_pool=None, n_params=0):
    text = f"proc t {n_params}\nentry:\n"
    for line in body.strip().splitlines():
        text += f"    {line.strip()}\n"
    text += "    ret\n"
    return run_function(parse_function(text), args=args,
                        const_pool=const_pool).output


class TestIntegerOpcodes:
    def test_ldi(self):
        assert run("ldi r0 -7\nout r0") == [-7]

    def test_add_sub_mul(self):
        assert run("ldi r0 6\nldi r1 4\nadd r2 r0 r1\nsub r3 r0 r1\n"
                   "mul r4 r0 r1\nout r2\nout r3\nout r4") == [10, 2, 24]

    def test_div_truncates_toward_zero(self):
        assert run("ldi r0 7\nldi r1 -2\ndiv r2 r0 r1\nout r2") == [-3]
        assert run("ldi r0 -7\nldi r1 -2\ndiv r2 r0 r1\nout r2") == [3]

    def test_neg(self):
        assert run("ldi r0 5\nneg r1 r0\nout r1") == [-5]

    def test_immediate_forms(self):
        assert run("ldi r0 10\naddi r1 r0 -3\nsubi r2 r0 4\n"
                   "muli r3 r0 3\nout r1\nout r2\nout r3") == [7, 6, 30]

    @pytest.mark.parametrize("op,a,b,expected", [
        ("cmp_lt", 1, 2, 1), ("cmp_lt", 2, 2, 0),
        ("cmp_le", 2, 2, 1), ("cmp_le", 3, 2, 0),
        ("cmp_gt", 3, 2, 1), ("cmp_gt", 2, 2, 0),
        ("cmp_ge", 2, 2, 1), ("cmp_ge", 1, 2, 0),
        ("cmp_eq", 2, 2, 1), ("cmp_eq", 1, 2, 0),
        ("cmp_ne", 1, 2, 1), ("cmp_ne", 2, 2, 0),
    ])
    def test_comparisons(self, op, a, b, expected):
        assert run(f"ldi r0 {a}\nldi r1 {b}\n{op} r2 r0 r1\nout r2") \
            == [expected]


class TestFloatOpcodes:
    def test_ldf(self):
        assert run("ldf f0 -2.5\nfout f0") == [-2.5]

    def test_float_arith(self):
        assert run("ldf f0 6.0\nldf f1 4.0\nfadd f2 f0 f1\n"
                   "fsub f3 f0 f1\nfmul f4 f0 f1\nfdiv f5 f0 f1\n"
                   "fout f2\nfout f3\nfout f4\nfout f5") \
            == [10.0, 2.0, 24.0, 1.5]

    def test_fabs_fneg(self):
        assert run("ldf f0 -3.5\nfabs f1 f0\nfneg f2 f0\n"
                   "fout f1\nfout f2") == [3.5, 3.5]

    @pytest.mark.parametrize("op,a,b,expected", [
        ("fcmp_lt", 1.0, 2.0, 1), ("fcmp_le", 2.0, 2.0, 1),
        ("fcmp_gt", 3.0, 2.0, 1), ("fcmp_ge", 1.0, 2.0, 0),
        ("fcmp_eq", 2.0, 2.0, 1), ("fcmp_ne", 2.0, 2.0, 0),
    ])
    def test_float_comparisons(self, op, a, b, expected):
        assert run(f"ldf f0 {a}\nldf f1 {b}\n{op} r0 f0 f1\nout r0") \
            == [expected]

    def test_conversions(self):
        assert run("ldi r0 3\ni2f f0 r0\nfout f0") == [3.0]
        assert run("ldf f0 3.9\nf2i r0 f0\nout r0") == [3]


class TestAddressOpcodes:
    def test_lfp_lsd(self):
        assert run("lfp r0 24\nout r0") == [FP_BASE + 24]
        assert run("lsd r0 24\nout r0") == [SD_BASE + 24]

    def test_memory_roundtrip_with_offsets(self):
        assert run("lsd r0 0\nldi r1 77\nstwo r1 r0 16\nldwo r2 r0 16\n"
                   "out r2") == [77]

    def test_float_memory(self):
        assert run("lsd r0 0\nldf f0 1.25\nfsto f0 r0 8\nfldo f1 r0 8\n"
                   "fout f1") == [1.25]
        assert run("lsd r0 8\nldf f0 1.25\nfst f0 r0\nfld f1 r0\n"
                   "fout f1") == [1.25]

    def test_cldw_cldf(self):
        assert run("cldw r0 4\nout r0", const_pool={4: 9}) == [9]
        assert run("cldf f0 8\nfout f0", const_pool={8: 0.5}) == [0.5]

    def test_spill_opcodes(self):
        assert run("ldi r0 3\nspst r0 1\nspld r1 1\nout r1") == [3]
        assert run("ldf f0 0.75\nfspst f0 2\nfspld f1 2\nfout f1") == [0.75]


class TestCopiesAndControl:
    def test_all_copy_forms(self):
        assert run("ldi r0 4\ncopy r1 r0\nsplit r2 r1\nout r2") == [4]
        assert run("ldf f0 4.5\nfcopy f1 f0\nfsplit f2 f1\nfout f2") \
            == [4.5]

    def test_nop_has_no_effect(self):
        assert run("ldi r0 1\nnop\nout r0") == [1]

    def test_cbr_both_directions(self):
        text = """proc t 1
entry:
    param r0 0
    cbr r0 yes no
yes:
    ldi r1 1
    out r1
    ret
no:
    ldi r1 0
    out r1
    ret
"""
        fn = parse_function(text)
        assert run_function(fn, args=[5]).output == [1]
        assert run_function(fn, args=[0]).output == [0]

    def test_params_by_index(self):
        assert run("param r0 1\nparam r1 0\nsub r2 r0 r1\nout r2",
                   args=[10, 14], n_params=2) == [4]
        assert run("fparam f0 0\nfout f0", args=[2.5], n_params=1) == [2.5]


class TestOpcodeCoverage:
    def test_every_executable_opcode_is_interpreted(self):
        """Sanity net: each opcode except PHI has an interpreter case (a
        run of the cross-product above plus this check keeps the table
        closed)."""
        from repro.interp.interpreter import Interpreter
        import inspect
        source = inspect.getsource(Interpreter._execute)
        for op in Opcode:
            if op is Opcode.PHI:
                continue
            assert f"Opcode.{op.name}" in source, op
