"""Tests for the ILOC interpreter."""

import pytest

from repro.interp import (FP_BASE, InterpreterError, SD_BASE,
                          UninitializedRegister, WORD, run_function)
from repro.ir import CountClass, IRBuilder, Opcode, parse_function

from ..helpers import figure1_fragment, nested_loops, single_loop


class TestBasics:
    def test_arithmetic_and_out(self):
        b = IRBuilder("f")
        x = b.ldi(6)
        y = b.ldi(7)
        b.out(b.mul(x, y))
        b.ret()
        assert run_function(b.finish()).output == [42]

    def test_loop_counts_to_n(self):
        result = run_function(single_loop(), args=[5])
        assert result.output == [5]

    def test_nested_loops_sum(self):
        result = run_function(nested_loops(), args=[4])
        # sum over i<4 of sum j<4 of j = 4 * 6
        assert result.output == [24]

    def test_float_pipeline(self):
        b = IRBuilder("f")
        x = b.ldf(1.5)
        y = b.fmul(x, b.ldf(4.0))
        z = b.fabs(b.fneg(y))
        b.out(z)
        b.ret()
        assert run_function(b.finish()).output == [6.0]

    def test_conversions(self):
        b = IRBuilder("f")
        i = b.ldi(3)
        f = b.i2f(i)
        g = b.fadd(f, b.ldf(0.75))
        b.out(b.f2i(g))
        b.ret()
        assert run_function(b.finish()).output == [3]

    def test_truncating_division(self):
        b = IRBuilder("f")
        a = b.ldi(-7)
        c = b.ldi(2)
        b.out(b.div(a, c))
        b.ret()
        assert run_function(b.finish()).output == [-3]  # C semantics, not -4

    def test_figure1_fragment_runs(self):
        result = run_function(figure1_fragment(), args=[3])
        # first loop adds 3 loads of mem[SD+64] (= 0) plus +1 per trip
        assert result.output[0] == 3
        assert result.output[1] == 3 + 64 + SD_BASE


class TestMemory:
    def test_static_area_roundtrip(self):
        b = IRBuilder("f")
        base = b.lsd(0)
        v = b.ldi(99)
        b.stwo(v, base, 8)
        b.out(b.ldwo(base, 8))
        b.ret()
        result = run_function(b.finish())
        assert result.output == [99]
        assert result.memory[SD_BASE + 8] == 99

    def test_frame_locals(self):
        b = IRBuilder("f")
        addr = b.lfp(16)
        b.stw(b.ldi(5), addr)
        b.out(b.ldw(addr))
        b.ret()
        result = run_function(b.finish())
        assert result.output == [5]
        assert result.memory[FP_BASE + 16] == 5

    def test_spill_slots_below_frame(self):
        text = """proc f 0
entry:
    ldi r0 123
    spst r0 0
    spld r1 0
    out r1
    ret
"""
        result = run_function(parse_function(text))
        assert result.output == [123]
        assert result.memory[FP_BASE - WORD] == 123

    def test_float_spill_slots(self):
        text = """proc f 0
entry:
    ldf f0 2.5
    fspst f0 3
    fspld f1 3
    fout f1
    ret
"""
        assert run_function(parse_function(text)).output == [2.5]

    def test_const_pool(self):
        b = IRBuilder("f")
        b.out(b.cldw(4))
        b.out(b.cldf(8))
        b.ret()
        result = run_function(b.finish(), const_pool={4: 11, 8: 2.5})
        assert result.output == [11, 2.5]

    def test_uninitialized_memory_reads_zero(self):
        b = IRBuilder("f")
        base = b.lsd(0)
        b.out(b.ldw(base))
        b.ret()
        assert run_function(b.finish()).output == [0]


class TestParams:
    def test_params_read_arguments(self):
        b = IRBuilder("f", n_params=2)
        x = b.param(0)
        y = b.param(1)
        b.out(b.sub(x, y))
        b.ret()
        assert run_function(b.finish(), args=[10, 4]).output == [6]

    def test_fparam(self):
        b = IRBuilder("f", n_params=1)
        x = b.fparam(0)
        b.out(b.fmul(x, x))
        b.ret()
        assert run_function(b.finish(), args=[1.5]).output == [2.25]

    def test_missing_argument_raises(self):
        b = IRBuilder("f", n_params=1)
        b.param(0)
        b.ret()
        with pytest.raises(InterpreterError):
            run_function(b.finish(), args=[])


class TestErrors:
    def test_uninitialized_register(self):
        text = "proc f 0\nentry:\n    out r9\n    ret\n"
        with pytest.raises(UninitializedRegister):
            run_function(parse_function(text))

    def test_division_by_zero(self):
        b = IRBuilder("f")
        z = b.ldi(0)
        b.out(b.div(z, z))
        b.ret()
        with pytest.raises(InterpreterError):
            run_function(b.finish())

    def test_step_limit(self):
        b = IRBuilder("f")
        b.jmp("spin")
        b.label("spin")
        b.jmp("spin")
        fn = b.function
        with pytest.raises(InterpreterError, match="steps"):
            run_function(fn, max_steps=100)


class TestCounters:
    def test_count_classes(self):
        text = """proc f 0
entry:
    ldi r0 1
    addi r1 r0 2
    copy r2 r1
    spst r2 0
    spld r3 0
    out r3
    ret
"""
        result = run_function(parse_function(text))
        assert result.count(CountClass.LDI) == 1
        assert result.count(CountClass.ADDI) == 1
        assert result.count(CountClass.COPY) == 1
        assert result.count(CountClass.STORE) == 1
        assert result.count(CountClass.LOAD) == 1

    def test_dynamic_counts_scale_with_trip_count(self):
        r5 = run_function(single_loop(), args=[5])
        r10 = run_function(single_loop(), args=[10])
        d5 = r5.opcode_counts[Opcode.ADDI]
        d10 = r10.opcode_counts[Opcode.ADDI]
        assert d10 == d5 + 5

    def test_steps_equals_sum_of_opcode_counts(self):
        result = run_function(single_loop(), args=[7])
        assert result.steps == sum(result.opcode_counts.values())
