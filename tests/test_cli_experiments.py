"""CLI experiment commands, run over tiny kernel subsets for speed."""

import pytest

import repro.experiments.ablation as ablation_mod
import repro.experiments.ssa_compare as ssa_compare_mod
import repro.experiments.table1 as table1_mod
import repro.experiments.regsweep as regsweep_mod
from repro.benchsuite import KERNELS_BY_NAME
from repro.cli import main
from repro.engine import ResultCache

TINY_SUITE = [KERNELS_BY_NAME[n] for n in ("zeroin", "adapt")]


@pytest.fixture
def tiny_suite(monkeypatch):
    monkeypatch.setattr(table1_mod, "ALL_KERNELS", TINY_SUITE)
    monkeypatch.setattr(regsweep_mod, "ALL_KERNELS", TINY_SUITE)
    monkeypatch.setattr(ablation_mod, "ALL_KERNELS", TINY_SUITE)
    monkeypatch.setattr(ssa_compare_mod, "ALL_KERNELS", TINY_SUITE)


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """Point the engine's persistent cache at a throwaway directory."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


class TestExperimentCommands:
    def test_table1(self, tiny_suite, cache_dir, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Effects of Rematerialization" in out
        assert "adapt" in out

    def test_table1_with_custom_k(self, tiny_suite, cache_dir, capsys):
        assert main(["table1", "--k", "12"]) == 0
        assert "k_int=12" in capsys.readouterr().out

    def test_table1_no_cache(self, tiny_suite, cache_dir, capsys):
        assert main(["table1", "--no-cache"]) == 0
        assert "Effects of Rematerialization" in capsys.readouterr().out
        assert len(ResultCache(cache_dir)) == 0

    def test_table2(self, cache_dir, capsys):
        assert main(["table2", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "Allocation Times in Seconds" in out
        assert "renum" in out
        # timing requests are cacheable=False: nothing may persist
        assert len(ResultCache(cache_dir)) == 0

    def test_ablation(self, tiny_suite, cache_dir, capsys):
        assert main(["ablation"]) == 0
        out = capsys.readouterr().out
        assert "splitting scheme" in out
        assert "Heuristic ablation" in out
        assert "wins vs remat" in out

    def test_sweep(self, tiny_suite, cache_dir, capsys):
        assert main(["sweep"]) == 0
        assert "Register-set sweep" in capsys.readouterr().out

    def test_table1_under_ssa_allocator(self, tiny_suite, cache_dir,
                                        capsys):
        """The strategy axis reaches the harness: the SSA strategy has
        no Old/New distinction, so no rows differ."""
        assert main(["table1", "--allocator", "ssa"]) == 0
        out = capsys.readouterr().out
        assert "Effects of Rematerialization" in out
        assert "improvements in 0 cases, degradations in 0 cases" in out

    def test_sweep_allocator_flag(self, tiny_suite, cache_dir, capsys):
        assert main(["sweep", "--allocator", "ssa"]) == 0
        assert "Register-set sweep" in capsys.readouterr().out

    def test_ssa_compare(self, tiny_suite, cache_dir, capsys):
        assert main(["ssa-compare"]) == 0
        out = capsys.readouterr().out
        assert "Allocator head-to-head" in out
        assert "ssa overhead" in out


class TestEngineFlags:
    def test_cache_hit_equals_miss(self, tiny_suite, cache_dir, capsys):
        """Cold (miss) and warm (hit) renderings are byte-identical."""
        assert main(["table1"]) == 0
        cold = capsys.readouterr().out
        assert len(ResultCache(cache_dir)) > 0
        assert main(["table1"]) == 0
        warm = capsys.readouterr().out
        assert warm == cold

    def test_cache_hit_equals_miss_with_jobs2(self, tiny_suite, cache_dir,
                                              capsys):
        """--jobs 2 parallel cold run, serial cold run, and warm cache
        hits all render the same bytes (the engine's correctness
        contract; exercised by CI on two cores)."""
        assert main(["table1", "--jobs", "2"]) == 0
        parallel_cold = capsys.readouterr().out
        assert len(ResultCache(cache_dir)) > 0
        assert main(["table1", "--jobs", "2"]) == 0
        warm = capsys.readouterr().out
        assert main(["table1", "--no-cache", "--jobs", "1"]) == 0
        serial_cold = capsys.readouterr().out
        assert parallel_cold == warm == serial_cold

    def test_sweep_jobs_flag(self, tiny_suite, cache_dir, capsys):
        assert main(["sweep", "--jobs", "1"]) == 0
        assert "Register-set sweep" in capsys.readouterr().out

    def test_table2_jobs_flag(self, cache_dir, capsys):
        assert main(["table2", "--repeats", "1", "--jobs", "1"]) == 0
        assert "Allocation Times" in capsys.readouterr().out
