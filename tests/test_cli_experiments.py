"""CLI experiment commands, run over tiny kernel subsets for speed."""

import pytest

import repro.experiments.table1 as table1_mod
import repro.experiments.regsweep as regsweep_mod
from repro.benchsuite import KERNELS_BY_NAME
from repro.cli import main

TINY_SUITE = [KERNELS_BY_NAME[n] for n in ("zeroin", "adapt")]


@pytest.fixture
def tiny_suite(monkeypatch):
    monkeypatch.setattr(table1_mod, "ALL_KERNELS", TINY_SUITE)
    monkeypatch.setattr(regsweep_mod, "ALL_KERNELS", TINY_SUITE)


class TestExperimentCommands:
    def test_table1(self, tiny_suite, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Effects of Rematerialization" in out
        assert "adapt" in out

    def test_table1_with_custom_k(self, tiny_suite, capsys):
        assert main(["table1", "--k", "12"]) == 0
        assert "k_int=12" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table2", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "Allocation Times in Seconds" in out
        assert "renum" in out

    def test_sweep(self, tiny_suite, capsys):
        assert main(["sweep"]) == 0
        assert "Register-set sweep" in capsys.readouterr().out
