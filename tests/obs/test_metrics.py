"""Bucketed histograms, shared percentile math, Prometheus rendering."""

import math
import random

from repro.obs import (BUCKET_BASE, BUCKET_GROWTH, Histogram,
                       MetricsRegistry, N_BUCKETS, bucket_index,
                       bucket_upper, percentile, render_prometheus)


class TestBuckets:
    def test_underflow_bucket_holds_tiny_values(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(-1.0) == 0
        assert bucket_index(BUCKET_BASE) == 0

    def test_upper_bound_is_inclusive(self):
        for index in (1, 7, 42, 100):
            upper = bucket_upper(index)
            assert bucket_index(upper) == index
            assert bucket_index(upper * 1.0001) == index + 1

    def test_index_is_monotonic_and_clamped(self):
        values = [BUCKET_BASE * (1.11 ** n) for n in range(200)]
        indices = [bucket_index(v) for v in values]
        assert indices == sorted(indices)
        assert bucket_index(1e9) == N_BUCKETS - 1  # overflow clamps

    def test_ladder_spans_microseconds_to_an_hour(self):
        assert bucket_upper(0) == BUCKET_BASE
        assert bucket_upper(N_BUCKETS - 1) > 3600.0


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_nearest_rank_endpoints(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0
        assert percentile(values, 50) == 3.0

    def test_loadgen_shares_this_implementation(self):
        from repro.obs import metrics
        from repro.serve import loadgen

        assert loadgen.percentile is metrics.percentile


class TestHistogramQuantiles:
    def test_empty_histogram_quantile_is_zero(self):
        assert Histogram("h").quantile(50) == 0.0

    def test_single_observation_is_exact(self):
        h = Histogram("h")
        h.observe(0.125)
        assert h.quantile(50) == 0.125
        assert h.quantile(99) == 0.125

    def test_quantile_within_one_bucket_of_exact(self):
        rng = random.Random(42)
        values = [rng.uniform(1e-4, 2.0) for _ in range(500)]
        h = Histogram("h")
        for v in values:
            h.observe(v)
        for q in (50, 90, 99):
            exact = percentile(values, q)
            estimate = h.quantile(q)
            assert abs(bucket_index(estimate) - bucket_index(exact)) <= 1
            # the relative error bound the bucket growth implies
            assert estimate / exact < BUCKET_GROWTH * 1.0001
            assert exact / estimate < BUCKET_GROWTH * 1.0001

    def test_quantile_clamped_to_observed_range(self):
        h = Histogram("h")
        for v in (0.010, 0.011, 0.012):
            h.observe(v)
        assert h.quantile(0) >= 0.010
        assert h.quantile(100) <= 0.012

    def test_merge_counts_reconstructs_distribution(self):
        a, b, merged = Histogram("a"), Histogram("b"), Histogram("m")
        for v in (0.001, 0.002, 0.004):
            a.observe(v)
        for v in (0.008, 0.016):
            b.observe(v)
        merged.merge_counts(a.snapshot()["buckets"])
        merged.merge_counts(b.snapshot()["buckets"])
        assert sum(merged._buckets) == 5


class TestSnapshot:
    def test_empty_snapshot_has_null_min_max(self):
        snap = Histogram("h").snapshot()
        assert snap == {"count": 0, "total": 0.0, "min": None,
                        "max": None}

    def test_populated_snapshot_keeps_legacy_keys(self):
        h = Histogram("h")
        h.observe(2.0)
        h.observe(4.0)
        snap = h.snapshot()
        assert snap["count"] == 2
        assert snap["total"] == 6.0
        assert snap["min"] == 2.0 and snap["max"] == 4.0
        assert {"p50", "p90", "p99", "buckets"} <= set(snap)

    def test_render_summary_aligns_histograms_with_counters(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.histogram("a.very.long.histogram.name").observe(1.0)
        registry.histogram("empty.histogram")
        lines = registry.render_summary().splitlines()
        width = len("a.very.long.histogram.name")
        for line in lines:  # every value starts in the same column
            assert line[width:width + 2] == "  "
            assert line[width + 2] != " "
        empty_row = next(l for l in lines if l.startswith("empty"))
        assert "count=0" in empty_row and "min=" not in empty_row


class TestPrometheus:
    def test_counters_histograms_and_gauges(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests").inc(7)
        registry.histogram("serve.request_seconds").observe(0.25)
        snapshot = registry.snapshot()
        snapshot["queue_depth"] = 3
        text = render_prometheus(snapshot)
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_requests_total 7" in text
        assert "# TYPE repro_serve_request_seconds summary" in text
        assert 'repro_serve_request_seconds{quantile="0.5"} 0.25' in text
        assert "repro_serve_request_seconds_count 1" in text
        assert "repro_serve_request_seconds_sum 0.25" in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 3" in text
        assert text.endswith("\n")

    def test_empty_histogram_renders_without_quantiles(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        text = render_prometheus(registry.snapshot())
        assert "repro_h_count 0" in text
        assert "quantile" not in text

    def test_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("engine.batch-size/2").inc(1)
        text = render_prometheus(registry.snapshot())
        assert "repro_engine_batch_size_2_total 1" in text
