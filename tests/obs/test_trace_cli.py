"""Tests for the ``repro trace`` CLI and the ``allocate --trace`` flag.

The summary renderer is covered by a golden file: the committed fixture
``fehl_k8_chaitin.jsonl`` (an Old-allocator trace of the fehl kernel at
8+8 registers) must render to exactly the committed summary text —
every number in the output comes from the fixture, so the comparison is
deterministic.
"""

import json
import pathlib

import pytest

from repro.cli import main
from repro.obs import load_trace

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
GOLDEN_TRACE = FIXTURES / "fehl_k8_chaitin.jsonl"
GOLDEN_SUMMARY = FIXTURES / "fehl_k8_chaitin.summary.txt"


class TestGolden:
    def test_summary_matches_golden_file(self, capsys):
        assert main(["trace", str(GOLDEN_TRACE), "--format", "summary"]) == 0
        assert capsys.readouterr().out == GOLDEN_SUMMARY.read_text()

    def test_fixture_reconciles(self):
        """The committed fixture itself satisfies the event/counter
        invariants (guards against regenerating it with a broken
        exporter)."""
        doc = load_trace(str(GOLDEN_TRACE))
        assert len(doc.events_of("spill_decision")) == \
            doc.counter("alloc.n_spilled_ranges")
        accepted = [e for e in doc.events_of("coalesce_decision")
                    if e.get("accepted")]
        assert sum(1 for e in accepted if e.get("copy_kind") == "copy") == \
            doc.counter("alloc.n_copies_coalesced")
        assert len(doc.events_of("split_inserted")) == \
            doc.counter("alloc.n_splits_inserted")


class TestTraceCommand:
    def test_records_kernel_by_name(self, capsys):
        assert main(["trace", "zeroin", "--k", "6"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("trace summary: zeroin")
        assert "decisions:" in out

    def test_tree_format(self, capsys):
        assert main(["trace", "zeroin", "--k", "6",
                     "--format", "tree"]) == 0
        out = capsys.readouterr().out
        assert "allocate [fn=zeroin" in out
        assert "round [index=0]" in out
        assert "renumber" in out

    def test_jsonl_format_parses(self, capsys):
        assert main(["trace", "zeroin", "--k", "6",
                     "--format", "jsonl"]) == 0
        lines = capsys.readouterr().out.splitlines()
        first = json.loads(lines[0])
        assert first["type"] == "meta"
        assert first["function"] == "zeroin"
        types = {json.loads(line)["type"] for line in lines}
        assert types == {"meta", "span", "event", "metrics"}

    def test_out_writes_loadable_trace(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        assert main(["trace", "zeroin", "--k", "6",
                     "--out", str(out)]) == 0
        doc = load_trace(str(out))
        assert doc.meta["function"] == "zeroin"
        assert doc.n_rounds >= 1

    def test_source_file_target(self, tmp_path, capsys):
        path = tmp_path / "prog.mf"
        path.write_text("proc double(n) { out(n * 2); }")
        assert main(["trace", str(path), "--k", "4"]) == 0
        assert "trace summary: double" in capsys.readouterr().out

    def test_unknown_target_lists_kernels(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["trace", "no-such-kernel"])
        assert "kernel" in str(err.value)

    def test_diff_pinpoints_divergent_spills(self, tmp_path, capsys):
        """The ISSUE's acceptance demo: OLD vs NEW on an FMM-suite
        kernel diverges in at least one spill decision and the diff
        names it."""
        old = tmp_path / "old.jsonl"
        assert main(["trace", "fehl", "--k", "8", "--mode", "chaitin",
                     "--out", str(old)]) == 0
        capsys.readouterr()
        assert main(["trace", "fehl", "--k", "8",
                     "--diff", str(old)]) == 0
        out = capsys.readouterr().out
        assert "trace diff:" in out
        assert "spilled only in" in out
        divergent = [line for line in out.splitlines()
                     if line.startswith("divergent spill decisions:")]
        assert divergent and int(divergent[0].split(":")[1]) >= 1

    def test_diff_of_identical_traces_is_clean(self, tmp_path, capsys):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        for path in (a, b):
            assert main(["trace", "zeroin", "--k", "6",
                         "--out", str(path)]) == 0
        capsys.readouterr()
        assert main(["trace", str(b), "--diff", str(a)]) == 0
        out = capsys.readouterr().out
        assert "divergent spill decisions: 0" in out


class TestAllocateTrace:
    def test_allocate_trace_flag(self, tmp_path, capsys):
        path = tmp_path / "prog.mf"
        path.write_text("proc double(n) { out(n * 2); }")
        out = tmp_path / "t.jsonl"
        assert main(["allocate", str(path), "--k", "4",
                     "--trace", str(out)]) == 0
        captured = capsys.readouterr()
        assert "rounds=" in captured.err
        assert "coalesced=" in captured.err
        doc = load_trace(str(out))
        assert doc.meta["function"] == "double"
        assert doc.counter("alloc.rounds") == doc.n_rounds
