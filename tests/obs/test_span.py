"""Unit tests for the tracer, spans, events and metrics."""

import pytest

from repro.obs import (ALLOCATE_LINE_KEYS, MetricsRegistry, NULL_TRACER,
                       SpillDecision, Tracer)


class FakeClock:
    """A deterministic perf_counter: each call advances by one tick."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestTracer:
    def test_span_tree_nests(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner-a"):
                pass
            with tracer.span("inner-b"):
                pass
        assert tracer.root is outer
        assert [c.name for c in outer.children] == ["inner-a", "inner-b"]
        assert tracer.current is None

    def test_durations_from_clock(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer") as outer:     # start=1
            with tracer.span("inner") as inner:  # start=2, end=3
                pass
        assert inner.duration == 1.0
        assert outer.duration == 3.0            # end=4
        assert outer.start <= inner.start <= inner.end <= outer.end

    def test_exception_closes_span(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert tracer.current is None
        assert tracer.root.end > tracer.root.start
        assert tracer.root.children[0].end > 0

    def test_attrs(self):
        tracer = Tracer()
        with tracer.span("round", index=3) as span:
            pass
        assert span.attrs == {"index": 3}

    def test_total_and_child(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("allocate") as root:
            for i in range(3):
                with tracer.span("round", index=i):
                    pass
        assert root.child("round").attrs["index"] == 0
        assert len(root.children_named("round")) == 3
        assert root.total("round") == 3.0
        assert root.child("missing") is None

    def test_events_gated_by_capture_flag(self):
        event = SpillDecision(range="f1", cost=1.0, degree=2,
                              remat_tag=None, chosen_because="x")
        off = Tracer(capture_events=False)
        with off.span("s") as span:
            off.event(event)
        assert span.events == []
        on = Tracer(capture_events=True)
        with on.span("s") as span:
            on.event(event)
        assert span.events == [event]

    def test_event_attached_to_innermost_span(self):
        tracer = Tracer(capture_events=True)
        event = SpillDecision(range="f1", cost=1.0, degree=2,
                              remat_tag=None, chosen_because="x")
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                tracer.event(event)
        assert inner.events == [event]
        assert outer.events == []
        assert outer.n_events() == 1

    def test_walk_preorder(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        assert [s.name for s in tracer.root.walk()] == ["a", "b", "c", "d"]


class TestNullTracer:
    def test_is_inert(self):
        span = NULL_TRACER.span("anything", attr=1)
        with span as inner:
            assert inner is span
        assert NULL_TRACER.events_enabled is False
        NULL_TRACER.event("ignored")
        assert span.duration == 0.0
        assert span.children == []
        assert span.events == []

    def test_shared_instance(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


class TestMetricsRegistry:
    def test_counters_and_histograms(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(2)
        registry.histogram("h").observe(1.0)
        registry.histogram("h").observe(3.0)
        assert registry.counters() == {"a": 3}
        snap = registry.histograms()["h"]
        assert snap["count"] == 2
        assert snap["min"] == 1.0
        assert snap["max"] == 3.0
        assert registry.histogram("h").mean == 2.0

    def test_absorb_dataclass(self):
        from repro.regalloc.allocator import AllocationStats

        stats = AllocationStats(n_spilled_ranges=4, n_remat_spills=1)
        registry = MetricsRegistry()
        registry.absorb_dataclass(stats, "alloc")
        assert registry.counters()["alloc.n_spilled_ranges"] == 4
        assert registry.counters()["alloc.n_remat_spills"] == 1

    def test_render_line_keys(self):
        registry = MetricsRegistry()
        registry.counter("alloc.rounds").inc(2)
        registry.counter("alloc.n_spilled_ranges").inc(3)
        line = registry.render_line(ALLOCATE_LINE_KEYS)
        assert line.startswith("rounds=2 spilled=3")
        # absent counters render as zero rather than crashing
        assert "coalesced=0" in line

    def test_render_summary_contains_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("x").inc(7)
        registry.histogram("y").observe(0.5)
        text = registry.render_summary(title="t")
        assert "x" in text and "7" in text
        assert "y" in text and "count=1" in text
