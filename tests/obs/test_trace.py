"""Trace export round-tripping, event/stat reconciliation, and the
span-tree property tests over random CFGs (ISSUE satellite 4)."""

import math

import pytest

from repro.benchsuite import KERNELS_BY_NAME
from repro.benchsuite.generators import random_program
from repro.machine import machine_with
from repro.obs import (Tracer, metrics_from_allocation, parse_trace,
                       trace_to_text)
from repro.regalloc import allocate
from repro.remat import RenumberMode

PHASES = ("renumber", "build", "costs", "color", "spill")


def traced_allocation(fn, machine, mode=RenumberMode.REMAT):
    tracer = Tracer(capture_events=True)
    result = allocate(fn, machine=machine, mode=mode, tracer=tracer)
    return result, tracer


def spill_forcing_machine():
    return machine_with(4, 4)


# -- reconciliation: events are the provenance of the stat counters -----------

@pytest.mark.parametrize("mode", [RenumberMode.CHAITIN, RenumberMode.REMAT])
@pytest.mark.parametrize("kernel", ["fehl", "zeroin", "svd"])
def test_events_reconcile_with_stats(kernel, mode):
    """Every stats counter with an event source matches its event count
    exactly (the ISSUE's acceptance invariant)."""
    fn = KERNELS_BY_NAME[kernel].compile()
    result, tracer = traced_allocation(fn, machine_with(8, 8), mode)
    root = result.trace
    events = [e for s in root.walk() for e in s.events]

    def of(kind):
        return [e for e in events if getattr(e, "kind", None) == kind]

    spills = of("spill_decision")
    assert len(spills) == result.stats.n_spilled_ranges
    assert sum(1 for e in spills if e.remat_tag) == \
        result.stats.n_remat_spills
    coalesced = [e for e in of("coalesce_decision") if e.accepted]
    assert sum(1 for e in coalesced if e.copy_kind == "copy") == \
        result.stats.n_copies_coalesced
    assert sum(1 for e in coalesced if e.copy_kind == "split") == \
        result.stats.n_splits_coalesced
    assert len(of("split_inserted")) == result.stats.n_splits_inserted


def test_round_indices_cover_every_round():
    fn = KERNELS_BY_NAME["fehl"].compile()
    result, tracer = traced_allocation(fn, machine_with(8, 8))
    rounds = [s for s in result.trace.walk() if s.name == "round"]
    assert [r.attrs["index"] for r in rounds] == list(range(result.rounds))


# -- JSONL round-trip ---------------------------------------------------------

def test_jsonl_round_trip():
    fn = KERNELS_BY_NAME["zeroin"].compile()
    result, tracer = traced_allocation(fn, machine_with(6, 6))
    meta = {"function": fn.name, "mode": "remat", "machine": "k6x6",
            "int_regs": 6, "float_regs": 6}
    registry = metrics_from_allocation(result)
    text = trace_to_text(result.trace, meta, registry)
    doc = parse_trace(text)

    assert doc.meta["function"] == fn.name
    assert doc.meta["version"] == 1
    # the span tree survives: same names in the same pre-order, same
    # durations (within JSON float rounding)
    ours = list(result.trace.walk())
    theirs = list(doc.root.walk())
    assert [s.name for s in theirs] == [s.name for s in ours]
    for a, b in zip(ours, theirs):
        assert b.duration == pytest.approx(a.duration, abs=1e-8)
    # every event survives with its kind, and typed events parse back
    # into the same dataclass values
    assert len(doc.events) == result.trace.n_events()
    originals = [e for s in ours for e in s.events]
    for original, loaded in zip(originals, doc.events):
        assert loaded.kind == original.kind
        assert loaded.event == original
    # metrics line round-trips
    assert doc.metrics["counters"] == registry.counters()
    # round annotation matches the enclosing round span
    assert doc.n_rounds == result.rounds
    for event in doc.events:
        assert event.round is None or 0 <= event.round < result.rounds


def test_round_trip_is_stable():
    """parse → re-export → parse is a fixed point (same line shapes)."""
    fn = KERNELS_BY_NAME["zeroin"].compile()
    result, _ = traced_allocation(fn, machine_with(6, 6))
    meta = {"function": fn.name}
    text = trace_to_text(result.trace, meta,
                         metrics_from_allocation(result))
    doc = parse_trace(text)
    text2 = trace_to_text(doc.root, doc.meta)
    doc2 = parse_trace(text2)
    assert [s.name for s in doc2.root.walk()] == \
        [s.name for s in doc.root.walk()]
    assert len(doc2.events) == len(doc.events)


def test_parse_rejects_garbage():
    with pytest.raises(ValueError):
        parse_trace("not json\n")
    with pytest.raises(ValueError):
        parse_trace('{"type": "wat"}\n')
    with pytest.raises(ValueError):
        parse_trace("")  # no root span


# -- span-tree properties over random CFGs (satellite 4) ----------------------

SEEDS = range(50)


@pytest.mark.parametrize("seed", SEEDS)
def test_span_tree_properties_random_cfg(seed):
    """On 50 random CFGs: the span tree nests correctly and the
    RoundTimes/cfa_time/total_time views agree with the tree."""
    fn = random_program(seed)
    result, tracer = traced_allocation(fn, spill_forcing_machine())
    root = result.trace
    assert root is tracer.root
    assert tracer.current is None, "spans left open"

    # containment: every child's interval lies inside its parent's
    def check(span):
        for child in span.children:
            assert span.start <= child.start <= child.end <= span.end
            check(child)
    check(root)

    # siblings are sequential (the allocator's phases do not overlap)
    def check_ordered(span):
        for a, b in zip(span.children, span.children[1:]):
            assert a.end <= b.start
            check_ordered(a)
        if span.children:
            check_ordered(span.children[-1])
    check_ordered(root)

    # the timing views are exactly the tree's numbers
    rounds = [s for s in root.walk() if s.name == "round"]
    assert len(rounds) == len(result.round_times)
    for span, times in zip(rounds, result.round_times):
        assert times.span is span
        for phase in PHASES:
            assert getattr(times, phase) == span.total(phase)
        # phases account for (almost all of) the round: the slack is
        # loop scaffolding, far below the phase work itself
        phase_sum = sum(span.total(p) for p in PHASES)
        assert phase_sum <= span.duration
    cfa = root.child("cfa")
    assert result.cfa_time == cfa.duration
    assert result.total_time == root.duration
    assert result.clone_time == root.total("clone")

    # events reconcile on random programs too
    events = [e for s in root.walk() for e in s.events]
    spills = [e for e in events
              if getattr(e, "kind", None) == "spill_decision"]
    assert len(spills) == result.stats.n_spilled_ranges


def test_untraced_allocation_still_carries_times():
    """Without a caller tracer the allocator builds its own span tree,
    so the timing fields keep working exactly as before."""
    fn = random_program(1)
    result = allocate(fn, machine=spill_forcing_machine())
    assert result.total_time > 0
    assert result.cfa_time > 0
    assert math.isfinite(result.clone_time)
    assert result.trace is not None
    assert result.trace.name == "allocate"
