"""End-to-end property tests: the allocator never changes behavior.

Random structured programs are interpreted before allocation (unlimited
virtual registers) and after allocation under every renumber mode and
several register-file sizes; the observable output must match exactly.
This single property transitively validates SSA construction, tag
propagation, splitting, coalescing, coloring, biased selection and spill
code.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.benchsuite import GeneratorConfig, random_program
from repro.interp import run_function
from repro.ir import verify_function
from repro.machine import machine_with
from repro.regalloc import allocate
from repro.remat import RenumberMode


def outputs_of(fn, **kwargs):
    return run_function(fn, max_steps=2_000_000, **kwargs).output


class TestGenerator:
    def test_deterministic(self):
        a = random_program(42)
        b = random_program(42)
        assert str(a) == str(b)

    def test_programs_differ_across_seeds(self):
        assert str(random_program(1)) != str(random_program(2))

    def test_generated_programs_verify_and_run(self):
        for seed in range(20):
            fn = random_program(seed)
            verify_function(fn)
            outputs_of(fn)


@pytest.mark.parametrize("seed", range(25))
@pytest.mark.parametrize("mode", list(RenumberMode))
def test_allocation_preserves_output(seed, mode):
    fn = random_program(seed)
    expected = outputs_of(fn.clone())
    result = allocate(fn, machine=machine_with(4, 4), mode=mode)
    assert outputs_of(result.function) == expected


@pytest.mark.parametrize("k", [5, 8, 16])
def test_allocation_across_register_files(k):
    for seed in range(8):
        fn = random_program(seed + 100)
        expected = outputs_of(fn.clone())
        result = allocate(fn, machine=machine_with(k, k))
        assert outputs_of(result.function) == expected, seed


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000),
       n_vars=st.integers(2, 8),
       max_depth=st.integers(1, 3),
       k=st.integers(4, 10))
def test_hypothesis_random_shapes(seed, n_vars, max_depth, k):
    config = GeneratorConfig(n_vars=n_vars, max_depth=max_depth)
    fn = random_program(seed, config)
    expected = outputs_of(fn.clone())
    result = allocate(fn, machine=machine_with(k, k),
                      mode=RenumberMode.REMAT)
    verify_function(result.function, require_physical=True, max_int_reg=k,
                    max_float_reg=k)
    assert outputs_of(result.function) == expected


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000))
def test_hypothesis_modes_agree_on_output(seed):
    fn = random_program(seed)
    outs = set()
    for mode in RenumberMode:
        result = allocate(fn, machine=machine_with(5, 5), mode=mode)
        outs.add(tuple(outputs_of(result.function)))
    assert len(outs) == 1
