"""Tests for the benchmark kernel suite."""

import pytest

from repro.benchsuite import (ALL_KERNELS, KERNELS_BY_NAME,
                              figure1_function, figure1_pressured,
                              make_twldrv_like)
from repro.interp import run_function
from repro.ir import verify_function


class TestRegistry:
    def test_suite_has_enough_kernels(self):
        assert len(ALL_KERNELS) >= 30

    def test_names_unique(self):
        names = [k.name for k in ALL_KERNELS]
        assert len(names) == len(set(names))

    def test_lookup(self):
        assert KERNELS_BY_NAME["sgemm"].program == "matrix300"

    def test_table2_specimens_present_in_size_order(self):
        sizes = [KERNELS_BY_NAME[n].compile().size()
                 for n in ("repvid", "tomcatv", "twldrv")]
        assert sizes[0] < sizes[1] < sizes[2]


@pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.name)
class TestEveryKernel:
    def test_compiles_and_verifies(self, kernel):
        fn = kernel.compile()
        verify_function(fn)
        assert fn.size() > 10

    def test_runs_and_produces_output(self, kernel):
        run = run_function(kernel.compile(), args=list(kernel.args),
                           max_steps=2_000_000)
        assert run.output, kernel.name

    def test_deterministic(self, kernel):
        a = run_function(kernel.compile(), args=list(kernel.args))
        b = run_function(kernel.compile(), args=list(kernel.args))
        assert a.output == b.output
        assert a.steps == b.steps

    def test_compile_returns_fresh_clones(self, kernel):
        fn1 = kernel.compile()
        fn2 = kernel.compile()
        assert fn1 is not fn2
        fn1.blocks[0].instructions.clear()
        assert len(fn2.blocks[0].instructions) > 0


class TestFigureFunctions:
    def test_figure1_runs(self):
        run = run_function(figure1_function(), args=[4])
        assert len(run.output) == 2

    def test_figure1_pressured_runs(self):
        run = run_function(figure1_pressured(), args=[6])
        assert len(run.output) == 3

    def test_twldrv_scales_with_sections(self):
        from repro.frontend import compile_source
        small = compile_source(make_twldrv_like(2))
        large = compile_source(make_twldrv_like(10))
        assert large.size() > small.size() * 2
