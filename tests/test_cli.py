"""Tests for the command-line interface."""

import pytest

from repro.cli import main

MINIFORT = """
proc double(n) {
  out(n * 2);
}
"""

ILOC = """proc double 1
entry:
    param r0 0
    muli r1 r0 2
    out r1
    ret
"""


@pytest.fixture
def mf_file(tmp_path):
    path = tmp_path / "prog.mf"
    path.write_text(MINIFORT)
    return str(path)


@pytest.fixture
def il_file(tmp_path):
    path = tmp_path / "prog.il"
    path.write_text(ILOC)
    return str(path)


class TestCompile:
    def test_compile_minifort(self, mf_file, capsys):
        assert main(["compile", mf_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("proc double 1")
        assert "muli" in out or "mul" in out

    def test_compile_iloc_passthrough(self, il_file, capsys):
        assert main(["compile", il_file]) == 0
        assert "muli r1 r0 2" in capsys.readouterr().out

    def test_sniffing_without_extension(self, tmp_path, capsys):
        path = tmp_path / "noext"
        path.write_text(ILOC)
        assert main(["compile", str(path)]) == 0
        assert "param" in capsys.readouterr().out

    def test_opt_flag(self, tmp_path, capsys):
        path = tmp_path / "prog.mf"
        path.write_text("proc f() { int x; x = 3 + 4; x = 3 + 4; out(x); }")
        assert main(["compile", str(path), "--opt"]) == 0
        out = capsys.readouterr().out
        # LVN + DCE leave a single pair of constant loads
        assert out.count("ldi") <= 3


class TestRun:
    def test_run_with_args(self, mf_file, capsys):
        assert main(["run", mf_file, "21"]) == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == "42"
        assert "steps=" in captured.err

    def test_run_allocated_matches(self, mf_file, capsys):
        main(["run", mf_file, "21"])
        plain = capsys.readouterr().out
        main(["run", mf_file, "21", "--allocated", "--k", "4"])
        allocated = capsys.readouterr().out
        assert plain == allocated

    def test_run_iloc(self, il_file, capsys):
        assert main(["run", il_file, "7"]) == 0
        assert capsys.readouterr().out.strip() == "14"


class TestAllocate:
    def test_allocate_prints_physical_code(self, mf_file, capsys):
        assert main(["allocate", mf_file, "--k", "4"]) == 0
        captured = capsys.readouterr()
        assert "R0" in captured.out
        assert "rounds=" in captured.err

    def test_allocate_modes(self, mf_file, capsys):
        for mode in ("chaitin", "remat", "split_all"):
            assert main(["allocate", mf_file, "--mode", mode]) == 0
            assert "proc double" in capsys.readouterr().out

    def test_allocate_strategies(self, mf_file, capsys):
        for allocator in ("iterated", "ssa"):
            assert main(["allocate", mf_file, "--k", "4",
                         "--allocator", allocator]) == 0
            captured = capsys.readouterr()
            assert "R0" in captured.out


class TestCgen:
    def test_cgen_emits_c(self, mf_file, capsys):
        assert main(["cgen", mf_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("#include <stdio.h>")
        assert "void double(double *args)" in out

    def test_cgen_allocated(self, mf_file, capsys):
        assert main(["cgen", mf_file, "--allocated", "--k", "4"]) == 0
        assert "r0p" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


LOOPY = """
proc f(n) {
  int s; int i;
  s = 0;
  for i = 0 to n {
    s = s + i * 4;
  }
  out(s);
}
"""


class TestOptCommand:
    @pytest.fixture
    def loop_file(self, tmp_path):
        path = tmp_path / "loop.mf"
        path.write_text(LOOPY)
        return str(path)

    def test_default_pipeline_emits_iloc(self, loop_file, capsys):
        assert main(["opt", loop_file]) == 0
        captured = capsys.readouterr()
        assert captured.out.startswith("proc f 1")
        assert "# passes=lvn,licm,dce" in captured.err

    def test_explicit_passes_and_verify(self, loop_file, capsys):
        assert main(["opt", loop_file, "--passes", "dce,lvn",
                     "--verify-after-each"]) == 0
        err = capsys.readouterr().err
        assert "passes=dce,lvn" in err
        assert "verified=2" in err

    def test_print_after_dumps_to_stderr(self, loop_file, capsys):
        assert main(["opt", loop_file, "--print-after", "dce"]) == 0
        captured = capsys.readouterr()
        assert "# --- IR after dce ---" in captured.err
        assert "# ---" not in captured.out

    def test_analysis_accounting_reported(self, loop_file, capsys):
        assert main(["opt", loop_file]) == 0
        err = capsys.readouterr().err
        assert "analyses_computed=" in err and "analyses_reused=" in err

    def test_unknown_pass_is_an_error(self, loop_file):
        with pytest.raises(SystemExit, match="unknown pass 'bogus'"):
            main(["opt", loop_file, "--passes", "bogus"])

    def test_empty_pass_list_is_an_error(self, loop_file):
        with pytest.raises(SystemExit, match="named no passes"):
            main(["opt", loop_file, "--passes", ","])

    def test_output_parses_and_runs(self, loop_file, capsys, tmp_path):
        from repro.interp import run_function
        from repro.ir import parse_function

        assert main(["opt", loop_file,
                     "--passes", "lvn,licm,dce"]) == 0
        fn = parse_function(capsys.readouterr().out)
        assert run_function(fn, args=[5]).output == [40]


class TestPassesCommand:
    def test_lists_every_registered_pass(self, capsys):
        from repro.passes import PASS_REGISTRY

        assert main(["passes"]) == 0
        out = capsys.readouterr().out
        for name in PASS_REGISTRY:
            assert name in out

    def test_shows_invalidation_contracts(self, capsys):
        assert main(["passes"]) == 0
        out = capsys.readouterr().out
        assert "preserves: dominance, loops, postdominance" in out
        assert "preserves: none" in out
