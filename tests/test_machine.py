"""Tests for machine descriptions and the cost model."""

from repro.ir import CountClass, Opcode, RegClass
from repro.machine import (MachineDescription, huge_machine, machine_with,
                           standard_machine, tiny_machine)


class TestPresets:
    def test_standard_is_the_papers_machine(self):
        m = standard_machine()
        assert m.int_regs == 16 and m.float_regs == 16
        assert m.load_cost == 2 and m.store_cost == 2 and m.other_cost == 1

    def test_huge_is_the_baseline_machine(self):
        m = huge_machine()
        assert m.int_regs == 128 and m.float_regs == 128

    def test_tiny_and_custom(self):
        assert tiny_machine(3, 5).k(RegClass.INT) == 3
        assert tiny_machine(3, 5).k(RegClass.FLOAT) == 5
        assert machine_with(7).float_regs == 7
        assert machine_with(7, 9).float_regs == 9

    def test_names_reflect_configuration(self):
        assert machine_with(8, 8).name == "k8x8"
        assert tiny_machine(4, 2).name == "tiny4x2"


class TestCostModel:
    def test_cycle_cost_per_opcode(self):
        m = standard_machine()
        assert m.cycle_cost(Opcode.LDW) == 2
        assert m.cycle_cost(Opcode.SPST) == 2
        assert m.cycle_cost(Opcode.ADD) == 1
        assert m.cycle_cost(Opcode.LDI) == 1

    def test_cycles_of_count_vector(self):
        m = standard_machine()
        counts = {CountClass.LOAD: 3, CountClass.STORE: 2,
                  CountClass.LDI: 5, CountClass.OTHER: 7}
        assert m.cycles(counts) == 3 * 2 + 2 * 2 + 5 + 7

    def test_custom_cost_model(self):
        m = MachineDescription(name="slowmem", int_regs=8, float_regs=8,
                               load_cost=10, store_cost=10)
        assert m.cycles({CountClass.LOAD: 1, CountClass.ADDI: 1}) == 11
        assert m.class_cost(CountClass.STORE) == 10
        assert m.class_cost(CountClass.COPY) == 1

    def test_descriptions_are_immutable(self):
        import pytest
        m = standard_machine()
        with pytest.raises(Exception):
            m.int_regs = 99


class TestCostModelAffectsSpillChoices:
    def test_costlier_memory_favors_remat_more(self):
        """With 10-cycle memory the remat advantage grows (the paper:
        'adjusting the relative costs ... will change the amount of
        improvement')."""
        from repro.benchsuite import KERNELS_BY_NAME
        from repro.experiments import compare_kernel
        kernel = KERNELS_BY_NAME["adapt"]
        cheap = compare_kernel(kernel, machine_with(16, 16))
        costly_machine = MachineDescription(
            name="slowmem", int_regs=16, float_regs=16,
            load_cost=10, store_cost=10)
        costly = compare_kernel(kernel, costly_machine)
        assert costly.total_percent >= cheap.total_percent
