"""Many engine processes, one sharded store: identical bytes, no
false quarantines (the multi-process sharing contract of the cache)."""

import multiprocessing
import pickle

import pytest

from repro.engine import (CORRUPTION_KINDS, ExperimentEngine,
                          ExperimentRequest, ResultCache,
                          corrupt_cache_entry, execute_request,
                          request_key)
from repro.ir import function_to_text
from repro.machine import machine_with

from ..helpers import single_loop

LOOP_TEXT = function_to_text(single_loop())


def corpus(n: int = 6) -> list[ExperimentRequest]:
    return [ExperimentRequest(ir_text=LOOP_TEXT,
                              machine=machine_with(4, 4), args=(i,))
            for i in range(n)]


def _hammer(cache_dir, rounds, conn):
    """One engine process: run the corpus *rounds* times against the
    shared store; ship back result bytes and the integrity counters.

    Module-level so it pickles by reference under ``spawn``.
    """
    engine = ExperimentEngine(jobs=1, cache_dir=cache_dir)
    payload = None
    for _ in range(rounds):
        out = engine.run_many(corpus())
        payload = [pickle.dumps(o.without_timing()) for o in out]
    conn.send({
        "results": payload,
        "corrupt": engine.cache.stats.corrupt,
        "quarantined": engine.cache.stats.quarantined,
        "quarantine_races": engine.cache.stats.quarantine_races,
    })
    conn.close()


class TestSharedStore:
    def test_concurrent_engines_agree_with_zero_false_quarantines(
            self, tmp_path):
        """Two spawned engine processes hammer one store concurrently;
        every result is byte-identical and nothing is quarantined."""
        ctx = multiprocessing.get_context("spawn")
        pipes, procs = [], []
        for _ in range(2):
            parent, child = ctx.Pipe()
            proc = ctx.Process(target=_hammer,
                               args=(str(tmp_path), 3, child))
            proc.start()
            child.close()
            pipes.append(parent)
            procs.append(proc)
        reports = [pipe.recv() for pipe in pipes]
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        assert reports[0]["results"] == reports[1]["results"]
        for report in reports:
            assert report["corrupt"] == 0
            assert report["quarantined"] == 0
            assert report["quarantine_races"] == 0
        # and the store agrees with a fresh local engine
        local = ExperimentEngine(jobs=1, use_cache=False)
        expected = [pickle.dumps(o.without_timing())
                    for o in local.run_many(corpus())]
        assert reports[0]["results"] == expected
        store = ResultCache(tmp_path)
        assert store.quarantined_entries() == []
        assert len(store) == len(corpus())


class TestQuarantineRace:
    @pytest.mark.parametrize("kind", CORRUPTION_KINDS)
    def test_losing_mover_counts_a_race_not_a_corruption(self, tmp_path,
                                                         kind):
        """Two readers see the same corrupt entry; the one whose move
        loses must count a race — no double corruption, no unlink."""
        a = ResultCache(tmp_path)
        b = ResultCache(tmp_path)
        req = corpus(1)[0]
        key = request_key(req)
        assert a.put(key, execute_request(req))
        corrupt_cache_entry(a, key, kind)
        path = a.locate(key)
        assert b.get(key) is None           # b wins the quarantine move
        a._quarantine(path)                 # a loses the race
        assert a.stats.quarantine_races == 1
        assert a.stats.corrupt == 0
        assert a.stats.quarantined == 0
        assert b.stats.corrupt == 1
        assert b.stats.quarantined == 1
        # exactly one quarantined copy; no healthy entry was deleted
        assert len(a.quarantined_entries()) == 1

    def test_lost_race_rewrite_still_heals(self, tmp_path):
        a = ResultCache(tmp_path)
        b = ResultCache(tmp_path)
        req = corpus(1)[0]
        key = request_key(req)
        summary = execute_request(req)
        assert a.put(key, summary)
        corrupt_cache_entry(a, key, "flip")
        path = a.locate(key)
        assert b.get(key) is None
        a._quarantine(path)
        assert a.put(key, summary)
        healed = a.get(key)
        assert healed is not None
        assert pickle.dumps(healed) == \
            pickle.dumps(summary.without_timing())
