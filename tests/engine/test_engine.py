"""The allocation-experiment engine: keying, caching, fan-out."""

import dataclasses
import pickle

import pytest

from repro.benchsuite import KERNELS_BY_NAME
from repro.engine import (AllocationSummary, ExperimentEngine,
                          ExperimentRequest, ResultCache, execute_request,
                          request_key)
from repro.experiments import baseline_request, kernel_request
from repro.ir import function_to_text
from repro.machine import machine_with, standard_machine
from repro.remat import RenumberMode

ZEROIN = KERNELS_BY_NAME["zeroin"]
ADAPT = KERNELS_BY_NAME["adapt"]


def req(kernel=ZEROIN, machine=None, mode=RenumberMode.REMAT, **kw):
    return kernel_request(kernel, machine or standard_machine(), mode, **kw)


def payload(summary: AllocationSummary) -> tuple:
    """Everything deterministic about a summary (timing excluded)."""
    return (summary.key, summary.function_name, summary.int_regs,
            summary.float_regs, summary.mode, summary.stats,
            summary.rounds, summary.code_size, summary.allocated_size,
            summary.counts, summary.steps, summary.output)


class TestRequestKey:
    def test_stable(self):
        assert request_key(req()) == request_key(req())

    def test_sensitive_to_content(self):
        base = request_key(req())
        assert request_key(req(kernel=ADAPT)) != base
        assert request_key(req(machine=machine_with(8, 8))) != base
        assert request_key(req(mode=RenumberMode.CHAITIN)) != base
        assert request_key(req(optimize_first=True)) != base
        assert request_key(req(biased=False)) != base
        assert request_key(req(lookahead=False)) != base
        assert request_key(req(coalesce_splits=False)) != base
        assert request_key(req(optimistic=False)) != base
        assert request_key(req(scheme="around-all-loops")) != base
        assert request_key(req(run=False)) != base
        assert request_key(
            dataclasses.replace(req(), args=(99,))) != base

    def test_ignores_cost_model_and_machine_name(self):
        """Summaries store raw counts, so the key covers only register
        counts — one huge-machine baseline serves every cost model."""
        a = req(machine=machine_with(16, 16))
        b = req(machine=standard_machine())  # different name, same regs
        c = req(machine=dataclasses.replace(standard_machine(),
                                            load_cost=7))
        assert request_key(a) == request_key(b) == request_key(c)

    def test_ignores_timing_only_fields(self):
        assert request_key(req(repeats=5, cacheable=False)) \
            == request_key(req())


class TestExecutor:
    def test_summary_matches_direct_allocation(self):
        summary = execute_request(req(kernel=ADAPT,
                                      machine=machine_with(8, 8)))
        assert summary.function_name == "adapt"
        assert summary.counts and summary.steps
        assert summary.output is not None
        assert summary.rounds >= 1
        assert summary.timing is not None
        assert len(summary.timing.samples) == 1

    def test_repeats_produce_samples(self):
        summary = execute_request(req(run=False, repeats=3,
                                      cacheable=False))
        assert summary.timing is not None
        assert len(summary.timing.samples) == 3
        assert summary.counts is None

    def test_scheme_request_equals_direct_scheme_run(self):
        from repro.interp import run_function
        from repro.regalloc import allocate
        from repro.regalloc.splitting import SCHEMES

        scheme = SCHEMES["around-all-loops"]
        summary = execute_request(req(kernel=ADAPT,
                                      machine=machine_with(8, 8),
                                      mode=scheme.mode,
                                      scheme=scheme.name))
        res = allocate(ADAPT.compile(), machine=machine_with(8, 8),
                       mode=scheme.mode, pre_split=scheme.pre_split)
        run = run_function(res.function, args=list(ADAPT.args))
        assert summary.counts == dict(run.counts)
        assert summary.output == tuple(run.output)

    def test_deterministic(self):
        a, b = execute_request(req()), execute_request(req())
        assert payload(a) == payload(b)


class TestResultCache:
    def test_roundtrip_strips_timing(self, tmp_path):
        cache = ResultCache(tmp_path)
        request = req()
        summary = execute_request(request)
        assert summary.timing is not None
        cache.put(summary.key, summary)
        loaded = cache.get(summary.key)
        assert loaded is not None
        assert loaded.timing is None       # wall-clock never persists
        assert payload(loaded) == payload(summary)
        assert len(cache) == 1

    def test_miss(self, tmp_path):
        assert ResultCache(tmp_path).get("0" * 64) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "f" * 64
        (tmp_path / f"{key}.pkl").write_bytes(b"not a pickle")
        assert cache.get(key) is None

    def test_key_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        summary = execute_request(req())
        other = "a" * 64
        (tmp_path / f"{other}.pkl").write_bytes(
            pickle.dumps(summary.without_timing()))
        assert cache.get(other) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        summary = execute_request(req())
        cache.put(summary.key, summary)
        assert cache.clear() == 1
        assert len(cache) == 0


class TestEngine:
    def test_batch_deduplicates(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        a, b = engine.run_many([req(), req()])
        assert payload(a) == payload(b)
        assert engine.stats.executed == 1
        assert engine.stats.deduplicated == 1

    def test_memo_hit_within_engine(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        engine.run(req())
        engine.run(req())
        assert engine.stats.executed == 1
        assert engine.stats.memo_hits == 1

    def test_disk_hit_across_engines(self, tmp_path):
        first = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        cold = first.run(req())
        second = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        warm = second.run(req())
        assert second.stats.cache_hits == 1
        assert second.stats.executed == 0
        assert payload(warm) == payload(cold)

    def test_no_cache_engine_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        engine = ExperimentEngine(jobs=1, use_cache=False)
        engine.run(req())
        assert list(tmp_path.iterdir()) == []

    def test_timing_requests_bypass_the_cache(self, tmp_path):
        """Table 2's guarantee: non-cacheable requests are executed
        live on every call — never persisted, never memoized."""
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        request = req(run=False, repeats=1, cacheable=False)
        engine.run(request)
        engine.run(request)
        assert engine.stats.executed == 2
        assert engine.stats.memo_hits == 0
        assert list(tmp_path.iterdir()) == []
        # a fresh engine over the same directory also re-executes
        other = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        summary = other.run(request)
        assert other.stats.executed == 1
        assert summary.timing is not None

    def test_baseline_shared_across_cost_models(self, tmp_path):
        """The huge-machine baseline of Table 1 / ablation / sweep is
        one cache entry regardless of the pricing machine."""
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        engine.run_many([baseline_request(ZEROIN),
                         baseline_request(ZEROIN)])
        assert engine.stats.executed == 1

    def test_results_order_matches_requests(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        requests = [req(kernel=ADAPT), req(), req(kernel=ADAPT)]
        out = engine.run_many(requests)
        assert [s.function_name for s in out] == ["adapt", "zeroin",
                                                 "adapt"]


class TestParallel:
    def test_parallel_equals_serial(self, tmp_path):
        """jobs=2 fan-out returns bit-identical summaries (minus the
        live wall-clock samples) in the same order as jobs=1."""
        requests = [req(), req(kernel=ADAPT),
                    req(kernel=ADAPT, machine=machine_with(8, 8)),
                    req(kernel=ADAPT, mode=RenumberMode.CHAITIN)]
        serial = ExperimentEngine(jobs=1, use_cache=False)
        parallel = ExperimentEngine(jobs=2,
                                    cache_dir=tmp_path / "par")
        expect = serial.run_many(requests)
        got = parallel.run_many(requests)
        assert [payload(s) for s in got] == [payload(s) for s in expect]

    def test_parallel_writes_back_to_cache(self, tmp_path):
        engine = ExperimentEngine(jobs=2, cache_dir=tmp_path)
        engine.run_many([req(), req(kernel=ADAPT)])
        assert len(ResultCache(tmp_path)) == 2


def test_ir_text_round_trips_for_every_kernel():
    """The request's canonical serialization is faithful: parsing the
    printed text reproduces the exact text (the engine's keying and the
    executor both depend on this)."""
    from repro.benchsuite import ALL_KERNELS
    from repro.ir import parse_function

    for kernel in ALL_KERNELS:
        text = function_to_text(kernel.compile())
        assert function_to_text(parse_function(text)) == text


class TestBatchStats:
    def test_each_run_many_appends_a_batch(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        engine.run_many([req(), req(), req(kernel=ADAPT)])
        engine.run_many([req()])
        assert len(engine.batches) == 2
        first, second = engine.batches
        assert first.requests == 3
        assert first.deduplicated == 1
        assert first.executed == 2
        assert first.workers == 1
        assert second.requests == 1
        assert second.memo_hits == 1
        assert second.executed == 0
        assert second.workers == 0

    def test_cache_hits_counted_per_batch(self, tmp_path):
        warm = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        warm.run(req())
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        engine.run(req())
        assert engine.batches[-1].cache_hits == 1
        assert engine.batches[-1].executed == 0

    def test_parallel_fanout_recorded(self, tmp_path):
        engine = ExperimentEngine(jobs=2, cache_dir=tmp_path)
        engine.run_many([req(), req(kernel=ADAPT)])
        assert engine.batches[-1].workers == 2

    def test_metrics_registry_view(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        engine.run_many([req(), req()])
        engine.run_many([req()])
        counters = engine.metrics().counters()
        assert counters["engine.requests"] == 3
        assert counters["engine.deduplicated"] == 1
        assert counters["engine.memo_hits"] == 1
        assert counters["engine.executed"] == 1
        assert counters["engine.batches"] == 2
        histograms = engine.metrics().histograms()
        assert histograms["engine.batch_size"]["count"] == 2
        assert histograms["engine.batch_size"]["max"] == 2
        # only the batch that executed something observed a fan-out
        assert histograms["engine.fanout"]["count"] == 1


class TestClonTiming:
    def test_timing_samples_carry_clone_time(self):
        summary = execute_request(req(run=False, cacheable=False))
        sample = summary.timing.samples[0]
        assert sample.clone >= 0.0
        # the clone copy is real work, so on any real clock it is > 0
        assert sample.clone > 0.0
        assert sample.total > sample.clone
