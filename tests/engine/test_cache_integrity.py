"""The checksummed cache envelope: corruption detection and degradation."""

import logging
import pickle

import pytest

from repro.engine import (CORRUPTION_KINDS, ExperimentEngine,
                          ExperimentRequest, QUARANTINE_DIR, ResultCache,
                          corrupt_cache_entry, execute_request, request_key)
from repro.ir import function_to_text
from repro.machine import machine_with

from ..helpers import single_loop

LOOP_TEXT = function_to_text(single_loop())


def request(n: int = 0) -> ExperimentRequest:
    return ExperimentRequest(ir_text=LOOP_TEXT,
                             machine=machine_with(4, 4), args=(n,))


@pytest.fixture
def populated(tmp_path):
    """A cache holding one valid entry, plus its key and summary."""
    cache = ResultCache(tmp_path)
    req = request()
    key = request_key(req)
    summary = execute_request(req)
    assert cache.put(key, summary)
    return cache, key, summary


class TestCorruptionKinds:
    @pytest.mark.parametrize("kind", CORRUPTION_KINDS)
    def test_reads_as_miss_and_quarantines_once(self, populated, kind):
        cache, key, _ = populated
        corrupt_cache_entry(cache, key, kind)
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert cache.stats.quarantined == 1
        quarantined = list((cache.directory / QUARANTINE_DIR).iterdir())
        assert [p.name for p in quarantined] == [f"{key}.pkl"]
        # the second read is a plain miss: the entry moved, so nothing
        # is re-counted and nothing lands in quarantine twice
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert cache.stats.quarantined == 1
        assert len(list((cache.directory / QUARANTINE_DIR).iterdir())) == 1

    @pytest.mark.parametrize("kind", CORRUPTION_KINDS)
    def test_rewrite_heals(self, populated, kind):
        cache, key, summary = populated
        corrupt_cache_entry(cache, key, kind)
        assert cache.get(key) is None
        assert cache.put(key, summary)
        healed = cache.get(key)
        assert healed is not None
        assert pickle.dumps(healed) == pickle.dumps(summary.without_timing())

    def test_legacy_bare_pickle_is_corrupt(self, populated):
        """Pre-envelope entries (a bare pickle, no magic) are detected."""
        cache, key, summary = populated
        cache.locate(key).write_bytes(pickle.dumps(summary))
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1

    def test_verify_quarantines_every_damaged_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = []
        for n in range(len(CORRUPTION_KINDS) + 2):
            req = request(n)
            key = request_key(req)
            cache.put(key, execute_request(req))
            keys.append(key)
        for key, kind in zip(keys, CORRUPTION_KINDS):
            corrupt_cache_entry(cache, key, kind)
        ok, corrupt = cache.verify()
        assert (ok, corrupt) == (2, len(CORRUPTION_KINDS))
        assert len(cache.quarantined_entries()) == len(CORRUPTION_KINDS)
        # gc sweeps the quarantine
        swept = cache.gc()
        assert swept["quarantined_removed"] == len(CORRUPTION_KINDS)
        assert cache.quarantined_entries() == []

    def test_quarantine_dir_not_counted_as_entries(self, populated):
        cache, key, _ = populated
        corrupt_cache_entry(cache, key, "flip")
        assert cache.get(key) is None
        assert len(cache) == 0
        report = cache.stats_report()
        assert report["entries"] == 0
        assert report["quarantined_entries"] == 1


class TestWriteDegradation:
    def test_oserror_put_degrades(self, tmp_path, caplog):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("")
        cache = ResultCache(blocker)  # mkdir will fail: path is a file
        req = request()
        key = request_key(req)
        summary = execute_request(req)
        with caplog.at_level(logging.WARNING):
            assert cache.put(key, summary) is False
            assert cache.put(key, summary) is False
        assert cache.stats.write_errors == 2
        # the warning fires once, not per put
        warnings = [r for r in caplog.records
                    if "not writable" in r.getMessage()]
        assert len(warnings) == 1

    def test_engine_run_continues_uncached(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("")
        e = ExperimentEngine(jobs=1, cache_dir=blocker)
        reqs = [request(n) for n in range(3)]
        out = e.run_many(reqs)
        assert len(out) == 3
        assert e.stats.executed == 3
        assert e.cache.stats.write_errors == 3
        assert e.metrics().counters()["engine.cache_write_errors"] == 3
