"""The ``allocator`` strategy axis in the content-hash request keys.

PR 9 added a second allocation strategy; a cached summary produced by
one strategy must never answer a request for the other, and entries
persisted before the axis existed (CACHE_VERSION 5) must never match
v6 keys.  These tests pin the key schema so a future edit cannot
silently drop the axis again.
"""

import hashlib

from repro.engine import (CACHE_VERSION, ExperimentEngine,
                          ExperimentRequest, request_key)
from repro.ir import function_to_text
from repro.machine import machine_with

from ..helpers import single_loop

LOOP_TEXT = function_to_text(single_loop())


def loop_request(**overrides) -> ExperimentRequest:
    return ExperimentRequest(ir_text=LOOP_TEXT,
                             machine=machine_with(4, 4), args=(2,),
                             **overrides)


class TestRequestKey:
    def test_allocator_differentiates_keys(self):
        assert request_key(loop_request()) != \
            request_key(loop_request(allocator="ssa"))

    def test_default_is_iterated(self):
        """Requests that never mention the axis key identically to
        explicit ``iterated`` ones — pre-axis call sites keep hitting
        the same entries as each other."""
        assert request_key(loop_request()) == \
            request_key(loop_request(allocator="iterated"))

    def test_cache_version_is_6(self):
        assert CACHE_VERSION == 6

    def test_v5_era_keys_never_match(self):
        """A key computed the pre-axis way (v5 salt, no allocator part)
        collides with no current key, for either strategy."""
        req = loop_request()
        h = hashlib.sha256()
        v5_parts = (
            "v5",
            f"int_regs={req.machine.int_regs}",
            f"float_regs={req.machine.float_regs}",
            f"mode={req.mode.value}",
            f"optimize_first={int(req.optimize_first)}",
            f"biased={int(req.biased)}",
            f"lookahead={int(req.lookahead)}",
            f"coalesce_splits={int(req.coalesce_splits)}",
            f"optimistic={int(req.optimistic)}",
            f"scheme={req.scheme or '-'}",
            f"args={req.args!r}",
            f"run={int(req.run)}",
        )
        h.update("\n".join(v5_parts).encode())
        h.update(b"\nir:\n")
        h.update(req.ir_text.encode())
        v5_key = h.hexdigest()
        assert v5_key != request_key(req)
        assert v5_key != request_key(loop_request(allocator="ssa"))


class TestCacheIsolation:
    def test_strategies_get_distinct_cache_entries(self, tmp_path):
        """Warm the cache under one strategy, query the other: the
        answers must come from different entries and carry different
        colorings' stats."""
        engine = ExperimentEngine(jobs=1, cache_dir=str(tmp_path))
        iterated = engine.run(loop_request())
        ssa = engine.run(loop_request(allocator="ssa"))
        assert iterated.key != ssa.key
        assert iterated.allocator == "iterated"
        assert ssa.allocator == "ssa"
        # both are now cache hits (timing is stripped from cached
        # entries), still distinguishable by strategy
        warm = ExperimentEngine(jobs=1, cache_dir=str(tmp_path))
        warm_iterated = warm.run(loop_request())
        warm_ssa = warm.run(loop_request(allocator="ssa"))
        assert warm_iterated.timing is None and warm_ssa.timing is None
        assert warm_iterated.allocator == "iterated"
        assert warm_ssa.allocator == "ssa"
        assert warm_iterated.stats != warm_ssa.stats
