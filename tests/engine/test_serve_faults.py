"""ServeFaultPlan: exactly-once claims, seeding, JSON round trip."""

import json

import pytest

from repro.engine import SERVE_KILL_EXIT_CODE, ServeFaultPlan


def test_each_fault_claims_exactly_once_across_plan_copies(tmp_path):
    """The marker files make a fault one-shot across *processes*: a
    second plan object over the same state_dir (a restarted backend)
    must not fire the same fault again."""
    plan = ServeFaultPlan(state_dir=str(tmp_path),
                          kill_keys=frozenset({"k1"}),
                          drop_keys=frozenset({"d1"}),
                          garble_keys=frozenset({"g1"}),
                          hang_accept={"b0": 1.5})
    assert plan.claim_kill("k1") is True
    assert plan.claim_kill("k1") is False
    reloaded = ServeFaultPlan.from_json(plan.to_json())
    assert reloaded.claim_kill("k1") is False

    assert plan.claim_kill("unplanned") is False
    assert plan.claim_drop("d1") and not plan.claim_drop("d1")
    assert plan.claim_garble("g1") and not plan.claim_garble("g1")
    assert plan.claim_accept_hang("b0") == 1.5
    assert plan.claim_accept_hang("b0") == 0.0
    assert plan.claim_accept_hang("b1") == 0.0
    assert plan.claim_accept_hang(None) == 0.0

    assert plan.claimed("kill") == 1
    assert plan.claimed("drop") == 1
    assert plan.claimed("garble") == 1
    assert plan.claimed("hang") == 1


def test_seeded_plans_are_deterministic_and_disjoint(tmp_path):
    keys = [f"key-{i}" for i in range(10)]
    plan = ServeFaultPlan.seeded(keys, str(tmp_path), seed=7, kills=2,
                                 drops=2, garbles=2,
                                 hang_backends={"b1": 0.5})
    again = ServeFaultPlan.seeded(keys, str(tmp_path), seed=7, kills=2,
                                  drops=2, garbles=2,
                                  hang_backends={"b1": 0.5})
    assert plan == again
    victims = plan.kill_keys | plan.drop_keys | plan.garble_keys
    assert len(victims) == 6          # disjoint across kinds
    assert victims <= set(keys)
    assert plan.describe() == {"kills": 2, "drops": 2, "garbles": 2,
                               "hangs": 1}

    different = ServeFaultPlan.seeded(keys, str(tmp_path), seed=8,
                                      kills=2, drops=2, garbles=2)
    assert different.kill_keys != plan.kill_keys \
        or different.drop_keys != plan.drop_keys


def test_seeded_rejects_more_victims_than_keys(tmp_path):
    with pytest.raises(ValueError):
        ServeFaultPlan.seeded(["only-one"], str(tmp_path), kills=2)


def test_json_round_trip_preserves_the_plan(tmp_path):
    plan = ServeFaultPlan.seeded([f"k{i}" for i in range(6)],
                                 str(tmp_path), seed=3, kills=1,
                                 drops=1, garbles=1,
                                 hang_backends={"b0": 2.0})
    wire = json.loads(json.dumps(plan.to_json()))
    assert ServeFaultPlan.from_json(wire) == plan


def test_unwritable_state_dir_fails_open(tmp_path):
    """A broken state dir disables injection instead of breaking the
    backend: chaos plumbing must never take down a healthy server."""
    blocked = tmp_path / "file-not-dir"
    blocked.write_text("occupied")
    plan = ServeFaultPlan(state_dir=str(blocked / "nested"),
                          kill_keys=frozenset({"k"}))
    assert plan.claim_kill("k") is False
    assert plan.claimed("kill") == 0


def test_kill_exit_code_is_distinct_from_worker_crash():
    from repro.engine.supervisor import CRASH_EXIT_CODE

    assert SERVE_KILL_EXIT_CODE != CRASH_EXIT_CODE
