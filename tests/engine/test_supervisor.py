"""The supervised executor: retries, timeouts, quarantine, fallback."""

import multiprocessing
import pickle

import pytest

from repro.engine import (ExperimentEngine, ExperimentError,
                          ExperimentFailure, ExperimentRequest, FaultPlan,
                          SupervisorConfig, request_key)
from repro.ir import function_to_text
from repro.machine import machine_with

from ..helpers import single_loop

LOOP_TEXT = function_to_text(single_loop())


def requests(n: int) -> list[ExperimentRequest]:
    return [ExperimentRequest(ir_text=LOOP_TEXT,
                              machine=machine_with(4, 4), args=(i,))
            for i in range(n)]


def engine(jobs: int, plan: FaultPlan | None = None,
           **config) -> ExperimentEngine:
    config.setdefault("backoff", 0.01)
    return ExperimentEngine(jobs=jobs, use_cache=False, fault_plan=plan,
                            supervisor=SupervisorConfig(**config))


class TestRetry:
    def test_transient_exception_is_retried(self):
        reqs = requests(4)
        key = request_key(reqs[2])
        plan = FaultPlan(worker_faults={(key, 1): "raise"})
        e = engine(2, plan)
        out = e.run_many(reqs)
        assert all(not isinstance(o, ExperimentFailure) for o in out)
        assert e.stats.retries == 1
        assert e.stats.failed == 0

    def test_transient_crash_is_retried(self):
        reqs = requests(4)
        key = request_key(reqs[0])
        plan = FaultPlan(worker_faults={(key, 1): "crash"})
        e = engine(2, plan)
        out = e.run_many(reqs)
        assert all(not isinstance(o, ExperimentFailure) for o in out)
        assert e.stats.worker_crashes == 1
        assert e.stats.retries == 1

    def test_retried_result_is_byte_identical(self):
        reqs = requests(3)
        baseline = ExperimentEngine(jobs=1, use_cache=False).run_many(reqs)
        key = request_key(reqs[1])
        plan = FaultPlan(worker_faults={(key, 1): "crash"})
        out = engine(2, plan).run_many(reqs)
        assert [pickle.dumps(o.without_timing()) for o in out] \
            == [pickle.dumps(o.without_timing()) for o in baseline]


class TestQuarantine:
    def test_poison_exhausts_exactly_the_budget(self):
        reqs = requests(4)
        poison = request_key(reqs[3])
        plan = FaultPlan(poison=frozenset({poison}))
        e = engine(2, plan, max_attempts=2)
        out = e.run_many(reqs)
        failure = out[3]
        assert isinstance(failure, ExperimentFailure)
        assert failure.attempts == 2
        assert len(failure.attempt_errors) == 2
        assert failure.error_class == "WorkerCrash"
        assert failure.worker_fate == "crashed"
        assert failure.function_name == "loop1"
        assert e.stats.quarantined == 1
        assert e.stats.failed == 1
        assert e.stats.worker_crashes == 2
        # the failure is also on the engine's lifetime ledger
        assert e.failures == [failure]
        # ... and the other requests still succeeded
        assert all(not isinstance(o, ExperimentFailure) for o in out[:3])

    def test_run_raises_typed_error(self):
        req = requests(1)[0]
        plan = FaultPlan(poison=frozenset({request_key(req)}))
        e = engine(2, plan, max_attempts=2)
        with pytest.raises(ExperimentError) as excinfo:
            e.run(req)
        assert excinfo.value.failure.attempts == 2

    def test_serial_in_process_quarantine(self):
        """jobs=1 never spawns; injected faults travel the in-process
        path and quarantine with the ``in-process`` fate."""
        reqs = requests(3)
        poison = request_key(reqs[1])
        plan = FaultPlan(poison=frozenset({poison}))
        e = engine(1, plan, max_attempts=3)
        out = e.run_many(reqs)
        failure = out[1]
        assert isinstance(failure, ExperimentFailure)
        assert failure.worker_fate == "in-process"
        assert failure.attempts == 3
        assert e.stats.retries == 2
        assert not isinstance(out[0], ExperimentFailure)
        assert not isinstance(out[2], ExperimentFailure)


class TestTimeout:
    def test_hung_worker_is_killed_and_retried(self):
        reqs = requests(3)
        key = request_key(reqs[1])
        plan = FaultPlan(worker_faults={(key, 1): "hang"},
                         hang_seconds=30.0)
        e = engine(2, plan, timeout=0.5)
        out = e.run_many(reqs)
        assert all(not isinstance(o, ExperimentFailure) for o in out)
        assert e.stats.timeouts == 1
        assert e.stats.retries == 1


class TestFallback:
    def test_spawn_failures_degrade_to_serial(self):
        reqs = requests(5)
        plan = FaultPlan(spawn_failures=3)
        e = engine(2, plan, max_spawn_failures=3)
        out = e.run_many(reqs)
        assert all(not isinstance(o, ExperimentFailure) for o in out)
        assert e.stats.spawn_failures == 3
        assert e.stats.fallback_serial == 1
        assert e.stats.executed == 5

    def test_transient_spawn_failure_recovers(self):
        reqs = requests(4)
        plan = FaultPlan(spawn_failures=1)
        e = engine(2, plan, max_spawn_failures=3)
        out = e.run_many(reqs)
        assert all(not isinstance(o, ExperimentFailure) for o in out)
        assert e.stats.spawn_failures == 1
        assert e.stats.fallback_serial == 0


class TestInterrupt:
    def test_interrupt_terminates_promptly_and_keeps_results(self, tmp_path):
        reqs = requests(8)
        plan = FaultPlan(interrupt_after=4)
        e = ExperimentEngine(jobs=2, cache_dir=tmp_path, fault_plan=plan,
                             supervisor=SupervisorConfig(backoff=0.01))
        with pytest.raises(KeyboardInterrupt):
            e.run_many(reqs)
        # completed results were flushed to the cache before the unwind
        assert len(e.cache) >= 4
        # the supervisor's finally-block reaped every worker
        assert multiprocessing.active_children() == []
        # a rerun serves the flushed results as disk hits
        e2 = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        e2.run_many(reqs)
        assert e2.stats.cache_hits >= 4


class TestMetrics:
    def test_fault_counters_surface_in_registry(self):
        reqs = requests(4)
        poison = request_key(reqs[0])
        key = request_key(reqs[1])
        plan = FaultPlan(worker_faults={(key, 1): "raise"},
                         poison=frozenset({poison}))
        e = engine(2, plan, max_attempts=2)
        e.run_many(reqs)
        counters = e.metrics().counters()
        assert counters["engine.retries"] == e.stats.retries
        assert counters["engine.timeouts"] == 0
        assert counters["engine.worker_crashes"] == 2
        assert counters["engine.quarantined"] == 1
        assert counters["engine.failed"] == 1
        assert counters["engine.fallback_serial"] == 0
