"""The persistent :class:`WorkerPool`: warm reuse across batches."""

import pickle

import pytest

from repro.engine import (ExperimentEngine, ExperimentFailure,
                          ExperimentRequest, WorkerPool, request_key,
                          run_supervised)
from repro.ir import function_to_text
from repro.machine import machine_with

from ..helpers import single_loop

LOOP_TEXT = function_to_text(single_loop())


def requests(n: int, base: int = 0) -> list[ExperimentRequest]:
    return [ExperimentRequest(ir_text=LOOP_TEXT,
                              machine=machine_with(4, 4), args=(base + i,))
            for i in range(n)]


def items(reqs):
    return [(request_key(r), r) for r in reqs]


@pytest.fixture
def pool():
    p = WorkerPool(1)
    yield p
    p.close()


class TestWarmReuse:
    def test_pool_survives_batches_and_spawns_once(self, pool):
        _, stats1 = run_supervised(items(requests(2)), 1, pool=pool)
        assert pool.stats.spawned == 1
        assert stats1.worker_spawns == 1
        _, stats2 = run_supervised(items(requests(2, base=2)), 1,
                                   pool=pool)
        # steady state: the second batch reuses the live worker
        assert pool.stats.spawned == 1
        assert stats2.worker_spawns == 0
        assert stats2.workers_reused >= 1
        assert len(pool.idle) == 1

    def test_engine_routes_batches_through_attached_pool(self, pool):
        engine = ExperimentEngine(jobs=1, use_cache=False, pool=pool)
        baseline = ExperimentEngine(jobs=1, use_cache=False)
        reqs = requests(2)
        out = [engine.run(r) for r in reqs]
        expected = [baseline.run(r) for r in reqs]
        assert [pickle.dumps(o.without_timing()) for o in out] \
            == [pickle.dumps(o.without_timing()) for o in expected]
        # even single-request batches execute on the (warm) pool
        assert engine.stats.worker_spawns == 1
        assert engine.stats.workers_reused >= 1
        assert engine.batches[0].workers == 1

    def test_dead_idle_worker_is_reaped_and_replaced(self, pool):
        run_supervised(items(requests(1)), 1, pool=pool)
        worker = pool.idle[0]
        worker.process.terminate()
        worker.process.join(timeout=10)
        out, stats = run_supervised(items(requests(1, base=1)), 1,
                                    pool=pool)
        assert all(not isinstance(o, ExperimentFailure)
                   for o in out.values())
        assert pool.stats.spawned == 2
        assert stats.worker_spawns == 1


class TestLifecycle:
    def test_close_kills_idle_workers(self, pool):
        run_supervised(items(requests(1)), 1, pool=pool)
        worker = pool.idle[0]
        assert worker.process.is_alive()
        pool.close()
        assert pool.idle == []
        assert not worker.process.is_alive()

    def test_release_after_close_kills_instead_of_idling(self, pool):
        worker = pool.acquire()
        assert worker is not None
        pool.close()
        pool.release(worker)
        assert pool.idle == []
        assert not worker.process.is_alive()
