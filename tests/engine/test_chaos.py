"""The acceptance chaos run of the fault-tolerant engine.

One 100-request batch absorbs ~10% injected worker crashes, two hangs
(caught by the per-attempt timeout), two poison requests, and three
corrupted cache entries — and must still deliver every non-poison
summary byte-identical to a fault-free serial run, with every
``engine.*`` fault counter reconciling against the injected plan.
"""

import pickle

from repro.engine import (ExperimentEngine, ExperimentFailure,
                          ExperimentRequest, FaultPlan, ResultCache,
                          SupervisorConfig, corrupt_cache_entry,
                          execute_request, request_key)
from repro.ir import function_to_text
from repro.machine import machine_with

from ..helpers import single_loop

N_REQUESTS = 100
CRASHES = 8          # transient: crash on attempt 1, succeed on retry
HANGS = 2            # transient: hang once, killed by the timeout
POISON = 2           # crash on every attempt → quarantined
CORRUPT = 3          # pre-cached entries damaged on disk
MAX_ATTEMPTS = 3

LOOP_TEXT = function_to_text(single_loop())


def build_requests() -> list[ExperimentRequest]:
    return [ExperimentRequest(ir_text=LOOP_TEXT,
                              machine=machine_with(4, 4), args=(n,))
            for n in range(N_REQUESTS)]


def test_chaos_batch_reconciles(tmp_path):
    requests = build_requests()
    keys = [request_key(r) for r in requests]

    # the ground truth: a fault-free, serial, uncached run
    clean = ExperimentEngine(jobs=1, use_cache=False)
    expected = clean.run_many(requests)
    assert all(not isinstance(s, ExperimentFailure) for s in expected)

    # seed the cache with three entries, then damage them on disk
    cache = ResultCache(tmp_path)
    for key, request in zip(keys[:CORRUPT], requests[:CORRUPT]):
        assert cache.put(key, execute_request(request))
    for key, kind in zip(keys[:CORRUPT], ("truncate", "flip",
                                          "bad_checksum")):
        corrupt_cache_entry(cache, key, kind)

    plan = FaultPlan.seeded(keys, seed=1234, crashes=CRASHES,
                            hangs=HANGS, poison=POISON, hang_seconds=30.0)
    assert plan.describe() == {"crashes": CRASHES, "hangs": HANGS,
                               "raises": 0, "poison": POISON,
                               "spawn_failures": 0}

    engine = ExperimentEngine(
        jobs=2, cache_dir=tmp_path, fault_plan=plan,
        supervisor=SupervisorConfig(timeout=1.0,
                                    max_attempts=MAX_ATTEMPTS,
                                    backoff=0.01))
    outcomes = engine.run_many(requests)

    # -- survivors: byte-identical to the fault-free serial run -------------
    poison_keys = plan.poison
    for key, outcome, reference in zip(keys, outcomes, expected):
        if key in poison_keys:
            assert isinstance(outcome, ExperimentFailure)
            assert outcome.attempts == MAX_ATTEMPTS
            assert outcome.error_class == "WorkerCrash"
            assert outcome.worker_fate == "crashed"
            assert len(outcome.attempt_errors) == MAX_ATTEMPTS
        else:
            assert not isinstance(outcome, ExperimentFailure)
            assert pickle.dumps(outcome.without_timing()) \
                == pickle.dumps(reference.without_timing())

    # -- counters: reconcile with the injected plan -------------------------
    stats = engine.stats
    assert stats.requests == N_REQUESTS
    assert stats.failed == POISON
    assert stats.quarantined == POISON
    # every transient crash dies once; every poison request dies once
    # per attempt in its budget
    assert stats.worker_crashes == CRASHES + POISON * MAX_ATTEMPTS
    assert stats.timeouts == HANGS
    # each transient fault retries once; poison retries budget-1 times
    assert stats.retries == CRASHES + HANGS + POISON * (MAX_ATTEMPTS - 1)
    # the corrupted entries were misses, so nothing was served from disk
    assert stats.cache_hits == 0
    assert stats.executed == N_REQUESTS - POISON
    assert engine.cache.stats.corrupt == CORRUPT
    assert engine.cache.stats.quarantined == CORRUPT

    counters = engine.metrics().counters()
    assert counters["engine.worker_crashes"] == stats.worker_crashes
    assert counters["engine.timeouts"] == HANGS
    assert counters["engine.retries"] == stats.retries
    assert counters["engine.quarantined"] == POISON
    assert counters["engine.cache_corrupt"] == CORRUPT
    assert counters["engine.cache_quarantined"] == CORRUPT
    assert counters["engine.fallback_serial"] == 0

    # -- the failure ledger renders (partial-table appendix path) ----------
    assert len(engine.failures) == POISON
    for failure in engine.failures:
        assert "WorkerCrash" in failure.describe()

    # -- self-healing: a rerun re-executes only what was quarantined --------
    engine2 = ExperimentEngine(jobs=1, cache_dir=tmp_path)
    outcomes2 = engine2.run_many(requests)
    assert all(not isinstance(s, ExperimentFailure) for s in outcomes2)
    assert engine2.stats.cache_hits == N_REQUESTS - POISON
    assert engine2.stats.executed == POISON
    assert engine2.cache.stats.corrupt == 0
