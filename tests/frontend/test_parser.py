"""Tests for the MiniFort parser."""

import pytest

from repro.frontend import (Assign, Binary, FloatLit, For, If, Index,
                            IntLit, MiniFortSyntaxError, Out, Store, Type,
                            Unary, VarDecl, VarRef, While, parse_proc,
                            parse_program)


class TestStructure:
    def test_proc_header(self):
        p = parse_proc("proc f(a, b) { out(a); }")
        assert p.name == "f"
        assert p.params == ["a", "b"]

    def test_multiple_procs(self):
        prog = parse_program("proc f() { out(1); } proc g() { out(2); }")
        assert [p.name for p in prog.procs] == ["f", "g"]
        assert prog.proc("g").name == "g"

    def test_decls(self):
        p = parse_proc("proc f() { int i, j; float x; array float a[8]; }")
        decl_i, decl_x, decl_a = p.body
        assert isinstance(decl_i, VarDecl) and decl_i.names == ["i", "j"]
        assert decl_x.type is Type.FLOAT
        assert decl_a.name == "a" and decl_a.size == 8

    def test_if_else_chain(self):
        p = parse_proc("""proc f() {
            int a;
            if (a < 1) { out(1); } else if (a < 2) { out(2); }
            else { out(3); }
        }""")
        node = p.body[1]
        assert isinstance(node, If)
        assert isinstance(node.otherwise[0], If)

    def test_for_and_while(self):
        p = parse_proc("""proc f(n) {
            int i;
            for i = 0 to n { out(i); }
            while (i > 0) { i = i - 1; }
        }""")
        loop, wh = p.body[1], p.body[2]
        assert isinstance(loop, For) and loop.var == "i"
        assert isinstance(wh, While)

    def test_array_store_and_load(self):
        p = parse_proc("proc f() { array int a[4]; a[1] = a[0] + 2; }")
        store = p.body[1]
        assert isinstance(store, Store)
        assert isinstance(store.value, Binary)
        assert isinstance(store.value.left, Index)


class TestPrecedence:
    def expr_of(self, text):
        return parse_proc(f"proc f() {{ int x; x = {text}; }}").body[1].value

    def test_mul_binds_tighter_than_add(self):
        e = self.expr_of("1 + 2 * 3")
        assert e.op == "+"
        assert e.right.op == "*"

    def test_parens_override(self):
        e = self.expr_of("(1 + 2) * 3")
        assert e.op == "*"

    def test_comparison_looser_than_arith(self):
        e = self.expr_of("1 + 2 < 3 * 4")
        assert e.op == "<"

    def test_logical_looser_than_comparison(self):
        e = self.expr_of("1 < 2 && 3 < 4 || 0 == 1")
        assert e.op == "||"
        assert e.left.op == "&&"

    def test_unary_minus(self):
        e = self.expr_of("-x + 1")
        assert e.op == "+"
        assert isinstance(e.left, Unary) and e.left.op == "-"

    def test_float_literals(self):
        e = self.expr_of("2.5")
        assert isinstance(e, FloatLit) and e.value == 2.5


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(MiniFortSyntaxError):
            parse_proc("proc f() { out(1) }")

    def test_missing_paren(self):
        with pytest.raises(MiniFortSyntaxError):
            parse_proc("proc f( { }")

    def test_garbage_expression(self):
        with pytest.raises(MiniFortSyntaxError):
            parse_proc("proc f() { int x; x = ; }")

    def test_array_size_must_be_literal(self):
        with pytest.raises(MiniFortSyntaxError):
            parse_proc("proc f(n) { array int a[n]; }")

    def test_empty_program(self):
        with pytest.raises(MiniFortSyntaxError):
            parse_program("")
