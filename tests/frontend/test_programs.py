"""Whole-program MiniFort tests: deeper nesting, interactions between
features, and behavioral edge cases."""

from repro.frontend import compile_source
from repro.interp import run_function
from repro.ir import verify_function


def run(source, args=None):
    fn = compile_source(source)
    verify_function(fn)
    return run_function(fn, args=args, max_steps=2_000_000).output


class TestNesting:
    def test_triple_nested_loops(self):
        src = """proc f(n) {
            int i, j, k, c; c = 0;
            for i = 0 to n {
              for j = 0 to i {
                for k = 0 to j { c = c + 1; }
              }
            }
            out(c);
        }"""
        # sum over i<4, j<i, k<j of 1 = C(4,3) = 4
        assert run(src, args=[4]) == [4]

    def test_if_inside_while_inside_for(self):
        src = """proc f(n) {
            int i, j, acc; acc = 0;
            for i = 0 to n {
              j = i;
              while (j > 0) {
                if (j % 2 == 0) { acc = acc + j; } else { acc = acc - 1; }
                j = j / 2;
              }
            }
            out(acc);
        }"""
        assert run(src, args=[6]) == [run(src, args=[6])[0]]  # determinism
        result = run(src, args=[6])[0]
        # independently computed expectation
        expected = 0
        for i in range(6):
            j = i
            while j > 0:
                if j % 2 == 0:
                    expected += j
                else:
                    expected -= 1
                j = abs(j) // 2
        assert result == expected

    def test_else_if_chain_dispatch(self):
        src = """proc f(n) {
            if (n < 0) { out(0); }
            else if (n == 0) { out(1); }
            else if (n < 10) { out(2); }
            else { out(3); }
        }"""
        assert run(src, args=[-5]) == [0]
        assert run(src, args=[0]) == [1]
        assert run(src, args=[7]) == [2]
        assert run(src, args=[70]) == [3]

    def test_empty_blocks(self):
        src = """proc f(n) {
            int i;
            if (n > 0) { } else { }
            for i = 0 to n { }
            while (n < 0) { }
            out(n);
        }"""
        assert run(src, args=[3]) == [3]


class TestSemanticEdges:
    def test_zero_trip_for_loop(self):
        src = """proc f() {
            int i, c; c = 0;
            for i = 5 to 5 { c = c + 1; }
            for i = 9 to 2 { c = c + 1; }
            out(c); out(i);
        }"""
        assert run(src) == [0, 9]

    def test_shadowing_is_rejected_but_reuse_is_fine(self):
        src = """proc f() {
            int i, acc; acc = 0;
            for i = 0 to 3 { acc = acc + i; }
            for i = 0 to 2 { acc = acc + 10 * i; }
            out(acc);
        }"""
        assert run(src) == [3 + 10]

    def test_negative_literals_via_unary_minus(self):
        assert run("proc f() { out(-3 + -4); out(-(2 * 5)); }") \
            == [-7, -10]

    def test_float_int_mix_through_casts(self):
        src = """proc f(n) {
            float x;
            x = float(n) / 4.0;
            out(int(x * 10.0));
        }"""
        assert run(src, args=[10]) == [25]

    def test_array_aliasing_through_same_index(self):
        src = """proc f() {
            array int a[8];
            int i;
            a[3] = 1;
            i = 3;
            a[i] = a[i] + a[3];
            out(a[3]);
        }"""
        assert run(src) == [2]

    def test_expression_evaluation_order_is_left_to_right(self):
        """a[i] evaluated before the store target in 'a[i] = a[i] + 1'."""
        src = """proc f() {
            array int a[4];
            a[0] = 41;
            a[0] = a[0] + 1;
            out(a[0]);
        }"""
        assert run(src) == [42]

    def test_large_loop_is_linear(self):
        src = """proc f(n) {
            int i, s; s = 0;
            for i = 0 to n { s = s + i; }
            out(s);
        }"""
        assert run(src, args=[1000]) == [499500]

    def test_while_with_compound_condition(self):
        src = """proc f(n) {
            int i, j;
            i = 0; j = n;
            while (i < j && j > 0) { i = i + 1; j = j - 1; }
            out(i); out(j);
        }"""
        # 0/7 -> 1/6 -> 2/5 -> 3/4 -> 4/3 (stop: 4 < 3 is false)
        assert run(src, args=[7]) == [4, 3]


class TestAllocationOfPrograms:
    def test_deeply_nested_program_allocates_small(self):
        from repro.machine import machine_with
        from repro.regalloc import allocate
        src = """proc f(n) {
            int i, j, k, acc; acc = 0;
            for i = 0 to n {
              for j = 0 to n {
                for k = 0 to n {
                  acc = acc + i * j + k;
                }
              }
            }
            out(acc);
        }"""
        fn = compile_source(src)
        expected = run_function(fn.clone(), args=[4]).output
        result = allocate(fn, machine=machine_with(4, 4))
        assert run_function(result.function, args=[4]).output == expected
