"""Tests for MiniFort code generation (behavior via the interpreter)."""

import pytest

from repro.frontend import MiniFortTypeError, compile_source
from repro.interp import run_function
from repro.ir import Opcode, verify_function


def run(source, args=None):
    fn = compile_source(source)
    verify_function(fn)
    return run_function(fn, args=args).output


class TestScalars:
    def test_int_arithmetic(self):
        out = run("proc f() { int x; x = (3 + 4) * 2 - 5; out(x); }")
        assert out == [9]

    def test_division_truncates_like_c(self):
        assert run("proc f() { out(-7 / 2); }") == [-3]

    def test_modulo(self):
        assert run("proc f() { out(13 % 5); out(-7 % 3); }") == [3, -1]

    def test_float_arithmetic(self):
        out = run("proc f() { float x; x = 1.5 * 4.0 + 0.25; out(x); }")
        assert out == [6.25]

    def test_casts(self):
        assert run("proc f() { out(int(2.9)); out(float(3) / 2.0); }") \
            == [2, 1.5]

    def test_fabs_and_negation(self):
        assert run("proc f() { out(fabs(-2.5)); out(-(3)); }") == [2.5, -3]

    def test_params(self):
        assert run("proc f(a, b) { out(a * 10 + b); }", args=[4, 2]) == [42]


class TestControlFlow:
    def test_if_else(self):
        src = """proc f(n) {
            if (n > 3) { out(1); } else { out(0); }
        }"""
        assert run(src, args=[5]) == [1]
        assert run(src, args=[2]) == [0]

    def test_if_without_else(self):
        src = "proc f(n) { if (n == 1) { out(7); } out(9); }"
        assert run(src, args=[1]) == [7, 9]
        assert run(src, args=[0]) == [9]

    def test_while(self):
        src = """proc f(n) {
            int i; i = 0;
            while (i < n) { i = i + 2; }
            out(i);
        }"""
        assert run(src, args=[5]) == [6]

    def test_for_half_open(self):
        src = """proc f(n) {
            int i, s; s = 0;
            for i = 0 to n { s = s + i; }
            out(s); out(i);
        }"""
        assert run(src, args=[5]) == [10, 5]

    def test_for_bound_evaluated_once(self):
        """Mutating a variable used in the bound must not change the trip
        count (the bound is captured in a register)."""
        src = """proc f() {
            int i, n, c; n = 3; c = 0;
            for i = 0 to n { n = 100; c = c + 1; }
            out(c);
        }"""
        assert run(src) == [3]

    def test_nested_loops(self):
        src = """proc f(n) {
            int i, j, s; s = 0;
            for i = 0 to n { for j = 0 to i { s = s + 1; } }
            out(s);
        }"""
        assert run(src, args=[4]) == [6]

    def test_logical_operators(self):
        src = """proc f(a, b) {
            out(a < 2 && b < 2);
            out(a < 2 || b < 2);
            out(not (a == b));
        }"""
        assert run(src, args=[1, 5]) == [0, 1, 1]


class TestArrays:
    def test_store_load_roundtrip(self):
        src = """proc f() {
            array int a[4];
            a[0] = 10; a[3] = 13;
            out(a[0] + a[3]); out(a[1]);
        }"""
        assert run(src) == [23, 0]

    def test_float_arrays(self):
        src = """proc f(n) {
            int i; float s;
            array float x[16];
            for i = 0 to n { x[i] = float(i) * 1.5; }
            s = 0.0;
            for i = 0 to n { s = s + x[i]; }
            out(s);
        }"""
        assert run(src, args=[4]) == [9.0]

    def test_two_arrays_distinct_storage(self):
        src = """proc f() {
            array int a[4]; array int b[4];
            a[0] = 1; b[0] = 2;
            out(a[0]); out(b[0]);
        }"""
        assert run(src) == [1, 2]

    def test_address_code_uses_lsd(self):
        fn = compile_source(
            "proc f() { array int a[4]; a[0] = 1; out(a[0]); }")
        opcodes = [i.opcode for _b, i in fn.instructions()]
        assert Opcode.LSD in opcodes
        assert Opcode.MULI in opcodes


class TestTypeErrors:
    def test_mixed_arithmetic_rejected(self):
        with pytest.raises(MiniFortTypeError, match="mixed"):
            compile_source("proc f() { out(1 + 2.0); }")

    def test_assign_wrong_type(self):
        with pytest.raises(MiniFortTypeError):
            compile_source("proc f() { int x; x = 1.5; }")

    def test_undeclared_variable(self):
        with pytest.raises(MiniFortTypeError, match="undeclared"):
            compile_source("proc f() { out(x); }")

    def test_redeclaration(self):
        with pytest.raises(MiniFortTypeError, match="redeclaration"):
            compile_source("proc f() { int x; float x; }")

    def test_array_as_scalar(self):
        with pytest.raises(MiniFortTypeError):
            compile_source("proc f() { array int a[4]; out(a); }")

    def test_scalar_indexed(self):
        with pytest.raises(MiniFortTypeError):
            compile_source("proc f() { int a; out(a[0]); }")

    def test_float_condition_rejected(self):
        with pytest.raises(MiniFortTypeError, match="condition"):
            compile_source("proc f() { float x; x = 1.0; "
                           "if (x) { out(1); } }")

    def test_float_modulo_rejected(self):
        with pytest.raises(MiniFortTypeError):
            compile_source("proc f() { out(1.0 % 2.0); }")

    def test_float_for_variable_rejected(self):
        with pytest.raises(MiniFortTypeError):
            compile_source("proc f() { float x; for x = 0 to 3 { } }")
