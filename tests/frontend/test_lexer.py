"""Tests for the MiniFort lexer."""

import pytest

from repro.frontend import LexError, TokKind, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]


class TestTokens:
    def test_keywords_and_idents(self):
        toks = kinds("proc foo int floaty")
        assert toks == [(TokKind.KEYWORD, "proc"), (TokKind.IDENT, "foo"),
                        (TokKind.KEYWORD, "int"), (TokKind.IDENT, "floaty")]

    def test_numbers(self):
        toks = kinds("42 3.5 1e3 2.5e-2 7")
        assert toks == [(TokKind.INT, "42"), (TokKind.FLOAT, "3.5"),
                        (TokKind.FLOAT, "1e3"), (TokKind.FLOAT, "2.5e-2"),
                        (TokKind.INT, "7")]

    def test_punctuation_maximal_munch(self):
        toks = kinds("<= < == = != >= >")
        assert [t for _k, t in toks] == ["<=", "<", "==", "=", "!=", ">=",
                                         ">"]

    def test_comments_ignored(self):
        toks = kinds("a # the rest vanishes\nb")
        assert [t for _k, t in toks] == ["a", "b"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n\nc")
        lines = [t.line for t in tokens[:-1]]
        assert lines == [1, 2, 4]

    def test_eof_token(self):
        assert tokenize("")[-1].kind is TokKind.EOF

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_malformed_exponent(self):
        with pytest.raises(LexError):
            tokenize("1e+")
