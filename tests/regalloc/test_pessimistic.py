"""Tests for the pessimistic (original Chaitin) simplify variant."""

import pytest

from repro.benchsuite import KERNELS_BY_NAME
from repro.interp import run_function
from repro.ir import Reg
from repro.machine import machine_with
from repro.regalloc import SpillCosts, allocate, simplify
from repro.regalloc.interference import InterferenceGraph
from repro.remat import RenumberMode


def cycle_graph(n):
    """C_n: every degree is 2, so simplify is immediately stuck at k=2 —
    yet even cycles are 2-colorable, the case optimism rescues."""
    g = InterferenceGraph([Reg.vint(i) for i in range(n)])
    for i in range(n):
        g.add_edge(Reg.vint(i), Reg.vint((i + 1) % n))
    return g


def costs_of(n):
    c = SpillCosts()
    for i in range(n):
        c.cost[Reg.vint(i)] = float(i + 1)
    return c


class TestSimplifyVariants:
    def test_optimistic_pushes_candidates(self):
        g = cycle_graph(4)
        result = simplify(g, machine_with(2), costs_of(4), optimistic=True)
        assert len(result.stack) == 4
        assert result.candidates
        assert result.pessimistic_spills == []

    def test_pessimistic_spills_candidates_outright(self):
        g = cycle_graph(4)
        result = simplify(g, machine_with(2), costs_of(4),
                          optimistic=False)
        assert len(result.pessimistic_spills) >= 1
        assert (len(result.stack) + len(result.pessimistic_spills)) == 4
        # candidates never reach the stack under pessimism
        for reg in result.pessimistic_spills:
            assert reg not in result.stack

    def test_optimism_colors_the_even_cycle(self):
        """C4 at k=2: Chaitin's pessimism spills a node, Briggs' optimism
        2-colors it — the motivating example for optimistic coloring."""
        from repro.regalloc import select
        g = cycle_graph(4)
        machine = machine_with(2)
        opt = simplify(g, machine, costs_of(4), optimistic=True)
        chosen = select(g, opt, machine)
        assert not chosen.spilled
        pes = simplify(g, machine, costs_of(4), optimistic=False)
        assert pes.pessimistic_spills


class TestPessimisticAllocation:
    @pytest.mark.parametrize("name", ["fehl", "adapt", "bubble"])
    def test_semantics_preserved(self, name):
        kernel = KERNELS_BY_NAME[name]
        expected = run_function(kernel.compile(),
                                args=list(kernel.args)).output
        result = allocate(kernel.compile(), machine=machine_with(6, 6),
                          mode=RenumberMode.REMAT, optimistic=False)
        run = run_function(result.function, args=list(kernel.args))
        assert run.output == expected

    def test_pessimism_never_spills_fewer_ranges(self):
        """Optimism only ever helps (Briggs' result): on a kernel that
        spills, the pessimistic variant spills at least as many ranges."""
        kernel = KERNELS_BY_NAME["adapt"]
        machine = machine_with(8, 8)
        opt = allocate(kernel.compile(), machine=machine,
                       mode=RenumberMode.REMAT, optimistic=True)
        pes = allocate(kernel.compile(), machine=machine,
                       mode=RenumberMode.REMAT, optimistic=False)
        assert (pes.stats.n_spilled_ranges
                >= opt.stats.n_spilled_ranges)
