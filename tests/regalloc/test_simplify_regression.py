"""Regression guard for the incremental spill-candidate scan.

``_pick_spill_candidate`` used to rescan the whole degree dict per
candidate (O(n²) under high pressure); it now iterates an incrementally
maintained not-yet-removed dict.  These tests pin the output of
``simplify`` — push order, candidate set, pessimistic spills — to a
straightforward reimplementation of the original full-rescan algorithm,
across the kernel suite at pressure-inducing register files.
"""

import math

import pytest

from repro.analysis import compute_liveness
from repro.benchsuite import ALL_KERNELS
from repro.machine import machine_with
from repro.regalloc import run_renumber
from repro.regalloc.interference import build_interference_graph
from repro.regalloc.simplify import SimplifyResult, simplify
from repro.regalloc.spillcost import compute_spill_costs
from repro.analysis import compute_dominance, compute_loops
from repro.remat import RenumberMode


def reference_simplify(graph, machine, costs, optimistic=True):
    """The seed algorithm: full-degree-dict rescan per spill candidate."""
    degree = {n: graph.degree(n) for n in graph.nodes()}
    removed = set()
    stack, candidates, pessimistic = [], set(), []
    index = graph.index

    def k_of(reg):
        return machine.k(reg.rclass)

    worklist = [n for n in degree if degree[n] < k_of(n)]
    remaining = len(degree)

    def remove(node, push=True):
        nonlocal remaining
        removed.add(node)
        if push:
            stack.append(node)
        remaining -= 1
        for n in index.iter_regs(graph.neighbor_bits(node)):
            if n in removed:
                continue
            degree[n] -= 1
            if degree[n] == k_of(n) - 1:
                worklist.append(n)

    def pick():
        best, best_ratio, fallback = None, math.inf, None
        for node, deg in degree.items():
            if node in removed:
                continue
            cost = costs.cost.get(node, math.inf)
            if math.isinf(cost):
                if fallback is None:
                    fallback = node
                continue
            ratio = cost / max(deg, 1)
            if ratio < best_ratio or (ratio == best_ratio
                                      and best is not None
                                      and node.sort_key() < best.sort_key()):
                best, best_ratio = node, ratio
        return best if best is not None else fallback

    while remaining:
        while worklist:
            node = worklist.pop()
            if node not in removed and degree[node] < k_of(node):
                remove(node)
        if not remaining:
            break
        candidate = pick()
        if candidate is None:
            break
        candidates.add(candidate)
        if optimistic:
            remove(candidate)
        else:
            pessimistic.append(candidate)
            remove(candidate, push=False)
    return SimplifyResult(stack=stack, candidates=candidates,
                          pessimistic_spills=pessimistic)


def first_round_graph(kernel, machine, mode):
    """The graph and costs simplify sees in the allocator's first round."""
    fn = kernel.compile()
    fn.remove_unreachable_blocks()
    fn.split_critical_edges()
    dom = compute_dominance(fn)
    loops = compute_loops(fn, dom)
    run_renumber(fn, mode, dom=dom)
    liveness = compute_liveness(fn)
    graph = build_interference_graph(fn, liveness=liveness)
    costs = compute_spill_costs(fn, loops, machine)
    return graph, costs


@pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.name)
@pytest.mark.parametrize("k", [4, 8])
def test_simplify_unchanged_on_kernel_suite(kernel, k):
    machine = machine_with(k, k)
    graph, costs = first_round_graph(kernel, machine, RenumberMode.REMAT)
    for optimistic in (True, False):
        got = simplify(graph, machine, costs, optimistic=optimistic)
        want = reference_simplify(graph, machine, costs,
                                  optimistic=optimistic)
        assert got.stack == want.stack
        assert got.candidates == want.candidates
        assert got.pessimistic_spills == want.pessimistic_spills


def test_simplify_result_default_is_fresh_per_instance():
    """The dataclass default is a factory, not a shared mutable."""
    a = SimplifyResult(stack=[], candidates=set())
    b = SimplifyResult(stack=[], candidates=set())
    a.pessimistic_spills.append(None)
    assert b.pessimistic_spills == []
