"""Tests for spill-code insertion."""

from repro.analysis import compute_loops
from repro.interp import run_function
from repro.ir import CountClass, IRBuilder, Opcode, parse_function
from repro.machine import standard_machine
from repro.regalloc import compute_spill_costs, insert_spill_code

from ..helpers import single_loop


def spill(fn, regs):
    costs = compute_spill_costs(fn, compute_loops(fn), standard_machine())
    return insert_spill_code(fn, regs, costs)


class TestMemorySpill:
    def test_load_before_use_store_after_def(self):
        text = """proc f 0
entry:
    ldi r0 5
    add r1 r0 r0
    add r2 r1 r1
    out r2
    ret
"""
        fn = parse_function(text)
        target = fn.entry.instructions[1].dest        # r1: one def, one use
        stats = spill(fn, [target])
        assert stats.n_memory_ranges == 1
        assert stats.n_stores == 1
        assert stats.n_reloads == 1
        ops = [i.opcode for i in fn.entry.instructions]
        # store right after the def, reload right before the use
        assert Opcode.SPST in ops and Opcode.SPLD in ops
        assert ops.index(Opcode.SPST) < ops.index(Opcode.SPLD)
        assert run_function(fn).output == [20]

    def test_spilled_range_vanishes_from_code(self):
        fn = single_loop()
        iv = fn.block("head").instructions[0].srcs[0]
        expected = run_function(fn.clone(), args=[5]).output
        spill(fn, [iv])
        for _blk, inst in fn.instructions():
            assert iv not in inst.regs()
        assert run_function(fn, args=[5]).output == expected

    def test_each_spilled_range_gets_own_slot(self):
        text = """proc f 0
entry:
    ldi r0 5
    ldi r1 6
    add r2 r0 r1
    add r3 r0 r1
    out r2
    out r3
    ret
"""
        fn = parse_function(text)
        a = fn.entry.instructions[2].dest
        c = fn.entry.instructions[3].dest
        spill(fn, [a, c])
        slots = {i.imms[0] for i in fn.entry.instructions
                 if i.opcode in (Opcode.SPST, Opcode.SPLD)}
        assert len(slots) == 2
        assert fn.n_spill_slots == 2

    def test_use_and_def_in_same_instruction(self):
        text = """proc f 1
entry:
    param r0 0
    ldi r1 0
    jmp head
head:
    addi r1 r1 1
    cmp_lt r2 r1 r0
    cbr r2 head exit
exit:
    out r1
    ret
"""
        fn = parse_function(text)
        from repro.ir import Reg
        r1 = Reg.vint(1)
        expected = run_function(fn.clone(), args=[4]).output
        spill(fn, [r1])
        assert run_function(fn, args=[4]).output == expected

    def test_repeated_use_reloaded_once(self):
        text = """proc f 0
entry:
    ldi r0 5
    ldi r9 1
    mul r1 r0 r0
    out r1
    out r9
    ret
"""
        fn = parse_function(text)
        from repro.ir import Reg
        stats = spill(fn, [Reg.vint(0)])
        assert stats.n_reloads + stats.n_remats == 1   # one temp for both srcs


class TestRematSpill:
    def test_remat_emits_tag_instruction_not_load(self):
        text = """proc f 0
entry:
    lsd r0 64
    ldw r1 r0
    ldw r2 r0
    out r1
    out r2
    ret
"""
        fn = parse_function(text)
        from repro.ir import Reg
        stats = spill(fn, [Reg.vint(0)])
        assert stats.n_remat_ranges == 1
        assert stats.n_remats == 2          # one lsd per use instruction
        assert stats.n_reloads == 0
        assert stats.n_stores == 0
        assert stats.n_deleted_defs == 1    # the original lsd disappears
        lsds = [i for i in fn.entry.instructions if i.opcode is Opcode.LSD]
        assert len(lsds) == 2
        run_function(fn)                    # still executes

    def test_remat_of_param(self):
        text = """proc f 1
entry:
    param r0 0
    add r1 r0 r0
    out r1
    out r0
    ret
"""
        fn = parse_function(text)
        from repro.ir import Reg
        stats = spill(fn, [Reg.vint(0)])
        assert stats.n_remat_ranges == 1
        assert run_function(fn, args=[21]).output == [42, 21]

    def test_mixed_defs_fall_back_to_memory(self):
        text = """proc f 0
entry:
    ldi r9 1
    cbr r9 a z
a:
    lsd r0 64
    jmp join
z:
    lsd r0 128
    jmp join
join:
    out r0
    ret
"""
        fn = parse_function(text)
        from repro.ir import Reg
        stats = spill(fn, [Reg.vint(0)])
        assert stats.n_memory_ranges == 1
        assert stats.n_stores == 2          # one per def
        assert run_function(fn).output[0] in (0x10000 + 64, 0x10000 + 128)

    def test_new_temps_reported(self):
        fn = single_loop()
        iv = fn.block("head").instructions[0].srcs[0]
        stats = spill(fn, [iv])
        assert stats.new_temps
        mentioned = {r for _b, i in fn.instructions() for r in i.regs()}
        assert stats.new_temps <= mentioned
