"""Bitset implementations vs. the seed set-based oracle.

The dense-index liveness and interference graph must produce *exactly*
the facts of the original set-based implementations (kept verbatim in
``tests/reference_impl.py``) on arbitrary generated control flow —
before and after renumber, and across coalescing-style merges.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import compute_liveness
from repro.benchsuite import GeneratorConfig, random_program
from repro.regalloc import build_interference_graph, run_renumber
from repro.remat import RenumberMode

from ..reference_impl import (ref_build_interference_graph,
                              ref_compute_liveness)

SHAPES = GeneratorConfig(n_vars=6, max_depth=3, max_stmts=5)

common = settings(max_examples=50, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])


def canonical_edges(graph, nodes):
    return {tuple(sorted((a, b))) for a in nodes for b in graph.neighbors(a)}


def assert_liveness_equal(fn):
    live = compute_liveness(fn)
    ref = ref_compute_liveness(fn)
    for label in fn.reverse_postorder():
        assert live.live_in(label) == ref.live_in(label), (fn.name, label)
        assert live.live_out(label) == ref.live_out(label), (fn.name, label)
        blk = live.block(label)
        rblk = ref.blocks[label]
        assert blk.use == rblk.use and blk.defs == rblk.defs


def assert_graphs_equal(fn):
    g = build_interference_graph(fn)
    r = ref_build_interference_graph(fn)
    assert set(g.nodes()) == set(r.nodes())
    assert g.n_edges() == r.n_edges()
    for node in r.nodes():
        assert g.neighbors(node) == r.neighbors(node), node
        assert g.degree(node) == r.degree(node), node
    assert canonical_edges(g, g.nodes()) == canonical_edges(r, r.nodes())


@common
@given(seed=st.integers(0, 10_000))
def test_liveness_matches_reference(seed):
    assert_liveness_equal(random_program(seed, SHAPES))


@common
@given(seed=st.integers(0, 10_000))
def test_interference_matches_reference(seed):
    assert_graphs_equal(random_program(seed, SHAPES))


@common
@given(seed=st.integers(0, 10_000),
       mode=st.sampled_from([RenumberMode.CHAITIN, RenumberMode.REMAT]))
def test_equivalence_after_renumber(seed, mode):
    """Post-renumber code has splits and φ-derived copies — the
    copy-source exemption and per-class masking must still agree."""
    fn = random_program(seed, SHAPES)
    fn.remove_unreachable_blocks()
    fn.split_critical_edges()
    run_renumber(fn, mode)
    assert_liveness_equal(fn)
    assert_graphs_equal(fn)


def test_equivalence_sweep_100_functions():
    """The acceptance sweep: identical results on >= 100 random
    functions, pre- and post-renumber."""
    for seed in range(100):
        fn = random_program(seed, SHAPES)
        assert_liveness_equal(fn)
        assert_graphs_equal(fn)
        fn.remove_unreachable_blocks()
        fn.split_critical_edges()
        run_renumber(fn, RenumberMode.REMAT)
        assert_liveness_equal(fn)
        assert_graphs_equal(fn)


@common
@given(seed=st.integers(0, 10_000))
def test_merge_matches_reference(seed):
    """Merging the same non-interfering pairs keeps both graphs equal —
    the coalescing workhorse."""
    fn = random_program(seed, SHAPES)
    g = build_interference_graph(fn)
    r = ref_build_interference_graph(fn)
    nodes = sorted(r.nodes())
    merged = set()
    for a in nodes:
        if a in merged:
            continue
        for b in nodes:
            if b is a or b in merged or a in merged:
                continue
            if b.rclass is not a.rclass or r.interferes(a, b):
                continue
            g.merge(a, b)
            r.merge(a, b)
            merged.add(b)
            break
    for node in r.nodes():
        assert g.neighbors(node) == r.neighbors(node)
        assert g.degree(node) == r.degree(node)
    assert g.n_edges() == r.n_edges()
    assert set(g.nodes()) == set(r.nodes())


@common
@given(seed=st.integers(0, 10_000))
def test_scan_block_matches_backward_walk(seed):
    """scan_block's linear per-instruction sets equal the quadratic
    reference walk at every point of every block."""
    fn = random_program(seed, SHAPES)
    live = compute_liveness(fn)
    ref = ref_compute_liveness(fn)
    for blk in fn.blocks:
        scanned = list(live.scan_block(blk.label))
        assert len(scanned) == len(blk.instructions)
        for i, (inst, at_point) in enumerate(scanned):
            assert inst is blk.instructions[i]
            expect = set(ref.live_out(blk.label))
            for j in reversed(range(i, len(blk.instructions))):
                expect -= set(blk.instructions[j].dests)
                expect |= set(blk.instructions[j].srcs)
            assert at_point == expect, (blk.label, i)
