"""Integration tests for the complete optimistic allocator (Figure 2)."""

import pytest

from repro.benchsuite.figures import figure1_function, figure1_pressured
from repro.interp import run_function
from repro.ir import CountClass, Opcode, RegClass, verify_function
from repro.machine import (huge_machine, machine_with, standard_machine,
                           tiny_machine)
from repro.regalloc import AllocationError, allocate
from repro.remat import RenumberMode

from ..helpers import ALL_SHAPES, if_in_loop, nested_loops


def cycles(run, machine):
    return machine.cycles(run.counts)


class TestEndToEnd:
    @pytest.mark.parametrize("shape", ALL_SHAPES)
    @pytest.mark.parametrize("mode", list(RenumberMode))
    def test_semantic_equivalence_under_pressure(self, shape, mode):
        fn = shape()
        expected = run_function(fn.clone(), args=[6]).output
        result = allocate(fn, machine=tiny_machine(4, 4), mode=mode)
        assert run_function(result.function, args=[6]).output == expected

    @pytest.mark.parametrize("shape", ALL_SHAPES)
    def test_output_uses_only_physical_registers(self, shape):
        result = allocate(shape(), machine=standard_machine())
        verify_function(result.function, require_physical=True,
                        max_int_reg=16, max_float_reg=16)

    def test_huge_machine_never_spills(self):
        for shape in ALL_SHAPES:
            result = allocate(shape(), machine=huge_machine())
            assert result.stats.n_spilled_ranges == 0
            assert result.rounds == 1

    def test_no_phis_or_virtuals_remain(self):
        result = allocate(if_in_loop(), machine=tiny_machine(4, 4))
        for _blk, inst in result.function.instructions():
            assert inst.opcode is not Opcode.PHI
            for r in inst.regs():
                assert r.physical

    def test_clone_leaves_input_untouched(self):
        fn = nested_loops()
        before = str(fn)
        allocate(fn, machine=tiny_machine(4, 4))
        assert str(fn) == before

    def test_in_place_mode(self):
        fn = nested_loops()
        result = allocate(fn, machine=standard_machine(), clone=False)
        assert result.function is fn

    def test_too_small_file_raises(self):
        with pytest.raises(AllocationError):
            allocate(nested_loops(), machine=machine_with(1, 1),
                     max_rounds=6)


class TestPaperBehavior:
    """The claims of Sections 3-5 on the running example."""

    def test_new_beats_old_on_figure1(self):
        """Table 1's headline: the rematerializing allocator produces
        cheaper spill code than Chaitin's scheme on multi-valued live
        ranges."""
        machine = machine_with(4, 2)
        fn = figure1_pressured()
        expected = run_function(fn.clone(), args=[12]).output
        runs = {}
        for mode in (RenumberMode.CHAITIN, RenumberMode.REMAT):
            result = allocate(fn, machine=machine, mode=mode)
            run = run_function(result.function, args=[12])
            assert run.output == expected
            runs[mode] = run
        old = cycles(runs[RenumberMode.CHAITIN], machine)
        new = cycles(runs[RenumberMode.REMAT], machine)
        assert new < old

    def test_pattern_fewer_loads_more_immediates(self):
        """'we see a pattern of fewer load instructions and more
        load-immediates' (Section 5.3; our lsd falls in the addi class)."""
        machine = machine_with(4, 2)
        fn = figure1_pressured()
        runs = {}
        for mode in (RenumberMode.CHAITIN, RenumberMode.REMAT):
            result = allocate(fn, machine=machine, mode=mode)
            runs[mode] = run_function(result.function, args=[12])
        old, new = runs[RenumberMode.CHAITIN], runs[RenumberMode.REMAT]
        assert new.count(CountClass.LOAD) < old.count(CountClass.LOAD)
        assert (new.count(CountClass.ADDI) + new.count(CountClass.LDI)
                > old.count(CountClass.ADDI) + old.count(CountClass.LDI))

    def test_remat_splits_are_isolated_and_spilled_cheaply(self):
        machine = machine_with(4, 2)
        result = allocate(figure1_pressured(), machine=machine,
                          mode=RenumberMode.REMAT)
        assert result.stats.n_splits_inserted >= 1
        assert result.stats.n_remat_spills >= 1

    def test_no_spill_means_modes_agree(self):
        """With ample registers both allocators emit equally-costly code."""
        machine = standard_machine()
        fn = figure1_function()
        runs = {}
        for mode in (RenumberMode.CHAITIN, RenumberMode.REMAT):
            result = allocate(fn, machine=machine, mode=mode)
            runs[mode] = run_function(result.function, args=[9])
        assert (cycles(runs[RenumberMode.CHAITIN], machine)
                == cycles(runs[RenumberMode.REMAT], machine))


class TestPhaseStructure:
    """Figure 2: the driver's phase order and Table 2's shape."""

    def test_round_times_recorded(self):
        result = allocate(figure1_pressured(), machine=machine_with(4, 2))
        assert result.rounds >= 2            # spilling forces iteration
        for times in result.round_times:
            assert times.renumber >= 0 and times.build >= 0
        # only the non-final rounds have a spill phase
        assert result.round_times[-1].spill == 0.0
        assert all(t.spill > 0 for t in result.round_times[:-1])

    def test_cfa_measured_once(self):
        result = allocate(nested_loops(), machine=standard_machine())
        assert result.cfa_time > 0

    def test_remat_mode_spends_more_in_renumber(self):
        """Table 2: 'the cost of renumber is higher for the New
        allocator'. Checked structurally: REMAT does strictly more work
        (propagation), so its first-round renumber handles tags."""
        fn = nested_loops()
        old = allocate(fn, machine=standard_machine(),
                       mode=RenumberMode.CHAITIN)
        new = allocate(fn, machine=standard_machine(),
                       mode=RenumberMode.REMAT)
        # timing noise makes a direct comparison flaky at this size; both
        # must at least be recorded
        assert old.round_times[0].renumber > 0
        assert new.round_times[0].renumber > 0


class TestHeuristicToggles:
    """Ablations of Sections 4.2-4.3 heuristics."""

    def test_biasing_removes_split_copies(self):
        machine = machine_with(4, 2)
        fn = figure1_pressured()
        expected = run_function(fn.clone(), args=[12]).output
        biased = allocate(fn, machine=machine, mode=RenumberMode.REMAT,
                          biased=True)
        unbiased = allocate(fn, machine=machine, mode=RenumberMode.REMAT,
                            biased=False)
        run_b = run_function(biased.function, args=[12])
        run_u = run_function(unbiased.function, args=[12])
        assert run_b.output == expected and run_u.output == expected
        assert (run_b.count(CountClass.COPY)
                <= run_u.count(CountClass.COPY))

    def test_all_toggle_combinations_stay_correct(self):
        machine = machine_with(4, 2)
        fn = figure1_pressured()
        expected = run_function(fn.clone(), args=[12]).output
        for biased in (True, False):
            for lookahead in (True, False):
                for csplits in (True, False):
                    result = allocate(fn, machine=machine,
                                      mode=RenumberMode.REMAT,
                                      biased=biased, lookahead=lookahead,
                                      coalesce_splits=csplits)
                    run = run_function(result.function, args=[12])
                    assert run.output == expected, (biased, lookahead,
                                                    csplits)


class TestAnalysisAccounting:
    """The AnalysisManager satellite: per-allocation analysis recomputes
    are bounded and pre-split schemes reuse their hook's fixed point."""

    def _kernel(self):
        from repro.benchsuite import KERNELS_BY_NAME

        return KERNELS_BY_NAME["fehl"].compile()

    def test_one_liveness_fixed_point_per_ssa_and_build(self):
        # without incremental maintenance: exactly two liveness fixed
        # points per round (SSA pruning + interference build) and
        # nothing else — the build-coalesce loop's rebuilds all ride
        # the cached/maintained object
        result = allocate(self._kernel(), machine=machine_with(8, 8),
                          mode=RenumberMode.REMAT, incremental=False)
        stats = result.stats
        assert stats.n_rounds > 1  # 8+8 forces spilling on fehl
        assert stats.n_liveness_computed == 2 * stats.n_rounds
        assert stats.n_liveness_updates == 0

    def test_incremental_saves_one_fixed_point_per_spill_round(self):
        # with incremental maintenance (the default) the patched
        # liveness survives spill insertion, so every round ≥ 2 serves
        # SSA pruning from cache: rounds + 1 fixed points total, one
        # update per spill round, and each update re-analyzed only a
        # subset of the blocks
        result = allocate(self._kernel(), machine=machine_with(8, 8),
                          mode=RenumberMode.REMAT)
        stats = result.stats
        assert stats.n_rounds > 1
        assert stats.n_liveness_computed == stats.n_rounds + 1
        assert stats.n_liveness_updates == stats.n_rounds - 1
        assert (stats.n_incremental_blocks_reanalyzed
                <= stats.n_incremental_blocks_total)

    def test_incremental_and_strict_agree_on_output(self):
        from repro.ir import function_to_text

        kwargs = dict(machine=machine_with(8, 8), mode=RenumberMode.REMAT)
        inc = allocate(self._kernel(), **kwargs)
        strict = allocate(self._kernel(), incremental=False, **kwargs)
        assert (function_to_text(inc.function)
                == function_to_text(strict.function))

    def test_verify_incremental_mode(self):
        result = allocate(self._kernel(), machine=machine_with(8, 8),
                          mode=RenumberMode.REMAT, verify_incremental=True)
        assert result.stats.n_liveness_updates == result.stats.n_rounds - 1

    def test_sparse_liveness_mode_identical_output(self):
        from repro.ir import function_to_text

        kwargs = dict(machine=machine_with(8, 8), mode=RenumberMode.REMAT)
        dense = allocate(self._kernel(), **kwargs)
        sparse = allocate(self._kernel(), liveness_mode="sparse", **kwargs)
        assert (function_to_text(dense.function)
                == function_to_text(sparse.function))
        assert sparse.stats.n_liveness_computed == sparse.stats.n_rounds + 1

    def test_cfg_analyses_computed_once_for_whole_allocation(self):
        result = allocate(self._kernel(), machine=machine_with(8, 8),
                          mode=RenumberMode.REMAT)
        stats = result.stats
        # total = liveness share + dominance + loops, regardless of rounds
        assert stats.n_analyses_computed == stats.n_liveness_computed + 2

    def test_pre_split_scheme_reuses_hook_liveness(self):
        from repro.regalloc.splitting import SCHEMES

        scheme = SCHEMES["around-all-loops"]
        result = allocate(self._kernel(), machine=machine_with(8, 8),
                          mode=scheme.mode, pre_split=scheme.pre_split,
                          incremental=False)
        stats = result.stats
        # the hook's fixed point is the first round's SSA-construction
        # liveness: still two computes per round (not 2*rounds + 1, the
        # pre-refactor count), with the sharing visible as a reuse
        assert stats.n_liveness_computed == 2 * stats.n_rounds
        assert stats.n_analyses_reused >= 2

    def test_verify_rounds_mode(self):
        result = allocate(self._kernel(), machine=machine_with(8, 8),
                          mode=RenumberMode.REMAT, verify_rounds=True)
        assert result.stats.n_rounds > 1
